//! The Table 1 delay formulas.

use ims_graph::DepKind;

/// Which column of the paper's Table 1 to use when turning a dependence
/// into a scheduling delay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum DelayModel {
    /// *"For a classical VLIW processor with non-unit architectural
    /// latencies, the delay for an anti-dependence or output dependence can
    /// be negative if the latency of the successor is sufficiently large."*
    /// Flow: `L(pred)`; anti: `1 − L(succ)`; output: `1 + L(pred) − L(succ)`.
    /// This is the model the paper's Cydra 5 experiments use, and the
    /// default.
    #[default]
    Vliw,
    /// The conservative column, *"more appropriate for superscalar
    /// processors"*, which only assumes the successor's latency is ≥ 1.
    /// Flow: `L(pred)`; anti: `0`; output: `L(pred)`.
    Conservative,
}

/// Computes the delay of a dependence edge per Table 1.
///
/// `lat_pred` and `lat_succ` are the execution latencies of the predecessor
/// and successor operations. Control dependences (predicate inputs) behave
/// like flow dependences: the consumer needs the produced predicate value.
pub fn delay(kind: DepKind, lat_pred: i64, lat_succ: i64, model: DelayModel) -> i64 {
    match (model, kind) {
        (_, DepKind::Flow) | (_, DepKind::Control) => lat_pred,
        (DelayModel::Vliw, DepKind::Anti) => 1 - lat_succ,
        (DelayModel::Vliw, DepKind::Output) => 1 + lat_pred - lat_succ,
        (DelayModel::Conservative, DepKind::Anti) => 0,
        (DelayModel::Conservative, DepKind::Output) => lat_pred,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_is_predecessor_latency_in_both_models() {
        assert_eq!(delay(DepKind::Flow, 20, 4, DelayModel::Vliw), 20);
        assert_eq!(delay(DepKind::Flow, 20, 4, DelayModel::Conservative), 20);
        assert_eq!(delay(DepKind::Control, 1, 4, DelayModel::Vliw), 1);
    }

    #[test]
    fn vliw_anti_can_be_negative() {
        // 1 - L(succ): a 20-cycle successor gives -19.
        assert_eq!(delay(DepKind::Anti, 1, 20, DelayModel::Vliw), -19);
        assert_eq!(delay(DepKind::Anti, 1, 1, DelayModel::Vliw), 0);
    }

    #[test]
    fn vliw_output_balances_latencies() {
        assert_eq!(delay(DepKind::Output, 4, 4, DelayModel::Vliw), 1);
        assert_eq!(delay(DepKind::Output, 1, 20, DelayModel::Vliw), -18);
        assert_eq!(delay(DepKind::Output, 20, 1, DelayModel::Vliw), 20);
    }

    #[test]
    fn conservative_is_never_negative_for_unit_latency_preds() {
        assert_eq!(delay(DepKind::Anti, 5, 20, DelayModel::Conservative), 0);
        assert_eq!(delay(DepKind::Output, 5, 20, DelayModel::Conservative), 5);
    }

    #[test]
    fn conservative_dominates_vliw() {
        // Conservative delays are always >= VLIW delays (Table 1's intent).
        for (lp, ls) in [(1, 1), (4, 20), (20, 4), (26, 1)] {
            for kind in [DepKind::Flow, DepKind::Anti, DepKind::Output] {
                assert!(
                    delay(kind, lp, ls, DelayModel::Conservative)
                        >= delay(kind, lp, ls, DelayModel::Vliw),
                    "{kind:?} lp={lp} ls={ls}"
                );
            }
        }
    }
}
