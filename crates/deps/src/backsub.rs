//! Recurrence back-substitution.
//!
//! The paper's preprocessing pipeline (§1, confirmed for the experimental
//! corpus in §4.1) includes *"recurrence back-substitution"*
//! (Schlansker/Kathail): a first-order recurrence
//!
//! ```text
//! p = p + c          (reads its own value from the previous iteration)
//! ```
//!
//! constrains the II to the operation's full latency (`RecMII ≥ latency`).
//! Substituting the recurrence into itself `K−1` times gives
//!
//! ```text
//! p = p[-K] + K·c    (reads the value from K iterations back)
//! ```
//!
//! whose circuit constraint is `II ≥ ⌈latency / K⌉` — with `K = latency`
//! the recurrence no longer constrains the II at all. The transform is only
//! valid when the first `K` reads can be seeded: the pre-loop instances
//! `p₋ⱼ = p_entry − (j−1)·c` are attached as per-lag live-in bindings
//! (which is what a compiler's loop preheader would compute).
//!
//! Without this transform, every pointer-walking loop in the corpus would
//! be recurrence-limited to `II ≥ 3` (the address ALU latency), which
//! §4.2's statistics show was not the case for the paper's corpus.

use ims_ir::{LiveInValue, LoopBody, Opcode, Operand};
use ims_machine::MachineModel;

use crate::build::resolve_use;

/// Applies back-substitution to every eligible simple induction update in
/// `body`, returning the transformed body (or the original if nothing was
/// eligible).
///
/// An operation is eligible when it is:
///
/// * an `AddrAdd`/`AddrSub` whose destination equals its first source at
///   positional distance 1 (the plain `p = p ± c` induction idiom),
/// * with an integer-immediate step, and
/// * its register's lag-1 live-in is a constant integer or an array base
///   (so the pre-loop lags can be computed statically).
///
/// The substitution depth is the operation's latency on `machine`, making
/// the rewritten self-circuit constrain `II ≥ 1` only.
pub fn back_substitute(body: &LoopBody, machine: &MachineModel) -> LoopBody {
    let mut out = body.clone();
    let mut new_lags: Vec<(ims_ir::VReg, u32, LiveInValue)> = Vec::new();

    for (id, op) in body.iter() {
        if !matches!(op.opcode, Opcode::AddrAdd | Opcode::AddrSub) {
            continue;
        }
        let Some(dest) = op.dest else { continue };
        let Some(u) = op.srcs[0].as_reg() else { continue };
        if u.reg != dest || u.prev != 0 {
            continue;
        }
        // Positional distance must be exactly 1 (the def reads itself).
        let Some((def, 1)) = resolve_use(body, id, u) else {
            continue;
        };
        debug_assert_eq!(def, id, "single assignment");
        let Operand::ImmInt(step_mag) = op.srcs[1] else {
            continue;
        };
        let step = if op.opcode == Opcode::AddrSub {
            -step_mag
        } else {
            step_mag
        };
        // Seedable initial value?
        let Some(init) = body.live_in_value(dest, 1) else {
            continue;
        };
        let seed = |lag: u32| -> Option<LiveInValue> {
            let delta = (lag as i64 - 1) * step;
            match init {
                LiveInValue::Const(ims_ir::Value::Int(x)) => {
                    Some(LiveInValue::Const(ims_ir::Value::Int(x - delta)))
                }
                LiveInValue::ArrayBase { array, offset } => Some(LiveInValue::ArrayBase {
                    array,
                    offset: offset - delta,
                }),
                _ => None,
            }
        };
        let k = machine.latency(op.opcode);
        if k <= 1 {
            continue; // Already unconstraining.
        }
        if (2..=k).any(|lag| seed(lag).is_none()) {
            continue;
        }

        // Rewrite: p = p[-K] + K·c (express the extra depth via `prev`).
        let new_op = out.op_mut(id);
        new_op.srcs[0] = Operand::Reg(ims_ir::RegUse::back(dest, k - 1));
        new_op.srcs[1] = Operand::ImmInt(step_mag * k as i64);
        for lag in 2..=k {
            new_lags.push((dest, lag, seed(lag).expect("checked above")));
        }
    }

    for (reg, lag, value) in new_lags {
        out.add_live_in_lag(reg, lag, value);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_problem, BuildOptions};
    use ims_core::{compute_mii, Counters};
    use ims_ir::{LoopBuilder, MemRef, Value};
    use ims_machine::cydra;

    fn pointer_loop() -> LoopBody {
        let mut b = LoopBuilder::new("ptr", 16);
        let a = b.array("a", 64);
        let pa = b.ptr("pa", a, 0);
        let _v = b.load("v", pa, Some(MemRef::new(a, 0, 1)));
        b.addr_add(pa, pa, 1);
        b.finish().unwrap()
    }

    #[test]
    fn relaxes_the_induction_recurrence() {
        let m = cydra();
        let body = pointer_loop();
        let before = build_problem(&body, &m, &BuildOptions::default());
        let rec_before = compute_mii(&before, &mut Counters::new());

        let transformed = back_substitute(&body, &m);
        let after = build_problem(&transformed, &m, &BuildOptions::default());
        let rec_after = compute_mii(&after, &mut Counters::new());

        // AddrAdd latency 3: RecMII drops from >=3 to the resource bound.
        assert!(rec_before.mii >= 3);
        assert!(rec_after.rec_mii <= rec_after.res_mii, "{rec_after:?}");
        // The self-edge now spans distance 3.
        assert!(after
            .graph()
            .edges()
            .iter()
            .any(|e| e.from == e.to && e.distance == 3));
    }

    #[test]
    fn seeds_prior_pointer_values() {
        let m = cydra();
        let transformed = back_substitute(&pointer_loop(), &m);
        // Lags 2 and 3 seeded with base − 1 and base − 2.
        let pa = ims_ir::VReg(0);
        assert_eq!(
            transformed.live_in_value(pa, 2),
            Some(LiveInValue::ArrayBase {
                array: ims_ir::ArrayId(0),
                offset: -1
            })
        );
        assert_eq!(
            transformed.live_in_value(pa, 3),
            Some(LiveInValue::ArrayBase {
                array: ims_ir::ArrayId(0),
                offset: -2
            })
        );
        // The step scaled by K.
        let op = transformed.op(ims_ir::OpId(1));
        assert_eq!(op.srcs[1], Operand::ImmInt(3));
        assert!(ims_ir::validate::validate(&transformed).is_ok());
    }

    #[test]
    fn count_down_counters_are_also_rewritten() {
        let m = cydra();
        let mut b = LoopBuilder::new("cnt", 8);
        let n = b.fresh("n");
        b.bind_live_in(n, Value::Int(8));
        b.addr_sub(n, n, 1);
        b.branch(n);
        let body = b.finish().unwrap();
        let t = back_substitute(&body, &m);
        let op = t.op(ims_ir::OpId(0));
        assert_eq!(op.srcs[1], Operand::ImmInt(3));
        // Lag 2 seeds n_{-2} = 8 + 1 = 9 (count-down goes upward backward).
        assert_eq!(
            t.live_in_value(n, 2),
            Some(LiveInValue::Const(Value::Int(9)))
        );
    }

    #[test]
    fn non_eligible_ops_left_alone() {
        let m = cydra();
        let mut b = LoopBuilder::new("mix", 8);
        // Accumulator on the adder: not an AddrAdd, untouched.
        let s = b.fresh("s");
        b.bind_live_in(s, Value::Float(0.0));
        b.rebind_add(s, s, 1.0f64);
        // A float-seeded address add: cannot compute integer lags.
        let q = b.fresh("q");
        b.bind_live_in(q, Value::Float(1.0));
        b.addr_add(q, q, 1);
        // Register step (not an immediate): untouched.
        let r = b.fresh("r");
        b.bind_live_in(r, Value::Int(0));
        let step = b.live_in("step", Value::Int(2));
        b.rebind(r, Opcode::AddrAdd, vec![r.into(), step.into()]);
        let body = b.finish().unwrap();
        let t = back_substitute(&body, &m);
        assert_eq!(t.op(ims_ir::OpId(0)), body.op(ims_ir::OpId(0)));
        assert_eq!(t.op(ims_ir::OpId(1)), body.op(ims_ir::OpId(1)));
        assert_eq!(t.op(ims_ir::OpId(2)), body.op(ims_ir::OpId(2)));
    }
}
