//! Loop unrolling — the substrate of the "unroll-before-scheduling"
//! baseline the paper argues against (§1, §4.3).
//!
//! "Unroll-before-scheduling" schemes *"unroll the loop some number of
//! times and apply a global acyclic scheduling algorithm to the unrolled
//! loop body … but still maintain a scheduling barrier at the back-edge"*.
//! §4.3 quantifies the trade: to be competitive with iterative modulo
//! scheduling, such a scheme *"would need to get within 2.8% of the lower
//! bound on execution time without unrolling the loop body to more than
//! 2.18 times its original size"*.
//!
//! [`unroll`] produces the unrolled body in the same dynamic-single-
//! assignment IR: registers are renamed per copy, loop-carried uses are
//! re-resolved across copies (with `prev` reaching to earlier unrolled
//! iterations when the dependence distance exceeds the unroll factor),
//! affine memory descriptors are rescaled (`stride·U`, `offset + stride·k`),
//! and per-lag live-in seeds are recomputed. The result is a valid loop
//! body: it can be scheduled *and* executed, and executing it for
//! `n / U` iterations is semantically identical to the original for `n`
//! (tested).

use std::collections::HashMap;

use ims_ir::{LoopBody, Opcode, Operand, RegUse, VReg};

use crate::build::resolve_use;

/// Unrolls `body` by `factor`, returning a new loop body whose single
/// iteration performs `factor` original iterations.
///
/// The unrolled body keeps one loop-closing branch (the last copy's); the
/// other copies' branches are dropped, which is what an unroller's
/// iteration-count rewrite does. The trip count becomes
/// `trip_count / factor` (the caller is responsible for remainder
/// iterations; for scheduling-cost analysis the remainder is irrelevant).
///
/// # Panics
///
/// Panics if `factor` is zero.
pub fn unroll(body: &LoopBody, factor: u32) -> LoopBody {
    assert!(factor >= 1, "unroll factor must be at least 1");
    let u = factor;
    let mut out = LoopBody::new(
        format!("{}_x{}", body.name(), u),
        (body.trip_count() / u).max(1),
    );
    for a in body.arrays() {
        out.add_array(a.name.clone(), a.len);
    }

    // Register maps: defined registers get one fresh name per copy; pure
    // live-ins are shared across copies.
    let mut defined_map: HashMap<(u32, VReg), VReg> = HashMap::new();
    let mut shared_map: HashMap<VReg, VReg> = HashMap::new();
    for (_, op) in body.iter() {
        if let Some(d) = op.dest {
            for k in 0..u {
                defined_map.insert((k, d), out.new_vreg());
            }
        }
    }
    let mut shared = |out: &mut LoopBody, v: VReg| -> VReg {
        *shared_map.entry(v).or_insert_with(|| out.new_vreg())
    };

    // Max original lag per register, to size the live-in seeding below.
    let mut max_lag: HashMap<VReg, u32> = HashMap::new();
    for (id, op) in body.iter() {
        for use_ in op.reg_uses() {
            if let Some((_, d)) = resolve_use(body, id, use_) {
                let e = max_lag.entry(use_.reg).or_insert(0);
                *e = (*e).max(d);
            }
        }
    }

    // Emit the copies.
    for k in 0..u {
        for (id, op) in body.iter() {
            if op.opcode == Opcode::Branch && k != u - 1 {
                continue; // Only the last copy closes the loop.
            }
            let mut new_op = op.clone();
            new_op.dest = op.dest.map(|d| defined_map[&(k, d)]);
            if let Some(m) = op.mem {
                new_op.mem = Some(ims_ir::MemRef::new(
                    m.array,
                    m.offset + m.stride * k as i64,
                    m.stride * u as i64,
                ));
            }
            let mut remap = |out: &mut LoopBody, use_: RegUse| -> RegUse {
                match resolve_use(body, id, use_) {
                    None => RegUse::new(shared(out, use_.reg)),
                    Some((def_id, d)) => {
                        // Source instance: copy r, `q` unrolled iterations
                        // back.
                        let t = k as i64 - d as i64;
                        let r = t.rem_euclid(u as i64) as u32;
                        let q = ((r as i64 - t) / u as i64) as u32;
                        // Positional distance of the renamed use: 1 when
                        // the def copy comes at/after this use in the new
                        // body order.
                        let positional = match r.cmp(&k) {
                            std::cmp::Ordering::Less => 0,
                            std::cmp::Ordering::Greater => 1,
                            std::cmp::Ordering::Equal => {
                                u32::from(def_id.index() >= id.index())
                            }
                        };
                        debug_assert!(q >= positional, "distance arithmetic is consistent");
                        RegUse::back(defined_map[&(r, use_.reg)], q - positional)
                    }
                }
            };
            for s in &mut new_op.srcs {
                if let Operand::Reg(use_) = s {
                    *s = Operand::Reg(remap(&mut out, *use_));
                }
            }
            if let Some(p) = op.pred {
                new_op.pred = Some(remap(&mut out, p));
            }
            out.push(new_op);
        }
    }

    // Live-in seeding. Instance (unrolled -L, copy r) is original global
    // iteration -(L·u - r), i.e. original lag L·u - r; bind enough lags to
    // cover every read.
    let mut bound: Vec<(VReg, u32)> = Vec::new();
    for li in body.live_ins() {
        if li.lag != 1 {
            continue; // Handled through live_in_value's lag lookup below.
        }
        if body.def_of(li.reg).is_none() {
            if let Some(&nv) = shared_map.get(&li.reg) {
                out.add_live_in(nv, li.value);
            }
            continue;
        }
        let deepest = max_lag.get(&li.reg).copied().unwrap_or(1).max(1);
        for r in 0..u {
            let nv = defined_map[&(r, li.reg)];
            let max_l = deepest / u + 2;
            for l in 1..=max_l {
                let orig_lag = l * u - r;
                if orig_lag == 0 {
                    continue;
                }
                if let Some(v) = body.live_in_value(li.reg, orig_lag) {
                    if !bound.contains(&(nv, l)) {
                        bound.push((nv, l));
                        out.add_live_in_lag(nv, l, v);
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ims_ir::{validate::validate, LoopBuilder, MemRef, Value};

    fn sum_loop(n: u32) -> LoopBody {
        let mut b = LoopBuilder::new("sum", n);
        let a = b.array("a", n as usize);
        let pa = b.ptr("pa", a, 0);
        let s = b.fresh("s");
        b.bind_live_in(s, Value::Float(0.0));
        let v = b.load("v", pa, Some(MemRef::new(a, 0, 1)));
        b.rebind_add(s, s, v);
        b.addr_add(pa, pa, 1);
        b.finish().unwrap()
    }

    #[test]
    fn unrolled_bodies_validate() {
        let body = sum_loop(16);
        for u in [1, 2, 3, 4, 8] {
            let unrolled = unroll(&body, u);
            assert!(validate(&unrolled).is_ok(), "factor {u}");
            assert_eq!(unrolled.num_ops(), body.num_ops() * u as usize);
            assert_eq!(unrolled.trip_count(), 16 / u);
        }
    }

    #[test]
    fn memory_descriptors_rescale() {
        let body = sum_loop(16);
        let unrolled = unroll(&body, 4);
        let loads: Vec<_> = unrolled
            .ops()
            .iter()
            .filter(|o| o.opcode == Opcode::Load)
            .collect();
        assert_eq!(loads.len(), 4);
        for (k, l) in loads.iter().enumerate() {
            let m = l.mem.unwrap();
            assert_eq!(m.stride, 4);
            assert_eq!(m.offset, k as i64);
        }
    }

    #[test]
    fn cross_copy_recurrence_stays_within_iteration() {
        // s += v: copy 1's accumulator reads copy 0's, distance 0.
        let body = sum_loop(8);
        let unrolled = unroll(&body, 2);
        // The second copy's add must read the first copy's result.
        let adds: Vec<_> = unrolled
            .iter()
            .filter(|(_, o)| o.opcode == Opcode::Add)
            .collect();
        assert_eq!(adds.len(), 2);
        let first_dest = adds[0].1.dest.unwrap();
        let second_srcs: Vec<VReg> = adds[1].1.reg_uses().map(|r| r.reg).collect();
        assert!(second_srcs.contains(&first_dest));
    }

    #[test]
    fn branch_kept_only_in_last_copy() {
        let mut b = LoopBuilder::new("br", 8);
        let cnt = b.fresh("cnt");
        b.bind_live_in(cnt, Value::Int(8));
        b.addr_sub(cnt, cnt, 1);
        b.branch(cnt);
        let body = b.finish().unwrap();
        let unrolled = unroll(&body, 4);
        let branches = unrolled
            .ops()
            .iter()
            .filter(|o| o.opcode == Opcode::Branch)
            .count();
        assert_eq!(branches, 1);
        assert!(validate(&unrolled).is_ok());
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_factor_panics() {
        let _ = unroll(&sum_loop(8), 0);
    }
}
