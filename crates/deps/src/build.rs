//! Building a scheduling problem from a loop body.

use ims_core::{Problem, ProblemBuilder};
use ims_graph::{DepKind, NodeId};
use ims_ir::{LoopBody, OpId, Opcode, RegUse};
use ims_machine::MachineModel;

use crate::delay::{delay, DelayModel};

/// Options controlling dependence construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BuildOptions {
    /// Which Table 1 column computes edge delays.
    pub delay_model: DelayModel,
}

/// The dependence-graph node corresponding to an IR operation.
///
/// [`build_problem`] adds operations in body order, so the mapping is
/// `OpId(i) → NodeId(i + 1)` (node 0 is START).
pub fn node_of(op: OpId) -> NodeId {
    NodeId(op.0 + 1)
}

/// Resolves a register use at operation `at` to `(defining op, iteration
/// distance)`, or `None` when the register is a pure live-in (defined by no
/// operation).
///
/// The distance rule is the dynamic-single-assignment positional rule: a
/// definition strictly earlier in the body is read at distance 0; a
/// definition at or after the use is the previous iteration's value
/// (distance 1); [`RegUse::prev`] adds further iterations.
///
/// This is the single source of truth shared by dependence construction,
/// code generation, and the simulator.
pub fn resolve_use(body: &LoopBody, at: OpId, u: RegUse) -> Option<(OpId, u32)> {
    body.def_of(u.reg).map(|def_id| {
        let positional = if def_id.index() < at.index() { 0 } else { 1 };
        (def_id, positional + u.prev)
    })
}

/// Analyzes `body` and produces the modulo-scheduling problem for `machine`.
///
/// See the crate docs for the dependence rules. The body is assumed to be
/// valid per [`ims_ir::validate::validate`] (the `LoopBuilder` guarantees
/// this).
///
/// # Panics
///
/// Panics if the machine does not implement an opcode used by the body.
pub fn build_problem<'m>(
    body: &LoopBody,
    machine: &'m MachineModel,
    options: &BuildOptions,
) -> Problem<'m> {
    let mut pb = ProblemBuilder::new(machine);
    for (id, op) in body.iter() {
        let n = pb.add_op(op.opcode, id);
        debug_assert_eq!(n, node_of(id));
    }

    let lat = |op: OpId| machine.latency(body.op(op).opcode) as i64;
    let model = options.delay_model;

    // Register and predicate dependences.
    for (use_id, op) in body.iter() {
        let mut add_use = |u: RegUse, kind: DepKind| {
            if let Some((def_id, distance)) = resolve_use(body, use_id, u) {
                let d = delay(kind, lat(def_id), lat(use_id), model);
                pb.add_dep(node_of(def_id), node_of(use_id), d, distance, kind, false);
            }
            // Pure live-ins have no defining operation and hence no edge.
        };
        for s in &op.srcs {
            if let Some(u) = s.as_reg() {
                add_use(u, DepKind::Flow);
            }
        }
        if let Some(p) = op.pred {
            add_use(p, DepKind::Control);
        }
    }

    // Memory dependences: every (earlier, later) pair with at least one
    // store, including an op against itself across iterations.
    let mem_ops: Vec<OpId> = body
        .iter()
        .filter(|(_, op)| op.opcode.is_mem())
        .map(|(id, _)| id)
        .collect();
    for (x, &i) in mem_ops.iter().enumerate() {
        for &j in &mem_ops[x..] {
            let oi = body.op(i);
            let oj = body.op(j);
            let i_store = oi.opcode == Opcode::Store;
            let j_store = oj.opcode == Opcode::Store;
            if !i_store && !j_store {
                continue;
            }
            let kind_fwd = mem_dep_kind(i_store, j_store);
            match (oi.mem, oj.mem) {
                (Some(a), Some(b)) if a.array == b.array && a.stride == b.stride => {
                    let s = a.stride;
                    if s == 0 {
                        if a.offset == b.offset {
                            // Same element every iteration.
                            conservative_pair(&mut pb, body, machine, model, i, j);
                        }
                    } else {
                        let diff = a.offset - b.offset;
                        if diff.rem_euclid(s) == 0 {
                            // op_i at iteration x touches what op_j touches
                            // at iteration x + d.
                            let d = diff / s;
                            if d > 0 {
                                let dl = delay(kind_fwd, lat(i), lat(j), model);
                                pb.add_dep(
                                    node_of(i),
                                    node_of(j),
                                    dl,
                                    d as u32,
                                    kind_fwd,
                                    true,
                                );
                            } else if d < 0 {
                                if i != j {
                                    let kind_rev = mem_dep_kind(j_store, i_store);
                                    let dl = delay(kind_rev, lat(j), lat(i), model);
                                    pb.add_dep(
                                        node_of(j),
                                        node_of(i),
                                        dl,
                                        (-d) as u32,
                                        kind_rev,
                                        true,
                                    );
                                }
                                // d < 0 with i == j cannot happen (diff = 0).
                            } else if i != j {
                                // Same iteration: order by body position.
                                let dl = delay(kind_fwd, lat(i), lat(j), model);
                                pb.add_dep(node_of(i), node_of(j), dl, 0, kind_fwd, true);
                            }
                        }
                    }
                }
                (Some(a), Some(b)) if a.array != b.array => {
                    // Distinct arrays never alias: no dependence.
                }
                _ => {
                    // Unknown or stride-mismatched accesses: assume aliasing.
                    conservative_pair(&mut pb, body, machine, model, i, j);
                }
            }
        }
    }

    pb.finish()
}

fn mem_dep_kind(pred_is_store: bool, succ_is_store: bool) -> DepKind {
    match (pred_is_store, succ_is_store) {
        (true, true) => DepKind::Output,
        (true, false) => DepKind::Flow,
        (false, true) => DepKind::Anti,
        (false, false) => unreachable!("load-load pairs are filtered out"),
    }
}

/// Conservative aliasing: `i` before `j` in the same iteration (distance 0,
/// skipped when `i == j`) and `j` before next iteration's `i` (distance 1).
fn conservative_pair(
    pb: &mut ProblemBuilder<'_>,
    body: &LoopBody,
    machine: &MachineModel,
    model: DelayModel,
    i: OpId,
    j: OpId,
) {
    let lat = |op: OpId| machine.latency(body.op(op).opcode) as i64;
    let i_store = body.op(i).opcode == Opcode::Store;
    let j_store = body.op(j).opcode == Opcode::Store;
    if i != j {
        let kf = mem_dep_kind(i_store, j_store);
        pb.add_dep(
            node_of(i),
            node_of(j),
            delay(kf, lat(i), lat(j), model),
            0,
            kf,
            true,
        );
    }
    let kr = mem_dep_kind(j_store, i_store);
    pb.add_dep(
        node_of(j),
        node_of(i),
        delay(kr, lat(j), lat(i), model),
        1,
        kr,
        true,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use ims_ir::{LoopBuilder, MemRef, Value};
    use ims_machine::{cydra, minimal};

    fn find_edge<'a>(
        p: &'a Problem<'_>,
        from: OpId,
        to: OpId,
    ) -> Option<&'a ims_graph::DepEdge> {
        p.graph()
            .edges()
            .iter()
            .find(|e| e.from == node_of(from) && e.to == node_of(to) && e.kind != DepKind::Control)
    }

    #[test]
    fn same_iteration_flow_dep() {
        let m = minimal();
        let mut b = LoopBuilder::new("t", 4);
        let x = b.live_in("x", Value::Int(1));
        let y = b.add("y", x, 1i64);
        let _z = b.mul("z", y, y);
        let body = b.finish().unwrap();
        let p = build_problem(&body, &m, &BuildOptions::default());
        let e = find_edge(&p, OpId(0), OpId(1)).expect("flow edge y->z");
        assert_eq!(e.distance, 0);
        assert_eq!(e.delay, 1); // minimal(): all latencies 1
        assert_eq!(e.kind, DepKind::Flow);
    }

    #[test]
    fn accumulator_is_distance_one_self_edge() {
        let m = cydra();
        let mut b = LoopBuilder::new("acc", 4);
        let s = b.fresh("s");
        b.bind_live_in(s, Value::Float(0.0));
        b.rebind_add(s, s, 1.0f64);
        let body = b.finish().unwrap();
        let p = build_problem(&body, &m, &BuildOptions::default());
        let e = find_edge(&p, OpId(0), OpId(0)).expect("self edge");
        assert_eq!(e.distance, 1);
        assert_eq!(e.delay, 4); // Add latency on cydra
    }

    #[test]
    fn use_before_def_is_loop_carried() {
        let m = minimal();
        let mut b = LoopBuilder::new("t", 4);
        let x = b.fresh("x");
        b.bind_live_in(x, Value::Int(0));
        let _y = b.copy("y", x); // op0 uses x, defined by op1: distance 1
        b.addr_add(x, x, 1); // op1
        let body = b.finish().unwrap();
        let p = build_problem(&body, &m, &BuildOptions::default());
        let e = find_edge(&p, OpId(1), OpId(0)).expect("loop-carried edge");
        assert_eq!(e.distance, 1);
    }

    #[test]
    fn prev_adds_iterations() {
        let m = minimal();
        let mut b = LoopBuilder::new("fib", 8);
        let x = b.fresh("x");
        b.bind_live_in(x, Value::Int(1));
        let two_back = b.back(x, 1);
        b.rebind(x, Opcode::Add, vec![x.into(), two_back]);
        let body = b.finish().unwrap();
        let p = build_problem(&body, &m, &BuildOptions::default());
        let dists: Vec<u32> = p
            .graph()
            .edges()
            .iter()
            .filter(|e| e.from == node_of(OpId(0)) && e.to == node_of(OpId(0)))
            .map(|e| e.distance)
            .collect();
        assert!(dists.contains(&1), "x[-1] use");
        assert!(dists.contains(&2), "x[-2] use (prev=1 on a self use)");
    }

    #[test]
    fn predicate_input_is_a_control_edge() {
        let m = cydra();
        let mut b = LoopBuilder::new("pred", 4);
        let x = b.live_in("x", Value::Float(1.0));
        let pr = b.pred_set("p", ims_ir::CmpKind::Gt, x, 0.0f64);
        let y = b.fresh("y");
        b.bind_live_in(y, Value::Float(0.0));
        let op = b.rebind(y, Opcode::Copy, vec![x.into()]);
        b.guard(op, pr);
        let body = b.finish().unwrap();
        let p = build_problem(&body, &m, &BuildOptions::default());
        let e = p
            .graph()
            .edges()
            .iter()
            .find(|e| {
                e.from == node_of(OpId(0)) && e.to == node_of(op) && e.kind == DepKind::Control
            })
            .expect("predicate edge");
        assert_eq!(e.delay, 1); // PredSet latency on cydra
        assert_eq!(e.distance, 0);
    }

    #[test]
    fn affine_memory_distance() {
        // store a[i]; load a[i-2]: flow dep store->load, distance 2.
        let m = cydra();
        let mut b = LoopBuilder::new("mem", 16);
        let arr = b.array("a", 32);
        let ps = b.ptr("ps", arr, 2);
        let pl = b.ptr("pl", arr, 0);
        let x = b.live_in("x", Value::Float(1.0));
        b.store(ps, x, Some(MemRef::new(arr, 2, 1)));
        let _v = b.load("v", pl, Some(MemRef::new(arr, 0, 1)));
        b.addr_add(ps, ps, 1);
        b.addr_add(pl, pl, 1);
        let body = b.finish().unwrap();
        let p = build_problem(&body, &m, &BuildOptions::default());
        let e = p
            .graph()
            .edges()
            .iter()
            .find(|e| e.is_mem)
            .expect("memory edge");
        assert_eq!(e.kind, DepKind::Flow);
        assert_eq!(e.from, node_of(OpId(0)));
        assert_eq!(e.to, node_of(OpId(1)));
        assert_eq!(e.distance, 2);
        assert_eq!(e.delay, 1); // store latency
    }

    #[test]
    fn reverse_affine_distance_flips_edge() {
        // load a[i+1]; store a[i]: the store at iteration x+1 writes what
        // the load read at iteration x: anti-dep load->store distance 1.
        let m = cydra();
        let mut b = LoopBuilder::new("mem2", 16);
        let arr = b.array("a", 32);
        let pl = b.ptr("pl", arr, 1);
        let ps = b.ptr("ps", arr, 0);
        let v = b.load("v", pl, Some(MemRef::new(arr, 1, 1)));
        b.store(ps, v, Some(MemRef::new(arr, 0, 1)));
        b.addr_add(pl, pl, 1);
        b.addr_add(ps, ps, 1);
        let body = b.finish().unwrap();
        let p = build_problem(&body, &m, &BuildOptions::default());
        let e = p
            .graph()
            .edges()
            .iter()
            .find(|e| e.is_mem && e.kind == DepKind::Anti)
            .expect("anti memory edge");
        assert_eq!(e.from, node_of(OpId(0)));
        assert_eq!(e.to, node_of(OpId(1)));
        assert_eq!(e.distance, 1);
    }

    #[test]
    fn disjoint_arrays_have_no_memory_edges() {
        let m = cydra();
        let mut b = LoopBuilder::new("mem3", 16);
        let arr_a = b.array("a", 32);
        let arr_b = b.array("b", 32);
        let pa = b.ptr("pa", arr_a, 0);
        let pb_ = b.ptr("pb", arr_b, 0);
        let v = b.load("v", pa, Some(MemRef::new(arr_a, 0, 1)));
        b.store(pb_, v, Some(MemRef::new(arr_b, 0, 1)));
        let body = b.finish().unwrap();
        let p = build_problem(&body, &m, &BuildOptions::default());
        assert!(!p.graph().edges().iter().any(|e| e.is_mem));
    }

    #[test]
    fn unannotated_accesses_are_conservative() {
        let m = cydra();
        let mut b = LoopBuilder::new("mem4", 16);
        let addr = b.live_in("addr", Value::Int(0));
        let v = b.load("v", addr, None);
        b.store(addr, v, None);
        let body = b.finish().unwrap();
        let p = build_problem(&body, &m, &BuildOptions::default());
        // load->store distance 0 (anti) and store->load distance 1 (flow).
        assert!(p.graph().edges().iter().any(
            |e| e.is_mem && e.kind == DepKind::Anti && e.distance == 0
        ));
        assert!(p.graph().edges().iter().any(
            |e| e.is_mem && e.kind == DepKind::Flow && e.distance == 1
        ));
    }

    #[test]
    fn store_store_same_location_output_dep() {
        let m = cydra();
        let mut b = LoopBuilder::new("mem5", 16);
        let arr = b.array("a", 4);
        let pa = b.ptr("pa", arr, 0);
        let x = b.live_in("x", Value::Int(1));
        // Two stores to the invariant location a[0] each iteration.
        b.store(pa, x, Some(MemRef::new(arr, 0, 0)));
        b.store(pa, x, Some(MemRef::new(arr, 0, 0)));
        let body = b.finish().unwrap();
        let p = build_problem(&body, &m, &BuildOptions::default());
        let outputs: Vec<_> = p
            .graph()
            .edges()
            .iter()
            .filter(|e| e.is_mem && e.kind == DepKind::Output)
            .collect();
        // Same-iteration order + cross-iteration order, including the
        // stores' self-dependences at distance 1.
        assert!(outputs.iter().any(|e| e.distance == 0));
        assert!(outputs.iter().any(|e| e.distance == 1));
        assert!(outputs
            .iter()
            .any(|e| e.from == e.to && e.distance == 1));
    }

    #[test]
    fn live_in_only_registers_produce_no_edges() {
        let m = minimal();
        let mut b = LoopBuilder::new("inv", 4);
        let k = b.live_in("k", Value::Float(2.0));
        let _x = b.mul("x", k, k);
        let body = b.finish().unwrap();
        let p = build_problem(&body, &m, &BuildOptions::default());
        assert_eq!(p.num_real_edges(), 0);
    }

    #[test]
    fn conservative_model_changes_anti_delays() {
        let m = cydra();
        let mut b = LoopBuilder::new("mem6", 16);
        let addr = b.live_in("addr", Value::Int(0));
        let v = b.load("v", addr, None);
        b.store(addr, v, None);
        let body = b.finish().unwrap();
        let vliw = build_problem(&body, &m, &BuildOptions::default());
        let cons = build_problem(
            &body,
            &m,
            &BuildOptions {
                delay_model: DelayModel::Conservative,
            },
        );
        let anti_delay = |p: &Problem<'_>| {
            p.graph()
                .edges()
                .iter()
                .find(|e| e.kind == DepKind::Anti)
                .map(|e| e.delay)
                .unwrap()
        };
        assert_eq!(anti_delay(&vliw), 0); // 1 - store latency 1
        assert_eq!(anti_delay(&cons), 0);
    }
}
