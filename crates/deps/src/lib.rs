#![warn(missing_docs)]

//! Dependence analysis: from an IR loop body to a modulo-scheduling problem.
//!
//! The paper's scheduler received loop bodies *"after load-store
//! elimination, recurrence back-substitution and IF-conversion"* with
//! dependences already computed (§4.1). This crate is the front end that
//! produces that input from an [`ims_ir::LoopBody`]:
//!
//! * **Register flow dependences** from the dynamic-single-assignment
//!   discipline: the iteration distance of a use is positional (a use at or
//!   before its definition reads the previous iteration) plus the explicit
//!   [`ims_ir::RegUse::prev`] reach-back. Anti- and output dependences on
//!   registers do not exist by construction — exactly the effect of the
//!   paper's expanded virtual registers (§2.2).
//! * **Predicate input dependences**: each predicated operation depends on
//!   its predicate's definition (the paper attributes its ≈3 edges/op to
//!   *"the additional predicate input that each operation possesses"*,
//!   §4.4). These are [`ims_graph::DepKind::Control`] edges.
//! * **Memory dependences** with distances derived from affine access
//!   descriptors (`array[stride·i + offset]`): two references collide
//!   `(o₁−o₂)/s` iterations apart. References without descriptors, or with
//!   mismatched strides, get conservative distance-0/1 dependences in both
//!   directions.
//! * **Delay computation** per the paper's Table 1, in both variants:
//!   [`DelayModel::Vliw`] (delays may be negative) and
//!   [`DelayModel::Conservative`] (for superscalars that require
//!   `latency ≥ 1` semantics).
//!
//! # Examples
//!
//! ```
//! use ims_deps::{build_problem, BuildOptions};
//! use ims_ir::{LoopBuilder, MemRef, Value};
//! use ims_machine::cydra;
//!
//! let mut b = LoopBuilder::new("sum", 64);
//! let a = b.array("a", 64);
//! let pa = b.ptr("pa", a, 0);
//! let s = b.fresh("s");
//! b.bind_live_in(s, Value::Float(0.0));
//! let v = b.load("v", pa, Some(MemRef::new(a, 0, 1)));
//! b.rebind_add(s, s, v);         // s += a[i]: a recurrence
//! b.addr_add(pa, pa, 1);
//! let body = b.finish()?;
//!
//! let m = cydra();
//! let problem = build_problem(&body, &m, &BuildOptions::default());
//! assert_eq!(problem.num_ops(), 3);
//! // The accumulator self-edge and the pointer self-edge are both present.
//! assert!(problem.graph().edges().iter().any(|e| e.distance == 1));
//! # Ok::<(), ims_ir::validate::ValidateError>(())
//! ```

mod backsub;
mod build;
mod delay;
mod unroll;

pub use backsub::back_substitute;
pub use build::{build_problem, node_of, resolve_use, BuildOptions};
pub use delay::{delay, DelayModel};
pub use unroll::unroll;
