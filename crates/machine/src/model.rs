//! Machine model: resources, alternatives, and per-opcode information.

use std::collections::BTreeMap;
use std::fmt;

use ims_ir::Opcode;

use crate::mask::ConflictMask;
use crate::reservation::ReservationTable;

/// Identifier of a machine resource (a pipeline stage of a functional unit,
/// a bus, or a field in the instruction format — §2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ResourceId(pub u32);

impl ResourceId {
    /// Zero-based index of this resource.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ResourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "res{}", self.0)
    }
}

/// A named machine resource.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Resource {
    /// Human-readable name, e.g. `"mem_port0"` or `"result_bus"`.
    pub name: String,
}

/// One way of executing an opcode: a named functional unit together with the
/// reservation table its use implies. *"A particular operation may be
/// executable on multiple functional units, in which case it is said to have
/// multiple alternatives, with a different reservation table corresponding
/// to each one."* (§2.1)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alternative {
    /// Name of the functional unit, e.g. `"mem_port1"`.
    pub fu: String,
    /// The resource usage pattern of this alternative.
    pub table: ReservationTable,
    /// `table` compiled to word-parallel row masks against this
    /// machine's resource axis (built once by [`MachineBuilder::build`]).
    mask: ConflictMask,
}

impl Alternative {
    /// The compiled conflict mask of [`table`](Alternative::table): the
    /// word-parallel representation every modulo-reservation-table probe,
    /// install, and evict uses (see [`ConflictMask`] and `DESIGN.md`
    /// §5d).
    #[inline]
    pub fn mask(&self) -> &ConflictMask {
        &self.mask
    }
}

/// Scheduling-relevant information about one opcode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpcodeInfo {
    /// Execution latency in cycles: a flow-dependent successor may issue
    /// this many cycles after the operation issues.
    pub latency: u32,
    /// The ways this opcode can execute, in preference order.
    pub alternatives: Vec<Alternative>,
}

/// A complete machine model: the resource set plus per-opcode latency and
/// alternatives.
///
/// Build one with [`MachineBuilder`] or use the predefined models in this
/// crate ([`crate::cydra`], [`crate::cydra_simple`], …).
#[derive(Debug, Clone, PartialEq)]
pub struct MachineModel {
    name: String,
    resources: Vec<Resource>,
    info: BTreeMap<Opcode, OpcodeInfo>,
    register_file: Option<u32>,
}

impl MachineModel {
    /// The machine's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The declared rotating-register-file capacity, when this machine
    /// has one. A pressure-aware scheduling run (`SchedConfig::pressure_limit`
    /// plus the `ims-press` observer) keeps MaxLive and the rotating
    /// allocation within this many registers; `None` means the register
    /// file is unbounded (the paper's post-scheduling view).
    pub fn register_file(&self) -> Option<u32> {
        self.register_file
    }

    /// Number of resources.
    pub fn num_resources(&self) -> usize {
        self.resources.len()
    }

    /// The resource with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn resource(&self, id: ResourceId) -> &Resource {
        &self.resources[id.index()]
    }

    /// All resources, indexable by [`ResourceId::index`].
    pub fn resources(&self) -> &[Resource] {
        &self.resources
    }

    /// Information for `opcode`.
    ///
    /// # Panics
    ///
    /// Panics if the machine does not implement `opcode`; use
    /// [`MachineModel::get_info`] for a fallible lookup.
    pub fn info(&self, opcode: Opcode) -> &OpcodeInfo {
        self.get_info(opcode)
            .unwrap_or_else(|| panic!("machine {} does not implement {opcode}", self.name))
    }

    /// Information for `opcode`, or `None` when this machine has no
    /// definition for it (no latency, no reservation-table alternatives —
    /// the front end must reject such operations; see
    /// [`MachineModel::is_complete`]). The infallible [`MachineModel::info`]
    /// panics in that case instead.
    ///
    /// ```
    /// use ims_machine::{MachineBuilder, ReservationTable};
    /// use ims_ir::Opcode;
    ///
    /// let mut b = MachineBuilder::new("add-only");
    /// let alu = b.resource("alu");
    /// b.op(Opcode::Add, 1, vec![("alu", ReservationTable::simple(alu))]);
    /// let m = b.build();
    /// assert!(m.get_info(Opcode::Add).is_some());
    /// assert!(m.get_info(Opcode::Mul).is_none(), "Mul is not defined");
    /// ```
    pub fn get_info(&self, opcode: Opcode) -> Option<&OpcodeInfo> {
        self.info.get(&opcode)
    }

    /// The latency of `opcode`.
    ///
    /// # Panics
    ///
    /// Panics if the machine does not implement `opcode`.
    pub fn latency(&self, opcode: Opcode) -> u32 {
        self.info(opcode).latency
    }

    /// Iterates over implemented opcodes in a stable order.
    pub fn opcodes(&self) -> impl Iterator<Item = (Opcode, &OpcodeInfo)> + '_ {
        self.info.iter().map(|(k, v)| (*k, v))
    }

    /// Whether every opcode an IR loop can contain is implemented.
    pub fn is_complete(&self) -> bool {
        Opcode::ALL.iter().all(|o| self.info.contains_key(o))
    }
}

/// Builder for [`MachineModel`].
///
/// # Examples
///
/// ```
/// use ims_machine::{MachineBuilder, ReservationTable};
/// use ims_ir::Opcode;
///
/// let mut b = MachineBuilder::new("tiny");
/// let alu = b.resource("alu");
/// for op in Opcode::ALL {
///     b.op(op, 1, vec![("alu", ReservationTable::simple(alu))]);
/// }
/// let m = b.build();
/// assert!(m.is_complete());
/// assert_eq!(m.latency(Opcode::Add), 1);
/// ```
#[derive(Debug)]
pub struct MachineBuilder {
    name: String,
    resources: Vec<Resource>,
    /// Raw `(latency, (fu, table) list)` per opcode; conflict masks are
    /// compiled in [`MachineBuilder::build`], once the final resource
    /// count is known.
    ops: BTreeMap<Opcode, (u32, Vec<(String, ReservationTable)>)>,
    register_file: Option<u32>,
}

impl MachineBuilder {
    /// Starts building a machine named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        MachineBuilder {
            name: name.into(),
            resources: Vec::new(),
            ops: BTreeMap::new(),
            register_file: None,
        }
    }

    /// Declares the rotating-register-file capacity (see
    /// [`MachineModel::register_file`]).
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn register_file(&mut self, size: u32) -> &mut Self {
        assert!(size > 0, "register file size must be positive");
        self.register_file = Some(size);
        self
    }

    /// Declares a resource, returning its id.
    pub fn resource(&mut self, name: impl Into<String>) -> ResourceId {
        self.resources.push(Resource { name: name.into() });
        ResourceId(self.resources.len() as u32 - 1)
    }

    /// Defines `opcode` with the given latency and `(fu-name, table)`
    /// alternatives, replacing any previous definition.
    ///
    /// # Panics
    ///
    /// Panics if `alternatives` is empty, if `latency` is zero, or if any
    /// table references an undeclared resource.
    pub fn op(
        &mut self,
        opcode: Opcode,
        latency: u32,
        alternatives: Vec<(&str, ReservationTable)>,
    ) -> &mut Self {
        self.op_alts(
            opcode,
            latency,
            alternatives
                .into_iter()
                .map(|(n, t)| (n.to_string(), t))
                .collect(),
        )
    }

    /// Like [`MachineBuilder::op`], with owned alternative names (useful
    /// when alternative sets are generated, e.g. the cross product of
    /// functional units and instruction-format fields).
    ///
    /// # Panics
    ///
    /// Same conditions as [`MachineBuilder::op`].
    pub fn op_alts(
        &mut self,
        opcode: Opcode,
        latency: u32,
        alternatives: Vec<(String, ReservationTable)>,
    ) -> &mut Self {
        assert!(
            !alternatives.is_empty(),
            "{opcode} must have at least one alternative"
        );
        assert!(latency > 0, "{opcode} latency must be positive");
        for (_, t) in &alternatives {
            for &(r, _) in t.uses() {
                assert!(
                    r.index() < self.resources.len(),
                    "table for {opcode} references undeclared {r}"
                );
            }
        }
        self.ops.insert(opcode, (latency, alternatives));
        self
    }

    /// Finishes the build, compiling every alternative's reservation
    /// table into its word-parallel [`ConflictMask`] against the final
    /// resource count.
    pub fn build(self) -> MachineModel {
        let nres = self.resources.len();
        let info = self
            .ops
            .into_iter()
            .map(|(opcode, (latency, alternatives))| {
                let alternatives = alternatives
                    .into_iter()
                    .map(|(fu, table)| {
                        let mask = ConflictMask::compile(&table, nres);
                        Alternative { fu, table, mask }
                    })
                    .collect();
                (opcode, OpcodeInfo { latency, alternatives })
            })
            .collect();
        MachineModel {
            name: self.name,
            resources: self.resources,
            info,
            register_file: self.register_file,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> MachineModel {
        let mut b = MachineBuilder::new("t");
        let alu = b.resource("alu");
        b.op(Opcode::Add, 2, vec![("alu", ReservationTable::simple(alu))]);
        b.build()
    }

    #[test]
    fn lookup_paths() {
        let m = tiny();
        assert_eq!(m.name(), "t");
        assert_eq!(m.num_resources(), 1);
        assert_eq!(m.resource(ResourceId(0)).name, "alu");
        assert_eq!(m.latency(Opcode::Add), 2);
        assert!(m.get_info(Opcode::Mul).is_none());
        assert!(!m.is_complete());
    }

    #[test]
    #[should_panic(expected = "does not implement")]
    fn missing_opcode_panics() {
        let _ = tiny().info(Opcode::Mul);
    }

    #[test]
    #[should_panic(expected = "at least one alternative")]
    fn empty_alternatives_panic() {
        let mut b = MachineBuilder::new("t");
        b.op(Opcode::Add, 1, vec![]);
    }

    #[test]
    #[should_panic(expected = "undeclared")]
    fn undeclared_resource_panics() {
        let mut b = MachineBuilder::new("t");
        b.op(
            Opcode::Add,
            1,
            vec![("x", ReservationTable::simple(ResourceId(9)))],
        );
    }

    #[test]
    #[should_panic(expected = "latency must be positive")]
    fn zero_latency_panics() {
        let mut b = MachineBuilder::new("t");
        let alu = b.resource("alu");
        b.op(Opcode::Add, 0, vec![("alu", ReservationTable::simple(alu))]);
    }

    #[test]
    fn build_compiles_masks_against_the_final_resource_count() {
        // Resources declared *after* an opcode's definition still shape
        // its mask: compilation happens in build(), not in op().
        let mut b = MachineBuilder::new("late");
        let alu = b.resource("alu");
        b.op(Opcode::Add, 1, vec![("alu", ReservationTable::simple(alu))]);
        let _late = b.resource("late");
        let m = b.build();
        let alt = &m.info(Opcode::Add).alternatives[0];
        assert_eq!(alt.mask().words_per_row(), 1);
        assert_eq!(alt.mask().footprint(), alt.table.footprint());
        assert_eq!(alt.mask().entries().len(), 1);
        assert_eq!(alt.mask().entries()[0].mask, 0b1);
    }

    #[test]
    fn register_file_defaults_to_unbounded_and_is_declarable() {
        assert_eq!(tiny().register_file(), None);
        let mut b = MachineBuilder::new("rf");
        let alu = b.resource("alu");
        b.op(Opcode::Add, 1, vec![("alu", ReservationTable::simple(alu))]);
        b.register_file(32);
        assert_eq!(b.build().register_file(), Some(32));
    }

    #[test]
    #[should_panic(expected = "register file size must be positive")]
    fn zero_register_file_panics() {
        MachineBuilder::new("rf0").register_file(0);
    }

    #[test]
    fn opcode_iteration_is_stable() {
        let m = tiny();
        let ops: Vec<Opcode> = m.opcodes().map(|(o, _)| o).collect();
        assert_eq!(ops, vec![Opcode::Add]);
    }
}
