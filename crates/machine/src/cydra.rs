//! Predefined machine models.
//!
//! [`cydra`] reproduces the paper's Table 2 machine with Figure-1-style
//! complex reservation tables; [`cydra_simple`] is the same machine with
//! every table abstracted to a simple table; [`minimal`], [`single_alu`] and
//! [`wide`] are synthetic machines for tests and ablations.
//!
//! Table 2 in the scanned paper is partially illegible (the store, predicate
//! set/reset, and branch latencies are garbled). The values used here and
//! flagged in `DESIGN.md` are: store 1, predicate set/reset 1, branch 3. The
//! legible values are used verbatim: load 20, address add/subtract 3,
//! add/subtract 4, multiply 5, divide 22, square root 26.

use ims_ir::Opcode;

use crate::model::{MachineBuilder, MachineModel};
use crate::reservation::ReservationTable;

/// Latencies for the Cydra-5-like machine (Table 2).
const LOAD_LATENCY: u32 = 20;
const STORE_LATENCY: u32 = 1;
const PRED_LATENCY: u32 = 1;
const ADDR_LATENCY: u32 = 3;
const ADD_LATENCY: u32 = 4;
const MUL_LATENCY: u32 = 5;
const DIV_LATENCY: u32 = 22;
const SQRT_LATENCY: u32 = 26;
const BRANCH_LATENCY: u32 = 3;

/// Rotating-register-file capacity declared on the Cydra-like machines.
/// The Cydra 5's iteration frames rotate inside a 64-register window; the
/// synthetic [`cydra_rf`] variants shrink this to study pressure.
const CYDRA_REGISTER_FILE: u32 = 64;

/// Instruction-format fields per cycle (issue width). §2.1 lists "a field
/// in the instruction format" among the resources a reservation table may
/// claim; every operation occupies one field on its issue cycle. The width
/// of 4 is reconstructed from the paper's own statistics: with median
/// N ≈ 12 operations and median MII = 3, the typical resource-constrained
/// MII must be ⌈N/4⌉, i.e. a 4-wide issue.
const ISSUE_WIDTH: usize = 4;

/// Crosses per-FU alternatives with the instruction-format fields: each
/// resulting alternative additionally reserves one field on the issue
/// cycle.
fn cross_with_fields(
    alts: Vec<(String, ReservationTable)>,
    fields: &[crate::model::ResourceId],
) -> Vec<(String, ReservationTable)> {
    let mut out = Vec::with_capacity(alts.len() * fields.len());
    for (name, table) in alts {
        for (k, &f) in fields.iter().enumerate() {
            let mut uses = table.uses().to_vec();
            uses.push((f, 0));
            out.push((format!("{name}/f{k}"), ReservationTable::new(uses)));
        }
    }
    out
}

/// The Cydra-5-like machine of the paper's Table 2, modelled with complex
/// reservation tables:
///
/// * **2 memory ports** — a load uses its port at issue, the port's bank a
///   cycle later, and the port's result slot on its last cycle; loads have
///   two alternatives (one per port).
/// * **2 address ALUs** — address adds/subtracts, one alternative per ALU
///   (simple tables).
/// * **1 adder** — its source-bus stage at issue, two pipeline stages, its
///   result bus on the last cycle (the Figure 1(a) shape, with buses
///   private to the adder).
/// * **1 multiplier** — the Figure 1(b) shape for multiply; divide and
///   square root additionally occupy the (unpipelined) divide unit for a
///   block of cycles, which is what gives the machine its block-like
///   tables and forces genuine iterative displacement.
/// * **1 instruction unit** — the loop-closing branch.
///
/// Each functional unit has private buses, matching the paper's remark that
/// private buses make tables abstractable — but the pipelines are still
/// modelled in full, and the divide unit still interacts with multiplies.
/// The literal Figure 1 machine, with the source and result buses *shared*
/// between the adder and the multiplier, is available as
/// [`figure1_machine`]; its shared buses make the MII structurally
/// unachievable for many resource-limited loops, which is useful for
/// studying the scheduler under pressure but does not match the machine
/// the paper's experiments ran on.
pub fn cydra() -> MachineModel {
    build_cydra_complex("cydra", false, CYDRA_REGISTER_FILE)
}

/// The [`cydra`] machine with its rotating register file shrunk to `n`
/// registers (name `cydra_rf{n}`): identical resources, latencies, and
/// reservation tables, but a pressure-aware run
/// (`SchedConfig::pressure_limit(n)` plus the `ims-press` observer) must
/// fit every schedule's MaxLive and rotating allocation into `n` names.
/// This is the tight-register corpus family behind `corpus
/// --pressure-limit N` and the Table-2-style pressure results in
/// `EXPERIMENTS.md`.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn cydra_rf(n: u32) -> MachineModel {
    assert!(n > 0, "register file size must be positive");
    build_cydra_complex(&format!("cydra_rf{n}"), false, n)
}

/// The literal machine of the paper's Figure 1: identical to [`cydra`]
/// except that the adder and the multiplier *share* their source-operand
/// buses and their result bus. As §2.1 narrates, an add and a multiply can
/// then never issue on the same cycle, and an add may not issue
/// `mul_latency − add_latency` cycles after a multiply (result-bus
/// collision).
pub fn figure1_machine() -> MachineModel {
    build_cydra_complex("figure1", true, CYDRA_REGISTER_FILE)
}

fn build_cydra_complex(name: &str, shared_buses: bool, register_file: u32) -> MachineModel {
    let mut b = MachineBuilder::new(name);
    b.register_file(register_file);
    let fields: Vec<_> = (0..ISSUE_WIDTH)
        .map(|k| b.resource(format!("instr_field{k}")))
        .collect();
    let port0 = b.resource("mem_port0");
    let port1 = b.resource("mem_port1");
    let bank0 = b.resource("mem_bank0");
    let bank1 = b.resource("mem_bank1");
    let mres0 = b.resource("mem_result0");
    let mres1 = b.resource("mem_result1");
    let aalu0 = b.resource("addr_alu0");
    let aalu1 = b.resource("addr_alu1");
    let src = b.resource("add_src_bus");
    let res = b.resource("add_result_bus");
    let (msrc, mres) = if shared_buses {
        (src, res)
    } else {
        (b.resource("mul_src_bus"), b.resource("mul_result_bus"))
    };
    let add1 = b.resource("add_stage1");
    let add2 = b.resource("add_stage2");
    let mul1 = b.resource("mul_stage1");
    let mul2 = b.resource("mul_stage2");
    let mul3 = b.resource("mul_stage3");
    let divu = b.resource("div_unit");
    let instr = b.resource("instr_unit");

    // Memory ports: two alternatives per memory opcode.
    let load0 = ReservationTable::new(vec![(port0, 0), (bank0, 1), (mres0, LOAD_LATENCY - 1)]);
    let load1 = ReservationTable::new(vec![(port1, 0), (bank1, 1), (mres1, LOAD_LATENCY - 1)]);
    b.op_alts(
        Opcode::Load,
        LOAD_LATENCY,
        cross_with_fields(
            vec![("mem_port0".into(), load0), ("mem_port1".into(), load1)],
            &fields,
        ),
    );
    let store0 = ReservationTable::new(vec![(port0, 0), (bank0, 1)]);
    let store1 = ReservationTable::new(vec![(port1, 0), (bank1, 1)]);
    b.op_alts(
        Opcode::Store,
        STORE_LATENCY,
        cross_with_fields(
            vec![("mem_port0".into(), store0), ("mem_port1".into(), store1)],
            &fields,
        ),
    );
    for pred_op in [Opcode::PredSet, Opcode::PredClear] {
        b.op_alts(
            pred_op,
            PRED_LATENCY,
            cross_with_fields(
                vec![
                    ("mem_port0".into(), ReservationTable::simple(port0)),
                    ("mem_port1".into(), ReservationTable::simple(port1)),
                ],
                &fields,
            ),
        );
    }

    // Address ALUs: simple tables, two alternatives.
    for addr_op in [Opcode::AddrAdd, Opcode::AddrSub] {
        b.op_alts(
            addr_op,
            ADDR_LATENCY,
            cross_with_fields(
                vec![
                    ("addr_alu0".into(), ReservationTable::simple(aalu0)),
                    ("addr_alu1".into(), ReservationTable::simple(aalu1)),
                ],
                &fields,
            ),
        );
    }

    // Adder: Figure 1(a).
    let adder_table = ReservationTable::new(vec![
        (src, 0),
        (add1, 1),
        (add2, 2),
        (res, ADD_LATENCY - 1),
    ]);
    for add_op in [
        Opcode::Add,
        Opcode::Sub,
        Opcode::Abs,
        Opcode::Min,
        Opcode::Max,
        Opcode::Copy,
    ] {
        b.op_alts(
            add_op,
            ADD_LATENCY,
            cross_with_fields(vec![("adder".into(), adder_table.clone())], &fields),
        );
    }

    // Multiplier: Figure 1(b) for multiply.
    let mul_table = ReservationTable::new(vec![
        (msrc, 0),
        (mul1, 1),
        (mul2, 2),
        (mul3, 3),
        (mres, MUL_LATENCY - 1),
    ]);
    b.op_alts(
        Opcode::Mul,
        MUL_LATENCY,
        cross_with_fields(vec![("multiplier".into(), mul_table)], &fields),
    );

    // Divide and square root: unpipelined block on the divide unit.
    let mut div_uses = vec![(msrc, 0), (mres, DIV_LATENCY - 1)];
    div_uses.extend((1..DIV_LATENCY - 1).map(|t| (divu, t)));
    b.op_alts(
        Opcode::Div,
        DIV_LATENCY,
        cross_with_fields(
            vec![("multiplier".into(), ReservationTable::new(div_uses))],
            &fields,
        ),
    );
    let mut sqrt_uses = vec![(msrc, 0), (mres, SQRT_LATENCY - 1)];
    sqrt_uses.extend((1..SQRT_LATENCY - 1).map(|t| (divu, t)));
    b.op_alts(
        Opcode::Sqrt,
        SQRT_LATENCY,
        cross_with_fields(
            vec![("multiplier".into(), ReservationTable::new(sqrt_uses))],
            &fields,
        ),
    );

    // Instruction unit.
    b.op_alts(
        Opcode::Branch,
        BRANCH_LATENCY,
        cross_with_fields(
            vec![("instr_unit".into(), ReservationTable::simple(instr))],
            &fields,
        ),
    );

    b.build()
}

/// The same machine as [`cydra`], abstracted with simple reservation tables
/// (each functional unit gets private buses, so every opcode uses one
/// resource for one cycle at issue). Divide and square root remain blocking
/// on the multiplier so the single multiplier is still a genuine bottleneck.
pub fn cydra_simple() -> MachineModel {
    let mut b = MachineBuilder::new("cydra_simple");
    b.register_file(CYDRA_REGISTER_FILE);
    let fields: Vec<_> = (0..ISSUE_WIDTH)
        .map(|k| b.resource(format!("instr_field{k}")))
        .collect();
    let port0 = b.resource("mem_port0");
    let port1 = b.resource("mem_port1");
    let aalu0 = b.resource("addr_alu0");
    let aalu1 = b.resource("addr_alu1");
    let adder = b.resource("adder");
    let mult = b.resource("multiplier");
    let instr = b.resource("instr_unit");

    let two_ports = |b: &mut MachineBuilder, fields: &[crate::model::ResourceId], op: Opcode, lat: u32| {
        b.op_alts(
            op,
            lat,
            cross_with_fields(
                vec![
                    ("mem_port0".into(), ReservationTable::simple(port0)),
                    ("mem_port1".into(), ReservationTable::simple(port1)),
                ],
                fields,
            ),
        );
    };
    two_ports(&mut b, &fields, Opcode::Load, LOAD_LATENCY);
    two_ports(&mut b, &fields, Opcode::Store, STORE_LATENCY);
    two_ports(&mut b, &fields, Opcode::PredSet, PRED_LATENCY);
    two_ports(&mut b, &fields, Opcode::PredClear, PRED_LATENCY);

    for addr_op in [Opcode::AddrAdd, Opcode::AddrSub] {
        b.op_alts(
            addr_op,
            ADDR_LATENCY,
            cross_with_fields(
                vec![
                    ("addr_alu0".into(), ReservationTable::simple(aalu0)),
                    ("addr_alu1".into(), ReservationTable::simple(aalu1)),
                ],
                &fields,
            ),
        );
    }
    for add_op in [
        Opcode::Add,
        Opcode::Sub,
        Opcode::Abs,
        Opcode::Min,
        Opcode::Max,
        Opcode::Copy,
    ] {
        b.op_alts(
            add_op,
            ADD_LATENCY,
            cross_with_fields(vec![("adder".into(), ReservationTable::simple(adder))], &fields),
        );
    }
    b.op_alts(
        Opcode::Mul,
        MUL_LATENCY,
        cross_with_fields(vec![("multiplier".into(), ReservationTable::simple(mult))], &fields),
    );
    // Unpipelined divide/sqrt: block the multiplier.
    b.op_alts(
        Opcode::Div,
        DIV_LATENCY,
        cross_with_fields(
            vec![("multiplier".into(), ReservationTable::block(mult, DIV_LATENCY - 2))],
            &fields,
        ),
    );
    b.op_alts(
        Opcode::Sqrt,
        SQRT_LATENCY,
        cross_with_fields(
            vec![("multiplier".into(), ReservationTable::block(mult, SQRT_LATENCY - 2))],
            &fields,
        ),
    );
    b.op_alts(
        Opcode::Branch,
        BRANCH_LATENCY,
        cross_with_fields(
            vec![("instr_unit".into(), ReservationTable::simple(instr))],
            &fields,
        ),
    );
    b.build()
}

/// A minimal single-issue machine: one universal unit, unit latency, simple
/// tables. Useful for tests whose answers must be computable by hand.
pub fn minimal() -> MachineModel {
    let mut b = MachineBuilder::new("minimal");
    let u = b.resource("unit");
    for op in Opcode::ALL {
        b.op(op, 1, vec![("unit", ReservationTable::simple(u))]);
    }
    b.build()
}

/// A machine with one ALU (latency 2) shared by everything except memory,
/// and one memory port (latency 3). Small enough for hand-checked resource
/// bounds, but with non-unit latencies.
pub fn single_alu() -> MachineModel {
    let mut b = MachineBuilder::new("single_alu");
    let alu = b.resource("alu");
    let mem = b.resource("mem");
    for op in Opcode::ALL {
        if op.is_mem() {
            b.op(op, 3, vec![("mem", ReservationTable::simple(mem))]);
        } else {
            b.op(op, 2, vec![("alu", ReservationTable::simple(alu))]);
        }
    }
    b.build()
}

/// A `k`-wide homogeneous VLIW: `k` universal units (alternatives), latency
/// 2 everywhere, simple tables. Useful for ablations on machine width.
///
/// # Panics
///
/// Panics if `k` is zero.
pub fn wide(k: usize) -> MachineModel {
    assert!(k > 0, "machine width must be positive");
    let mut b = MachineBuilder::new(format!("wide{k}"));
    let units: Vec<_> = (0..k).map(|i| b.resource(format!("unit{i}"))).collect();
    let names: Vec<String> = (0..k).map(|i| format!("unit{i}")).collect();
    for op in Opcode::ALL {
        let alts: Vec<(&str, ReservationTable)> = units
            .iter()
            .zip(&names)
            .map(|(&u, n)| (n.as_str(), ReservationTable::simple(u)))
            .collect();
        b.op(op, 2, alts);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reservation::TableClass;

    #[test]
    fn cydra_is_complete_and_matches_table_2() {
        let m = cydra();
        assert!(m.is_complete());
        assert_eq!(m.latency(Opcode::Load), 20);
        assert_eq!(m.latency(Opcode::AddrAdd), 3);
        assert_eq!(m.latency(Opcode::Add), 4);
        assert_eq!(m.latency(Opcode::Mul), 5);
        assert_eq!(m.latency(Opcode::Div), 22);
        assert_eq!(m.latency(Opcode::Sqrt), 26);
        // Two memory ports x four instruction fields for loads; one adder
        // x four fields for adds.
        assert_eq!(m.info(Opcode::Load).alternatives.len(), 8);
        assert_eq!(m.info(Opcode::Add).alternatives.len(), 4);
        assert_eq!(m.info(Opcode::AddrAdd).alternatives.len(), 8);
    }

    #[test]
    fn cydra_tables_are_complex() {
        let m = cydra();
        assert_eq!(
            m.info(Opcode::Add).alternatives[0].table.class(),
            TableClass::Complex
        );
        assert_eq!(
            m.info(Opcode::Load).alternatives[0].table.class(),
            TableClass::Complex
        );
        // The adder's pipeline spans several cycles; an address ALU's does
        // not (only its unit and an instruction field at issue).
        assert!(m.info(Opcode::Add).alternatives[0].table.max_offset() >= 3);
        assert_eq!(m.info(Opcode::AddrAdd).alternatives[0].table.max_offset(), 0);
    }

    #[test]
    fn figure1_add_after_mul_result_bus_collision() {
        // §2.1: "although a multiply may be issued any number of cycles
        // after an add, an add may not be issued [mul_lat - add_lat] cycles
        // after a multiply since this will result in a collision on the
        // result bus". Holds on the literal Figure 1 machine.
        let m = figure1_machine();
        let add = &m.info(Opcode::Add).alternatives[0].table;
        let mul = &m.info(Opcode::Mul).alternatives[0].table;
        assert!(mul.collides_at(add, 0), "source-bus collision at issue");
        assert!(mul.collides_at(add, 1), "result-bus collision one apart");
        assert!(!mul.collides_at(add, 2));
        assert!(!add.collides_at(mul, 1), "multiply after add is fine");
    }

    #[test]
    fn cydra_has_private_buses() {
        // On the experimental machine an add and a multiply may issue on
        // the same cycle (on different instruction fields) — the FUs do
        // not share buses.
        let m = cydra();
        let add = &m.info(Opcode::Add).alternatives[0].table; // field 0
        let mul = &m.info(Opcode::Mul).alternatives[1].table; // field 1
        assert!(!mul.collides_at(add, 0));
        assert!(!mul.collides_at(add, 1));
        // But a multiply does collide with an in-flight divide's unit use.
        let div = &m.info(Opcode::Div).alternatives[0].table;
        assert!(div.collides_at(div, 1), "divide unit is unpipelined");
    }

    #[test]
    fn issue_width_is_a_real_resource() {
        // Five single-cycle operations cannot share one cycle: only four
        // instruction fields exist. Check via the ResMII-style usage count:
        // every alternative of every opcode claims exactly one field at
        // issue.
        let m = cydra();
        for (op, info) in m.opcodes() {
            for alt in &info.alternatives {
                let fields = alt
                    .table
                    .uses()
                    .iter()
                    .filter(|&&(r, t)| {
                        t == 0 && m.resource(r).name.starts_with("instr_field")
                    })
                    .count();
                assert_eq!(fields, 1, "{op} alternative {}", alt.fu);
            }
        }
    }

    #[test]
    fn cydra_simple_abstracts_the_pipelines() {
        let m = cydra_simple();
        assert!(m.is_complete());
        // Everything issues in a single cycle (unit + instruction field)...
        assert_eq!(m.info(Opcode::Add).alternatives[0].table.max_offset(), 0);
        assert_eq!(m.info(Opcode::Load).alternatives[0].table.max_offset(), 0);
        // ...except the unpipelined divide, which blocks the multiplier.
        assert!(m.info(Opcode::Div).alternatives[0].table.max_offset() > 10);
    }

    #[test]
    fn minimal_and_wide_are_complete() {
        assert!(minimal().is_complete());
        assert!(single_alu().is_complete());
        let w = wide(4);
        assert!(w.is_complete());
        assert_eq!(w.info(Opcode::Add).alternatives.len(), 4);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn wide_zero_panics() {
        let _ = wide(0);
    }

    #[test]
    fn register_files_are_declared_on_the_cydra_family() {
        assert_eq!(cydra().register_file(), Some(64));
        assert_eq!(cydra_simple().register_file(), Some(64));
        assert_eq!(figure1_machine().register_file(), Some(64));
        assert_eq!(minimal().register_file(), None);
        assert_eq!(wide(2).register_file(), None);
    }

    #[test]
    fn cydra_rf_shrinks_only_the_register_file() {
        let rf = cydra_rf(16);
        assert_eq!(rf.name(), "cydra_rf16");
        assert_eq!(rf.register_file(), Some(16));
        let base = cydra();
        assert_eq!(rf.num_resources(), base.num_resources());
        for op in Opcode::ALL {
            assert_eq!(rf.latency(op), base.latency(op), "{op}");
            assert_eq!(
                rf.info(op).alternatives.len(),
                base.info(op).alternatives.len(),
                "{op}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "register file size must be positive")]
    fn cydra_rf_zero_panics() {
        let _ = cydra_rf(0);
    }

    #[test]
    fn latencies_match_between_variants() {
        let a = cydra();
        let b = cydra_simple();
        for op in Opcode::ALL {
            assert_eq!(a.latency(op), b.latency(op), "{op}");
        }
    }
}
