//! Reservation tables and their classification.

use std::fmt;

use crate::model::ResourceId;

/// Classification of a reservation table (§2.1): *"A simple reservation
/// table is one which uses a single resource for a single cycle on the cycle
/// of issue. A block reservation table uses a single resource for multiple,
/// consecutive cycles starting with the cycle of issue. Any other type of
/// reservation table is termed a complex reservation table."*
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TableClass {
    /// One resource, one cycle, at issue.
    Simple,
    /// One resource, consecutive cycles starting at issue.
    Block,
    /// Everything else. *"Block and complex reservation tables cause
    /// increasing levels of difficulty for the scheduler."*
    Complex,
}

impl fmt::Display for TableClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TableClass::Simple => "simple",
            TableClass::Block => "block",
            TableClass::Complex => "complex",
        };
        f.write_str(s)
    }
}

/// The resource usage pattern of one alternative of one opcode: a sorted,
/// de-duplicated list of `(resource, cycle-offset)` pairs relative to the
/// issue cycle.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ReservationTable {
    uses: Vec<(ResourceId, u32)>,
}

impl ReservationTable {
    /// Builds a table from `(resource, offset)` pairs. Duplicates are
    /// removed and the list is sorted by `(offset, resource)`.
    ///
    /// # Panics
    ///
    /// Panics if `uses` is empty: an operation that uses no resource at all
    /// would be invisible to the scheduler.
    pub fn new(mut uses: Vec<(ResourceId, u32)>) -> Self {
        assert!(!uses.is_empty(), "a reservation table must use a resource");
        uses.sort_by_key(|&(r, t)| (t, r));
        uses.dedup();
        ReservationTable { uses }
    }

    /// A simple table: `resource` for one cycle at issue.
    pub fn simple(resource: ResourceId) -> Self {
        ReservationTable::new(vec![(resource, 0)])
    }

    /// A block table: `resource` for `cycles` consecutive cycles from issue.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is zero.
    pub fn block(resource: ResourceId, cycles: u32) -> Self {
        assert!(cycles > 0, "a block table must span at least one cycle");
        ReservationTable::new((0..cycles).map(|t| (resource, t)).collect())
    }

    /// The `(resource, offset)` pairs, sorted by `(offset, resource)`.
    pub fn uses(&self) -> &[(ResourceId, u32)] {
        &self.uses
    }

    /// The number of `(resource, offset)` pairs: the deterministic unit of
    /// work one MRT probe of this table costs, independent of how early a
    /// conflict check short-circuits. The profiler's `machine.mrt.probes`
    /// counter sums this over every probe.
    pub fn footprint(&self) -> u64 {
        self.uses.len() as u64
    }

    /// The largest cycle offset used.
    pub fn max_offset(&self) -> u32 {
        self.uses
            .iter()
            .map(|&(_, t)| t)
            .max()
            .expect("table is non-empty by construction")
    }

    /// Classifies the table per §2.1.
    pub fn class(&self) -> TableClass {
        let first = self.uses[0].0;
        if self.uses.iter().any(|&(r, _)| r != first) {
            return TableClass::Complex;
        }
        // Single resource; offsets are sorted and unique.
        let consecutive_from_zero = self
            .uses
            .iter()
            .enumerate()
            .all(|(i, &(_, t))| t == i as u32);
        match (consecutive_from_zero, self.uses.len()) {
            (true, 1) => TableClass::Simple,
            (true, _) => TableClass::Block,
            (false, _) => TableClass::Complex,
        }
    }

    /// Whether this table and `other`, issued `offset` cycles apart
    /// (`other` later), collide on any resource. Used in tests and in the
    /// acyclic list scheduler; the modulo scheduler uses the modulo
    /// reservation table instead.
    pub fn collides_at(&self, other: &ReservationTable, offset: i64) -> bool {
        self.uses.iter().any(|&(r1, t1)| {
            other
                .uses
                .iter()
                .any(|&(r2, t2)| r1 == r2 && t1 as i64 == t2 as i64 + offset)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u32) -> ResourceId {
        ResourceId(i)
    }

    #[test]
    fn classification_simple() {
        assert_eq!(ReservationTable::simple(r(0)).class(), TableClass::Simple);
    }

    #[test]
    fn classification_block() {
        assert_eq!(ReservationTable::block(r(0), 3).class(), TableClass::Block);
        // A single-cycle block is simple.
        assert_eq!(ReservationTable::block(r(0), 1).class(), TableClass::Simple);
    }

    #[test]
    fn classification_complex() {
        // Two distinct resources.
        let t = ReservationTable::new(vec![(r(0), 0), (r(1), 1)]);
        assert_eq!(t.class(), TableClass::Complex);
        // One resource but non-consecutive use.
        let t = ReservationTable::new(vec![(r(0), 0), (r(0), 2)]);
        assert_eq!(t.class(), TableClass::Complex);
        // One resource, consecutive, but not starting at issue.
        let t = ReservationTable::new(vec![(r(0), 1), (r(0), 2)]);
        assert_eq!(t.class(), TableClass::Complex);
    }

    #[test]
    fn new_sorts_and_dedups() {
        let t = ReservationTable::new(vec![(r(1), 2), (r(0), 0), (r(1), 2)]);
        assert_eq!(t.uses(), &[(r(0), 0), (r(1), 2)]);
        assert_eq!(t.max_offset(), 2);
    }

    #[test]
    #[should_panic(expected = "must use a resource")]
    fn empty_table_panics() {
        let _ = ReservationTable::new(vec![]);
    }

    #[test]
    fn figure_1_collision_semantics() {
        // Figure 1's narrative: with a shared result bus, an add (result bus
        // at offset 3) collides with a multiply issued earlier (result bus
        // at offset 4) when the add is issued one cycle after the multiply.
        let src = r(0);
        let res = r(1);
        let add = ReservationTable::new(vec![(src, 0), (res, 3)]);
        let mul = ReservationTable::new(vec![(src, 0), (res, 4)]);
        // Same cycle: source bus collision.
        assert!(mul.collides_at(&add, 0));
        // Add one cycle after multiply: result bus collision (3 + 1 == 4).
        assert!(mul.collides_at(&add, 1));
        // Add two cycles after multiply: no collision.
        assert!(!mul.collides_at(&add, 2));
    }
}
