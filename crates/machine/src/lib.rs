#![deny(missing_docs)]

//! Machine models with reservation tables for modulo scheduling.
//!
//! §2.1 of the paper models resource usage with **reservation tables**: the
//! resource usage of an opcode is *"a list of resources and the attendant
//! times at which each of those resources is used by the operation relative
//! to the time of issue"*. Reservation tables are classified as *simple*
//! (one resource, one cycle, at issue), *block* (one resource, consecutive
//! cycles from issue), or *complex* (anything else); block and complex
//! tables are what make iterative scheduling necessary.
//!
//! An operation may also have **multiple alternatives** — it can execute on
//! several (not necessarily equivalent) functional units, each with its own
//! reservation table.
//!
//! This crate provides:
//!
//! * the [`ReservationTable`] / [`Alternative`] / [`MachineModel`] types and
//!   a [`MachineBuilder`];
//! * the word-parallel [`ConflictMask`] representation every alternative
//!   is compiled into at machine construction: per-cycle-offset resource
//!   bitmasks that turn a modulo-reservation-table probe into a handful
//!   of `u64` ANDs (the FindTimeSlot hot path; see `DESIGN.md` §5d);
//! * [`cydra`], a Cydra-5-like machine reproducing the paper's Table 2
//!   (two memory ports with 20-cycle loads, two address ALUs, one adder, one
//!   multiplier that also executes the 22-cycle divide and 26-cycle square
//!   root, one instruction unit) with complex per-FU reservation tables;
//! * [`figure1_machine`], the literal Figure 1 variant whose adder and
//!   multiplier share their source and result buses;
//! * [`cydra_simple`], the same machine abstracted with simple reservation
//!   tables — the paper notes that *"if the ALU and multiplier possessed
//!   their own source and result buses … both reservation tables could be
//!   abstracted by simple reservation tables"*;
//! * small synthetic machines for tests and ablations.
//!
//! # Examples
//!
//! The Figure 1 collision: on the literal Figure 1 machine an add and a
//! multiply cannot issue on the same cycle because they share the source
//! buses.
//!
//! ```
//! use ims_machine::{figure1_machine, TableClass};
//! use ims_ir::Opcode;
//!
//! let m = figure1_machine();
//! let add = &m.info(Opcode::Add).alternatives[0].table;
//! let mul = &m.info(Opcode::Mul).alternatives[0].table;
//! assert_eq!(add.class(), TableClass::Complex);
//! // Both use the shared source-bus resource on their issue cycle.
//! assert!(add.uses().iter().any(|&(r, t)| t == 0 && mul.uses().contains(&(r, 0))));
//! ```

mod cydra;
mod mask;
mod model;
mod reservation;

pub use cydra::{cydra, cydra_rf, cydra_simple, figure1_machine, minimal, single_alu, wide};
pub use mask::{ConflictMask, MaskEntry};
pub use model::{Alternative, MachineBuilder, MachineModel, OpcodeInfo, Resource, ResourceId};
pub use reservation::{ReservationTable, TableClass};
