//! Word-parallel conflict masks compiled from reservation tables.
//!
//! A [`ReservationTable`] is the *specification* of an alternative's
//! resource usage: a sorted list of `(resource, cycle-offset)` pairs. A
//! [`ConflictMask`] is its *compiled* form against a fixed machine
//! resource axis: for every distinct cycle offset the table touches, a
//! bitmask over the machine's resources (split into `u64` words when the
//! machine has more than 64 resources). A modulo-reservation-table probe
//! then ANDs each mask word against the corresponding occupancy word of
//! one MRT row instead of scanning resources one at a time — the
//! FindTimeSlot/ResourceConflict hot path of §5–6 becomes a handful of
//! word operations.
//!
//! Masks are compiled once, at [`MachineModel`](crate::MachineModel)
//! construction, because the row *layout* they address (one group of
//! `words_per_row` words per MRT row, bit `r mod 64` of word `r / 64`
//! for resource `r`) depends only on the machine's resource count — not
//! on the II. The II enters a probe only as `row = (time + offset) mod
//! II`, chosen by the MRT at query time. The full encoding, with the
//! invariant that a mask probe and a per-resource scan always agree, is
//! specified in `DESIGN.md` §5d.

use crate::reservation::ReservationTable;

/// One `(row_word, mask)` pair of a compiled reservation table: the
/// resources the table uses at cycle offset [`offset`](MaskEntry::offset)
/// whose indices fall in word [`word`](MaskEntry::word) of a row group.
///
/// For machines with at most 64 resources (every predefined model in
/// this crate) `word` is always 0 and a table contributes exactly one
/// entry per distinct cycle offset it uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MaskEntry {
    /// Cycle offset relative to the issue cycle (the table's `(r, t)`
    /// pairs with this `t`).
    pub offset: u32,
    /// Word index within a row group: resources `64·word ..
    /// 64·word + 63`.
    pub word: u32,
    /// Bit `i` set ⟺ the table uses resource `64·word + i` at
    /// `offset`.
    pub mask: u64,
}

/// A reservation table compiled to word-parallel row masks against a
/// fixed resource axis: for every distinct cycle offset the table
/// touches, a bitmask over the machine's resources, split into `u64`
/// words when the machine has more than 64 of them (resource `r` is bit
/// `r mod 64` of word `r / 64`). The full encoding is specified in
/// `DESIGN.md` §5d.
///
/// # Examples
///
/// Compilation groups uses by cycle offset: three uses on two distinct
/// offsets become two mask entries, and the bit count equals the
/// table's footprint.
///
/// ```
/// use ims_machine::{ConflictMask, ReservationTable, ResourceId};
///
/// // Resources 0 and 2 at issue, resource 1 two cycles later.
/// let table = ReservationTable::new(vec![
///     (ResourceId(0), 0),
///     (ResourceId(2), 0),
///     (ResourceId(1), 2),
/// ]);
/// let mask = ConflictMask::compile(&table, 3);
///
/// assert_eq!(mask.words_per_row(), 1);
/// assert_eq!(mask.entries().len(), 2, "one entry per distinct offset");
/// assert_eq!(mask.entries()[0].offset, 0);
/// assert_eq!(mask.entries()[0].mask, 0b101);
/// assert_eq!(mask.entries()[1].offset, 2);
/// assert_eq!(mask.entries()[1].mask, 0b010);
/// assert_eq!(mask.footprint(), table.footprint());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ConflictMask {
    /// `⌈num_resources / 64⌉`, the row-group stride this mask was
    /// compiled for.
    words_per_row: u32,
    /// `(offset, word, mask)` triples, sorted by `(offset, word)`, every
    /// `mask` nonzero.
    entries: Box<[MaskEntry]>,
    /// The source table's [`footprint`](ReservationTable::footprint):
    /// total set bits across all entries.
    footprint: u64,
    /// The largest cycle offset used (equals the source table's
    /// [`max_offset`](ReservationTable::max_offset)).
    max_offset: u32,
}

impl ConflictMask {
    /// Compiles `table` against a machine with `num_resources` resources.
    ///
    /// # Panics
    ///
    /// Panics if the table references a resource `≥ num_resources` —
    /// masks are only meaningful against the axis they were compiled
    /// for.
    pub fn compile(table: &ReservationTable, num_resources: usize) -> Self {
        assert!(num_resources > 0, "a machine must have at least one resource");
        let words_per_row = num_resources.div_ceil(64) as u32;
        let mut entries: Vec<MaskEntry> = Vec::new();
        // `uses()` is sorted by (offset, resource), so equal (offset,
        // word) pairs are adjacent and the entry list comes out sorted.
        for &(r, off) in table.uses() {
            assert!(
                r.index() < num_resources,
                "table references {r} but the machine has {num_resources} resources"
            );
            let word = (r.index() / 64) as u32;
            let bit = 1u64 << (r.index() % 64);
            match entries.last_mut() {
                Some(e) if e.offset == off && e.word == word => e.mask |= bit,
                _ => entries.push(MaskEntry {
                    offset: off,
                    word,
                    mask: bit,
                }),
            }
        }
        ConflictMask {
            words_per_row,
            entries: entries.into_boxed_slice(),
            footprint: table.footprint(),
            max_offset: table.max_offset(),
        }
    }

    /// The compiled `(offset, word, mask)` entries, sorted by
    /// `(offset, word)`, each with a nonzero mask.
    #[inline]
    pub fn entries(&self) -> &[MaskEntry] {
        &self.entries
    }

    /// The row-group stride (`⌈num_resources / 64⌉`) this mask was
    /// compiled for. A mask may only be probed against a modulo
    /// reservation table with the same stride.
    #[inline]
    pub fn words_per_row(&self) -> usize {
        self.words_per_row as usize
    }

    /// The source table's [`footprint`](ReservationTable::footprint) —
    /// the deterministic probe cost charged by the MRT, identical to
    /// what the scan representation charges. Also the total number of
    /// set bits across [`entries`](ConflictMask::entries).
    #[inline]
    pub fn footprint(&self) -> u64 {
        self.footprint
    }

    /// The largest cycle offset used.
    #[inline]
    pub fn max_offset(&self) -> u32 {
        self.max_offset
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ResourceId;

    fn table(uses: &[(u32, u32)]) -> ReservationTable {
        ReservationTable::new(uses.iter().map(|&(r, t)| (ResourceId(r), t)).collect())
    }

    #[test]
    fn bits_cover_exactly_the_uses() {
        let t = table(&[(0, 0), (3, 0), (1, 2), (2, 2), (0, 5)]);
        let m = ConflictMask::compile(&t, 4);
        // Reconstruct the (resource, offset) set from the mask.
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        for e in m.entries() {
            let mut bits = e.mask;
            while bits != 0 {
                let b = bits.trailing_zeros();
                pairs.push((e.word * 64 + b, e.offset));
                bits &= bits - 1;
            }
        }
        pairs.sort_by_key(|&(r, t)| (t, r));
        let expect: Vec<(u32, u32)> =
            t.uses().iter().map(|&(r, off)| (r.0, off)).collect();
        assert_eq!(pairs, expect);
        assert_eq!(m.footprint(), t.footprint());
        assert_eq!(m.max_offset(), t.max_offset());
    }

    #[test]
    fn entries_are_grouped_and_sorted() {
        let t = table(&[(2, 1), (0, 0), (1, 1), (3, 0)]);
        let m = ConflictMask::compile(&t, 4);
        assert_eq!(m.entries().len(), 2);
        assert_eq!(m.entries()[0], MaskEntry { offset: 0, word: 0, mask: 0b1001 });
        assert_eq!(m.entries()[1], MaskEntry { offset: 1, word: 0, mask: 0b0110 });
    }

    #[test]
    fn wide_machines_split_rows_into_words() {
        // Resources 1 and 100 at issue: two words per row, one entry per
        // word, same offset.
        let t = table(&[(1, 0), (100, 0)]);
        let m = ConflictMask::compile(&t, 128);
        assert_eq!(m.words_per_row(), 2);
        assert_eq!(
            m.entries(),
            &[
                MaskEntry { offset: 0, word: 0, mask: 1 << 1 },
                MaskEntry { offset: 0, word: 1, mask: 1 << 36 },
            ]
        );
    }

    #[test]
    #[should_panic(expected = "but the machine has")]
    fn out_of_range_resource_panics() {
        let t = table(&[(7, 0)]);
        let _ = ConflictMask::compile(&t, 4);
    }
}
