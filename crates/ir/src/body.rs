//! The loop body container.

use std::fmt;

use crate::op::Operation;
use crate::types::{ArrayId, OpId, VReg, Value};

/// An array over which the loop iterates; backs a contiguous region of the
/// simulator's flat memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayDecl {
    /// Human-readable name.
    pub name: String,
    /// Number of elements.
    pub len: usize,
}

/// The initial value bound to a live-in register.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LiveInValue {
    /// A constant.
    Const(Value),
    /// The flat-memory address of `array[offset]`, resolved when the
    /// simulator lays out memory.
    ArrayBase {
        /// The array whose storage is addressed.
        array: ArrayId,
        /// Element offset from the base of the array.
        offset: i64,
    },
}

/// A live-in register binding: the value the register holds for reads that
/// reach `lag` iterations before the loop starts (a `lag` of 1 is the
/// ordinary "value on entry"; higher lags seed higher-order recurrences and
/// back-substituted recurrences, which read several iterations into the
/// pre-loop past).
///
/// A lag with no explicit binding falls back to the register's lag-1
/// binding (all pre-loop instances hold the entry value), which is the
/// common case.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LiveIn {
    /// The register.
    pub reg: VReg,
    /// Which pre-loop iteration this value seeds (≥ 1).
    pub lag: u32,
    /// The value.
    pub value: LiveInValue,
}

/// A single-basic-block innermost loop body in dynamic-single-assignment
/// form: the input to dependence analysis and modulo scheduling.
///
/// Construct with [`crate::LoopBuilder`]; the builder's `finish` runs
/// [`crate::validate::validate`].
#[derive(Debug, Clone, PartialEq)]
pub struct LoopBody {
    name: String,
    ops: Vec<Operation>,
    num_vregs: u32,
    arrays: Vec<ArrayDecl>,
    live_ins: Vec<LiveIn>,
    trip_count: u32,
}

impl LoopBody {
    /// Creates an empty body. Prefer [`crate::LoopBuilder`].
    pub fn new(name: impl Into<String>, trip_count: u32) -> Self {
        LoopBody {
            name: name.into(),
            ops: Vec::new(),
            num_vregs: 0,
            arrays: Vec::new(),
            live_ins: Vec::new(),
            trip_count,
        }
    }

    /// The loop's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of iterations executed when simulated as a DO-loop.
    pub fn trip_count(&self) -> u32 {
        self.trip_count
    }

    /// Sets the trip count (used by the corpus generator's profiles).
    pub fn set_trip_count(&mut self, n: u32) {
        self.trip_count = n;
    }

    /// The operations, in body order.
    pub fn ops(&self) -> &[Operation] {
        &self.ops
    }

    /// The operation with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn op(&self, id: OpId) -> &Operation {
        &self.ops[id.index()]
    }

    /// Mutable access to an operation, for IR-to-IR transforms (e.g.
    /// recurrence back-substitution). Callers are responsible for keeping
    /// the body valid; re-run [`crate::validate::validate`] afterwards.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn op_mut(&mut self, id: OpId) -> &mut Operation {
        &mut self.ops[id.index()]
    }

    /// Number of operations in the body.
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Number of virtual registers allocated so far.
    pub fn num_vregs(&self) -> usize {
        self.num_vregs as usize
    }

    /// Declared arrays.
    pub fn arrays(&self) -> &[ArrayDecl] {
        &self.arrays
    }

    /// Live-in register bindings.
    pub fn live_ins(&self) -> &[LiveIn] {
        &self.live_ins
    }

    /// Allocates a fresh virtual register.
    pub fn new_vreg(&mut self) -> VReg {
        let r = VReg(self.num_vregs);
        self.num_vregs += 1;
        r
    }

    /// Declares an array of `len` elements.
    pub fn add_array(&mut self, name: impl Into<String>, len: usize) -> ArrayId {
        self.arrays.push(ArrayDecl {
            name: name.into(),
            len,
        });
        ArrayId(self.arrays.len() as u32 - 1)
    }

    /// Binds `reg` to an initial value (lag 1: the value on loop entry).
    pub fn add_live_in(&mut self, reg: VReg, value: LiveInValue) {
        self.add_live_in_lag(reg, 1, value);
    }

    /// Binds `reg`'s pre-loop instance `lag` iterations back.
    ///
    /// # Panics
    ///
    /// Panics if `lag` is zero.
    pub fn add_live_in_lag(&mut self, reg: VReg, lag: u32, value: LiveInValue) {
        assert!(lag >= 1, "live-in lag must be at least 1");
        self.live_ins.push(LiveIn { reg, lag, value });
    }

    /// The value seeded for reads of `reg` from `lag` iterations before the
    /// loop: the exact-lag binding if present, else the lag-1 binding.
    pub fn live_in_value(&self, reg: VReg, lag: u32) -> Option<LiveInValue> {
        self.live_ins
            .iter()
            .find(|li| li.reg == reg && li.lag == lag)
            .or_else(|| self.live_ins.iter().find(|li| li.reg == reg && li.lag == 1))
            .map(|li| li.value)
    }

    /// Appends an operation, returning its id.
    pub fn push(&mut self, op: Operation) -> OpId {
        self.ops.push(op);
        OpId(self.ops.len() as u32 - 1)
    }

    /// The id of the operation (if any) that defines `reg`.
    pub fn def_of(&self, reg: VReg) -> Option<OpId> {
        self.ops
            .iter()
            .position(|op| op.dest == Some(reg))
            .map(|i| OpId(i as u32))
    }

    /// Whether `reg` has a live-in binding.
    pub fn is_live_in(&self, reg: VReg) -> bool {
        self.live_ins.iter().any(|li| li.reg == reg)
    }

    /// Iterates over `(OpId, &Operation)` pairs in body order.
    pub fn iter(&self) -> impl Iterator<Item = (OpId, &Operation)> + '_ {
        self.ops
            .iter()
            .enumerate()
            .map(|(i, op)| (OpId(i as u32), op))
    }
}

impl fmt::Display for LoopBody {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "loop {} (trip={}):", self.name, self.trip_count)?;
        for a in &self.arrays {
            writeln!(f, "  array {}[{}]", a.name, a.len)?;
        }
        for li in &self.live_ins {
            let lag = if li.lag == 1 {
                String::new()
            } else {
                format!("[-{}]", li.lag)
            };
            match li.value {
                LiveInValue::Const(v) => writeln!(f, "  live-in {}{} = {}", li.reg, lag, v)?,
                LiveInValue::ArrayBase { array, offset } => {
                    writeln!(f, "  live-in {}{} = &{}[{}]", li.reg, lag, array, offset)?
                }
            }
        }
        for (id, op) in self.iter() {
            writeln!(f, "  {id}: {op}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Operand;
    use crate::opcode::Opcode;

    fn tiny() -> LoopBody {
        let mut b = LoopBody::new("t", 10);
        let r = b.new_vreg();
        b.push(Operation::new(
            Opcode::AddrAdd,
            Some(r),
            vec![r.into(), Operand::ImmInt(1)],
        ));
        b
    }

    #[test]
    fn vregs_are_sequential() {
        let mut b = LoopBody::new("t", 1);
        assert_eq!(b.new_vreg(), VReg(0));
        assert_eq!(b.new_vreg(), VReg(1));
        assert_eq!(b.num_vregs(), 2);
    }

    #[test]
    fn def_lookup() {
        let b = tiny();
        assert_eq!(b.def_of(VReg(0)), Some(OpId(0)));
        assert_eq!(b.def_of(VReg(99)), None);
    }

    #[test]
    fn arrays_and_live_ins() {
        let mut b = tiny();
        let a = b.add_array("a", 8);
        assert_eq!(a, ArrayId(0));
        let r = b.new_vreg();
        b.add_live_in(r, LiveInValue::ArrayBase { array: a, offset: 0 });
        assert!(b.is_live_in(r));
        assert!(!b.is_live_in(VReg(0)));
        assert_eq!(b.arrays().len(), 1);
    }

    #[test]
    fn display_includes_ops() {
        let b = tiny();
        let s = b.to_string();
        assert!(s.contains("aadd"), "got {s}");
        assert!(s.contains("loop t"), "got {s}");
    }

    #[test]
    fn iter_yields_ids_in_order() {
        let b = tiny();
        let ids: Vec<OpId> = b.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![OpId(0)]);
    }
}
