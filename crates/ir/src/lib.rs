#![warn(missing_docs)]

//! Loop intermediate representation for iterative modulo scheduling.
//!
//! The paper's scheduler consumed the Cydra 5 compiler's intermediate
//! representation for innermost loops, *"just prior to modulo scheduling but
//! after load-store elimination, recurrence back-substitution and
//! IF-conversion"* (§4.1). This crate defines an equivalent IR:
//!
//! * a loop body is a straight-line sequence of [`Operation`]s (IF-conversion
//!   has already replaced control flow with predicates, so the body *"looks
//!   like a single basic block"* — §1);
//! * the body is in **dynamic single assignment** form (§2.2): each virtual
//!   register is defined by at most one operation per iteration, so all
//!   anti- and output dependences on registers are eliminated by
//!   construction, exactly as the paper's expanded-virtual-register (EVR)
//!   preprocessing guarantees;
//! * loop-carried values are expressed positionally: a use that precedes its
//!   definition in the body (including a definition reading its own result,
//!   like an accumulator) refers to the value produced that many iterations
//!   earlier; [`RegUse::prev`] adds further iterations for higher-order
//!   recurrences;
//! * memory operations carry an optional affine [`MemRef`] descriptor
//!   (`base + stride·i + offset`) from which the dependence analyzer derives
//!   memory dependence distances;
//! * every operation may be guarded by a predicate register, reproducing the
//!   predicated-execution input the paper's corpus had after IF-conversion.
//!
//! Loop bodies are constructed with [`LoopBuilder`] and checked by
//! [`validate::validate`].
//!
//! # Examples
//!
//! A dot-product loop (`s += a[i] * b[i]`):
//!
//! ```
//! use ims_ir::{LoopBuilder, MemRef, Value};
//!
//! let mut b = LoopBuilder::new("dot", 100);
//! let a = b.array("a", 100);
//! let bb = b.array("b", 100);
//! let pa = b.ptr("pa", a, 0);
//! let pb = b.ptr("pb", bb, 0);
//! let s = b.fresh("s");
//! b.bind_live_in(s, Value::Float(0.0));
//!
//! let va = b.load("va", pa, Some(MemRef::new(a, 0, 1)));
//! let vb = b.load("vb", pb, Some(MemRef::new(bb, 0, 1)));
//! let prod = b.mul("prod", va, vb);
//! b.rebind_add(s, s, prod);      // s = s + prod  (loop-carried recurrence)
//! b.addr_add(pa, pa, 1);         // pa = pa + 1   (trivial SCC, as in §4.2)
//! b.addr_add(pb, pb, 1);
//! let body = b.finish().expect("valid body");
//! assert_eq!(body.num_ops(), 6);
//! ```

mod body;
mod builder;
pub mod eval;
mod op;
mod opcode;
mod types;
pub mod validate;

pub use body::{ArrayDecl, LiveIn, LiveInValue, LoopBody};
pub use builder::LoopBuilder;
pub use op::{MemRef, Operand, Operation, RegUse};
pub use opcode::{CmpKind, FuClass, Opcode};
pub use types::{ArrayId, OpId, VReg, Value};
