//! Opcodes and functional-unit classes.

use std::fmt;

/// The operation repertoire, matching the operations listed for the Cydra
/// 5-like machine model in the paper's Table 2, plus the small set of
/// arithmetic helpers (copy, abs, min, max) that realistic Livermore-kernel
/// loop bodies require.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Opcode {
    /// Memory load; source 0 is an integer address into flat memory.
    Load,
    /// Memory store; source 0 is the address, source 1 the value.
    Store,
    /// Predicate set: compares source 0 with source 1 using the operation's
    /// [`CmpKind`] and writes the boolean outcome (Table 2 places predicate
    /// set/reset on the memory ports).
    PredSet,
    /// Predicate reset: writes `false`.
    PredClear,
    /// Address addition (address ALU): integer add.
    AddrAdd,
    /// Address subtraction (address ALU): integer subtract.
    AddrSub,
    /// Integer/floating-point add (adder).
    Add,
    /// Integer/floating-point subtract (adder).
    Sub,
    /// Absolute value (adder).
    Abs,
    /// Minimum of two values (adder).
    Min,
    /// Maximum of two values (adder).
    Max,
    /// Register copy (adder).
    Copy,
    /// Integer/floating-point multiply (multiplier).
    Mul,
    /// Integer/floating-point divide (multiplier).
    Div,
    /// Floating-point square root (multiplier).
    Sqrt,
    /// The loop-closing branch (instruction unit): continues the loop while
    /// source 0 is truthy. At most one per loop body.
    Branch,
}

/// Which class of functional unit executes an opcode. The machine model maps
/// each class to concrete functional units (possibly several — "multiple
/// alternatives", §2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FuClass {
    /// Memory ports (loads, stores, predicate set/reset).
    Memory,
    /// Address ALUs.
    AddressAlu,
    /// The adder pipeline.
    Adder,
    /// The multiplier pipeline (multiply, divide, square root).
    Multiplier,
    /// The instruction unit (branches).
    Instruction,
}

impl Opcode {
    /// All opcodes, in declaration order.
    pub const ALL: [Opcode; 16] = [
        Opcode::Load,
        Opcode::Store,
        Opcode::PredSet,
        Opcode::PredClear,
        Opcode::AddrAdd,
        Opcode::AddrSub,
        Opcode::Add,
        Opcode::Sub,
        Opcode::Abs,
        Opcode::Min,
        Opcode::Max,
        Opcode::Copy,
        Opcode::Mul,
        Opcode::Div,
        Opcode::Sqrt,
        Opcode::Branch,
    ];

    /// The functional-unit class that executes this opcode.
    pub fn fu_class(self) -> FuClass {
        match self {
            Opcode::Load | Opcode::Store | Opcode::PredSet | Opcode::PredClear => FuClass::Memory,
            Opcode::AddrAdd | Opcode::AddrSub => FuClass::AddressAlu,
            Opcode::Add
            | Opcode::Sub
            | Opcode::Abs
            | Opcode::Min
            | Opcode::Max
            | Opcode::Copy => FuClass::Adder,
            Opcode::Mul | Opcode::Div | Opcode::Sqrt => FuClass::Multiplier,
            Opcode::Branch => FuClass::Instruction,
        }
    }

    /// Whether operations with this opcode produce a result register.
    pub fn has_dest(self) -> bool {
        !matches!(self, Opcode::Store | Opcode::Branch)
    }

    /// The number of source operands an operation with this opcode takes.
    pub fn num_srcs(self) -> usize {
        match self {
            Opcode::PredClear => 0,
            Opcode::Load | Opcode::Abs | Opcode::Sqrt | Opcode::Copy | Opcode::Branch => 1,
            Opcode::Store
            | Opcode::PredSet
            | Opcode::AddrAdd
            | Opcode::AddrSub
            | Opcode::Add
            | Opcode::Sub
            | Opcode::Min
            | Opcode::Max
            | Opcode::Mul
            | Opcode::Div => 2,
        }
    }

    /// Whether this opcode accesses memory.
    pub fn is_mem(self) -> bool {
        matches!(self, Opcode::Load | Opcode::Store)
    }

    /// Assembly-style mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Opcode::Load => "load",
            Opcode::Store => "store",
            Opcode::PredSet => "pset",
            Opcode::PredClear => "pclr",
            Opcode::AddrAdd => "aadd",
            Opcode::AddrSub => "asub",
            Opcode::Add => "add",
            Opcode::Sub => "sub",
            Opcode::Abs => "abs",
            Opcode::Min => "min",
            Opcode::Max => "max",
            Opcode::Copy => "copy",
            Opcode::Mul => "mul",
            Opcode::Div => "div",
            Opcode::Sqrt => "sqrt",
            Opcode::Branch => "brtop",
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

impl fmt::Display for FuClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FuClass::Memory => "Memory port",
            FuClass::AddressAlu => "Address ALU",
            FuClass::Adder => "Adder",
            FuClass::Multiplier => "Multiplier",
            FuClass::Instruction => "Instruction",
        };
        f.write_str(s)
    }
}

/// Comparison kind for [`Opcode::PredSet`] operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CmpKind {
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
}

impl CmpKind {
    /// Applies the comparison to two floats.
    pub fn apply(self, a: f64, b: f64) -> bool {
        match self {
            CmpKind::Lt => a < b,
            CmpKind::Le => a <= b,
            CmpKind::Gt => a > b,
            CmpKind::Ge => a >= b,
            CmpKind::Eq => a == b,
            CmpKind::Ne => a != b,
        }
    }
}

impl fmt::Display for CmpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpKind::Lt => "lt",
            CmpKind::Le => "le",
            CmpKind::Gt => "gt",
            CmpKind::Ge => "ge",
            CmpKind::Eq => "eq",
            CmpKind::Ne => "ne",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_covers_every_variant_once() {
        let mut sorted = Opcode::ALL.to_vec();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), Opcode::ALL.len());
    }

    #[test]
    fn classes_match_table_2() {
        assert_eq!(Opcode::Load.fu_class(), FuClass::Memory);
        assert_eq!(Opcode::PredSet.fu_class(), FuClass::Memory);
        assert_eq!(Opcode::AddrAdd.fu_class(), FuClass::AddressAlu);
        assert_eq!(Opcode::Add.fu_class(), FuClass::Adder);
        assert_eq!(Opcode::Div.fu_class(), FuClass::Multiplier);
        assert_eq!(Opcode::Branch.fu_class(), FuClass::Instruction);
    }

    #[test]
    fn dest_and_arity() {
        assert!(!Opcode::Store.has_dest());
        assert!(!Opcode::Branch.has_dest());
        assert!(Opcode::Load.has_dest());
        assert_eq!(Opcode::Store.num_srcs(), 2);
        assert_eq!(Opcode::PredClear.num_srcs(), 0);
        assert_eq!(Opcode::Sqrt.num_srcs(), 1);
    }

    #[test]
    fn mem_classification() {
        for op in Opcode::ALL {
            assert_eq!(op.is_mem(), matches!(op, Opcode::Load | Opcode::Store));
        }
    }

    #[test]
    fn cmp_semantics() {
        assert!(CmpKind::Lt.apply(1.0, 2.0));
        assert!(!CmpKind::Gt.apply(1.0, 2.0));
        assert!(CmpKind::Ge.apply(2.0, 2.0));
        assert!(CmpKind::Ne.apply(1.0, 2.0));
        assert!(CmpKind::Eq.apply(2.0, 2.0));
        assert!(CmpKind::Le.apply(2.0, 2.0));
    }

    #[test]
    fn mnemonics_unique() {
        let mut names: Vec<&str> = Opcode::ALL.iter().map(|o| o.mnemonic()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), Opcode::ALL.len());
    }
}
