//! Identifier newtypes and runtime values.

use std::fmt;

/// A virtual register identifier.
///
/// Virtual registers follow the paper's expanded-virtual-register (EVR)
/// discipline: a register names the *sequence* of values written to it, one
/// per iteration, so nothing is ever overwritten across iterations (§2.2).
/// Within one iteration a register is defined at most once (dynamic single
/// assignment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VReg(pub u32);

impl VReg {
    /// Zero-based index of this register.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// The index of an operation within a [`crate::LoopBody`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpId(pub u32);

impl OpId {
    /// Zero-based index of this operation.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

/// Identifier of an array declared by a loop body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArrayId(pub u32);

impl ArrayId {
    /// Zero-based index of this array.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ArrayId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "arr{}", self.0)
    }
}

/// A runtime value: the dynamic types manipulated by loop operations.
///
/// The Cydra 5 computed on integers, floats, and single-bit predicates
/// (IF-conversion produces predicate values — §1); this enum models all
/// three. Values are dynamically typed because the IR does not annotate
/// operations with types; the simulator promotes `Int` to `Float` when an
/// arithmetic operation mixes them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// A 64-bit integer (also used for addresses).
    Int(i64),
    /// A 64-bit IEEE float.
    Float(f64),
    /// A single-bit predicate.
    Pred(bool),
}

impl Value {
    /// Interprets the value as a float, promoting integers.
    ///
    /// Returns `None` for predicates.
    pub fn as_float(self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(i as f64),
            Value::Float(f) => Some(f),
            Value::Pred(_) => None,
        }
    }

    /// Interprets the value as an integer.
    ///
    /// Returns `None` for floats and predicates (no implicit truncation).
    pub fn as_int(self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(i),
            _ => None,
        }
    }

    /// Interprets the value as a predicate. Integers are truthy when
    /// non-zero, matching branch-on-counter semantics.
    pub fn truthy(self) -> bool {
        match self {
            Value::Int(i) => i != 0,
            Value::Float(f) => f != 0.0,
            Value::Pred(b) => b,
        }
    }

    /// Whether two values are equal, with exact float comparison.
    ///
    /// Unlike `==`, an `Int` compares equal to a `Float` of the same
    /// mathematical value, which is what the sequential-vs-pipelined
    /// simulator comparison needs.
    pub fn same(self, other: Value) -> bool {
        match (self, other) {
            (Value::Pred(a), Value::Pred(b)) => a == b,
            (Value::Pred(_), _) | (_, Value::Pred(_)) => false,
            (a, b) => match (a.as_float(), b.as_float()) {
                (Some(x), Some(y)) => x == y || (x.is_nan() && y.is_nan()),
                _ => false,
            },
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Pred(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Pred(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(VReg(3).to_string(), "v3");
        assert_eq!(OpId(7).to_string(), "op7");
        assert_eq!(ArrayId(1).to_string(), "arr1");
        assert_eq!(Value::Int(-4).to_string(), "-4");
        assert_eq!(Value::Pred(true).to_string(), "true");
    }

    #[test]
    fn value_conversions() {
        assert_eq!(Value::Int(2).as_float(), Some(2.0));
        assert_eq!(Value::Float(2.5).as_float(), Some(2.5));
        assert_eq!(Value::Pred(true).as_float(), None);
        assert_eq!(Value::Int(2).as_int(), Some(2));
        assert_eq!(Value::Float(2.0).as_int(), None);
    }

    #[test]
    fn truthiness() {
        assert!(Value::Int(5).truthy());
        assert!(!Value::Int(0).truthy());
        assert!(Value::Pred(true).truthy());
        assert!(!Value::Float(0.0).truthy());
    }

    #[test]
    fn same_promotes_numerics() {
        assert!(Value::Int(2).same(Value::Float(2.0)));
        assert!(!Value::Int(2).same(Value::Float(2.5)));
        assert!(!Value::Pred(true).same(Value::Int(1)));
        assert!(Value::Float(f64::NAN).same(Value::Float(f64::NAN)));
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(3.0f64), Value::Float(3.0));
        assert_eq!(Value::from(false), Value::Pred(false));
    }
}
