//! Ergonomic construction of loop bodies.

use crate::body::{LiveInValue, LoopBody};
use crate::op::{MemRef, Operand, Operation, RegUse};
use crate::opcode::{CmpKind, Opcode};
use crate::types::{ArrayId, OpId, VReg, Value};
use crate::validate::{self, ValidateError};

/// A builder for [`LoopBody`] values.
///
/// The builder provides three tiers of API:
///
/// * **fresh-destination sugar** (`add`, `mul`, `load`, …): allocates a new
///   virtual register for the result;
/// * **rebinding sugar** (`rebind`, `rebind_add`, `addr_add`, …): emits the
///   single per-iteration definition of an already-allocated register — this
///   is how loop-carried recurrences (accumulators, induction pointers) are
///   written;
/// * **raw emission** ([`LoopBuilder::emit`]) for anything else.
///
/// `finish` validates the body (see [`crate::validate`]).
///
/// # Examples
///
/// A count-down loop control idiom (`n = n − 1; branch while n > 0`):
///
/// ```
/// use ims_ir::{LoopBuilder, Value};
///
/// let mut b = LoopBuilder::new("count", 10);
/// let n = b.fresh("n");
/// b.bind_live_in(n, Value::Int(10));
/// b.addr_sub(n, n, 1);
/// b.branch(n);
/// let body = b.finish()?;
/// assert_eq!(body.num_ops(), 2);
/// # Ok::<(), ims_ir::validate::ValidateError>(())
/// ```
#[derive(Debug)]
pub struct LoopBuilder {
    body: LoopBody,
}

impl LoopBuilder {
    /// Starts building a loop named `name` with the given simulation trip
    /// count.
    pub fn new(name: impl Into<String>, trip_count: u32) -> Self {
        LoopBuilder {
            body: LoopBody::new(name, trip_count),
        }
    }

    /// Declares an array of `len` elements.
    pub fn array(&mut self, name: impl Into<String>, len: usize) -> ArrayId {
        self.body.add_array(name, len)
    }

    /// Allocates a register without binding or defining it.
    ///
    /// The `name` is advisory; it is attached to the defining operation when
    /// one is emitted later.
    pub fn fresh(&mut self, _name: &str) -> VReg {
        self.body.new_vreg()
    }

    /// Allocates a register bound to a constant live-in value.
    pub fn live_in(&mut self, name: &str, value: Value) -> VReg {
        let r = self.fresh(name);
        self.bind_live_in(r, value);
        r
    }

    /// Allocates a register bound to the address of `array[offset]`.
    pub fn ptr(&mut self, name: &str, array: ArrayId, offset: i64) -> VReg {
        let r = self.fresh(name);
        self.body
            .add_live_in(r, LiveInValue::ArrayBase { array, offset });
        r
    }

    /// Binds an already-allocated register to a constant live-in value.
    ///
    /// A register may be both live-in and defined in the body: the live-in
    /// value seeds "iteration −1" of a recurrence.
    pub fn bind_live_in(&mut self, reg: VReg, value: Value) {
        self.body.add_live_in(reg, LiveInValue::Const(value));
    }

    /// Binds the pre-loop instance of `reg` from `lag` iterations back
    /// (used to seed higher-order and back-substituted recurrences).
    ///
    /// # Panics
    ///
    /// Panics if `lag` is zero.
    pub fn bind_live_in_lag(&mut self, reg: VReg, lag: u32, value: Value) {
        self.body.add_live_in_lag(reg, lag, LiveInValue::Const(value));
    }

    /// Emits a raw operation.
    pub fn emit(&mut self, op: Operation) -> OpId {
        self.body.push(op)
    }

    /// Emits `opcode` with a fresh destination register.
    pub fn op(
        &mut self,
        name: &str,
        opcode: Opcode,
        srcs: Vec<Operand>,
    ) -> VReg {
        let d = self.fresh(name);
        let mut op = Operation::new(opcode, Some(d), srcs);
        op.name = Some(name.to_string());
        self.emit(op);
        d
    }

    /// Emits the per-iteration definition of `dest` (for recurrences).
    pub fn rebind(&mut self, dest: VReg, opcode: Opcode, srcs: Vec<Operand>) -> OpId {
        self.emit(Operation::new(opcode, Some(dest), srcs))
    }

    /// `dest = a + b` re-binding an existing register (accumulator idiom).
    pub fn rebind_add(
        &mut self,
        dest: VReg,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) -> OpId {
        self.rebind(dest, Opcode::Add, vec![a.into(), b.into()])
    }

    /// `dest = src + k` on the address ALU (pointer-increment idiom; these
    /// are the *"add that increments the value of an address into an array"*
    /// single-operation SCCs of §4.2).
    pub fn addr_add(&mut self, dest: VReg, src: impl Into<Operand>, k: i64) -> OpId {
        self.rebind(dest, Opcode::AddrAdd, vec![src.into(), Operand::ImmInt(k)])
    }

    /// `dest = src − k` on the address ALU (count-down idiom).
    pub fn addr_sub(&mut self, dest: VReg, src: impl Into<Operand>, k: i64) -> OpId {
        self.rebind(dest, Opcode::AddrSub, vec![src.into(), Operand::ImmInt(k)])
    }

    /// Loads from the address in `addr`, with an optional affine descriptor.
    pub fn load(
        &mut self,
        name: &str,
        addr: impl Into<Operand>,
        mem: Option<MemRef>,
    ) -> VReg {
        let d = self.fresh(name);
        let mut op = Operation::new(Opcode::Load, Some(d), vec![addr.into()]);
        op.mem = mem;
        op.name = Some(name.to_string());
        self.emit(op);
        d
    }

    /// Stores `value` to the address in `addr`.
    pub fn store(
        &mut self,
        addr: impl Into<Operand>,
        value: impl Into<Operand>,
        mem: Option<MemRef>,
    ) -> OpId {
        let mut op = Operation::new(Opcode::Store, None, vec![addr.into(), value.into()]);
        op.mem = mem;
        self.emit(op)
    }

    /// `pset.cmp a, b` — compares and writes a fresh predicate register.
    pub fn pred_set(
        &mut self,
        name: &str,
        cmp: CmpKind,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) -> VReg {
        let d = self.fresh(name);
        let mut op = Operation::new(Opcode::PredSet, Some(d), vec![a.into(), b.into()]);
        op.cmp = Some(cmp);
        op.name = Some(name.to_string());
        self.emit(op);
        d
    }

    /// `pclr` — writes `false` to a fresh predicate register.
    pub fn pred_clear(&mut self, name: &str) -> VReg {
        self.op(name, Opcode::PredClear, vec![])
    }

    /// Emits the loop-closing branch, which continues while `cond` is truthy.
    pub fn branch(&mut self, cond: impl Into<Operand>) -> OpId {
        self.emit(Operation::new(Opcode::Branch, None, vec![cond.into()]))
    }

    /// Guards an already-emitted operation with a predicate register.
    ///
    /// # Panics
    ///
    /// Panics if `op` is out of range.
    pub fn guard(&mut self, op: OpId, pred: impl Into<RegUse>) {
        assert!(op.index() < self.body.num_ops(), "operation id out of range");
        self.body.op_mut(op).pred = Some(pred.into());
    }

    /// A read of `reg` from `prev` additional iterations back.
    pub fn back(&self, reg: VReg, prev: u32) -> Operand {
        Operand::Reg(RegUse::back(reg, prev))
    }

    /// Finishes the build, validating the body.
    ///
    /// # Errors
    ///
    /// Returns the first [`ValidateError`] found; see [`crate::validate`].
    pub fn finish(self) -> Result<LoopBody, ValidateError> {
        validate::validate(&self.body)?;
        Ok(self.body)
    }

    /// Finishes the build without validation (for tests that construct
    /// deliberately invalid bodies).
    pub fn finish_unchecked(self) -> LoopBody {
        self.body
    }

    /// Read-only access to the body under construction.
    pub fn body(&self) -> &LoopBody {
        &self.body
    }
}

macro_rules! binop_sugar {
    ($(#[$doc:meta] $fn_name:ident => $opcode:ident),* $(,)?) => {
        impl LoopBuilder {
            $(
                #[$doc]
                pub fn $fn_name(
                    &mut self,
                    name: &str,
                    a: impl Into<Operand>,
                    b: impl Into<Operand>,
                ) -> VReg {
                    self.op(name, Opcode::$opcode, vec![a.into(), b.into()])
                }
            )*
        }
    };
}

macro_rules! unop_sugar {
    ($(#[$doc:meta] $fn_name:ident => $opcode:ident),* $(,)?) => {
        impl LoopBuilder {
            $(
                #[$doc]
                pub fn $fn_name(&mut self, name: &str, a: impl Into<Operand>) -> VReg {
                    self.op(name, Opcode::$opcode, vec![a.into()])
                }
            )*
        }
    };
}

binop_sugar! {
    /// `add a, b` on the adder (fresh destination).
    add => Add,
    /// `sub a, b` on the adder (fresh destination).
    sub => Sub,
    /// `min a, b` on the adder (fresh destination).
    min => Min,
    /// `max a, b` on the adder (fresh destination).
    max => Max,
    /// `mul a, b` on the multiplier (fresh destination).
    mul => Mul,
    /// `div a, b` on the multiplier (fresh destination).
    div => Div,
}

unop_sugar! {
    /// `sqrt a` on the multiplier (fresh destination).
    sqrt => Sqrt,
    /// `abs a` on the adder (fresh destination).
    abs => Abs,
    /// `copy a` on the adder (fresh destination).
    copy => Copy,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_product_builds() {
        let mut b = LoopBuilder::new("dot", 8);
        let a = b.array("a", 8);
        let pa = b.ptr("pa", a, 0);
        let s = b.fresh("s");
        b.bind_live_in(s, Value::Float(0.0));
        let va = b.load("va", pa, Some(MemRef::new(a, 0, 1)));
        b.rebind_add(s, s, va);
        b.addr_add(pa, pa, 1);
        let body = b.finish().unwrap();
        assert_eq!(body.num_ops(), 3);
        assert_eq!(body.def_of(s), Some(OpId(1)));
    }

    #[test]
    fn guard_sets_predicate() {
        let mut b = LoopBuilder::new("g", 4);
        let p = b.pred_set("p", CmpKind::Gt, 1i64, 0i64);
        let x = b.add("x", 1i64, 2i64);
        let st_target = b.fresh("y");
        b.bind_live_in(st_target, Value::Int(0));
        let op = b.rebind(st_target, Opcode::Copy, vec![x.into()]);
        b.guard(op, p);
        let body = b.finish().unwrap();
        assert_eq!(body.op(op).pred, Some(RegUse::new(p)));
    }

    #[test]
    fn back_reads_prior_iterations() {
        let mut b = LoopBuilder::new("fib", 8);
        let x = b.fresh("x");
        b.bind_live_in(x, Value::Int(1));
        let two_back = b.back(x, 1);
        b.rebind(x, Opcode::Add, vec![x.into(), two_back]);
        let body = b.finish().unwrap();
        assert_eq!(
            body.op(OpId(0)).srcs[1].as_reg(),
            Some(RegUse::back(x, 1))
        );
    }

    #[test]
    fn sugar_covers_all_binops() {
        let mut b = LoopBuilder::new("s", 1);
        let x = b.live_in("x", Value::Float(2.0));
        let _ = b.add("a", x, x);
        let _ = b.sub("b", x, x);
        let _ = b.mul("c", x, x);
        let _ = b.div("d", x, x);
        let _ = b.min("e", x, x);
        let _ = b.max("f", x, x);
        let _ = b.sqrt("g", x);
        let _ = b.abs("h", x);
        let _ = b.copy("i", x);
        let body = b.finish().unwrap();
        assert_eq!(body.num_ops(), 9);
    }
}
