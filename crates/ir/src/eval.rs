//! Operation semantics shared by the sequential reference interpreter and
//! the pipelined VLIW simulator.
//!
//! Keeping the semantics in one place guarantees that the two execution
//! modes the validation story compares (sequential vs software-pipelined)
//! cannot drift apart.

use std::fmt;

use crate::opcode::{CmpKind, Opcode};
use crate::types::Value;

/// A dynamic type error during evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalError {
    /// The operation being evaluated.
    pub opcode: Opcode,
    /// Description of the violation.
    pub reason: &'static str,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot evaluate {}: {}", self.opcode, self.reason)
    }
}

impl std::error::Error for EvalError {}

fn type_err(opcode: Opcode, reason: &'static str) -> EvalError {
    EvalError { opcode, reason }
}

fn as_num(opcode: Opcode, v: Value) -> Result<f64, EvalError> {
    v.as_float()
        .ok_or_else(|| type_err(opcode, "predicate operand in arithmetic"))
}

fn both_int(a: Value, b: Value) -> Option<(i64, i64)> {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Some((x, y)),
        _ => None,
    }
}

/// Applies a value-producing, non-memory opcode to its source values.
///
/// Integer inputs stay integer for `Add`, `Sub`, `Mul`, `Min`, `Max` and
/// `Abs`; mixed or float inputs promote to float. `Div` and `Sqrt` always
/// produce floats. `AddrAdd`/`AddrSub` require integer operands (they are
/// address arithmetic).
///
/// # Errors
///
/// Returns [`EvalError`] on a dynamic type violation (predicate operand in
/// arithmetic, non-integer address, comparing predicates) or when asked to
/// evaluate an opcode with no pure value semantics (`Load`, `Store`,
/// `Branch`).
///
/// # Examples
///
/// ```
/// use ims_ir::{eval, Opcode, Value};
///
/// let v = eval::apply(Opcode::Add, None, &[Value::Int(2), Value::Int(3)])?;
/// assert_eq!(v, Value::Int(5));
/// let v = eval::apply(Opcode::Div, None, &[Value::Float(1.0), Value::Float(4.0)])?;
/// assert_eq!(v, Value::Float(0.25));
/// # Ok::<(), ims_ir::eval::EvalError>(())
/// ```
pub fn apply(opcode: Opcode, cmp: Option<CmpKind>, srcs: &[Value]) -> Result<Value, EvalError> {
    match opcode {
        Opcode::AddrAdd | Opcode::AddrSub => {
            let a = srcs[0]
                .as_int()
                .ok_or_else(|| type_err(opcode, "address operand is not an integer"))?;
            let b = srcs[1]
                .as_int()
                .ok_or_else(|| type_err(opcode, "address operand is not an integer"))?;
            Ok(Value::Int(if opcode == Opcode::AddrAdd {
                a.wrapping_add(b)
            } else {
                a.wrapping_sub(b)
            }))
        }
        Opcode::Add | Opcode::Sub | Opcode::Mul | Opcode::Min | Opcode::Max => {
            if let Some((x, y)) = both_int(srcs[0], srcs[1]) {
                let r = match opcode {
                    Opcode::Add => x.wrapping_add(y),
                    Opcode::Sub => x.wrapping_sub(y),
                    Opcode::Mul => x.wrapping_mul(y),
                    Opcode::Min => x.min(y),
                    Opcode::Max => x.max(y),
                    _ => unreachable!("match arm covers five opcodes"),
                };
                return Ok(Value::Int(r));
            }
            let x = as_num(opcode, srcs[0])?;
            let y = as_num(opcode, srcs[1])?;
            let r = match opcode {
                Opcode::Add => x + y,
                Opcode::Sub => x - y,
                Opcode::Mul => x * y,
                Opcode::Min => x.min(y),
                Opcode::Max => x.max(y),
                _ => unreachable!("match arm covers five opcodes"),
            };
            Ok(Value::Float(r))
        }
        Opcode::Div => {
            let x = as_num(opcode, srcs[0])?;
            let y = as_num(opcode, srcs[1])?;
            Ok(Value::Float(x / y))
        }
        Opcode::Sqrt => Ok(Value::Float(as_num(opcode, srcs[0])?.sqrt())),
        Opcode::Abs => match srcs[0] {
            Value::Int(i) => Ok(Value::Int(i.wrapping_abs())),
            Value::Float(x) => Ok(Value::Float(x.abs())),
            Value::Pred(_) => Err(type_err(opcode, "predicate operand in arithmetic")),
        },
        Opcode::Copy => Ok(srcs[0]),
        Opcode::PredSet => {
            let k = cmp.ok_or_else(|| type_err(opcode, "missing comparison kind"))?;
            let x = as_num(opcode, srcs[0])?;
            let y = as_num(opcode, srcs[1])?;
            Ok(Value::Pred(k.apply(x, y)))
        }
        Opcode::PredClear => Ok(Value::Pred(false)),
        Opcode::Load | Opcode::Store | Opcode::Branch => Err(type_err(
            opcode,
            "memory and branch operations have no pure value semantics",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_arithmetic_stays_integer() {
        assert_eq!(
            apply(Opcode::Mul, None, &[Value::Int(3), Value::Int(4)]).unwrap(),
            Value::Int(12)
        );
        assert_eq!(
            apply(Opcode::Min, None, &[Value::Int(3), Value::Int(-4)]).unwrap(),
            Value::Int(-4)
        );
        assert_eq!(
            apply(Opcode::Abs, None, &[Value::Int(-4)]).unwrap(),
            Value::Int(4)
        );
    }

    #[test]
    fn mixed_arithmetic_promotes() {
        assert_eq!(
            apply(Opcode::Add, None, &[Value::Int(1), Value::Float(0.5)]).unwrap(),
            Value::Float(1.5)
        );
    }

    #[test]
    fn div_and_sqrt_are_float() {
        assert_eq!(
            apply(Opcode::Div, None, &[Value::Int(1), Value::Int(2)]).unwrap(),
            Value::Float(0.5)
        );
        assert_eq!(
            apply(Opcode::Sqrt, None, &[Value::Float(9.0)]).unwrap(),
            Value::Float(3.0)
        );
    }

    #[test]
    fn address_arithmetic_requires_ints() {
        assert_eq!(
            apply(Opcode::AddrAdd, None, &[Value::Int(10), Value::Int(2)]).unwrap(),
            Value::Int(12)
        );
        assert_eq!(
            apply(Opcode::AddrSub, None, &[Value::Int(10), Value::Int(2)]).unwrap(),
            Value::Int(8)
        );
        assert!(apply(Opcode::AddrAdd, None, &[Value::Float(1.0), Value::Int(2)]).is_err());
    }

    #[test]
    fn predicates() {
        assert_eq!(
            apply(
                Opcode::PredSet,
                Some(CmpKind::Lt),
                &[Value::Int(1), Value::Int(2)]
            )
            .unwrap(),
            Value::Pred(true)
        );
        assert_eq!(
            apply(Opcode::PredClear, None, &[]).unwrap(),
            Value::Pred(false)
        );
        assert!(apply(Opcode::PredSet, None, &[Value::Int(1), Value::Int(2)]).is_err());
    }

    #[test]
    fn copy_passes_through() {
        assert_eq!(
            apply(Opcode::Copy, None, &[Value::Pred(true)]).unwrap(),
            Value::Pred(true)
        );
    }

    #[test]
    fn memory_ops_rejected() {
        assert!(apply(Opcode::Load, None, &[Value::Int(0)]).is_err());
        assert!(apply(Opcode::Branch, None, &[Value::Int(0)]).is_err());
    }

    #[test]
    fn pred_in_arithmetic_rejected() {
        assert!(apply(Opcode::Add, None, &[Value::Pred(true), Value::Int(1)]).is_err());
        assert!(apply(Opcode::Abs, None, &[Value::Pred(true)]).is_err());
    }

    #[test]
    fn error_display() {
        let e = apply(Opcode::Load, None, &[Value::Int(0)]).unwrap_err();
        assert!(e.to_string().contains("load"));
    }
}
