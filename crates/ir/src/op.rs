//! Operations, operands, and memory reference descriptors.

use std::fmt;

use crate::opcode::{CmpKind, Opcode};
use crate::types::{ArrayId, VReg};

/// A use of a virtual register, possibly reaching back extra iterations.
///
/// In the dynamic-single-assignment discipline a register is defined once
/// per iteration, so the iteration distance of a use is determined
/// positionally: a use *after* the definition in the body reads this
/// iteration's value; a use *at or before* the definition reads the previous
/// iteration's value. `prev` reaches back that many **additional**
/// iterations, which is how higher-order recurrences such as
/// `x[i] = x[i-2] * k` are written.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegUse {
    /// The register read.
    pub reg: VReg,
    /// Extra iterations to reach back beyond the positional distance.
    pub prev: u32,
}

impl RegUse {
    /// A use of `reg` in the current iteration frame (positional distance
    /// only).
    pub fn new(reg: VReg) -> Self {
        RegUse { reg, prev: 0 }
    }

    /// A use reaching back `prev` additional iterations.
    pub fn back(reg: VReg, prev: u32) -> Self {
        RegUse { reg, prev }
    }
}

impl From<VReg> for RegUse {
    fn from(reg: VReg) -> Self {
        RegUse::new(reg)
    }
}

impl fmt::Display for RegUse {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.prev == 0 {
            write!(f, "{}", self.reg)
        } else {
            write!(f, "{}[-{}]", self.reg, self.prev)
        }
    }
}

/// A source operand: a register use or an immediate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Operand {
    /// A register use.
    Reg(RegUse),
    /// An integer immediate.
    ImmInt(i64),
    /// A floating-point immediate.
    ImmFloat(f64),
}

impl Operand {
    /// The register use, if this operand is a register.
    pub fn as_reg(&self) -> Option<RegUse> {
        match self {
            Operand::Reg(r) => Some(*r),
            _ => None,
        }
    }
}

impl From<VReg> for Operand {
    fn from(reg: VReg) -> Self {
        Operand::Reg(RegUse::new(reg))
    }
}

impl From<RegUse> for Operand {
    fn from(r: RegUse) -> Self {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Self {
        Operand::ImmInt(v)
    }
}

impl From<f64> for Operand {
    fn from(v: f64) -> Self {
        Operand::ImmFloat(v)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::ImmInt(v) => write!(f, "#{v}"),
            Operand::ImmFloat(v) => write!(f, "#{v}"),
        }
    }
}

/// An affine memory-reference descriptor: iteration `i` of the loop accesses
/// element `stride·i + offset` of `array`.
///
/// The dependence analyzer uses these to compute memory dependence
/// *distances* (§2.2): two references to the same array with equal stride
/// `s` and offsets `o₁`, `o₂` touch the same location `(o₁ − o₂)/s`
/// iterations apart (when that is an integer). A memory operation *without*
/// a descriptor is treated as potentially aliasing every other
/// un-descriptored access, yielding conservative distance-0/1 dependences.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRef {
    /// The array accessed.
    pub array: ArrayId,
    /// Constant element offset.
    pub offset: i64,
    /// Elements advanced per iteration.
    pub stride: i64,
}

impl MemRef {
    /// Creates a descriptor for accesses to `array[stride·i + offset]`.
    pub fn new(array: ArrayId, offset: i64, stride: i64) -> Self {
        MemRef {
            array,
            offset,
            stride,
        }
    }

    /// The element index accessed on iteration `i`.
    pub fn element_at(&self, i: i64) -> i64 {
        self.stride * i + self.offset
    }
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}*i{:+}]", self.array, self.stride, self.offset)
    }
}

/// One operation of a loop body.
#[derive(Debug, Clone, PartialEq)]
pub struct Operation {
    /// What the operation does.
    pub opcode: Opcode,
    /// Result register, when [`Opcode::has_dest`] is true.
    pub dest: Option<VReg>,
    /// Source operands, [`Opcode::num_srcs`] of them.
    pub srcs: Vec<Operand>,
    /// Comparison kind; present exactly when `opcode` is [`Opcode::PredSet`].
    pub cmp: Option<CmpKind>,
    /// Guarding predicate: when present and false at run time, the operation
    /// has no effect (predicated execution, §1).
    pub pred: Option<RegUse>,
    /// Affine access descriptor for memory operations.
    pub mem: Option<MemRef>,
    /// Optional human-readable name for the result, for diagnostics.
    pub name: Option<String>,
}

impl Operation {
    /// Creates an unpredicated operation with a fresh destination.
    pub fn new(opcode: Opcode, dest: Option<VReg>, srcs: Vec<Operand>) -> Self {
        Operation {
            opcode,
            dest,
            srcs,
            cmp: None,
            pred: None,
            mem: None,
            name: None,
        }
    }

    /// All register uses of the operation: sources, then the guarding
    /// predicate (the paper notes each operation carries *"the additional
    /// predicate input"*, §4.4).
    pub fn reg_uses(&self) -> impl Iterator<Item = RegUse> + '_ {
        self.srcs
            .iter()
            .filter_map(Operand::as_reg)
            .chain(self.pred.iter().copied())
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(p) = &self.pred {
            write!(f, "({p}) ")?;
        }
        if let Some(d) = &self.dest {
            write!(f, "{d} = ")?;
        }
        write!(f, "{}", self.opcode)?;
        if let Some(c) = &self.cmp {
            write!(f, ".{c}")?;
        }
        for (i, s) in self.srcs.iter().enumerate() {
            if i == 0 {
                write!(f, " ")?;
            } else {
                write!(f, ", ")?;
            }
            write!(f, "{s}")?;
        }
        if let Some(m) = &self.mem {
            write!(f, "  ; {m}")?;
        }
        if let Some(n) = &self.name {
            write!(f, "  ; {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_use_display() {
        assert_eq!(RegUse::new(VReg(1)).to_string(), "v1");
        assert_eq!(RegUse::back(VReg(1), 2).to_string(), "v1[-2]");
    }

    #[test]
    fn operand_conversions() {
        assert_eq!(Operand::from(VReg(2)).as_reg(), Some(RegUse::new(VReg(2))));
        assert_eq!(Operand::from(3i64), Operand::ImmInt(3));
        assert_eq!(Operand::from(3.5f64), Operand::ImmFloat(3.5));
        assert_eq!(Operand::ImmInt(1).as_reg(), None);
    }

    #[test]
    fn memref_elements() {
        let m = MemRef::new(ArrayId(0), 2, 3);
        assert_eq!(m.element_at(0), 2);
        assert_eq!(m.element_at(4), 14);
    }

    #[test]
    fn operation_reg_uses_include_predicate() {
        let mut op = Operation::new(
            Opcode::Add,
            Some(VReg(5)),
            vec![VReg(1).into(), Operand::ImmInt(4)],
        );
        op.pred = Some(RegUse::new(VReg(9)));
        let uses: Vec<RegUse> = op.reg_uses().collect();
        assert_eq!(uses, vec![RegUse::new(VReg(1)), RegUse::new(VReg(9))]);
    }

    #[test]
    fn operation_display_is_readable() {
        let mut op = Operation::new(
            Opcode::PredSet,
            Some(VReg(3)),
            vec![VReg(1).into(), Operand::ImmInt(0)],
        );
        op.cmp = Some(CmpKind::Gt);
        let s = op.to_string();
        assert!(s.contains("pset.gt"), "got {s}");
        assert!(s.contains("v3 ="), "got {s}");
    }
}
