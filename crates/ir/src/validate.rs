//! Well-formedness checks on loop bodies.
//!
//! The dependence analyzer and the simulator both rely on the dynamic-
//! single-assignment discipline described in the crate docs; `validate`
//! checks it, along with operand arity, destination presence, and the
//! structural constraints on branches and memory descriptors.

use std::fmt;

use crate::body::LoopBody;
use crate::op::Operand;
use crate::opcode::Opcode;
use crate::types::{OpId, VReg};

/// A well-formedness violation in a [`LoopBody`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// A register is defined by more than one operation (violates dynamic
    /// single assignment).
    MultipleDefs {
        /// The multiply-defined register.
        reg: VReg,
        /// The first defining operation.
        first: OpId,
        /// The second defining operation.
        second: OpId,
    },
    /// A register is used but never defined in the body nor bound live-in.
    UndefinedUse {
        /// The operation containing the use.
        op: OpId,
        /// The undefined register.
        reg: VReg,
    },
    /// An operation has the wrong number of source operands.
    BadArity {
        /// The offending operation.
        op: OpId,
        /// The opcode's required operand count.
        expected: usize,
        /// The count found.
        got: usize,
    },
    /// Destination presence does not match the opcode.
    DestMismatch {
        /// The offending operation.
        op: OpId,
    },
    /// A `PredSet` without a comparison kind, or a comparison kind on any
    /// other opcode.
    CmpMismatch {
        /// The offending operation.
        op: OpId,
    },
    /// A memory descriptor on a non-memory operation.
    MemOnNonMemOp {
        /// The offending operation.
        op: OpId,
    },
    /// A memory descriptor that names an undeclared array.
    UnknownArray {
        /// The offending operation.
        op: OpId,
    },
    /// More than one loop-closing branch.
    MultipleBranches {
        /// The second branch found.
        op: OpId,
    },
    /// The trip count is zero.
    ZeroTripCount,
    /// A live-in register is bound more than once at the same lag.
    DuplicateLiveIn {
        /// The doubly-bound register.
        reg: VReg,
    },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::MultipleDefs { reg, first, second } => {
                write!(f, "{reg} defined by both {first} and {second}")
            }
            ValidateError::UndefinedUse { op, reg } => {
                write!(f, "{op} uses {reg}, which has no definition or live-in")
            }
            ValidateError::BadArity { op, expected, got } => {
                write!(f, "{op} has {got} sources, expected {expected}")
            }
            ValidateError::DestMismatch { op } => {
                write!(f, "{op} destination presence does not match its opcode")
            }
            ValidateError::CmpMismatch { op } => {
                write!(f, "{op} comparison kind does not match its opcode")
            }
            ValidateError::MemOnNonMemOp { op } => {
                write!(f, "{op} carries a memory descriptor but is not a memory operation")
            }
            ValidateError::UnknownArray { op } => {
                write!(f, "{op} references an undeclared array")
            }
            ValidateError::MultipleBranches { op } => {
                write!(f, "{op} is a second loop-closing branch")
            }
            ValidateError::ZeroTripCount => write!(f, "trip count is zero"),
            ValidateError::DuplicateLiveIn { reg } => {
                write!(f, "{reg} has more than one live-in binding")
            }
        }
    }
}

impl std::error::Error for ValidateError {}

/// Validates a loop body, returning the first violation found.
///
/// # Errors
///
/// See [`ValidateError`] for the conditions checked.
pub fn validate(body: &LoopBody) -> Result<(), ValidateError> {
    if body.trip_count() == 0 {
        return Err(ValidateError::ZeroTripCount);
    }

    // Single definition per register.
    let mut def: Vec<Option<OpId>> = vec![None; body.num_vregs()];
    for (id, op) in body.iter() {
        if let Some(d) = op.dest {
            if let Some(first) = def[d.index()] {
                return Err(ValidateError::MultipleDefs {
                    reg: d,
                    first,
                    second: id,
                });
            }
            def[d.index()] = Some(id);
        }
    }

    // Unique live-in bindings per (register, lag).
    let mut seen: Vec<(VReg, u32)> = Vec::new();
    let mut live_in = vec![false; body.num_vregs()];
    for li in body.live_ins() {
        if seen.contains(&(li.reg, li.lag)) {
            return Err(ValidateError::DuplicateLiveIn { reg: li.reg });
        }
        seen.push((li.reg, li.lag));
        live_in[li.reg.index()] = true;
    }

    let mut saw_branch = false;
    for (id, op) in body.iter() {
        if op.srcs.len() != op.opcode.num_srcs() {
            return Err(ValidateError::BadArity {
                op: id,
                expected: op.opcode.num_srcs(),
                got: op.srcs.len(),
            });
        }
        if op.dest.is_some() != op.opcode.has_dest() {
            return Err(ValidateError::DestMismatch { op: id });
        }
        if op.cmp.is_some() != (op.opcode == Opcode::PredSet) {
            return Err(ValidateError::CmpMismatch { op: id });
        }
        if op.mem.is_some() && !op.opcode.is_mem() {
            return Err(ValidateError::MemOnNonMemOp { op: id });
        }
        if let Some(m) = op.mem {
            if m.array.index() >= body.arrays().len() {
                return Err(ValidateError::UnknownArray { op: id });
            }
        }
        if op.opcode == Opcode::Branch {
            if saw_branch {
                return Err(ValidateError::MultipleBranches { op: id });
            }
            saw_branch = true;
        }
        for u in op.reg_uses() {
            let defined = u.reg.index() < body.num_vregs()
                && (def[u.reg.index()].is_some() || live_in[u.reg.index()]);
            if !defined {
                return Err(ValidateError::UndefinedUse { op: id, reg: u.reg });
            }
        }
        // Immediate operands need no checks beyond arity.
        for s in &op.srcs {
            if let Operand::Reg(_) = s {
                // Covered above via reg_uses.
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::LoopBuilder;
    use crate::op::{MemRef, Operation};
    use crate::types::{ArrayId, Value};

    #[test]
    fn valid_body_passes() {
        let mut b = LoopBuilder::new("ok", 4);
        let x = b.live_in("x", Value::Int(1));
        let _ = b.add("y", x, 1i64);
        assert!(validate(b.body()).is_ok());
    }

    #[test]
    fn multiple_defs_rejected() {
        let mut b = LoopBuilder::new("bad", 4);
        let x = b.fresh("x");
        b.rebind(x, Opcode::Copy, vec![Operand::ImmInt(1)]);
        b.rebind(x, Opcode::Copy, vec![Operand::ImmInt(2)]);
        assert!(matches!(
            validate(b.body()),
            Err(ValidateError::MultipleDefs { .. })
        ));
    }

    #[test]
    fn undefined_use_rejected() {
        let mut b = LoopBuilder::new("bad", 4);
        let ghost = b.fresh("ghost");
        let _ = b.add("y", ghost, 1i64);
        assert!(matches!(
            validate(b.body()),
            Err(ValidateError::UndefinedUse { .. })
        ));
    }

    #[test]
    fn self_recurrence_with_live_in_is_legal() {
        let mut b = LoopBuilder::new("acc", 4);
        let s = b.fresh("s");
        b.bind_live_in(s, Value::Float(0.0));
        b.rebind_add(s, s, 1i64);
        assert!(validate(b.body()).is_ok());
    }

    #[test]
    fn bad_arity_rejected() {
        let mut b = LoopBuilder::new("bad", 4);
        let d = b.fresh("d");
        b.emit(Operation::new(Opcode::Add, Some(d), vec![Operand::ImmInt(1)]));
        assert!(matches!(
            validate(b.body()),
            Err(ValidateError::BadArity { expected: 2, got: 1, .. })
        ));
    }

    #[test]
    fn dest_mismatch_rejected() {
        let mut b = LoopBuilder::new("bad", 4);
        b.emit(Operation::new(
            Opcode::Add,
            None,
            vec![Operand::ImmInt(1), Operand::ImmInt(2)],
        ));
        assert!(matches!(
            validate(b.body()),
            Err(ValidateError::DestMismatch { .. })
        ));
    }

    #[test]
    fn cmp_only_on_pred_set() {
        let mut b = LoopBuilder::new("bad", 4);
        let d = b.fresh("d");
        let mut op = Operation::new(Opcode::Add, Some(d), vec![1i64.into(), 2i64.into()]);
        op.cmp = Some(crate::CmpKind::Lt);
        b.emit(op);
        assert!(matches!(
            validate(b.body()),
            Err(ValidateError::CmpMismatch { .. })
        ));

        let mut b = LoopBuilder::new("bad2", 4);
        let d = b.fresh("d");
        // PredSet without cmp.
        b.emit(Operation::new(
            Opcode::PredSet,
            Some(d),
            vec![1i64.into(), 2i64.into()],
        ));
        assert!(matches!(
            validate(b.body()),
            Err(ValidateError::CmpMismatch { .. })
        ));
    }

    #[test]
    fn mem_descriptor_restrictions() {
        let mut b = LoopBuilder::new("bad", 4);
        let d = b.fresh("d");
        let mut op = Operation::new(Opcode::Add, Some(d), vec![1i64.into(), 2i64.into()]);
        op.mem = Some(MemRef::new(ArrayId(0), 0, 1));
        b.emit(op);
        assert!(matches!(
            validate(b.body()),
            Err(ValidateError::MemOnNonMemOp { .. })
        ));

        let mut b = LoopBuilder::new("bad2", 4);
        let p = b.live_in("p", Value::Int(0));
        // Load with a descriptor naming an undeclared array.
        let _ = b.load("v", p, Some(MemRef::new(ArrayId(7), 0, 1)));
        assert!(matches!(
            validate(b.body()),
            Err(ValidateError::UnknownArray { .. })
        ));
    }

    #[test]
    fn at_most_one_branch() {
        let mut b = LoopBuilder::new("bad", 4);
        let n = b.live_in("n", Value::Int(3));
        b.branch(n);
        b.branch(n);
        assert!(matches!(
            validate(b.body()),
            Err(ValidateError::MultipleBranches { .. })
        ));
    }

    #[test]
    fn zero_trip_rejected() {
        let b = LoopBuilder::new("bad", 0);
        assert_eq!(validate(b.body()), Err(ValidateError::ZeroTripCount));
    }

    #[test]
    fn duplicate_live_in_rejected() {
        let mut b = LoopBuilder::new("bad", 4);
        let x = b.fresh("x");
        b.bind_live_in(x, Value::Int(0));
        b.bind_live_in(x, Value::Int(1));
        assert!(matches!(
            validate(b.body()),
            Err(ValidateError::DuplicateLiveIn { .. })
        ));
    }

    #[test]
    fn errors_display() {
        let e = ValidateError::ZeroTripCount;
        assert!(!e.to_string().is_empty());
    }
}
