//! Integer-valued histograms.

use std::collections::BTreeMap;
use std::fmt;

/// A histogram over integer-valued measurements.
///
/// Used by the reproduction harness for claims such as §4.3's DeltaII
/// breakdown: *"Of the 1327 loops scheduled, 32 had a DeltaII of 1, 8 had a
/// DeltaII of 2, and 11 had a DeltaII that was greater than 2."*
///
/// # Examples
///
/// ```
/// use ims_stats::Histogram;
///
/// let mut h = Histogram::new();
/// for delta in [0, 0, 0, 1, 2] {
///     h.add(delta);
/// }
/// assert_eq!(h.count_of(0), 3);
/// assert_eq!(h.total(), 5);
/// assert_eq!(h.fraction_at_most(1), 0.8);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    counts: BTreeMap<i64, u64>,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation of `value`.
    pub fn add(&mut self, value: i64) {
        *self.counts.entry(value).or_insert(0) += 1;
        self.total += 1;
    }

    /// Merges every observation of `other` into `self` (used when
    /// aggregating per-loop trace metrics across a corpus).
    pub fn merge(&mut self, other: &Histogram) {
        for (v, c) in &other.counts {
            *self.counts.entry(*v).or_insert(0) += c;
        }
        self.total += other.total;
    }

    /// Number of observations exactly equal to `value`.
    pub fn count_of(&self, value: i64) -> u64 {
        self.counts.get(&value).copied().unwrap_or(0)
    }

    /// Number of observations strictly greater than `value`.
    pub fn count_greater_than(&self, value: i64) -> u64 {
        self.counts
            .range(value + 1..)
            .map(|(_, c)| *c)
            .sum()
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Fraction of observations `<= value`; `0.0` for an empty histogram.
    pub fn fraction_at_most(&self, value: i64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let le: u64 = self.counts.range(..=value).map(|(_, c)| *c).sum();
        le as f64 / self.total as f64
    }

    /// Largest observed value, or `None` when empty.
    pub fn max(&self) -> Option<i64> {
        self.counts.keys().next_back().copied()
    }

    /// The `p`-th percentile of the observations by the nearest-rank
    /// method: the smallest observed value whose cumulative count reaches
    /// `⌈p/100 · total⌉` (so `percentile(0.0)` is the minimum and
    /// `percentile(100.0)` the maximum). Returns `None` for an empty
    /// histogram or a NaN `p`; out-of-range `p` values are clamped to
    /// `[0, 100]`.
    ///
    /// ```
    /// use ims_stats::Histogram;
    ///
    /// let h: Histogram = [1, 2, 3, 4, 10].into_iter().collect();
    /// assert_eq!(h.percentile(50.0), Some(3));
    /// assert_eq!(h.p99(), Some(10));
    /// assert_eq!(Histogram::new().p50(), None);
    /// ```
    pub fn percentile(&self, p: f64) -> Option<i64> {
        if self.total == 0 || p.is_nan() {
            return None;
        }
        let p = p.clamp(0.0, 100.0);
        // Nearest rank, 1-based; rank 1 is the minimum.
        let rank = ((p / 100.0 * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (v, c) in &self.counts {
            seen += c;
            if seen >= rank {
                return Some(*v);
            }
        }
        self.max() // unreachable: cumulative counts reach `total`
    }

    /// The median (50th percentile, nearest rank).
    pub fn p50(&self) -> Option<i64> {
        self.percentile(50.0)
    }

    /// The 90th percentile (nearest rank).
    pub fn p90(&self) -> Option<i64> {
        self.percentile(90.0)
    }

    /// The 99th percentile (nearest rank).
    pub fn p99(&self) -> Option<i64> {
        self.percentile(99.0)
    }

    /// Sum of all observations (`Σ value·count`), as an `i128` so large
    /// per-phase work totals cannot overflow.
    pub fn sum(&self) -> i128 {
        self.counts
            .iter()
            .map(|(v, c)| *v as i128 * *c as i128)
            .sum()
    }

    /// Iterates over `(value, count)` pairs in ascending value order.
    pub fn iter(&self) -> impl Iterator<Item = (i64, u64)> + '_ {
        self.counts.iter().map(|(v, c)| (*v, *c))
    }
}

impl FromIterator<i64> for Histogram {
    fn from_iter<I: IntoIterator<Item = i64>>(iter: I) -> Self {
        let mut h = Histogram::new();
        for v in iter {
            h.add(v);
        }
        h
    }
}

impl Extend<i64> for Histogram {
    fn extend<I: IntoIterator<Item = i64>>(&mut self, iter: I) {
        for v in iter {
            self.add(v);
        }
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.counts.is_empty() {
            return write!(f, "(empty histogram)");
        }
        for (v, c) in &self.counts {
            writeln!(f, "{v:>8}: {c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_totals() {
        let h: Histogram = [0, 0, 1, 2, 2, 2].into_iter().collect();
        assert_eq!(h.count_of(0), 2);
        assert_eq!(h.count_of(2), 3);
        assert_eq!(h.count_of(7), 0);
        assert_eq!(h.total(), 6);
        assert_eq!(h.max(), Some(2));
    }

    #[test]
    fn greater_than_counts() {
        let h: Histogram = [0, 1, 2, 3, 20].into_iter().collect();
        assert_eq!(h.count_greater_than(2), 2);
        assert_eq!(h.count_greater_than(20), 0);
    }

    #[test]
    fn fractions() {
        let h: Histogram = [0, 0, 0, 1].into_iter().collect();
        assert_eq!(h.fraction_at_most(0), 0.75);
        assert_eq!(h.fraction_at_most(1), 1.0);
        assert_eq!(Histogram::new().fraction_at_most(5), 0.0);
    }

    #[test]
    fn merge_accumulates_counts_and_totals() {
        let mut a: Histogram = [0, 1, 1].into_iter().collect();
        let b: Histogram = [1, 2].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.count_of(1), 3);
        assert_eq!(a.count_of(2), 1);
        assert_eq!(a.total(), 5);
        a.merge(&Histogram::new());
        assert_eq!(a.total(), 5);
    }

    #[test]
    fn extend_accumulates() {
        let mut h = Histogram::new();
        h.extend([1, 1]);
        h.extend([2]);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn percentiles_on_empty_histogram_are_none() {
        let h = Histogram::new();
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.p50(), None);
        assert_eq!(h.p90(), None);
        assert_eq!(h.p99(), None);
        assert_eq!(h.sum(), 0);
    }

    #[test]
    fn percentiles_on_a_single_bucket_return_that_value() {
        let mut h = Histogram::new();
        for _ in 0..7 {
            h.add(42);
        }
        for p in [0.0, 1.0, 50.0, 90.0, 99.0, 100.0] {
            assert_eq!(h.percentile(p), Some(42), "p{p}");
        }
        assert_eq!(h.sum(), 7 * 42);
    }

    #[test]
    fn percentiles_follow_nearest_rank_on_known_data() {
        // 1..=10, one observation each: p50 is rank ceil(0.5·10)=5 → 5,
        // p90 rank 9 → 9, p99 rank ceil(9.9)=10 → 10.
        let h: Histogram = (1..=10).collect();
        assert_eq!(h.p50(), Some(5));
        assert_eq!(h.p90(), Some(9));
        assert_eq!(h.p99(), Some(10));
        assert_eq!(h.percentile(0.0), Some(1), "p0 is the minimum");
        assert_eq!(h.percentile(100.0), Some(10), "p100 is the maximum");
        // Out-of-range and NaN inputs.
        assert_eq!(h.percentile(-5.0), Some(1));
        assert_eq!(h.percentile(250.0), Some(10));
        assert_eq!(h.percentile(f64::NAN), None);
    }

    #[test]
    fn percentiles_of_a_merged_histogram_match_the_pooled_data() {
        let mut a: Histogram = [1, 1, 2].into_iter().collect();
        let b: Histogram = [3, 3, 3, 100].into_iter().collect();
        a.merge(&b);
        // Pooled: [1,1,2,3,3,3,100] — rank(p50)=4 → 3, rank(p99)=7 → 100.
        let pooled: Histogram = [1, 1, 2, 3, 3, 3, 100].into_iter().collect();
        for p in [0.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            assert_eq!(a.percentile(p), pooled.percentile(p), "p{p}");
        }
        assert_eq!(a.p50(), Some(3));
        assert_eq!(a.p99(), Some(100));
        assert_eq!(a.sum(), pooled.sum());
    }

    #[test]
    fn display_nonempty() {
        let h: Histogram = [1].into_iter().collect();
        assert!(format!("{h}").contains('1'));
        assert_eq!(format!("{}", Histogram::new()), "(empty histogram)");
    }
}
