//! Integer-valued histograms.

use std::collections::BTreeMap;
use std::fmt;

/// A histogram over integer-valued measurements.
///
/// Used by the reproduction harness for claims such as §4.3's DeltaII
/// breakdown: *"Of the 1327 loops scheduled, 32 had a DeltaII of 1, 8 had a
/// DeltaII of 2, and 11 had a DeltaII that was greater than 2."*
///
/// # Examples
///
/// ```
/// use ims_stats::Histogram;
///
/// let mut h = Histogram::new();
/// for delta in [0, 0, 0, 1, 2] {
///     h.add(delta);
/// }
/// assert_eq!(h.count_of(0), 3);
/// assert_eq!(h.total(), 5);
/// assert_eq!(h.fraction_at_most(1), 0.8);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    counts: BTreeMap<i64, u64>,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation of `value`.
    pub fn add(&mut self, value: i64) {
        *self.counts.entry(value).or_insert(0) += 1;
        self.total += 1;
    }

    /// Merges every observation of `other` into `self` (used when
    /// aggregating per-loop trace metrics across a corpus).
    pub fn merge(&mut self, other: &Histogram) {
        for (v, c) in &other.counts {
            *self.counts.entry(*v).or_insert(0) += c;
        }
        self.total += other.total;
    }

    /// Number of observations exactly equal to `value`.
    pub fn count_of(&self, value: i64) -> u64 {
        self.counts.get(&value).copied().unwrap_or(0)
    }

    /// Number of observations strictly greater than `value`.
    pub fn count_greater_than(&self, value: i64) -> u64 {
        self.counts
            .range(value + 1..)
            .map(|(_, c)| *c)
            .sum()
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Fraction of observations `<= value`; `0.0` for an empty histogram.
    pub fn fraction_at_most(&self, value: i64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let le: u64 = self.counts.range(..=value).map(|(_, c)| *c).sum();
        le as f64 / self.total as f64
    }

    /// Largest observed value, or `None` when empty.
    pub fn max(&self) -> Option<i64> {
        self.counts.keys().next_back().copied()
    }

    /// Iterates over `(value, count)` pairs in ascending value order.
    pub fn iter(&self) -> impl Iterator<Item = (i64, u64)> + '_ {
        self.counts.iter().map(|(v, c)| (*v, *c))
    }
}

impl FromIterator<i64> for Histogram {
    fn from_iter<I: IntoIterator<Item = i64>>(iter: I) -> Self {
        let mut h = Histogram::new();
        for v in iter {
            h.add(v);
        }
        h
    }
}

impl Extend<i64> for Histogram {
    fn extend<I: IntoIterator<Item = i64>>(&mut self, iter: I) {
        for v in iter {
            self.add(v);
        }
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.counts.is_empty() {
            return write!(f, "(empty histogram)");
        }
        for (v, c) in &self.counts {
            writeln!(f, "{v:>8}: {c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_totals() {
        let h: Histogram = [0, 0, 1, 2, 2, 2].into_iter().collect();
        assert_eq!(h.count_of(0), 2);
        assert_eq!(h.count_of(2), 3);
        assert_eq!(h.count_of(7), 0);
        assert_eq!(h.total(), 6);
        assert_eq!(h.max(), Some(2));
    }

    #[test]
    fn greater_than_counts() {
        let h: Histogram = [0, 1, 2, 3, 20].into_iter().collect();
        assert_eq!(h.count_greater_than(2), 2);
        assert_eq!(h.count_greater_than(20), 0);
    }

    #[test]
    fn fractions() {
        let h: Histogram = [0, 0, 0, 1].into_iter().collect();
        assert_eq!(h.fraction_at_most(0), 0.75);
        assert_eq!(h.fraction_at_most(1), 1.0);
        assert_eq!(Histogram::new().fraction_at_most(5), 0.0);
    }

    #[test]
    fn merge_accumulates_counts_and_totals() {
        let mut a: Histogram = [0, 1, 1].into_iter().collect();
        let b: Histogram = [1, 2].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.count_of(1), 3);
        assert_eq!(a.count_of(2), 1);
        assert_eq!(a.total(), 5);
        a.merge(&Histogram::new());
        assert_eq!(a.total(), 5);
    }

    #[test]
    fn extend_accumulates() {
        let mut h = Histogram::new();
        h.extend([1, 1]);
        h.extend([2]);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn display_nonempty() {
        let h: Histogram = [1].into_iter().collect();
        assert!(format!("{h}").contains('1'));
        assert_eq!(format!("{}", Histogram::new()), "(empty histogram)");
    }
}
