//! Distribution summaries with the columns of the paper's Table 3.

use std::fmt;

/// A five-number summary of a sample distribution, matching the columns of
/// Table 3 in the paper: *"the second column lists the minimum value that the
/// measurement can possibly yield, ... the frequency with which the minimum
/// possible value was encountered, the median and the mean of the
/// distribution, and the maximum value that was encountered"*.
///
/// # Examples
///
/// ```
/// use ims_stats::DistributionStats;
///
/// // II / MII for four loops, three of which achieved the bound of 1.0.
/// let ratios = [1.0, 1.0, 1.0, 1.5];
/// let s = DistributionStats::from_samples(&ratios, 1.0);
/// assert_eq!(s.freq_of_minimum, 0.75);
/// assert_eq!(s.maximum, 1.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistributionStats {
    /// The smallest value the measurement can possibly yield (supplied by the
    /// caller, not derived from the data — e.g. a loop always has at least 4
    /// operations in the paper's corpus).
    pub minimum_possible: f64,
    /// Fraction of samples equal to `minimum_possible` (within `1e-9`).
    pub freq_of_minimum: f64,
    /// Median of the samples (mean of the two middle samples when the count
    /// is even).
    pub median: f64,
    /// Arithmetic mean of the samples.
    pub mean: f64,
    /// Largest sample observed.
    pub maximum: f64,
    /// Number of samples summarized.
    pub count: usize,
}

impl DistributionStats {
    /// Summarizes `samples`, using `minimum_possible` as the theoretical
    /// lower bound for the "frequency of minimum" column.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or contains a NaN.
    pub fn from_samples(samples: &[f64], minimum_possible: f64) -> Self {
        assert!(!samples.is_empty(), "cannot summarize an empty sample set");
        assert!(
            samples.iter().all(|v| !v.is_nan()),
            "samples must not contain NaN"
        );
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN was excluded above"));
        let n = sorted.len();
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        };
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let at_min = sorted
            .iter()
            .take_while(|v| (**v - minimum_possible).abs() <= 1e-9)
            .count();
        DistributionStats {
            minimum_possible,
            freq_of_minimum: at_min as f64 / n as f64,
            median,
            mean,
            maximum: *sorted.last().expect("non-empty"),
            count: n,
        }
    }

    /// Convenience constructor for integer-valued measurements.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn from_integers<I>(samples: I, minimum_possible: i64) -> Self
    where
        I: IntoIterator<Item = i64>,
    {
        let v: Vec<f64> = samples.into_iter().map(|x| x as f64).collect();
        Self::from_samples(&v, minimum_possible as f64)
    }
}

impl fmt::Display for DistributionStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "min_possible={:.2} freq_min={:.3} median={:.2} mean={:.2} max={:.2} (n={})",
            self.minimum_possible,
            self.freq_of_minimum,
            self.median,
            self.mean,
            self.maximum,
            self.count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn odd_count_median_is_middle_element() {
        let s = DistributionStats::from_samples(&[1.0, 9.0, 5.0], 1.0);
        assert_eq!(s.median, 5.0);
    }

    #[test]
    fn even_count_median_is_midpoint() {
        let s = DistributionStats::from_samples(&[1.0, 3.0, 5.0, 9.0], 1.0);
        assert_eq!(s.median, 4.0);
    }

    #[test]
    fn freq_of_minimum_counts_only_exact_minimum() {
        let s = DistributionStats::from_samples(&[2.0, 2.0, 3.0, 4.0], 2.0);
        assert_eq!(s.freq_of_minimum, 0.5);
        // Minimum possible below every sample: frequency is zero.
        let s = DistributionStats::from_samples(&[2.0, 2.0, 3.0, 4.0], 1.0);
        assert_eq!(s.freq_of_minimum, 0.0);
    }

    #[test]
    fn mean_and_max() {
        let s = DistributionStats::from_samples(&[1.0, 2.0, 3.0, 6.0], 1.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.maximum, 6.0);
        assert_eq!(s.count, 4);
    }

    #[test]
    fn from_integers_matches_float_path() {
        let a = DistributionStats::from_integers([4, 12, 163], 4);
        let b = DistributionStats::from_samples(&[4.0, 12.0, 163.0], 4.0);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_samples_panic() {
        let _ = DistributionStats::from_samples(&[], 0.0);
    }

    #[test]
    fn display_is_nonempty() {
        let s = DistributionStats::from_samples(&[1.0], 1.0);
        assert!(!format!("{s}").is_empty());
    }
}
