//! Least-mean-square polynomial fitting.
//!
//! §4.4 of the paper characterizes the *empirical* computational complexity
//! of each scheduling sub-activity by fitting a low-degree polynomial in `N`
//! (the number of operations in the loop) to measured inner-loop trip counts,
//! e.g. *"The expected number of times this loop is executed is given by
//! 0.0587·N² + 0.2001·N + 0.5000"*. This module provides that fit.

use std::fmt;

/// Error produced when a fit cannot be computed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FitError {
    /// Fewer samples than coefficients requested.
    TooFewSamples {
        /// Number of samples provided.
        samples: usize,
        /// Number of polynomial coefficients requested (degree + 1).
        coefficients: usize,
    },
    /// The normal-equation system was singular (e.g. all x values equal).
    Singular,
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitError::TooFewSamples {
                samples,
                coefficients,
            } => write!(
                f,
                "cannot fit {coefficients} coefficients to {samples} samples"
            ),
            FitError::Singular => write!(f, "normal equations are singular"),
        }
    }
}

impl std::error::Error for FitError {}

/// A fitted polynomial `y ≈ c₀ + c₁·x + c₂·x² + …` together with the
/// standard deviation of the residual error, which the paper reports for the
/// RecMII fit (*"the standard deviation of the residual error is 1842.7"*).
#[derive(Debug, Clone, PartialEq)]
pub struct PolyFit {
    /// Coefficients in ascending-power order: `coeffs[k]` multiplies `x^k`.
    pub coeffs: Vec<f64>,
    /// Standard deviation of the residuals `y - ŷ`.
    pub residual_stddev: f64,
}

impl PolyFit {
    /// Evaluates the fitted polynomial at `x`.
    ///
    /// ```
    /// use ims_stats::polyfit;
    /// let xs = [1.0, 2.0, 3.0, 4.0];
    /// let ys = [3.0, 5.0, 7.0, 9.0]; // y = 1 + 2x
    /// let fit = polyfit(&xs, &ys, 1)?;
    /// assert!((fit.eval(10.0) - 21.0).abs() < 1e-9);
    /// # Ok::<(), ims_stats::FitError>(())
    /// ```
    pub fn eval(&self, x: f64) -> f64 {
        // Horner evaluation.
        self.coeffs.iter().rev().fold(0.0, |acc, c| acc * x + c)
    }
}

impl fmt::Display for PolyFit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (k, c) in self.coeffs.iter().enumerate().rev() {
            if !first {
                write!(f, " + ")?;
            }
            first = false;
            match k {
                0 => write!(f, "{c:.4}")?,
                1 => write!(f, "{c:.4}N")?,
                _ => write!(f, "{c:.4}N^{k}")?,
            }
        }
        Ok(())
    }
}

/// Fits `y ≈ Σ cₖ·xᵏ` for `k = 0..=degree` by least squares.
///
/// # Errors
///
/// Returns [`FitError::TooFewSamples`] when there are fewer samples than
/// coefficients, and [`FitError::Singular`] when the normal equations are
/// singular (for example, when every `x` is identical).
///
/// # Panics
///
/// Panics if `xs` and `ys` have different lengths.
pub fn polyfit(xs: &[f64], ys: &[f64], degree: usize) -> Result<PolyFit, FitError> {
    assert_eq!(xs.len(), ys.len(), "xs and ys must be the same length");
    let m = degree + 1;
    if xs.len() < m {
        return Err(FitError::TooFewSamples {
            samples: xs.len(),
            coefficients: m,
        });
    }
    // Build the normal equations A·c = b where A[i][j] = Σ x^(i+j),
    // b[i] = Σ y·x^i.
    let mut a = vec![vec![0.0f64; m]; m];
    let mut b = vec![0.0f64; m];
    for (&x, &y) in xs.iter().zip(ys) {
        let mut xp = vec![1.0f64; 2 * m - 1];
        for k in 1..2 * m - 1 {
            xp[k] = xp[k - 1] * x;
        }
        for i in 0..m {
            for j in 0..m {
                a[i][j] += xp[i + j];
            }
            b[i] += y * xp[i];
        }
    }
    let coeffs = solve(&mut a, &mut b)?;
    let residual_stddev = residual_stddev(xs, ys, &coeffs);
    Ok(PolyFit {
        coeffs,
        residual_stddev,
    })
}

/// Fits `y ≈ c·x` (a line through the origin), the form the paper uses for
/// most sub-activities (e.g. *"The best fit polynomial for E is given by
/// 3.0036·N"*).
///
/// # Errors
///
/// Returns [`FitError::Singular`] when `Σx²` is zero (all `x` are zero) and
/// [`FitError::TooFewSamples`] when no samples are given.
///
/// # Panics
///
/// Panics if `xs` and `ys` have different lengths.
pub fn linear_fit_through_origin(xs: &[f64], ys: &[f64]) -> Result<PolyFit, FitError> {
    assert_eq!(xs.len(), ys.len(), "xs and ys must be the same length");
    if xs.is_empty() {
        return Err(FitError::TooFewSamples {
            samples: 0,
            coefficients: 1,
        });
    }
    let sxx: f64 = xs.iter().map(|x| x * x).sum();
    if sxx == 0.0 {
        return Err(FitError::Singular);
    }
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| x * y).sum();
    let c = sxy / sxx;
    let coeffs = vec![0.0, c];
    let residual_stddev = residual_stddev(xs, ys, &coeffs);
    Ok(PolyFit {
        coeffs,
        residual_stddev,
    })
}

fn residual_stddev(xs: &[f64], ys: &[f64], coeffs: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let fit = PolyFit {
        coeffs: coeffs.to_vec(),
        residual_stddev: 0.0,
    };
    let sse: f64 = xs
        .iter()
        .zip(ys)
        .map(|(&x, &y)| {
            let r = y - fit.eval(x);
            r * r
        })
        .sum();
    (sse / n).sqrt()
}

/// Solves the small dense system `A·x = b` by Gaussian elimination with
/// partial pivoting. `A` and `b` are destroyed.
fn solve(a: &mut [Vec<f64>], b: &mut [f64]) -> Result<Vec<f64>, FitError> {
    let n = b.len();
    for col in 0..n {
        // Partial pivot.
        let pivot = (col..n)
            .max_by(|&i, &j| {
                a[i][col]
                    .abs()
                    .partial_cmp(&a[j][col].abs())
                    .expect("pivot magnitudes are finite")
            })
            .expect("non-empty column range");
        if a[pivot][col].abs() < 1e-12 {
            return Err(FitError::Singular);
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in col + 1..n {
            let f = a[row][col] / a[col][col];
            let (pivot_rows, rest) = a.split_at_mut(row);
            let pivot_row = &pivot_rows[col];
            for (x, p) in rest[0].iter_mut().zip(pivot_row).skip(col) {
                *x -= f * p;
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut s = b[row];
        for k in row + 1..n {
            s -= a[row][k] * x[k];
        }
        x[row] = s / a[row][row];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let xs: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.5 * x - 1.0).collect();
        let fit = polyfit(&xs, &ys, 1).unwrap();
        assert!((fit.coeffs[0] + 1.0).abs() < 1e-9);
        assert!((fit.coeffs[1] - 2.5).abs() < 1e-9);
        assert!(fit.residual_stddev < 1e-9);
    }

    #[test]
    fn exact_quadratic_recovered() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 0.0587 * x * x + 0.2 * x + 0.5).collect();
        let fit = polyfit(&xs, &ys, 2).unwrap();
        assert!((fit.coeffs[2] - 0.0587).abs() < 1e-9);
        assert!((fit.coeffs[1] - 0.2).abs() < 1e-9);
        assert!((fit.coeffs[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn through_origin_fit() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [3.0, 6.0, 9.0];
        let fit = linear_fit_through_origin(&xs, &ys).unwrap();
        assert!((fit.coeffs[1] - 3.0).abs() < 1e-12);
        assert_eq!(fit.coeffs[0], 0.0);
    }

    #[test]
    fn noisy_fit_has_nonzero_residual() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [1.1, 1.9, 3.2, 3.8];
        let fit = polyfit(&xs, &ys, 1).unwrap();
        assert!(fit.residual_stddev > 0.0);
        assert!(fit.residual_stddev < 0.5);
    }

    #[test]
    fn too_few_samples_is_an_error() {
        assert!(matches!(
            polyfit(&[1.0], &[1.0], 2),
            Err(FitError::TooFewSamples { .. })
        ));
    }

    #[test]
    fn degenerate_xs_is_singular() {
        let xs = [2.0, 2.0, 2.0];
        let ys = [1.0, 2.0, 3.0];
        assert_eq!(polyfit(&xs, &ys, 1), Err(FitError::Singular));
        assert_eq!(
            linear_fit_through_origin(&[0.0, 0.0], &[1.0, 2.0]),
            Err(FitError::Singular)
        );
    }

    #[test]
    fn display_mentions_highest_power_first() {
        let fit = PolyFit {
            coeffs: vec![0.5, 0.2, 0.0587],
            residual_stddev: 0.0,
        };
        let s = format!("{fit}");
        assert!(s.starts_with("0.0587N^2"), "got {s}");
    }
}
