#![warn(missing_docs)]

//! Statistics toolkit for the iterative-modulo-scheduling reproduction.
//!
//! The paper's evaluation (§4) reports three kinds of measurements, all of
//! which this crate implements:
//!
//! * **Distribution summaries** ([`DistributionStats`]) with exactly the
//!   columns of the paper's Table 3: minimum possible value, frequency of the
//!   minimum possible value, median, mean, and observed maximum.
//! * **Least-mean-square polynomial fits** ([`polyfit`]) used in §4.4 to
//!   characterize the empirical computational complexity of each
//!   sub-activity (e.g. "the best fit polynomial for E is 3.0036·N").
//! * **Histograms** ([`Histogram`]) for claims such as the DeltaII
//!   distribution ("32 loops had a DeltaII of 1, 8 a DeltaII of 2, ...").
//!
//! A small fixed-width [`table`] formatter is also provided so that the
//! reproduction binaries can print tables in the same layout as the paper.
//!
//! # Examples
//!
//! ```
//! use ims_stats::DistributionStats;
//!
//! let samples = [4.0, 4.0, 7.0, 9.0, 100.0];
//! let stats = DistributionStats::from_samples(&samples, 4.0);
//! assert_eq!(stats.minimum_possible, 4.0);
//! assert_eq!(stats.freq_of_minimum, 0.4);
//! assert_eq!(stats.median, 7.0);
//! assert_eq!(stats.maximum, 100.0);
//! ```

mod fit;
mod hist;
mod summary;
pub mod table;

pub use fit::{linear_fit_through_origin, polyfit, FitError, PolyFit};
pub use hist::Histogram;
pub use summary::DistributionStats;
