//! Fixed-width plain-text table rendering for the reproduction binaries.
//!
//! The table/figure regeneration binaries in `ims-bench` print their results
//! in the same row/column layout as the paper; this module does the
//! formatting.
//!
//! # Examples
//!
//! ```
//! use ims_stats::table::Table;
//!
//! let mut t = Table::new(vec!["Measurement".into(), "Median".into(), "Mean".into()]);
//! t.row(vec!["Number of operations".into(), "12.00".into(), "19.54".into()]);
//! let text = t.render();
//! assert!(text.contains("Number of operations"));
//! assert!(text.lines().count() >= 3);
//! ```

/// A simple fixed-width text table: a header row plus data rows.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: Vec<String>) -> Self {
        Table {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a data row. Rows shorter than the header are padded with
    /// empty cells; longer rows extend the column count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table, returning a string that ends with a newline.
    pub fn render(&self) -> String {
        let ncols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; ncols];
        let all_rows = std::iter::once(&self.header).chain(self.rows.iter());
        for row in all_rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |row: &[String], widths: &[usize], out: &mut String| {
            for (i, w) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(cell);
                for _ in cell.chars().count()..*w {
                    out.push(' ');
                }
            }
            // Trim trailing spaces from the padded final column.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        fmt_row(&self.header, &widths, &mut out);
        let sep_len = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        out.push_str(&"-".repeat(sep_len));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &widths, &mut out);
        }
        out
    }
}

/// Formats a float with `places` decimal places — the helper used everywhere
/// in the reproduction binaries.
pub fn num(value: f64, places: usize) -> String {
    format!("{value:.places$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columns_align() {
        let mut t = Table::new(vec!["a".into(), "bb".into()]);
        t.row(vec!["xxxx".into(), "y".into()]);
        let rendered = t.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 3);
        // Header's second column starts at the same offset as the row's.
        assert_eq!(lines[0].find("bb"), lines[2].find('y'));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(vec!["a".into(), "b".into(), "c".into()]);
        t.row(vec!["1".into()]);
        assert!(t.render().contains('1'));
    }

    #[test]
    fn num_formats_places() {
        assert_eq!(num(1.23456, 2), "1.23");
        assert_eq!(num(2.0, 3), "2.000");
    }

    #[test]
    fn len_and_is_empty() {
        let mut t = Table::new(vec!["h".into()]);
        assert!(t.is_empty());
        t.row(vec!["r".into()]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }
}
