//! Property tests for the graph algorithms.

use ims_graph::{compute_min_dist, elementary_circuits, sccs, DepGraph, DepKind, NodeId, NEG_INF};
use proptest::prelude::*;

/// A random small dependence graph: node count plus edge list.
fn graph_strategy() -> impl Strategy<Value = DepGraph> {
    (2usize..10).prop_flat_map(|n| {
        proptest::collection::vec(
            (0..n, 0..n, 0i64..8, 0u32..3),
            0..20,
        )
        .prop_map(move |edges| {
            let mut g = DepGraph::with_nodes(n);
            for (from, to, delay, distance) in edges {
                g.add_edge(
                    NodeId(from as u32),
                    NodeId(to as u32),
                    delay,
                    distance,
                    DepKind::Flow,
                    false,
                );
            }
            g
        })
    })
}

/// Brute-force reachability for SCC cross-checking.
fn reachable(g: &DepGraph, from: NodeId, to: NodeId) -> bool {
    let mut seen = vec![false; g.num_nodes()];
    let mut stack = vec![from];
    while let Some(v) = stack.pop() {
        if v == to {
            return true;
        }
        if std::mem::replace(&mut seen[v.index()], true) {
            continue;
        }
        for e in g.succs(v) {
            stack.push(e.to);
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn scc_matches_mutual_reachability(g in graph_strategy()) {
        let mut w = 0;
        let info = sccs(&g, &mut w);
        for a in g.nodes() {
            for b in g.nodes() {
                let same = info.component_of[a.index()] == info.component_of[b.index()];
                let mutual = a == b
                    || (reachable(&g, a, b) && reachable(&g, b, a));
                prop_assert_eq!(same, mutual, "{} vs {}", a, b);
            }
        }
    }

    #[test]
    fn min_dist_feasibility_is_monotone_in_ii(g in graph_strategy()) {
        let nodes: Vec<NodeId> = g.nodes().collect();
        let mut w = 0;
        let mut prev_feasible = false;
        for ii in 1..=12 {
            let feasible = compute_min_dist(&g, &nodes, ii, &mut w).feasible();
            // Once feasible, larger IIs stay feasible (weights only shrink).
            if prev_feasible {
                prop_assert!(feasible, "feasibility regressed at II {ii}");
            }
            prev_feasible = feasible;
        }
    }

    #[test]
    fn min_dist_respects_single_edges(g in graph_strategy()) {
        let nodes: Vec<NodeId> = g.nodes().collect();
        let mut w = 0;
        let ii = 20; // Large enough to be feasible for delays < 8.
        let md = compute_min_dist(&g, &nodes, ii, &mut w);
        for e in g.edges() {
            if e.from == e.to {
                continue;
            }
            let bound = e.delay - ii * e.distance as i64;
            prop_assert!(
                md.get(e.from, e.to) >= bound,
                "edge {} -> {} bound {bound}",
                e.from,
                e.to
            );
        }
    }

    #[test]
    fn min_dist_is_max_plus_transitive(g in graph_strategy()) {
        let nodes: Vec<NodeId> = g.nodes().collect();
        let mut w = 0;
        let md = compute_min_dist(&g, &nodes, 20, &mut w);
        if !md.feasible() {
            return Ok(());
        }
        for a in g.nodes() {
            for b in g.nodes() {
                for c in g.nodes() {
                    let ab = md.get(a, b);
                    let bc = md.get(b, c);
                    if ab == NEG_INF || bc == NEG_INF {
                        continue;
                    }
                    prop_assert!(
                        md.get(a, c) >= ab + bc,
                        "triangle violated at {} {} {}",
                        a,
                        b,
                        c
                    );
                }
            }
        }
    }

    #[test]
    fn circuit_min_ii_matches_min_dist_threshold(g in graph_strategy()) {
        // Drop zero-distance cycles (illegal dependence graphs).
        let nodes: Vec<NodeId> = g.nodes().collect();
        let (circuits, complete) = elementary_circuits(&g, 50_000);
        prop_assume!(complete);
        prop_assume!(circuits.iter().all(|c| c.distance > 0));
        let by_circuits = circuits.iter().map(|c| c.min_ii()).max().unwrap_or(0).max(1);
        // The smallest II at which MinDist is feasible must equal it.
        let mut w = 0;
        let mut by_mindist = 1;
        while !compute_min_dist(&g, &nodes, by_mindist, &mut w).feasible() {
            by_mindist += 1;
            prop_assert!(by_mindist < 100, "runaway search");
        }
        prop_assert_eq!(by_mindist, by_circuits.max(1));
    }
}
