//! Property tests for the graph algorithms, on the in-repo
//! [`ims_testkit::prop`] harness.

use ims_graph::{compute_min_dist, elementary_circuits, sccs, DepGraph, DepKind, NodeId, NEG_INF};
use ims_testkit::{check, prop_assert, prop_assert_eq, prop_assume, Gen, PropConfig};

/// Generates a random small dependence graph: node count plus edge list.
fn gen_graph(g: &mut Gen) -> DepGraph {
    let n = g.usize_in(2, 10);
    let edges = g.vec_with(20, |g| {
        (
            g.usize_in(0, n),
            g.usize_in(0, n),
            g.i64_in(0, 8),
            g.u32_in(0, 3),
        )
    });
    let mut graph = DepGraph::with_nodes(n);
    for (from, to, delay, distance) in edges {
        graph.add_edge(
            NodeId(from as u32),
            NodeId(to as u32),
            delay,
            distance,
            DepKind::Flow,
            false,
        );
    }
    graph
}

/// Brute-force reachability for SCC cross-checking.
fn reachable(g: &DepGraph, from: NodeId, to: NodeId) -> bool {
    let mut seen = vec![false; g.num_nodes()];
    let mut stack = vec![from];
    while let Some(v) = stack.pop() {
        if v == to {
            return true;
        }
        if std::mem::replace(&mut seen[v.index()], true) {
            continue;
        }
        for e in g.succs(v) {
            stack.push(e.to);
        }
    }
    false
}

#[test]
fn scc_matches_mutual_reachability() {
    check(
        "scc_matches_mutual_reachability",
        &PropConfig::with_cases(128),
        &[],
        gen_graph,
        |g| {
            let mut w = 0;
            let info = sccs(g, &mut w);
            for a in g.nodes() {
                for b in g.nodes() {
                    let same = info.component_of[a.index()] == info.component_of[b.index()];
                    let mutual = a == b || (reachable(g, a, b) && reachable(g, b, a));
                    prop_assert_eq!(same, mutual, "{} vs {}", a, b);
                }
            }
            Ok(())
        },
    );
}

#[test]
fn min_dist_feasibility_is_monotone_in_ii() {
    check(
        "min_dist_feasibility_is_monotone_in_ii",
        &PropConfig::with_cases(128),
        &[],
        gen_graph,
        |g| {
            let nodes: Vec<NodeId> = g.nodes().collect();
            let mut w = 0;
            let mut prev_feasible = false;
            for ii in 1..=12 {
                let feasible = compute_min_dist(g, &nodes, ii, &mut w).feasible();
                // Once feasible, larger IIs stay feasible (weights only
                // shrink).
                if prev_feasible {
                    prop_assert!(feasible, "feasibility regressed at II {ii}");
                }
                prev_feasible = feasible;
            }
            Ok(())
        },
    );
}

#[test]
fn min_dist_respects_single_edges() {
    check(
        "min_dist_respects_single_edges",
        &PropConfig::with_cases(128),
        &[],
        gen_graph,
        |g| {
            let nodes: Vec<NodeId> = g.nodes().collect();
            let mut w = 0;
            let ii = 20; // Large enough to be feasible for delays < 8.
            let md = compute_min_dist(g, &nodes, ii, &mut w);
            for e in g.edges() {
                if e.from == e.to {
                    continue;
                }
                let bound = e.delay - ii * e.distance as i64;
                prop_assert!(
                    md.get(e.from, e.to) >= bound,
                    "edge {} -> {} bound {bound}",
                    e.from,
                    e.to
                );
            }
            Ok(())
        },
    );
}

#[test]
fn min_dist_is_max_plus_transitive() {
    check(
        "min_dist_is_max_plus_transitive",
        &PropConfig::with_cases(128),
        &[],
        gen_graph,
        |g| {
            let nodes: Vec<NodeId> = g.nodes().collect();
            let mut w = 0;
            let md = compute_min_dist(g, &nodes, 20, &mut w);
            prop_assume!(md.feasible());
            for a in g.nodes() {
                for b in g.nodes() {
                    for c in g.nodes() {
                        let ab = md.get(a, b);
                        let bc = md.get(b, c);
                        if ab == NEG_INF || bc == NEG_INF {
                            continue;
                        }
                        prop_assert!(
                            md.get(a, c) >= ab + bc,
                            "triangle violated at {} {} {}",
                            a,
                            b,
                            c
                        );
                    }
                }
            }
            Ok(())
        },
    );
}

#[test]
fn circuit_min_ii_matches_min_dist_threshold() {
    check(
        "circuit_min_ii_matches_min_dist_threshold",
        &PropConfig::with_cases(128),
        &[],
        gen_graph,
        |g| {
            // Drop zero-distance cycles (illegal dependence graphs).
            let nodes: Vec<NodeId> = g.nodes().collect();
            let (circuits, complete) = elementary_circuits(g, 50_000, &mut 0u64);
            prop_assume!(complete);
            prop_assume!(circuits.iter().all(|c| c.distance > 0));
            let by_circuits = circuits.iter().map(|c| c.min_ii()).max().unwrap_or(0).max(1);
            // The smallest II at which MinDist is feasible must equal it.
            let mut w = 0;
            let mut by_mindist = 1;
            while !compute_min_dist(g, &nodes, by_mindist, &mut w).feasible() {
                by_mindist += 1;
                prop_assert!(by_mindist < 100, "runaway search");
            }
            prop_assert_eq!(by_mindist, by_circuits.max(1));
            Ok(())
        },
    );
}
