//! Property tests for the graph algorithms, on the in-repo
//! [`ims_testkit::prop`] harness.

use ims_graph::{
    canonical_form, canonical_key, compute_min_dist, elementary_circuits, sccs, DepGraph, DepKind,
    NodeId, NEG_INF,
};
use ims_testkit::{check, prop_assert, prop_assert_eq, prop_assume, Gen, PropConfig};

/// Generates a random small dependence graph: node count plus edge list.
fn gen_graph(g: &mut Gen) -> DepGraph {
    let n = g.usize_in(2, 10);
    let edges = g.vec_with(20, |g| {
        (
            g.usize_in(0, n),
            g.usize_in(0, n),
            g.i64_in(0, 8),
            g.u32_in(0, 3),
        )
    });
    let mut graph = DepGraph::with_nodes(n);
    for (from, to, delay, distance) in edges {
        graph.add_edge(
            NodeId(from as u32),
            NodeId(to as u32),
            delay,
            distance,
            DepKind::Flow,
            false,
        );
    }
    graph
}

/// Brute-force reachability for SCC cross-checking.
fn reachable(g: &DepGraph, from: NodeId, to: NodeId) -> bool {
    let mut seen = vec![false; g.num_nodes()];
    let mut stack = vec![from];
    while let Some(v) = stack.pop() {
        if v == to {
            return true;
        }
        if std::mem::replace(&mut seen[v.index()], true) {
            continue;
        }
        for e in g.succs(v) {
            stack.push(e.to);
        }
    }
    false
}

#[test]
fn scc_matches_mutual_reachability() {
    check(
        "scc_matches_mutual_reachability",
        &PropConfig::with_cases(128),
        &[],
        gen_graph,
        |g| {
            let mut w = 0;
            let info = sccs(g, &mut w);
            for a in g.nodes() {
                for b in g.nodes() {
                    let same = info.component_of[a.index()] == info.component_of[b.index()];
                    let mutual = a == b || (reachable(g, a, b) && reachable(g, b, a));
                    prop_assert_eq!(same, mutual, "{} vs {}", a, b);
                }
            }
            Ok(())
        },
    );
}

#[test]
fn min_dist_feasibility_is_monotone_in_ii() {
    check(
        "min_dist_feasibility_is_monotone_in_ii",
        &PropConfig::with_cases(128),
        &[],
        gen_graph,
        |g| {
            let nodes: Vec<NodeId> = g.nodes().collect();
            let mut w = 0;
            let mut prev_feasible = false;
            for ii in 1..=12 {
                let feasible = compute_min_dist(g, &nodes, ii, &mut w).feasible();
                // Once feasible, larger IIs stay feasible (weights only
                // shrink).
                if prev_feasible {
                    prop_assert!(feasible, "feasibility regressed at II {ii}");
                }
                prev_feasible = feasible;
            }
            Ok(())
        },
    );
}

#[test]
fn min_dist_respects_single_edges() {
    check(
        "min_dist_respects_single_edges",
        &PropConfig::with_cases(128),
        &[],
        gen_graph,
        |g| {
            let nodes: Vec<NodeId> = g.nodes().collect();
            let mut w = 0;
            let ii = 20; // Large enough to be feasible for delays < 8.
            let md = compute_min_dist(g, &nodes, ii, &mut w);
            for e in g.edges() {
                if e.from == e.to {
                    continue;
                }
                let bound = e.delay - ii * e.distance as i64;
                prop_assert!(
                    md.get(e.from, e.to) >= bound,
                    "edge {} -> {} bound {bound}",
                    e.from,
                    e.to
                );
            }
            Ok(())
        },
    );
}

#[test]
fn min_dist_is_max_plus_transitive() {
    check(
        "min_dist_is_max_plus_transitive",
        &PropConfig::with_cases(128),
        &[],
        gen_graph,
        |g| {
            let nodes: Vec<NodeId> = g.nodes().collect();
            let mut w = 0;
            let md = compute_min_dist(g, &nodes, 20, &mut w);
            prop_assume!(md.feasible());
            for a in g.nodes() {
                for b in g.nodes() {
                    for c in g.nodes() {
                        let ab = md.get(a, b);
                        let bc = md.get(b, c);
                        if ab == NEG_INF || bc == NEG_INF {
                            continue;
                        }
                        prop_assert!(
                            md.get(a, c) >= ab + bc,
                            "triangle violated at {} {} {}",
                            a,
                            b,
                            c
                        );
                    }
                }
            }
            Ok(())
        },
    );
}

/// A random labeled graph (mixed edge kinds) plus a random permutation of
/// its nodes, for canonicalization invariance testing.
fn gen_labeled_graph_and_perm(g: &mut Gen) -> (DepGraph, Vec<u64>, Vec<usize>) {
    let n = g.usize_in(1, 9);
    let edges = g.vec_with(16, |g| {
        (
            g.usize_in(0, n),
            g.usize_in(0, n),
            g.i64_in(0, 6),
            g.u32_in(0, 3),
            g.u32_in(0, 4),
            g.bool(),
        )
    });
    let kinds = [DepKind::Flow, DepKind::Anti, DepKind::Output, DepKind::Control];
    let mut graph = DepGraph::with_nodes(n);
    for (from, to, delay, distance, kind, is_mem) in edges {
        graph.add_edge(
            NodeId(from as u32),
            NodeId(to as u32),
            delay,
            distance,
            kinds[kind as usize],
            is_mem,
        );
    }
    // Few distinct labels so color classes are large enough to exercise
    // the individualization branch, not just refinement.
    let labels: Vec<u64> = (0..n).map(|_| g.u32_in(0, 3) as u64).collect();
    // Fisher–Yates permutation of 0..n.
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = g.usize_in(0, i + 1);
        perm.swap(i, j);
    }
    (graph, labels, perm)
}

/// Rebuilds `g` with node `v` renamed to `perm[v]` and edges in a
/// perm-dependent order.
fn relabel(g: &DepGraph, labels: &[u64], perm: &[usize]) -> (DepGraph, Vec<u64>) {
    let n = g.num_nodes();
    let mut h = DepGraph::with_nodes(n);
    let mut new_labels = vec![0u64; n];
    for v in 0..n {
        new_labels[perm[v]] = labels[v];
    }
    // Insert edges in an order keyed by the *new* endpoint ids so edge
    // insertion order cannot leak into the canonical form.
    let mut edges: Vec<_> = g
        .edges()
        .iter()
        .map(|e| {
            (
                perm[e.from.index()],
                perm[e.to.index()],
                e.delay,
                e.distance,
                e.kind,
                e.is_mem,
            )
        })
        .collect();
    edges.sort_by_key(|e| (e.0, e.1, e.2, e.3));
    for (from, to, delay, distance, kind, is_mem) in edges {
        h.add_edge(NodeId(from as u32), NodeId(to as u32), delay, distance, kind, is_mem);
    }
    (h, new_labels)
}

#[test]
fn canonical_key_is_isomorphism_invariant() {
    check(
        "canonical_key_is_isomorphism_invariant",
        &PropConfig::with_cases(192),
        &[],
        gen_labeled_graph_and_perm,
        |(g, labels, perm)| {
            let (h, hlabels) = relabel(g, labels, perm);
            let cg = canonical_form(g, labels);
            let ch = canonical_form(&h, &hlabels);
            prop_assert_eq!(
                &cg.encoding,
                &ch.encoding,
                "relabeling changed the canonical encoding (perm {:?})",
                perm
            );
            prop_assert_eq!(canonical_key(g, labels), canonical_key(&h, &hlabels));
            Ok(())
        },
    );
}

#[test]
fn canonical_order_and_position_are_inverse() {
    check(
        "canonical_order_and_position_are_inverse",
        &PropConfig::with_cases(128),
        &[],
        gen_labeled_graph_and_perm,
        |(g, labels, _)| {
            let c = canonical_form(g, labels);
            prop_assert_eq!(c.order.len(), g.num_nodes());
            for (p, v) in c.order.iter().enumerate() {
                prop_assert_eq!(c.position[v.index()], p);
            }
            // `order` is a permutation: every node appears exactly once.
            let mut seen = vec![false; g.num_nodes()];
            for v in &c.order {
                prop_assert!(!seen[v.index()], "duplicate node {} in order", v);
                seen[v.index()] = true;
            }
            Ok(())
        },
    );
}

#[test]
fn canonical_encoding_separates_modified_graphs() {
    check(
        "canonical_encoding_separates_modified_graphs",
        &PropConfig::with_cases(128),
        &[],
        gen_labeled_graph_and_perm,
        |(g, labels, _)| {
            let base = canonical_form(g, labels);
            // Bumping any one label changes the encoding.
            let mut bumped = labels.clone();
            bumped[0] = bumped[0].wrapping_add(1000);
            prop_assert!(
                canonical_form(g, &bumped).encoding != base.encoding,
                "label change not reflected in encoding"
            );
            // Adding an edge with a delay outside the generator's range
            // changes the encoding.
            let mut grown = g.clone();
            grown.add_edge(NodeId(0), NodeId(0), 99, 1, DepKind::Flow, false);
            prop_assert!(
                canonical_form(&grown, labels).encoding != base.encoding,
                "edge addition not reflected in encoding"
            );
            Ok(())
        },
    );
}

#[test]
fn circuit_min_ii_matches_min_dist_threshold() {
    check(
        "circuit_min_ii_matches_min_dist_threshold",
        &PropConfig::with_cases(128),
        &[],
        gen_graph,
        |g| {
            // Drop zero-distance cycles (illegal dependence graphs).
            let nodes: Vec<NodeId> = g.nodes().collect();
            let (circuits, complete) = elementary_circuits(g, 50_000, &mut 0u64);
            prop_assume!(complete);
            prop_assume!(circuits.iter().all(|c| c.distance > 0));
            let by_circuits = circuits.iter().map(|c| c.min_ii()).max().unwrap_or(0).max(1);
            // The smallest II at which MinDist is feasible must equal it.
            let mut w = 0;
            let mut by_mindist = 1;
            while !compute_min_dist(g, &nodes, by_mindist, &mut w).feasible() {
                by_mindist += 1;
                prop_assert!(by_mindist < 100, "runaway search");
            }
            prop_assert_eq!(by_mindist, by_circuits.max(1));
            Ok(())
        },
    );
}
