//! Elementary-circuit enumeration (Tiernan's algorithm).
//!
//! §2.2 describes two ways to compute the RecMII. The first — used by the
//! Cydra 5 compiler — is to *"enumerate all the elementary circuits in the
//! graph [Tiernan 40, Mateti/Deo 26], calculate the smallest value of II
//! that satisfies the … inequality for that circuit, and use the largest
//! such value across all circuits"*. This module implements that method; the
//! reproduction uses it as a cross-check and cost baseline for the MinDist
//! method (Huff's minimal cost-to-time-ratio formulation), which is the one
//! the scheduler uses.

use ims_prof::{phase, ProfSink};

use crate::graph::{DepGraph, NodeId};

/// An elementary circuit: *"a path through the graph which starts and ends
/// at the same vertex and which does not visit any vertex on the circuit
/// more than once"* (§2.2, footnote).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Circuit {
    /// The vertices on the circuit, starting from its smallest node id.
    pub nodes: Vec<NodeId>,
    /// Sum of edge delays around the circuit.
    pub delay: i64,
    /// Sum of edge distances around the circuit (always ≥ 1 in a legal
    /// dependence graph — a zero-distance cycle would be an impossible
    /// same-iteration ordering cycle).
    pub distance: u32,
}

impl Circuit {
    /// The smallest II satisfying `delay − II·distance ≤ 0` for this
    /// circuit: `⌈delay / distance⌉` (at least zero).
    ///
    /// # Panics
    ///
    /// Panics if `distance` is zero.
    pub fn min_ii(&self) -> i64 {
        assert!(self.distance > 0, "zero-distance circuit has no legal II");
        let d = self.distance as i64;
        // Ceiling division for possibly-negative delay.
        if self.delay <= 0 {
            0
        } else {
            (self.delay + d - 1) / d
        }
    }
}

/// Enumerates the elementary circuits of `graph`, visiting each circuit
/// once. Enumeration stops after `max_circuits` circuits (the guard the
/// paper's discussion of exponential circuit counts motivates); the bool in
/// the return value is `false` when enumeration was truncated.
///
/// For every pair of parallel edges the heaviest constraint matters, so for
/// RecMII purposes each circuit is reported with, per hop, the **maximum**
/// `delay − II·distance` edge… which depends on II. To stay II-independent
/// this function instead enumerates circuits over *distinct edge choices*:
/// parallel edges produce distinct circuits.
///
/// `work` counts path-extension attempts (one per edge examined during the
/// search) under [`phase::GRAPH_CIRCUITS_WORK`]; pass `&mut 0u64` to
/// discard or a `MetricsRegistry` to collect.
pub fn elementary_circuits<W: ProfSink>(
    graph: &DepGraph,
    max_circuits: usize,
    work: &mut W,
) -> (Vec<Circuit>, bool) {
    let n = graph.num_nodes();
    let mut out = Vec::new();
    let mut complete = true;

    // Tiernan-style search: for each root s (in increasing id order),
    // enumerate elementary paths using only vertices with id ≥ s, and record
    // a circuit whenever an edge returns to s.
    'roots: for s in 0..n as u32 {
        let root = NodeId(s);
        // Path state: stack of (node, delay-so-far, distance-so-far) plus an
        // explicit edge-iterator position per frame.
        let mut on_path = vec![false; n];
        let mut path: Vec<NodeId> = vec![root];
        on_path[root.index()] = true;
        // Frame: (node, index into that node's successor edge list).
        let mut frames: Vec<(NodeId, usize)> = vec![(root, 0)];
        let mut delay_stack: Vec<i64> = vec![0];
        let mut dist_stack: Vec<u32> = vec![0];

        while let Some(&mut (v, ref mut pos)) = frames.last_mut() {
            let succ: Vec<_> = graph.succs(v).cloned().collect();
            if *pos < succ.len() {
                let e = succ[*pos];
                *pos += 1;
                work.count(phase::GRAPH_CIRCUITS_WORK, 1);
                if e.to.0 < s {
                    continue; // Only vertices ≥ root participate.
                }
                let cur_delay = *delay_stack.last().expect("stacks in lockstep");
                let cur_dist = *dist_stack.last().expect("stacks in lockstep");
                if e.to == root {
                    out.push(Circuit {
                        nodes: path.clone(),
                        delay: cur_delay + e.delay,
                        distance: cur_dist + e.distance,
                    });
                    if out.len() >= max_circuits {
                        complete = false;
                        break 'roots;
                    }
                } else if !on_path[e.to.index()] {
                    on_path[e.to.index()] = true;
                    path.push(e.to);
                    frames.push((e.to, 0));
                    delay_stack.push(cur_delay + e.delay);
                    dist_stack.push(cur_dist + e.distance);
                }
            } else {
                frames.pop();
                delay_stack.pop();
                dist_stack.pop();
                let done = path.pop().expect("path tracks frames");
                on_path[done.index()] = false;
            }
        }
    }

    (out, complete)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DepKind;

    #[test]
    fn self_loop_is_a_circuit() {
        let mut g = DepGraph::with_nodes(1);
        g.add_edge(NodeId(0), NodeId(0), 3, 1, DepKind::Flow, false);
        let (cs, complete) = elementary_circuits(&g, 100, &mut 0u64);
        assert!(complete);
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].delay, 3);
        assert_eq!(cs[0].distance, 1);
        assert_eq!(cs[0].min_ii(), 3);
    }

    #[test]
    fn two_cycle() {
        let mut g = DepGraph::with_nodes(2);
        g.add_edge(NodeId(0), NodeId(1), 4, 0, DepKind::Flow, false);
        g.add_edge(NodeId(1), NodeId(0), 3, 2, DepKind::Flow, false);
        let (cs, _) = elementary_circuits(&g, 100, &mut 0u64);
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].delay, 7);
        assert_eq!(cs[0].distance, 2);
        assert_eq!(cs[0].min_ii(), 4); // ceil(7/2)
    }

    #[test]
    fn acyclic_graph_has_no_circuits() {
        let mut g = DepGraph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1), 1, 0, DepKind::Flow, false);
        g.add_edge(NodeId(1), NodeId(2), 1, 0, DepKind::Flow, false);
        let (cs, complete) = elementary_circuits(&g, 100, &mut 0u64);
        assert!(complete);
        assert!(cs.is_empty());
    }

    #[test]
    fn nested_cycles_all_found() {
        // 0 -> 1 -> 0 and 0 -> 1 -> 2 -> 0.
        let mut g = DepGraph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1), 1, 0, DepKind::Flow, false);
        g.add_edge(NodeId(1), NodeId(0), 1, 1, DepKind::Flow, false);
        g.add_edge(NodeId(1), NodeId(2), 1, 0, DepKind::Flow, false);
        g.add_edge(NodeId(2), NodeId(0), 1, 1, DepKind::Flow, false);
        let (cs, _) = elementary_circuits(&g, 100, &mut 0u64);
        assert_eq!(cs.len(), 2);
        let mut lens: Vec<usize> = cs.iter().map(|c| c.nodes.len()).collect();
        lens.sort();
        assert_eq!(lens, vec![2, 3]);
    }

    #[test]
    fn parallel_edges_produce_distinct_circuits() {
        let mut g = DepGraph::with_nodes(1);
        g.add_edge(NodeId(0), NodeId(0), 3, 1, DepKind::Flow, false);
        g.add_edge(NodeId(0), NodeId(0), 5, 1, DepKind::Output, false);
        let (cs, _) = elementary_circuits(&g, 100, &mut 0u64);
        assert_eq!(cs.len(), 2);
        let max_ii = cs.iter().map(Circuit::min_ii).max().unwrap();
        assert_eq!(max_ii, 5);
    }

    #[test]
    fn truncation_reported() {
        // A complete digraph on 5 vertices has many circuits.
        let mut g = DepGraph::with_nodes(5);
        for i in 0..5u32 {
            for j in 0..5u32 {
                if i != j {
                    g.add_edge(NodeId(i), NodeId(j), 1, 1, DepKind::Flow, false);
                }
            }
        }
        let (cs, complete) = elementary_circuits(&g, 3, &mut 0u64);
        assert_eq!(cs.len(), 3);
        assert!(!complete);
        let (all, complete) = elementary_circuits(&g, 10_000, &mut 0u64);
        assert!(complete);
        // Known circuit count for K5 (directed): sum over k=2..5 of
        // C(5,k) * (k-1)! = 10*1 + 10*2 + 5*6 + 1*24 = 84.
        assert_eq!(all.len(), 84);
    }

    #[test]
    fn negative_delay_circuit_min_ii_is_zero() {
        let mut g = DepGraph::with_nodes(1);
        g.add_edge(NodeId(0), NodeId(0), -2, 1, DepKind::Anti, false);
        let (cs, _) = elementary_circuits(&g, 10, &mut 0u64);
        assert_eq!(cs[0].min_ii(), 0);
    }
}
