//! Isomorphism-stable canonicalization of labeled dependence graphs.
//!
//! Two dependence graphs that differ only in how their nodes are numbered
//! describe the same scheduling problem, and a content-addressed schedule
//! cache must map them to the same key. [`canonical_form`] computes a
//! **canonical node ordering** of a [`DepGraph`] whose nodes carry opaque
//! `u64` labels (opcodes, in the scheduler's use): relabeling the nodes of
//! a graph by any permutation leaves the canonical byte
//! [`encoding`](CanonicalForm::encoding) — and therefore
//! [`canonical_key`] — unchanged.
//!
//! The algorithm is the classic refine-and-individualize scheme:
//!
//! 1. **Color refinement** (1-dimensional Weisfeiler–Leman): every node
//!    starts with a color given by the rank of its label, and colors are
//!    repeatedly re-ranked by the multiset of `(edge attributes, neighbor
//!    color)` signatures over incoming and outgoing edges until the
//!    partition stops splitting. Signatures are ranked by *sorting*, never
//!    by hashing, so ties cannot depend on node numbering.
//! 2. **Individualization with branching**: if refinement leaves a color
//!    class with more than one node, each member is tried as the class
//!    representative in turn, refinement resumes, and the lexicographically
//!    smallest resulting encoding wins. Trying *every* member is what makes
//!    the result independent of the input numbering even when the class is
//!    not an automorphism orbit.
//!
//! Dependence graphs are small (the paper's corpus tops out near 163
//! operations) and heterogeneous enough that refinement almost always
//! discretizes without branching; the exponential worst case needs highly
//! symmetric graphs that do not arise from real loop bodies.
//!
//! Beyond cache keying, the canonical encoding doubles as a corpus
//! **dedup** fingerprint: loops generated with different node numberings
//! collapse onto one encoding.

use crate::graph::{DepEdge, DepGraph, DepKind, NodeId};

/// The result of canonicalizing a labeled graph: a canonical node
/// ordering (both directions) plus the canonical byte encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonicalForm {
    /// `order[p]` is the original node occupying canonical position `p`.
    pub order: Vec<NodeId>,
    /// `position[v.index()]` is the canonical position of original node
    /// `v` — the inverse permutation of [`order`](CanonicalForm::order).
    pub position: Vec<usize>,
    /// The canonical byte encoding of the labeled graph: node count, edge
    /// count, labels in canonical order, then the sorted edge list in
    /// canonical indices. Equal for two graphs **iff** they are isomorphic
    /// as labeled multigraphs (relabelings always agree; distinct
    /// structures always differ because the encoding is a complete
    /// description).
    pub encoding: Vec<u8>,
}

/// Computes the canonical form of `graph` with one `u64` label per node.
///
/// # Panics
///
/// Panics if `labels.len() != graph.num_nodes()`.
pub fn canonical_form(graph: &DepGraph, labels: &[u64]) -> CanonicalForm {
    assert_eq!(
        labels.len(),
        graph.num_nodes(),
        "one label per node required"
    );
    let n = graph.num_nodes();
    if n == 0 {
        return CanonicalForm {
            order: Vec::new(),
            position: Vec::new(),
            encoding: encode(graph, labels, &[]),
        };
    }

    // Initial colors: rank of each node's label (id-independent).
    let mut ranked: Vec<u64> = labels.to_vec();
    ranked.sort_unstable();
    ranked.dedup();
    let colors: Vec<u32> = labels
        .iter()
        .map(|l| ranked.binary_search(l).unwrap() as u32)
        .collect();

    let (encoding, order) = search(graph, labels, colors);
    let mut position = vec![0usize; n];
    for (p, &v) in order.iter().enumerate() {
        position[v.index()] = p;
    }
    CanonicalForm {
        order,
        position,
        encoding,
    }
}

/// A 128-bit FNV-1a content hash of the canonical encoding: the
/// recommended cache key for "this labeled graph up to isomorphism".
/// Callers that key on more than the graph (machine model, scheduler
/// configuration) should fold those into their own hash alongside the
/// [`CanonicalForm::encoding`] bytes instead.
pub fn canonical_key(graph: &DepGraph, labels: &[u64]) -> u128 {
    fnv128(&canonical_form(graph, labels).encoding)
}

/// 128-bit FNV-1a over a byte string. Deterministic, allocation-free, and
/// std-only; collision resistance is ample for content addressing a
/// schedule cache (not a cryptographic commitment).
pub fn fnv128(bytes: &[u8]) -> u128 {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013b;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u128;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Stable small integer for an edge kind (declaration order).
fn kind_code(kind: DepKind) -> u64 {
    match kind {
        DepKind::Flow => 0,
        DepKind::Anti => 1,
        DepKind::Output => 2,
        DepKind::Control => 3,
    }
}

/// One edge's contribution to a node signature: attributes plus the
/// neighbor's current color. `delay` is shifted into non-negative space so
/// the unsigned sort order matches the numeric order.
fn edge_sig(e: &DepEdge, neighbor_color: u32) -> [u64; 5] {
    [
        (e.delay as u64).wrapping_add(1 << 63),
        e.distance as u64,
        kind_code(e.kind),
        e.is_mem as u64,
        neighbor_color as u64,
    ]
}

/// Runs color refinement to a fixed point. Colors are dense ranks in
/// `0..k`; refinement only ever splits classes (each signature embeds the
/// previous color), so the fixed point is reached when the class count
/// stops growing.
fn refine(graph: &DepGraph, colors: &mut Vec<u32>) {
    let n = graph.num_nodes();
    loop {
        let mut sigs: Vec<Vec<u64>> = Vec::with_capacity(n);
        for v in graph.nodes() {
            let mut s: Vec<u64> = vec![colors[v.index()] as u64];
            let mut outs: Vec<[u64; 5]> = graph
                .succs(v)
                .map(|e| edge_sig(e, colors[e.to.index()]))
                .collect();
            outs.sort_unstable();
            s.push(u64::MAX); // separator
            for o in &outs {
                s.extend_from_slice(o);
            }
            let mut ins: Vec<[u64; 5]> = graph
                .preds(v)
                .map(|e| edge_sig(e, colors[e.from.index()]))
                .collect();
            ins.sort_unstable();
            s.push(u64::MAX);
            for i in &ins {
                s.extend_from_slice(i);
            }
            sigs.push(s);
        }
        let mut uniq: Vec<&Vec<u64>> = sigs.iter().collect();
        uniq.sort_unstable();
        uniq.dedup();
        let old_classes = colors.iter().max().map_or(0, |&c| c as usize + 1);
        for (i, c) in colors.iter_mut().enumerate() {
            *c = uniq.binary_search(&&sigs[i]).unwrap() as u32;
        }
        if uniq.len() == old_classes {
            return;
        }
    }
}

/// Refines `colors`, then either reads off the discrete ordering or
/// branches on the first ambiguous class, returning the lexicographically
/// smallest `(encoding, order)` over all branches.
fn search(graph: &DepGraph, labels: &[u64], mut colors: Vec<u32>) -> (Vec<u8>, Vec<NodeId>) {
    refine(graph, &mut colors);
    let n = graph.num_nodes();

    // Smallest color whose class holds more than one node, if any.
    let mut counts = vec![0u32; n];
    for &c in &colors {
        counts[c as usize] += 1;
    }
    let target = counts.iter().position(|&k| k > 1);

    let Some(target) = target else {
        // Discrete: colors are a permutation of 0..n.
        let mut order = vec![NodeId(0); n];
        for (i, &c) in colors.iter().enumerate() {
            order[c as usize] = NodeId(i as u32);
        }
        return (encode(graph, labels, &order), order);
    };

    let target = target as u32;
    let mut best: Option<(Vec<u8>, Vec<NodeId>)> = None;
    for v in 0..n {
        if colors[v] != target {
            continue;
        }
        // Individualize node v: it keeps `target`, the rest of its class
        // and every later class shift up by one. Relative order of all
        // other classes is preserved, so this is a strict refinement.
        let branched: Vec<u32> = colors
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                if c > target || (c == target && i != v) {
                    c + 1
                } else {
                    c
                }
            })
            .collect();
        let candidate = search(graph, labels, branched);
        if best.as_ref().is_none_or(|b| candidate.0 < b.0) {
            best = Some(candidate);
        }
    }
    best.expect("ambiguous class is non-empty")
}

/// Serializes the labeled graph under the given node ordering: node and
/// edge counts, labels in canonical order, then the canonically indexed
/// edge list sorted bytewise. Contains everything [`DepGraph`] and the
/// labels describe, so equal encodings imply isomorphic labeled graphs.
fn encode(graph: &DepGraph, labels: &[u64], order: &[NodeId]) -> Vec<u8> {
    let n = graph.num_nodes();
    let mut position = vec![0u32; n];
    for (p, &v) in order.iter().enumerate() {
        position[v.index()] = p as u32;
    }
    let mut out = Vec::with_capacity(16 + 8 * n + 32 * graph.num_edges());
    out.extend_from_slice(&(n as u64).to_be_bytes());
    out.extend_from_slice(&(graph.num_edges() as u64).to_be_bytes());
    for &v in order {
        out.extend_from_slice(&labels[v.index()].to_be_bytes());
    }
    let mut edges: Vec<[u8; 28]> = graph
        .edges()
        .iter()
        .map(|e| {
            let mut b = [0u8; 28];
            b[0..4].copy_from_slice(&position[e.from.index()].to_be_bytes());
            b[4..8].copy_from_slice(&position[e.to.index()].to_be_bytes());
            // Shift into unsigned space so byte order matches numeric order.
            b[8..16].copy_from_slice(&(e.delay as u64).wrapping_add(1 << 63).to_be_bytes());
            b[16..20].copy_from_slice(&e.distance.to_be_bytes());
            b[20..24].copy_from_slice(&(kind_code(e.kind) as u32).to_be_bytes());
            b[24..28].copy_from_slice(&(e.is_mem as u32).to_be_bytes());
            b
        })
        .collect();
    edges.sort_unstable();
    for e in &edges {
        out.extend_from_slice(e);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(labels: &[u64]) -> (DepGraph, Vec<u64>) {
        let mut g = DepGraph::with_nodes(labels.len());
        for i in 1..labels.len() {
            g.add_edge(
                NodeId(i as u32 - 1),
                NodeId(i as u32),
                1,
                0,
                DepKind::Flow,
                false,
            );
        }
        (g, labels.to_vec())
    }

    #[test]
    fn reversed_chain_matches_forward_chain_key() {
        let (g, labels) = chain(&[7, 8, 9]);
        // Same chain built with node ids reversed: 2 -> 1 -> 0.
        let mut h = DepGraph::with_nodes(3);
        h.add_edge(NodeId(2), NodeId(1), 1, 0, DepKind::Flow, false);
        h.add_edge(NodeId(1), NodeId(0), 1, 0, DepKind::Flow, false);
        let hlabels = [9, 8, 7];
        assert_eq!(
            canonical_form(&g, &labels).encoding,
            canonical_form(&h, &hlabels).encoding
        );
        assert_eq!(canonical_key(&g, &labels), canonical_key(&h, &hlabels));
    }

    #[test]
    fn order_and_position_are_inverse_permutations() {
        let (g, labels) = chain(&[5, 5, 5, 5]);
        let c = canonical_form(&g, &labels);
        assert_eq!(c.order.len(), 4);
        for (p, &v) in c.order.iter().enumerate() {
            assert_eq!(c.position[v.index()], p);
        }
        let mut seen = c.order.clone();
        seen.sort_unstable();
        assert_eq!(seen, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn label_changes_change_the_key() {
        let (g, labels) = chain(&[1, 2, 3]);
        let (h, other) = chain(&[1, 2, 4]);
        assert_ne!(canonical_key(&g, &labels), canonical_key(&h, &other));
    }

    #[test]
    fn edge_attribute_changes_change_the_key() {
        let mut g = DepGraph::with_nodes(2);
        g.add_edge(NodeId(0), NodeId(1), 1, 0, DepKind::Flow, false);
        let mut h = DepGraph::with_nodes(2);
        h.add_edge(NodeId(0), NodeId(1), 1, 1, DepKind::Flow, false);
        let labels = [3, 3];
        assert_ne!(canonical_key(&g, &labels), canonical_key(&h, &labels));
        let mut k = DepGraph::with_nodes(2);
        k.add_edge(NodeId(0), NodeId(1), 1, 0, DepKind::Anti, false);
        assert_ne!(canonical_key(&g, &labels), canonical_key(&k, &labels));
    }

    #[test]
    fn symmetric_graph_canonicalizes_via_branching() {
        // Two disconnected identical 2-cycles: refinement alone cannot
        // separate them, so the individualization branch must run — and
        // any numbering of the four nodes must agree.
        let build = |perm: [u32; 4]| {
            let mut g = DepGraph::with_nodes(4);
            g.add_edge(NodeId(perm[0]), NodeId(perm[1]), 2, 1, DepKind::Flow, false);
            g.add_edge(NodeId(perm[1]), NodeId(perm[0]), 1, 0, DepKind::Anti, false);
            g.add_edge(NodeId(perm[2]), NodeId(perm[3]), 2, 1, DepKind::Flow, false);
            g.add_edge(NodeId(perm[3]), NodeId(perm[2]), 1, 0, DepKind::Anti, false);
            g
        };
        let labels = [4u64; 4];
        let base = canonical_key(&build([0, 1, 2, 3]), &labels);
        for perm in [[1, 0, 3, 2], [2, 3, 0, 1], [3, 2, 1, 0], [0, 2, 1, 3]] {
            // The last permutation mixes the two cycles' node ids; the
            // graphs are still isomorphic as labeled multigraphs.
            assert_eq!(base, canonical_key(&build(perm), &labels), "{perm:?}");
        }
    }

    #[test]
    fn empty_and_singleton_graphs() {
        let g = DepGraph::new();
        let c = canonical_form(&g, &[]);
        assert!(c.order.is_empty());
        let mut h = DepGraph::new();
        h.add_node();
        let c1 = canonical_form(&h, &[42]);
        assert_eq!(c1.order, vec![NodeId(0)]);
        assert_ne!(c.encoding, c1.encoding);
    }

    #[test]
    #[should_panic(expected = "one label per node")]
    fn label_count_mismatch_panics() {
        let mut g = DepGraph::new();
        g.add_node();
        let _ = canonical_form(&g, &[]);
    }
}
