//! Strongly connected components (Tarjan's algorithm, iterative).
//!
//! The paper identifies SCCs with the depth-first algorithm of Aho, Hopcroft
//! and Ullman in `O(N+E)` time (§2.2, §4.4) and computes the RecMII one SCC
//! at a time, because *"there are very few SCCs that are large, and O(N³) is
//! quite a bit more tolerable for the small values of N encountered when N
//! is the number of operations in a single SCC"*.

use ims_prof::{phase, ProfSink};

use crate::graph::{DepGraph, NodeId};

/// The SCC decomposition of a [`DepGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SccInfo {
    /// For each node, the index of its component in `components`.
    pub component_of: Vec<usize>,
    /// The components. They are emitted in **reverse topological order** of
    /// the condensation (a Tarjan property): every edge between distinct
    /// components goes from a later component to an earlier one.
    pub components: Vec<Vec<NodeId>>,
}

impl SccInfo {
    /// Whether component `c` is **non-trivial**: it contains more than one
    /// operation. (§4.2: *"A non-trivial SCC is one containing more than
    /// one operation."*)
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn is_non_trivial(&self, c: usize) -> bool {
        self.components[c].len() > 1
    }

    /// Number of non-trivial components.
    pub fn num_non_trivial(&self) -> usize {
        (0..self.components.len())
            .filter(|&c| self.is_non_trivial(c))
            .count()
    }

    /// Whether component `c` lies on a recurrence: it is non-trivial, or its
    /// single node has a self-edge in `graph`.
    pub fn is_recurrence(&self, c: usize, graph: &DepGraph) -> bool {
        if self.is_non_trivial(c) {
            return true;
        }
        let n = self.components[c][0];
        graph.succs(n).any(|e| e.to == n)
    }

    /// Components in topological order of the condensation (sources first).
    pub fn topological(&self) -> impl Iterator<Item = &Vec<NodeId>> {
        self.components.iter().rev()
    }
}

/// Computes the strongly connected components of `graph` with an iterative
/// Tarjan traversal.
///
/// `work` is incremented once per edge examined plus once per node visited,
/// giving the `O(N+E)` operation count reported in the paper's Table 4.
/// Any [`ProfSink`] works: a plain `&mut u64` keeps the historical counter
/// behaviour, a `MetricsRegistry` files the count under
/// [`phase::GRAPH_SCC_WORK`].
pub fn sccs<W: ProfSink>(graph: &DepGraph, work: &mut W) -> SccInfo {
    let n = graph.num_nodes();
    const UNVISITED: u32 = u32::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut components: Vec<Vec<NodeId>> = Vec::new();
    let mut component_of = vec![usize::MAX; n];

    // Explicit DFS stack: (node, iterator position into its successor list).
    let mut call_stack: Vec<(u32, usize)> = Vec::new();

    // Pre-resolve successor targets once so the stack frames can index them.
    let succ_targets: Vec<Vec<u32>> = (0..n)
        .map(|v| graph.succs(NodeId(v as u32)).map(|e| e.to.0).collect())
        .collect();

    for root in 0..n as u32 {
        if index[root as usize] != UNVISITED {
            continue;
        }
        call_stack.push((root, 0));
        index[root as usize] = next_index;
        lowlink[root as usize] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root as usize] = true;
        work.count(phase::GRAPH_SCC_WORK, 1);

        while let Some(&mut (v, ref mut pos)) = call_stack.last_mut() {
            let vi = v as usize;
            if *pos < succ_targets[vi].len() {
                let w = succ_targets[vi][*pos];
                *pos += 1;
                work.count(phase::GRAPH_SCC_WORK, 1);
                let wi = w as usize;
                if index[wi] == UNVISITED {
                    index[wi] = next_index;
                    lowlink[wi] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[wi] = true;
                    call_stack.push((w, 0));
                    work.count(phase::GRAPH_SCC_WORK, 1);
                } else if on_stack[wi] {
                    lowlink[vi] = lowlink[vi].min(index[wi]);
                }
            } else {
                call_stack.pop();
                if let Some(&mut (parent, _)) = call_stack.last_mut() {
                    let pi = parent as usize;
                    lowlink[pi] = lowlink[pi].min(lowlink[vi]);
                }
                if lowlink[vi] == index[vi] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("Tarjan stack never underflows");
                        on_stack[w as usize] = false;
                        component_of[w as usize] = components.len();
                        comp.push(NodeId(w));
                        if w == v {
                            break;
                        }
                    }
                    comp.sort();
                    components.push(comp);
                }
            }
        }
    }

    SccInfo {
        component_of,
        components,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DepKind;

    fn edge(g: &mut DepGraph, a: NodeId, b: NodeId) {
        g.add_edge(a, b, 1, 0, DepKind::Flow, false);
    }

    #[test]
    fn acyclic_graph_has_singleton_components() {
        let mut g = DepGraph::with_nodes(3);
        let (a, b, c) = (NodeId(0), NodeId(1), NodeId(2));
        edge(&mut g, a, b);
        edge(&mut g, b, c);
        let mut w = 0;
        let info = sccs(&g, &mut w);
        assert_eq!(info.components.len(), 3);
        assert_eq!(info.num_non_trivial(), 0);
        assert!(w >= 3);
    }

    #[test]
    fn cycle_is_one_component() {
        let mut g = DepGraph::with_nodes(4);
        let ns: Vec<NodeId> = (0..4).map(NodeId).collect();
        edge(&mut g, ns[0], ns[1]);
        edge(&mut g, ns[1], ns[2]);
        edge(&mut g, ns[2], ns[0]);
        edge(&mut g, ns[2], ns[3]);
        let mut w = 0;
        let info = sccs(&g, &mut w);
        assert_eq!(info.components.len(), 2);
        assert_eq!(info.num_non_trivial(), 1);
        let big = info.component_of[0];
        assert_eq!(info.components[big], vec![ns[0], ns[1], ns[2]]);
        assert_eq!(info.component_of[1], big);
        assert_eq!(info.component_of[2], big);
        assert_ne!(info.component_of[3], big);
    }

    #[test]
    fn reverse_topological_emission() {
        // a -> b: b's component must be emitted before a's.
        let mut g = DepGraph::with_nodes(2);
        edge(&mut g, NodeId(0), NodeId(1));
        let mut w = 0;
        let info = sccs(&g, &mut w);
        assert!(info.component_of[1] < info.component_of[0]);
        // topological() reverses: sources first.
        let topo: Vec<&Vec<NodeId>> = info.topological().collect();
        assert_eq!(topo[0], &vec![NodeId(0)]);
    }

    #[test]
    fn self_edge_is_a_recurrence_but_trivial() {
        let mut g = DepGraph::with_nodes(2);
        g.add_edge(NodeId(0), NodeId(0), 1, 1, DepKind::Flow, false);
        let mut w = 0;
        let info = sccs(&g, &mut w);
        assert_eq!(info.components.len(), 2);
        assert_eq!(info.num_non_trivial(), 0);
        let c0 = info.component_of[0];
        let c1 = info.component_of[1];
        assert!(info.is_recurrence(c0, &g));
        assert!(!info.is_recurrence(c1, &g));
    }

    #[test]
    fn two_disjoint_cycles() {
        let mut g = DepGraph::with_nodes(4);
        edge(&mut g, NodeId(0), NodeId(1));
        edge(&mut g, NodeId(1), NodeId(0));
        edge(&mut g, NodeId(2), NodeId(3));
        edge(&mut g, NodeId(3), NodeId(2));
        let mut w = 0;
        let info = sccs(&g, &mut w);
        assert_eq!(info.components.len(), 2);
        assert_eq!(info.num_non_trivial(), 2);
    }

    #[test]
    fn multi_edges_do_not_confuse_tarjan() {
        let mut g = DepGraph::with_nodes(2);
        edge(&mut g, NodeId(0), NodeId(1));
        edge(&mut g, NodeId(0), NodeId(1));
        edge(&mut g, NodeId(1), NodeId(0));
        let mut w = 0;
        let info = sccs(&g, &mut w);
        assert_eq!(info.components.len(), 1);
    }

    #[test]
    fn empty_graph() {
        let g = DepGraph::new();
        let mut w = 0;
        let info = sccs(&g, &mut w);
        assert!(info.components.is_empty());
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        // The iterative implementation must handle long chains.
        let n = 100_000;
        let mut g = DepGraph::with_nodes(n);
        for i in 0..n - 1 {
            edge(&mut g, NodeId(i as u32), NodeId(i as u32 + 1));
        }
        let mut w = 0;
        let info = sccs(&g, &mut w);
        assert_eq!(info.components.len(), n);
    }
}
