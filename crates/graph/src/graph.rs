//! The dependence graph data structure.

use std::fmt;

/// A vertex of a [`DepGraph`] — one operation of the loop (or a START/STOP
/// pseudo-operation added by the scheduler).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Zero-based index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of an edge within a [`DepGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// Zero-based index of this edge.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The kind of a dependence edge. *"The dependence in question may either
/// be data dependence (flow, anti- or output) or control dependence."*
/// (§2.2)
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DepKind {
    /// True (read-after-write) dependence.
    Flow,
    /// Anti (write-after-read) dependence.
    Anti,
    /// Output (write-after-write) dependence.
    Output,
    /// Control dependence (e.g. on the guarding predicate or the branch).
    Control,
}

impl fmt::Display for DepKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DepKind::Flow => "flow",
            DepKind::Anti => "anti",
            DepKind::Output => "output",
            DepKind::Control => "control",
        };
        f.write_str(s)
    }
}

/// A dependence edge: the successor must issue at least `delay` cycles after
/// the predecessor, measured across `distance` iterations.
///
/// Under modulo scheduling with initiation interval `II` the constraint is
/// `time(to) ≥ time(from) + delay − II·distance` (§2.2). `delay` may be
/// negative for anti-/output dependences on a VLIW with non-unit latencies
/// (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepEdge {
    /// Predecessor operation.
    pub from: NodeId,
    /// Successor operation.
    pub to: NodeId,
    /// Minimum issue-time separation in cycles.
    pub delay: i64,
    /// Iterations separating the endpoints (0 = same iteration).
    pub distance: u32,
    /// The dependence kind.
    pub kind: DepKind,
    /// Whether the dependence is through memory (rather than a register or
    /// predicate).
    pub is_mem: bool,
}

/// A directed multigraph of dependences with per-node adjacency lists.
///
/// *"There may be multiple edges, possibly with opposite directions,
/// between the same pair of vertices."* (§2.2) — hence a multigraph.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DepGraph {
    edges: Vec<DepEdge>,
    succ: Vec<Vec<EdgeId>>,
    pred: Vec<Vec<EdgeId>>,
}

impl DepGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a graph with `n` nodes and no edges.
    pub fn with_nodes(n: usize) -> Self {
        DepGraph {
            edges: Vec::new(),
            succ: vec![Vec::new(); n],
            pred: vec![Vec::new(); n],
        }
    }

    /// Adds a node, returning its id.
    pub fn add_node(&mut self) -> NodeId {
        self.succ.push(Vec::new());
        self.pred.push(Vec::new());
        NodeId(self.succ.len() as u32 - 1)
    }

    /// Adds a dependence edge.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_edge(
        &mut self,
        from: NodeId,
        to: NodeId,
        delay: i64,
        distance: u32,
        kind: DepKind,
        is_mem: bool,
    ) -> EdgeId {
        assert!(from.index() < self.num_nodes(), "from node out of range");
        assert!(to.index() < self.num_nodes(), "to node out of range");
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(DepEdge {
            from,
            to,
            delay,
            distance,
            kind,
            is_mem,
        });
        self.succ[from.index()].push(id);
        self.pred[to.index()].push(id);
        id
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.succ.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// All edges, indexable by [`EdgeId::index`].
    pub fn edges(&self) -> &[DepEdge] {
        &self.edges
    }

    /// The edge with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn edge(&self, id: EdgeId) -> &DepEdge {
        &self.edges[id.index()]
    }

    /// Outgoing edges of `node`.
    pub fn succs(&self, node: NodeId) -> impl Iterator<Item = &DepEdge> + '_ {
        self.succ[node.index()].iter().map(|e| &self.edges[e.index()])
    }

    /// Incoming edges of `node`.
    pub fn preds(&self, node: NodeId) -> impl Iterator<Item = &DepEdge> + '_ {
        self.pred[node.index()].iter().map(|e| &self.edges[e.index()])
    }

    /// All node ids, `0..num_nodes`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.num_nodes() as u32).map(NodeId)
    }
}

impl fmt::Display for DepGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "graph: {} nodes, {} edges", self.num_nodes(), self.num_edges())?;
        for e in &self.edges {
            writeln!(
                f,
                "  {} -> {}  delay={} dist={} {}{}",
                e.from,
                e.to,
                e.delay,
                e.distance,
                e.kind,
                if e.is_mem { " (mem)" } else { "" }
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjacency_lists_track_edges() {
        let mut g = DepGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, b, 1, 0, DepKind::Flow, false);
        g.add_edge(b, a, 0, 1, DepKind::Anti, false);
        g.add_edge(a, b, 2, 1, DepKind::Output, true);
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.succs(a).count(), 2);
        assert_eq!(g.preds(b).count(), 2);
        assert_eq!(g.succs(b).count(), 1);
        let mem_edges: Vec<_> = g.edges().iter().filter(|e| e.is_mem).collect();
        assert_eq!(mem_edges.len(), 1);
    }

    #[test]
    fn self_edges_allowed() {
        let mut g = DepGraph::new();
        let a = g.add_node();
        g.add_edge(a, a, 3, 1, DepKind::Flow, false);
        assert_eq!(g.succs(a).count(), 1);
        assert_eq!(g.preds(a).count(), 1);
    }

    #[test]
    fn with_nodes_preallocates() {
        let g = DepGraph::with_nodes(5);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.nodes().count(), 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_endpoint_panics() {
        let mut g = DepGraph::new();
        let a = g.add_node();
        g.add_edge(a, NodeId(7), 0, 0, DepKind::Flow, false);
    }

    #[test]
    fn display_lists_edges() {
        let mut g = DepGraph::new();
        let a = g.add_node();
        g.add_edge(a, a, 1, 1, DepKind::Flow, true);
        let s = g.to_string();
        assert!(s.contains("(mem)"), "got {s}");
        assert!(s.contains("dist=1"), "got {s}");
    }
}
