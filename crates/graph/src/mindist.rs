//! The MinDist matrix (minimal cost-to-time-ratio cycle machinery).
//!
//! §2.2: *"The algorithm ComputeMinDist computes, for a given II, the
//! MinDist matrix whose [i, j] entry specifies the minimum permissible
//! interval between the time at which operation i is scheduled and the time
//! at which operation j, in the same iteration, is scheduled."* An entry is
//! `−∞` when no path constrains the pair. A positive diagonal entry means
//! the II is infeasible with respect to recurrences.
//!
//! The computation is a max-plus Floyd–Warshall over edge weights
//! `delay − II·distance`, restricted to an arbitrary node subset so it can
//! be run one SCC at a time as the paper recommends.

use ims_prof::{phase, ProfSink};

use crate::graph::{DepGraph, NodeId};

/// Sentinel for "no path": far enough below zero that adding two of them
/// cannot overflow an `i64`.
pub const NEG_INF: i64 = i64::MIN / 4;

/// The MinDist matrix over a node subset, for a specific candidate II.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinDist {
    ii: i64,
    nodes: Vec<NodeId>,
    /// Position of each graph node inside `nodes`, or `usize::MAX`.
    position: Vec<usize>,
    /// Row-major `nodes.len() × nodes.len()` matrix.
    d: Vec<i64>,
}

impl MinDist {
    /// The II this matrix was computed for.
    pub fn ii(&self) -> i64 {
        self.ii
    }

    /// The node subset the matrix covers, in row order.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// `MinDist[i, j]` by graph node id: the minimum permissible interval
    /// from `i`'s issue to `j`'s issue within one iteration, or [`NEG_INF`]
    /// if unconstrained.
    ///
    /// # Panics
    ///
    /// Panics if either node is not part of the covered subset.
    pub fn get(&self, i: NodeId, j: NodeId) -> i64 {
        let pi = self.position[i.index()];
        let pj = self.position[j.index()];
        assert!(
            pi != usize::MAX && pj != usize::MAX,
            "node not covered by this MinDist"
        );
        self.d[pi * self.nodes.len() + pj]
    }

    /// The largest diagonal entry, or [`NEG_INF`] for an empty subset.
    pub fn max_diagonal(&self) -> i64 {
        let n = self.nodes.len();
        (0..n).map(|i| self.d[i * n + i]).max().unwrap_or(NEG_INF)
    }

    /// Whether the candidate II satisfies every recurrence in the subset:
    /// no positive diagonal entry.
    pub fn feasible(&self) -> bool {
        self.max_diagonal() <= 0
    }

    /// Whether some recurrence is *critical* at this II: the largest
    /// diagonal entry is exactly zero, i.e. *"at least one of the diagonal
    /// entries should be equal to 0"* at the RecMII.
    pub fn tight(&self) -> bool {
        self.max_diagonal() == 0
    }

    /// The nodes whose diagonal entry achieves [`max_diagonal`]
    /// (`MinDist[i, i] == max_diagonal`), in row order. At a tight II these
    /// are exactly the nodes on a critical recurrence circuit — the set
    /// RecMII attribution names when full circuit enumeration is
    /// truncated. Empty for an empty subset.
    ///
    /// [`max_diagonal`]: MinDist::max_diagonal
    pub fn critical_nodes(&self) -> Vec<NodeId> {
        let n = self.nodes.len();
        let max = self.max_diagonal();
        (0..n)
            .filter(|&i| self.d[i * n + i] == max)
            .map(|i| self.nodes[i])
            .collect()
    }
}

/// A reusable MinDist computation over a fixed node subset.
///
/// The subset mapping (graph node → matrix position) and the internal edge
/// list only depend on the graph and the subset, not on the candidate II,
/// so callers that probe many IIs over the same subset — the geometric
/// probe plus binary search of the RecMII computation — build the solver
/// once and call [`MinDistSolver::probe`] per candidate. The distance
/// matrix is kept as scratch and refilled on every probe, so repeated
/// probes allocate nothing.
#[derive(Debug, Clone)]
pub struct MinDistSolver {
    nodes: Vec<NodeId>,
    /// Position of each graph node inside `nodes`, or `usize::MAX`.
    position: Vec<usize>,
    /// Edges internal to the subset, as `(from_pos, to_pos, delay,
    /// distance)`.
    edges: Vec<(usize, usize, i64, u32)>,
    /// Scratch `nodes.len() × nodes.len()` matrix, refilled per probe.
    d: Vec<i64>,
}

impl MinDistSolver {
    /// Prepares a solver for `nodes` (any subset of `graph`'s nodes,
    /// typically one SCC or the whole graph).
    ///
    /// Edges with an endpoint outside `nodes` are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` contains duplicates.
    pub fn new(graph: &DepGraph, nodes: &[NodeId]) -> Self {
        let n = nodes.len();
        let mut position = vec![usize::MAX; graph.num_nodes()];
        for (p, node) in nodes.iter().enumerate() {
            assert!(
                position[node.index()] == usize::MAX,
                "duplicate node in MinDist subset"
            );
            position[node.index()] = p;
        }
        let mut edges = Vec::new();
        for (pi, &node) in nodes.iter().enumerate() {
            for e in graph.succs(node) {
                let pj = position[e.to.index()];
                if pj == usize::MAX {
                    continue;
                }
                edges.push((pi, pj, e.delay, e.distance));
            }
        }
        MinDistSolver {
            nodes: nodes.to_vec(),
            position,
            edges,
            d: vec![NEG_INF; n * n],
        }
    }

    /// Runs the max-plus Floyd–Warshall for candidate `ii` into the scratch
    /// matrix. `work` counts innermost-loop executions exactly as
    /// [`compute_min_dist`] does.
    fn relax<W: ProfSink>(&mut self, ii: i64, work: &mut W) {
        assert!(ii >= 1, "candidate II must be at least 1");
        let n = self.nodes.len();
        self.d.fill(NEG_INF);
        // Initialize from edges internal to the subset:
        // MinDist[i, j] ≥ delay(e) − II·distance(e).
        for &(pi, pj, delay, distance) in &self.edges {
            let w = delay - ii * distance as i64;
            let cell = &mut self.d[pi * n + pj];
            if w > *cell {
                *cell = w;
            }
        }

        // Max-plus Floyd–Warshall.
        let d = &mut self.d;
        for k in 0..n {
            for i in 0..n {
                let dik = d[i * n + k];
                if dik == NEG_INF {
                    continue;
                }
                for j in 0..n {
                    work.count(phase::GRAPH_MINDIST_WORK, 1);
                    let dkj = d[k * n + j];
                    if dkj == NEG_INF {
                        continue;
                    }
                    let cand = dik + dkj;
                    let cell = &mut d[i * n + j];
                    if cand > *cell {
                        *cell = cand;
                    }
                }
            }
        }
    }

    /// Whether candidate `ii` satisfies every recurrence in the subset (no
    /// positive diagonal entry), without materializing a [`MinDist`].
    pub fn probe<W: ProfSink>(&mut self, ii: i64, work: &mut W) -> bool {
        self.relax(ii, work);
        let n = self.nodes.len();
        (0..n).all(|i| self.d[i * n + i] <= 0)
    }

    /// Computes the full [`MinDist`] matrix for candidate `ii`.
    pub fn solve<W: ProfSink>(&mut self, ii: i64, work: &mut W) -> MinDist {
        self.relax(ii, work);
        MinDist {
            ii,
            nodes: self.nodes.clone(),
            position: self.position.clone(),
            d: self.d.clone(),
        }
    }
}

/// Computes the MinDist matrix for `nodes` (any subset of `graph`'s nodes,
/// typically one SCC or the whole graph) at candidate initiation interval
/// `ii`.
///
/// Edges with an endpoint outside `nodes` are ignored. `work` is
/// incremented once per innermost-loop execution of the Floyd–Warshall
/// relaxation — the quantity the paper's Table 4 fits against N (the
/// *"expected number of times the innermost loop of ComputeMinDist is
/// executed"*). Callers probing many IIs over the same subset should build
/// a [`MinDistSolver`] once instead.
///
/// # Panics
///
/// Panics if `ii < 1` or if `nodes` contains duplicates.
pub fn compute_min_dist<W: ProfSink>(
    graph: &DepGraph,
    nodes: &[NodeId],
    ii: i64,
    work: &mut W,
) -> MinDist {
    MinDistSolver::new(graph, nodes).solve(ii, work)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DepKind;

    fn chain3() -> (DepGraph, Vec<NodeId>) {
        let mut g = DepGraph::with_nodes(3);
        g.add_edge(NodeId(0), NodeId(1), 2, 0, DepKind::Flow, false);
        g.add_edge(NodeId(1), NodeId(2), 3, 0, DepKind::Flow, false);
        (g, vec![NodeId(0), NodeId(1), NodeId(2)])
    }

    #[test]
    fn paths_accumulate_delay() {
        let (g, nodes) = chain3();
        let mut w = 0;
        let md = compute_min_dist(&g, &nodes, 1, &mut w);
        assert_eq!(md.get(NodeId(0), NodeId(1)), 2);
        assert_eq!(md.get(NodeId(0), NodeId(2)), 5);
        assert_eq!(md.get(NodeId(2), NodeId(0)), NEG_INF);
        assert!(md.feasible());
        assert!(w > 0);
    }

    #[test]
    fn distance_subtracts_ii() {
        let mut g = DepGraph::with_nodes(2);
        g.add_edge(NodeId(0), NodeId(1), 10, 2, DepKind::Flow, false);
        let nodes = [NodeId(0), NodeId(1)];
        let mut w = 0;
        let md = compute_min_dist(&g, &nodes, 3, &mut w);
        assert_eq!(md.get(NodeId(0), NodeId(1)), 10 - 2 * 3);
    }

    #[test]
    fn recurrence_feasibility_threshold() {
        // Cycle delay 7, distance 2 => RecMII = ceil(7/2) = 4.
        let mut g = DepGraph::with_nodes(2);
        g.add_edge(NodeId(0), NodeId(1), 4, 0, DepKind::Flow, false);
        g.add_edge(NodeId(1), NodeId(0), 3, 2, DepKind::Flow, false);
        let nodes = [NodeId(0), NodeId(1)];
        let mut w = 0;
        assert!(!compute_min_dist(&g, &nodes, 3, &mut w).feasible());
        let at4 = compute_min_dist(&g, &nodes, 4, &mut w);
        assert!(at4.feasible());
        // Slack exists at 4 (7 - 8 = -1 < 0), so it is not tight.
        assert_eq!(at4.max_diagonal(), -1);
        assert!(!at4.tight());
    }

    #[test]
    fn tight_at_exact_recmii() {
        // Cycle delay 6, distance 2 => RecMII = 3 exactly; diagonal hits 0.
        let mut g = DepGraph::with_nodes(2);
        g.add_edge(NodeId(0), NodeId(1), 3, 0, DepKind::Flow, false);
        g.add_edge(NodeId(1), NodeId(0), 3, 2, DepKind::Flow, false);
        let nodes = [NodeId(0), NodeId(1)];
        let mut w = 0;
        let md = compute_min_dist(&g, &nodes, 3, &mut w);
        assert!(md.feasible());
        assert!(md.tight());
        assert_eq!(md.critical_nodes(), vec![NodeId(0), NodeId(1)]);
    }

    #[test]
    fn critical_nodes_name_only_the_binding_cycle() {
        // Two disjoint cycles in one subset: delay 6 and delay 4, both
        // distance 2. At II 3 the first is tight, the second has slack.
        let mut g = DepGraph::with_nodes(4);
        g.add_edge(NodeId(0), NodeId(1), 3, 0, DepKind::Flow, false);
        g.add_edge(NodeId(1), NodeId(0), 3, 2, DepKind::Flow, false);
        g.add_edge(NodeId(2), NodeId(3), 2, 0, DepKind::Flow, false);
        g.add_edge(NodeId(3), NodeId(2), 2, 2, DepKind::Flow, false);
        let nodes: Vec<NodeId> = (0..4).map(NodeId).collect();
        let mut w = 0;
        let md = compute_min_dist(&g, &nodes, 3, &mut w);
        assert!(md.tight());
        assert_eq!(md.critical_nodes(), vec![NodeId(0), NodeId(1)]);
    }

    #[test]
    fn subset_ignores_external_edges() {
        let (g, _) = chain3();
        let mut w = 0;
        let md = compute_min_dist(&g, &[NodeId(0), NodeId(1)], 1, &mut w);
        assert_eq!(md.get(NodeId(0), NodeId(1)), 2);
        // Node 2 is outside; nothing blows up and positions are respected.
        assert_eq!(md.nodes().len(), 2);
    }

    #[test]
    fn self_edge_diagonal() {
        let mut g = DepGraph::with_nodes(1);
        g.add_edge(NodeId(0), NodeId(0), 3, 1, DepKind::Flow, false);
        let mut w = 0;
        let md = compute_min_dist(&g, &[NodeId(0)], 2, &mut w);
        // At II=2 the loop gain is +1 per traversal; the relaxation may
        // compose it with itself, so only positivity is guaranteed.
        assert!(md.get(NodeId(0), NodeId(0)) > 0);
        assert!(!md.feasible());
        let md = compute_min_dist(&g, &[NodeId(0)], 3, &mut w);
        assert!(md.feasible() && md.tight());
    }

    #[test]
    fn parallel_edges_take_max_weight() {
        let mut g = DepGraph::with_nodes(2);
        g.add_edge(NodeId(0), NodeId(1), 1, 0, DepKind::Flow, false);
        g.add_edge(NodeId(0), NodeId(1), 5, 0, DepKind::Output, false);
        let mut w = 0;
        let md = compute_min_dist(&g, &[NodeId(0), NodeId(1)], 1, &mut w);
        assert_eq!(md.get(NodeId(0), NodeId(1)), 5);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_ii_panics() {
        let g = DepGraph::with_nodes(1);
        let mut w = 0;
        let _ = compute_min_dist(&g, &[NodeId(0)], 0, &mut w);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_nodes_panic() {
        let g = DepGraph::with_nodes(1);
        let mut w = 0;
        let _ = compute_min_dist(&g, &[NodeId(0), NodeId(0)], 1, &mut w);
    }

    #[test]
    #[should_panic(expected = "not covered")]
    fn uncovered_lookup_panics() {
        let g = DepGraph::with_nodes(2);
        let mut w = 0;
        let md = compute_min_dist(&g, &[NodeId(0)], 1, &mut w);
        let _ = md.get(NodeId(0), NodeId(1));
    }

    #[test]
    fn solver_probes_match_fresh_computation() {
        // Cycle delay 7, distance 2 => RecMII 4; reusing one solver across
        // many IIs must agree with from-scratch computation, including the
        // work counts.
        let mut g = DepGraph::with_nodes(2);
        g.add_edge(NodeId(0), NodeId(1), 4, 0, DepKind::Flow, false);
        g.add_edge(NodeId(1), NodeId(0), 3, 2, DepKind::Flow, false);
        let nodes = [NodeId(0), NodeId(1)];
        let mut solver = MinDistSolver::new(&g, &nodes);
        for ii in 1..=6 {
            let (mut w_solver, mut w_fresh) = (0u64, 0u64);
            let fresh = compute_min_dist(&g, &nodes, ii, &mut w_fresh);
            assert_eq!(solver.probe(ii, &mut w_solver), fresh.feasible(), "ii {ii}");
            assert_eq!(w_solver, w_fresh, "work count diverged at ii {ii}");
            assert_eq!(solver.solve(ii, &mut w_solver), fresh);
        }
    }

    #[test]
    fn negative_delays_supported() {
        // Anti-dependence delays can be negative (Table 1).
        let mut g = DepGraph::with_nodes(2);
        g.add_edge(NodeId(0), NodeId(1), -3, 0, DepKind::Anti, false);
        let mut w = 0;
        let md = compute_min_dist(&g, &[NodeId(0), NodeId(1)], 1, &mut w);
        assert_eq!(md.get(NodeId(0), NodeId(1)), -3);
        assert!(md.feasible());
    }
}
