#![warn(missing_docs)]

//! Dependence-graph algorithms for modulo scheduling.
//!
//! §2.2 of the paper represents a loop body as a graph whose vertices are
//! operations and whose edges are dependences, each labelled with a
//! **delay** (minimum issue-time separation) and a **distance** (number of
//! iterations separating the endpoints). This crate provides that graph
//! ([`DepGraph`]) and the algorithms the paper runs over it:
//!
//! * **Strongly connected components** ([`sccs`], Tarjan's algorithm): the
//!   paper computes RecMII per SCC because *"the RecMII can be computed as
//!   the largest of the RecMII values for each individual SCC"*, and
//!   §4.4 measures SCC identification at `O(N+E)`.
//! * **Elementary circuits** ([`elementary_circuits`], Tiernan's
//!   algorithm): the Cydra 5 compiler's approach to RecMII enumerated all
//!   elementary circuits; we implement it as a cross-check for the MinDist
//!   method.
//! * **MinDist** ([`compute_min_dist`]): for a candidate II, the max-plus
//!   all-pairs longest-path matrix over edge weights `delay − II·distance`.
//!   *"If `MinDist[i,i]` is positive for any `i` … the II is too small"*;
//!   the smallest II with no positive diagonal entry is the RecMII.
//! * **Canonicalization** ([`canonical_form`]): an isomorphism-stable node
//!   ordering and byte encoding of a labeled dependence graph, used to
//!   content-address schedule-cache entries and dedup generated corpora.
//!
//! # Examples
//!
//! A two-operation recurrence with total delay 5 over distance 2 forces
//! `II ≥ ⌈5/2⌉ = 3`:
//!
//! ```
//! use ims_graph::{DepGraph, DepKind, compute_min_dist};
//!
//! let mut g = DepGraph::new();
//! let a = g.add_node();
//! let b = g.add_node();
//! g.add_edge(a, b, 3, 0, DepKind::Flow, false);
//! g.add_edge(b, a, 2, 2, DepKind::Flow, false);
//!
//! let nodes = [a, b];
//! let mut work = 0u64;
//! assert!(!compute_min_dist(&g, &nodes, 2, &mut work).feasible());
//! assert!(compute_min_dist(&g, &nodes, 3, &mut work).feasible());
//! ```

pub mod canon;
mod circuits;
mod graph;
mod mindist;
mod scc;

pub use canon::{canonical_form, canonical_key, CanonicalForm};
pub use circuits::{elementary_circuits, Circuit};
pub use graph::{DepEdge, DepGraph, DepKind, EdgeId, NodeId};
pub use mindist::{compute_min_dist, MinDist, MinDistSolver, NEG_INF};
pub use scc::{sccs, SccInfo};
