//! A minimal JSON reader/writer for the service wire format.
//!
//! The workspace is std-only by charter (`DESIGN.md` §7), and the profiler's
//! snapshot parser is deliberately integer-only, so the service carries its
//! own small JSON layer: a recursive-descent parser producing a [`Value`]
//! tree (numbers as `f64`, like JSON itself) and a string escaper for
//! response rendering. Responses are formatted directly with `format!` —
//! they contain only integers and strings, so no float formatting ever
//! reaches the output and byte determinism is trivial to audit.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number. `f64` represents every integer the wire format
    /// carries (|n| ≤ 2⁵³) exactly; [`Value::as_i64`] checks integrality.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. A `BTreeMap` (later duplicate keys win during parsing,
    /// like every mainstream JSON decoder) — iteration order is not
    /// semantically relevant to the wire format.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an exact integer: `Some` only for numbers with no
    /// fractional part inside `i64`'s exactly-representable range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(n) if n.fract() == 0.0 && n.abs() <= 9.0e15 => Some(*n as i64),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The fields, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Field lookup on an object; `None` for missing fields and
    /// non-objects alike.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj().and_then(|m| m.get(key))
    }
}

/// Parses one complete JSON document from `text` (surrounding whitespace
/// allowed, trailing garbage rejected).
///
/// # Errors
///
/// A human-readable description of the first syntax error, with the byte
/// offset where it was detected.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if b.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "non-UTF-8 number")?;
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000C}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "invalid \\u escape")?;
                        *pos += 4;
                        // Surrogate pairs are not needed by the wire format;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    _ => return Err(format!("invalid escape at byte {}", *pos - 1)),
                }
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences included).
                let rest = std::str::from_utf8(&b[*pos..])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

/// Escapes `s` for embedding in a JSON string literal (quotes not
/// included): the two mandatory escapes plus `\u00XX` for control
/// characters, nothing else — a canonical, byte-stable encoding.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_wire_shapes() {
        let v = parse(
            r#"{"id":"k-1","budget_ratio":2.5,"max_ii":null,"ops":["add","mul"],
               "edges":[[0,1,3,0,"flow",false]],"flag":true}"#,
        )
        .unwrap();
        assert_eq!(v.get("id").unwrap().as_str(), Some("k-1"));
        assert_eq!(v.get("budget_ratio").unwrap().as_f64(), Some(2.5));
        assert_eq!(v.get("max_ii"), Some(&Value::Null));
        assert_eq!(v.get("flag").unwrap().as_bool(), Some(true));
        let edges = v.get("edges").unwrap().as_arr().unwrap();
        let e0 = edges[0].as_arr().unwrap();
        assert_eq!(e0[0].as_i64(), Some(0));
        assert_eq!(e0[4].as_str(), Some("flow"));
        assert_eq!(e0[5].as_bool(), Some(false));
    }

    #[test]
    fn numbers_and_integrality() {
        assert_eq!(parse("-42").unwrap().as_i64(), Some(-42));
        assert_eq!(parse("2.0").unwrap().as_i64(), Some(2));
        assert_eq!(parse("2.5").unwrap().as_i64(), None);
        assert_eq!(parse("1e3").unwrap().as_f64(), Some(1000.0));
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = parse(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA"));
        assert_eq!(escape("a\"b\\c\nd"), r#"a\"b\\c\nd"#);
        assert_eq!(escape("\u{0007}"), "\\u0007");
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("{\"a\":1,}").is_err());
        assert!(parse("[1 2]").is_err());
        assert!(parse("{\"a\":1} extra").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn unicode_content_survives() {
        let v = parse("\"π ≈ 3\"").unwrap();
        assert_eq!(v.as_str(), Some("π ≈ 3"));
    }
}
