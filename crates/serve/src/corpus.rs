//! Request generation and corpus dedup over the canonical form.
//!
//! [`gen_requests`] turns the seeded benchmark corpus (`ims-loopgen`)
//! into wire-format request lines: each loop body is back-substituted and
//! analyzed exactly as `measure_loop` does it, then the resulting problem's
//! real operations and dependence edges are serialized. The output is a
//! pure function of `(seed, n)`, so replay files for determinism checks
//! can be regenerated anywhere.
//!
//! [`dedup_keys`] is the canonicalization pass earning its second keep:
//! hashing each request's canonical form collapses loops that differ only
//! in operation numbering, giving the corpus a structural-duplicate count
//! for free.

use std::collections::HashSet;

use ims_deps::{back_substitute, build_problem, BuildOptions};
use ims_loopgen::corpus_of_size;
use ims_machine::cydra;

use crate::cache::key_request;
use crate::wire::{parse_request, Request, WireEdge};

/// Generates `n` deterministic request lines from the seeded corpus,
/// targeting the full Cydra machine with default scheduling knobs and
/// the default (`ims`) backend.
pub fn gen_requests(seed: u64, n: usize) -> Vec<String> {
    gen_requests_backend(seed, n, &ims_core::BackendSpec::default())
}

/// [`gen_requests`] with every request routed to `backend` — any spec,
/// leaf or portfolio. Used by the driver's `--gen-requests --backend …`
/// path to produce replay corpora for backend-determinism checks.
pub fn gen_requests_backend(seed: u64, n: usize, backend: &ims_core::BackendSpec) -> Vec<String> {
    let machine = cydra();
    let corpus = corpus_of_size(seed, n);
    corpus
        .loops
        .iter()
        .take(n)
        .enumerate()
        .map(|(i, l)| {
            let body = back_substitute(&l.body, &machine);
            let problem = build_problem(&body, &machine, &BuildOptions::default());
            let stop = problem.stop();
            let ops = problem
                .op_nodes()
                .map(|v| match problem.kind(v) {
                    ims_core::NodeKind::Op { opcode, .. } => opcode,
                    _ => unreachable!("op_nodes yields only real operations"),
                })
                .collect();
            let edges = problem
                .graph()
                .edges()
                .iter()
                .filter(|e| e.from.index() > 0 && e.to != stop)
                .map(|e| WireEdge {
                    // Problem node 0 is START; real ops are 1..=num_ops.
                    from: e.from.index() as u32 - 1,
                    to: e.to.index() as u32 - 1,
                    delay: e.delay,
                    distance: e.distance,
                    kind: e.kind,
                    is_mem: e.is_mem,
                })
                .collect();
            Request {
                id: format!("loop-{i:05}"),
                machine: "cydra".to_string(),
                backend: backend.clone(),
                budget_ratio: 2.0,
                max_ii: None,
                node_limit: None,
                pressure_limit: None,
                ops,
                edges,
            }
            .to_line()
        })
        .collect()
}

/// Canonical cache keys of a request-line corpus, plus the number of
/// structural duplicates (lines whose canonical key was already seen —
/// i.e. the same labeled graph up to node renumbering and the same
/// scheduling configuration). Unparsable lines are skipped.
pub fn dedup_keys(lines: &[String]) -> (HashSet<u128>, usize) {
    let mut keys = HashSet::new();
    let mut dups = 0usize;
    for line in lines {
        if let Ok(req) = parse_request(line) {
            if !keys.insert(key_request(&req).key) {
                dups += 1;
            }
        }
    }
    (keys, dups)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_parseable() {
        let a = gen_requests(42, 12);
        let b = gen_requests(42, 12);
        assert_eq!(a, b);
        assert_eq!(a.len(), 12);
        for line in &a {
            let req = parse_request(line).expect(line);
            assert!(!req.ops.is_empty());
            assert_eq!(req.machine, "cydra");
        }
        // The corpus leads with the seed-independent hand kernels (~31),
        // so a seed change only shows in the synthetic tail beyond them.
        assert_ne!(gen_requests(43, 40), gen_requests(42, 40));
    }

    #[test]
    fn generation_routes_requests_to_the_given_backend_spec() {
        let spec: ims_core::BackendSpec = "portfolio(ims,exact,sat)".parse().unwrap();
        let lines = gen_requests_backend(42, 4, &spec);
        for line in &lines {
            let req = parse_request(line).expect(line);
            assert_eq!(req.backend, spec);
        }
        // Only the backend field differs from the default generation.
        let default = gen_requests(42, 4);
        for (a, b) in lines.iter().zip(&default) {
            assert_eq!(
                a.replace("portfolio(ims,exact,sat)", "ims"),
                b.clone()
            );
        }
    }

    #[test]
    fn dedup_counts_renumbered_duplicates() {
        let base = r#"{"id":"a","ops":["load","add"],"edges":[[0,1,13,0,"flow",false]]}"#;
        let perm = r#"{"id":"b","ops":["add","load"],"edges":[[1,0,13,0,"flow",false]]}"#;
        let other = r#"{"id":"c","ops":["load","add"],"edges":[[0,1,5,0,"flow",false]]}"#;
        let lines: Vec<String> =
            [base, perm, other, "junk"].iter().map(|s| s.to_string()).collect();
        let (keys, dups) = dedup_keys(&lines);
        assert_eq!(keys.len(), 2, "base and perm collapse");
        assert_eq!(dups, 1);
    }
}
