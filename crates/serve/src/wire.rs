//! The JSONL wire format: one request object per line in, one response
//! object per line out.
//!
//! A **request** describes one modulo-scheduling problem:
//!
//! ```json
//! {"id":"loop-00012","machine":"cydra","backend":"ims","budget_ratio":2.0,
//!  "ops":["load","add","store"],
//!  "edges":[[0,1,13,0,"flow",false],[1,2,1,0,"flow",false]]}
//! ```
//!
//! * `id` (required): opaque string echoed on the response. Never hashed.
//! * `ops` (required): opcode mnemonics, one per operation; operation `i`
//!   in `edges` refers to `ops[i]`.
//! * `edges`: `[from, to, delay, distance, kind, is_mem]` sextuples with
//!   `kind` one of `"flow" | "anti" | "output" | "control"`.
//! * `machine` (default `"cydra"`): a named machine model —
//!   `cydra`, `cydra_simple`, `figure1`, `minimal`, `single_alu`, or
//!   `wide<K>`.
//! * `backend` (default `"ims"`): any backend spec — `"ims"`,
//!   `"exact"`, `"sat"`, or `"portfolio(a,b,...)"` over those names.
//!   Unknown names are rejected *at parse time* with a structured
//!   per-request error response; a bad spec can never reach (let alone
//!   kill) a scheduling worker.
//! * `budget_ratio` (default 2.0), `max_ii` (default none): the
//!   [`SchedConfig`] knobs.
//! * `node_limit` (exact backend only; default the [`ExactConfig`]
//!   default): branch-and-bound node budget. Wall-clock deadlines are
//!   deliberately not exposed — they would break response determinism.
//! * `pressure_limit` (iterative backend only; default none): a
//!   register-pressure cap. The scheduler rejects placements and attempts
//!   whose MaxLive exceeds it (via `ims-press`), and a capacity that is
//!   infeasible even at the II cap becomes a structured error response.
//!   Successful pressure-limited responses add `"max_live":…`.
//!
//! A **response** is `{"id":…,"ok":true,"key":…,"ii":…,"mii":…,
//! "length":…,"times":[…],"alts":[…]}` with `times[i]`/`alts[i]` the
//! issue time and chosen alternative of `ops[i]`, or
//! `{"id":…,"ok":false,[…"key":…,]"error":…}`. Responses carry no
//! cache-hit marker: a hit and a recomputation are byte-identical by
//! design (the cache-determinism contract, `DESIGN.md` §5e); hit/miss
//! tallies go to the profiler registry and stderr instead.
//!
//! A **stats request** is `{"id":"…","stats":true}` ([`parse_stats_request`]).
//! It is answered in-line with the engine's running tallies over every
//! line that *strictly precedes* it in the stream — deterministic by
//! construction, so clients can interleave stats probes with work
//! without breaking the byte-identity contract. See
//! [`Engine`](crate::service::Engine).

use ims_core::BackendSpec;
use ims_graph::{DepGraph, DepKind};
use ims_ir::Opcode;
use ims_machine::{
    cydra, cydra_rf, cydra_simple, figure1_machine, minimal, single_alu, wide, MachineModel,
};

use crate::json::{self, Value};

#[cfg(doc)]
use ims_core::SchedConfig;
#[cfg(doc)]
use ims_exact::ExactConfig;

/// One dependence edge as carried on the wire, endpoints in request
/// operation indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireEdge {
    /// Source operation index into the request's `ops`.
    pub from: u32,
    /// Target operation index into the request's `ops`.
    pub to: u32,
    /// Minimum issue-time separation.
    pub delay: i64,
    /// Iteration distance.
    pub distance: u32,
    /// Dependence kind.
    pub kind: DepKind,
    /// Whether this is a memory dependence.
    pub is_mem: bool,
}

/// A parsed, validated scheduling request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Opaque client identifier, echoed on the response (never hashed).
    pub id: String,
    /// Named machine model (part of the cache key).
    pub machine: String,
    /// Scheduling backend spec (part of the cache key, in canonical
    /// form).
    pub backend: BackendSpec,
    /// The `BudgetRatio` for the iterative scheduler (part of the key).
    pub budget_ratio: f64,
    /// Optional candidate-II cap (part of the key).
    pub max_ii: Option<i64>,
    /// Optional branch-and-bound node budget, exact backend only (part of
    /// the key).
    pub node_limit: Option<u64>,
    /// Optional register-pressure cap, iterative backend only (part of
    /// the key).
    pub pressure_limit: Option<u32>,
    /// The operations, by opcode.
    pub ops: Vec<Opcode>,
    /// The dependence edges over `ops`.
    pub edges: Vec<WireEdge>,
}

/// Resolves a wire-format machine name to a model. `wide<K>` and
/// `cydra_rf<N>` accept any numeric suffix (e.g. `wide3`, `cydra_rf16`).
///
/// # Panics
///
/// Propagates constructor panics (`wide0`: width must be positive;
/// `cydra_rf0`: register file must be positive). [`parse_request`] checks
/// only the name *shape*, so such a request reaches the scheduling
/// worker, whose panic containment turns the constructor failure into a
/// per-request error response instead of taking the service down.
pub fn machine_by_name(name: &str) -> Option<MachineModel> {
    match name {
        "cydra" => Some(cydra()),
        "cydra_simple" => Some(cydra_simple()),
        "figure1" => Some(figure1_machine()),
        "minimal" => Some(minimal()),
        "single_alu" => Some(single_alu()),
        _ => {
            if let Some(n) = name.strip_prefix("cydra_rf") {
                return n.parse().ok().map(cydra_rf);
            }
            let k: usize = name.strip_prefix("wide")?.parse().ok()?;
            Some(wide(k))
        }
    }
}

/// Shape-only name check used at parse time; construction (and any
/// constructor panic) is deferred to the worker.
fn machine_name_is_wellformed(name: &str) -> bool {
    matches!(
        name,
        "cydra" | "cydra_simple" | "figure1" | "minimal" | "single_alu"
    ) || name
        .strip_prefix("wide")
        .is_some_and(|k| k.parse::<usize>().is_ok())
        || name
            .strip_prefix("cydra_rf")
            .is_some_and(|n| n.parse::<u32>().is_ok())
}

fn opcode_by_mnemonic(s: &str) -> Option<Opcode> {
    Opcode::ALL.iter().copied().find(|o| o.mnemonic() == s)
}

fn kind_by_name(s: &str) -> Option<DepKind> {
    match s {
        "flow" => Some(DepKind::Flow),
        "anti" => Some(DepKind::Anti),
        "output" => Some(DepKind::Output),
        "control" => Some(DepKind::Control),
        _ => None,
    }
}

/// Detects a statistics request — `{"id":"…","stats":true}` — and
/// returns its `id`.
///
/// A line whose `stats` field is boolean `true` and whose `id` is a
/// string is a stats request regardless of any other fields present;
/// anything else (including `"stats":false` or a missing `id`) returns
/// `None` and flows through [`parse_request`] as usual. Stats requests
/// never touch the cache and are never hashed.
pub fn parse_stats_request(line: &str) -> Option<String> {
    let v = json::parse(line).ok()?;
    let obj = v.as_obj()?;
    if obj.get("stats").and_then(Value::as_bool) != Some(true) {
        return None;
    }
    obj.get("id").and_then(Value::as_str).map(str::to_string)
}

/// Parses and validates one request line.
///
/// # Errors
///
/// A human-readable description of the first problem found: JSON syntax,
/// missing/ill-typed fields, unknown mnemonics/machines/kinds, or
/// out-of-range edge endpoints. The error string is a pure function of
/// the line, so error responses are as deterministic as successes.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = json::parse(line).map_err(|e| format!("invalid JSON: {e}"))?;
    let obj = v.as_obj().ok_or("request must be a JSON object")?;

    let id = obj
        .get("id")
        .and_then(Value::as_str)
        .ok_or("missing string field \"id\"")?
        .to_string();

    let machine = match obj.get("machine") {
        None => "cydra".to_string(),
        Some(m) => m
            .as_str()
            .ok_or("field \"machine\" must be a string")?
            .to_string(),
    };
    if !machine_name_is_wellformed(&machine) {
        return Err(format!("unknown machine {machine:?}"));
    }

    let backend = match obj.get("backend") {
        None => BackendSpec::default(),
        Some(b) => {
            let s = b.as_str().ok_or("field \"backend\" must be a string")?;
            s.parse::<BackendSpec>().map_err(|e| e.to_string())?
        }
    };

    let budget_ratio = match obj.get("budget_ratio") {
        None => 2.0,
        Some(r) => {
            let f = r.as_f64().ok_or("field \"budget_ratio\" must be a number")?;
            if !f.is_finite() || f <= 0.0 {
                return Err(format!("budget_ratio must be finite and positive, got {f}"));
            }
            f
        }
    };

    let max_ii = match obj.get("max_ii") {
        None | Some(Value::Null) => None,
        Some(m) => {
            let n = m.as_i64().ok_or("field \"max_ii\" must be an integer")?;
            if n < 1 {
                return Err(format!("max_ii must be at least 1, got {n}"));
            }
            Some(n)
        }
    };

    let node_limit = match obj.get("node_limit") {
        None | Some(Value::Null) => None,
        Some(m) => {
            let n = m.as_i64().ok_or("field \"node_limit\" must be an integer")?;
            if n < 0 {
                return Err(format!("node_limit must be non-negative, got {n}"));
            }
            Some(n as u64)
        }
    };

    let pressure_limit = match obj.get("pressure_limit") {
        None | Some(Value::Null) => None,
        Some(m) => {
            let n = m
                .as_i64()
                .ok_or("field \"pressure_limit\" must be an integer")?;
            if !(1..=u32::MAX as i64).contains(&n) {
                return Err(format!("pressure_limit must be at least 1, got {n}"));
            }
            Some(n as u32)
        }
    };

    let ops_v = obj
        .get("ops")
        .and_then(Value::as_arr)
        .ok_or("missing array field \"ops\"")?;
    if ops_v.is_empty() {
        return Err("\"ops\" must name at least one operation".to_string());
    }
    let mut ops = Vec::with_capacity(ops_v.len());
    for (i, o) in ops_v.iter().enumerate() {
        let s = o
            .as_str()
            .ok_or_else(|| format!("ops[{i}] must be a mnemonic string"))?;
        ops.push(opcode_by_mnemonic(s).ok_or_else(|| format!("unknown opcode {s:?}"))?);
    }

    let mut edges = Vec::new();
    if let Some(edges_v) = obj.get("edges") {
        let arr = edges_v.as_arr().ok_or("field \"edges\" must be an array")?;
        for (i, e) in arr.iter().enumerate() {
            let t = e
                .as_arr()
                .filter(|t| t.len() == 6)
                .ok_or_else(|| format!("edges[{i}] must be [from,to,delay,distance,kind,is_mem]"))?;
            let from = t[0]
                .as_i64()
                .filter(|&n| n >= 0 && (n as usize) < ops.len())
                .ok_or_else(|| format!("edges[{i}]: from out of range"))?;
            let to = t[1]
                .as_i64()
                .filter(|&n| n >= 0 && (n as usize) < ops.len())
                .ok_or_else(|| format!("edges[{i}]: to out of range"))?;
            let delay = t[2]
                .as_i64()
                .ok_or_else(|| format!("edges[{i}]: delay must be an integer"))?;
            let distance = t[3]
                .as_i64()
                .filter(|&n| (0..=u32::MAX as i64).contains(&n))
                .ok_or_else(|| format!("edges[{i}]: distance must be a u32"))?;
            let kind = t[4]
                .as_str()
                .and_then(kind_by_name)
                .ok_or_else(|| format!("edges[{i}]: unknown dependence kind"))?;
            let is_mem = t[5]
                .as_bool()
                .ok_or_else(|| format!("edges[{i}]: is_mem must be a boolean"))?;
            edges.push(WireEdge {
                from: from as u32,
                to: to as u32,
                delay,
                distance: distance as u32,
                kind,
                is_mem,
            });
        }
    }

    Ok(Request {
        id,
        machine,
        backend,
        budget_ratio,
        max_ii,
        node_limit,
        pressure_limit,
        ops,
        edges,
    })
}

impl Request {
    /// The request's dependence graph over its operations (no START/STOP
    /// pseudo-nodes — those are machine-derived and added by the problem
    /// builder), as fed to the canonicalization pass.
    pub fn graph(&self) -> DepGraph {
        let mut g = DepGraph::with_nodes(self.ops.len());
        for e in &self.edges {
            g.add_edge(
                ims_graph::NodeId(e.from),
                ims_graph::NodeId(e.to),
                e.delay,
                e.distance,
                e.kind,
                e.is_mem,
            );
        }
        g
    }

    /// Canonicalization labels for [`Request::graph`]: the opcode's index
    /// in [`Opcode::ALL`] — stable across node renumberings by
    /// construction, and the only per-node attribute the wire carries.
    pub fn labels(&self) -> Vec<u64> {
        self.ops
            .iter()
            .map(|op| {
                Opcode::ALL
                    .iter()
                    .position(|o| o == op)
                    .expect("every opcode appears in Opcode::ALL") as u64
            })
            .collect()
    }

    /// Serializes the request back to one wire line (used by the request
    /// generator; field order is fixed so generated corpora are
    /// byte-stable).
    pub fn to_line(&self) -> String {
        let mut s = format!(
            "{{\"id\":\"{}\",\"machine\":\"{}\",\"backend\":\"{}\"",
            json::escape(&self.id),
            json::escape(&self.machine),
            self.backend
        );
        if self.budget_ratio != 2.0 {
            // budget_ratio values are restricted to halves by the
            // generator, so this Display form is byte-stable.
            s.push_str(&format!(",\"budget_ratio\":{}", self.budget_ratio));
        }
        if let Some(m) = self.max_ii {
            s.push_str(&format!(",\"max_ii\":{m}"));
        }
        if let Some(n) = self.node_limit {
            s.push_str(&format!(",\"node_limit\":{n}"));
        }
        if let Some(p) = self.pressure_limit {
            s.push_str(&format!(",\"pressure_limit\":{p}"));
        }
        s.push_str(",\"ops\":[");
        for (i, op) in self.ops.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{}\"", op.mnemonic()));
        }
        s.push_str("],\"edges\":[");
        for (i, e) in self.edges.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "[{},{},{},{},\"{}\",{}]",
                e.from, e.to, e.delay, e.distance, e.kind, e.is_mem
            ));
        }
        s.push_str("]}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_request() {
        let r = parse_request(
            r#"{"id":"x","machine":"minimal","backend":"exact","budget_ratio":4.0,
                "max_ii":9,"node_limit":1000,"ops":["add","mul"],
                "edges":[[0,1,2,0,"flow",false],[1,0,1,1,"anti",true]]}"#,
        )
        .unwrap();
        assert_eq!(r.id, "x");
        assert_eq!(r.machine, "minimal");
        assert_eq!(r.backend, BackendSpec::Leaf(ims_core::BackendKind::Exact));
        assert_eq!(r.budget_ratio, 4.0);
        assert_eq!(r.max_ii, Some(9));
        assert_eq!(r.node_limit, Some(1000));
        assert_eq!(r.ops, vec![Opcode::Add, Opcode::Mul]);
        assert_eq!(r.edges.len(), 2);
        assert_eq!(r.edges[1].kind, DepKind::Anti);
        assert!(r.edges[1].is_mem);
    }

    #[test]
    fn defaults_apply() {
        let r = parse_request(r#"{"id":"d","ops":["add"]}"#).unwrap();
        assert_eq!(r.machine, "cydra");
        assert_eq!(r.backend, BackendSpec::Leaf(ims_core::BackendKind::Ims));
        assert_eq!(r.budget_ratio, 2.0);
        assert_eq!(r.max_ii, None);
        assert!(r.edges.is_empty());
    }

    #[test]
    fn rejects_bad_requests() {
        for (line, needle) in [
            ("{\"ops\":[\"add\"]}", "\"id\""),
            (r#"{"id":"a","ops":[]}"#, "at least one"),
            (r#"{"id":"a","ops":["frobnicate"]}"#, "unknown opcode"),
            (r#"{"id":"a","machine":"pdp11","ops":["add"]}"#, "unknown machine"),
            (r#"{"id":"a","backend":"magic","ops":["add"]}"#, "unknown backend"),
            (r#"{"id":"a","backend":"portfolio(ims,magic)","ops":["add"]}"#, "unknown backend"),
            (r#"{"id":"a","backend":"portfolio()","ops":["add"]}"#, "at least one member"),
            (r#"{"id":"a","ops":["add"],"edges":[[0,5,1,0,"flow",false]]}"#, "out of range"),
            (r#"{"id":"a","ops":["add"],"edges":[[0,0,1,0,"data",false]]}"#, "kind"),
            (r#"{"id":"a","budget_ratio":-1,"ops":["add"]}"#, "budget_ratio"),
            (r#"{"id":"a","max_ii":0,"ops":["add"]}"#, "max_ii"),
            (r#"{"id":"a","pressure_limit":0,"ops":["add"]}"#, "pressure_limit"),
            (r#"{"id":"a","pressure_limit":"big","ops":["add"]}"#, "pressure_limit"),
            ("not json", "invalid JSON"),
        ] {
            let err = parse_request(line).unwrap_err();
            assert!(err.contains(needle), "{line} -> {err}");
        }
    }

    #[test]
    fn stats_requests_are_detected() {
        assert_eq!(parse_stats_request(r#"{"id":"s1","stats":true}"#).as_deref(), Some("s1"));
        // `stats` wins over any scheduling fields riding along.
        assert_eq!(
            parse_stats_request(r#"{"id":"s2","stats":true,"ops":["add"]}"#).as_deref(),
            Some("s2")
        );
        for line in [
            r#"{"id":"a","stats":false}"#,
            r#"{"id":"a","stats":1}"#,
            r#"{"stats":true}"#,
            r#"{"id":"a","ops":["add"]}"#,
            "not json",
        ] {
            assert!(parse_stats_request(line).is_none(), "{line}");
        }
    }

    #[test]
    fn machine_names_resolve() {
        for name in [
            "cydra",
            "cydra_simple",
            "figure1",
            "minimal",
            "single_alu",
            "wide4",
            "cydra_rf16",
        ] {
            assert!(machine_by_name(name).is_some(), "{name}");
        }
        assert!(machine_by_name("widex").is_none());
        assert!(machine_by_name("cydra_rfx").is_none());
        assert!(machine_by_name("vax").is_none());
        assert_eq!(machine_by_name("cydra_rf12").unwrap().register_file(), Some(12));
    }

    #[test]
    fn pressure_limited_requests_round_trip() {
        let line = r#"{"id":"pl","machine":"cydra_rf16","backend":"ims","pressure_limit":16,"ops":["load","add"],"edges":[[0,1,13,0,"flow",false]]}"#;
        let r = parse_request(line).unwrap();
        assert_eq!(r.pressure_limit, Some(16));
        assert_eq!(r.machine, "cydra_rf16");
        assert_eq!(r.to_line(), line);
        assert_eq!(parse_request(&r.to_line()).unwrap(), r);
    }

    #[test]
    fn wide0_parses_but_construction_panics() {
        // Shape-valid name with a panicking constructor: the parse layer
        // lets it through so the worker's panic containment (not the
        // serial parse stage) owns the failure.
        let line = r#"{"id":"w","machine":"wide0","ops":["add"]}"#;
        assert_eq!(parse_request(line).unwrap().machine, "wide0");
        assert!(std::panic::catch_unwind(|| machine_by_name("wide0")).is_err());
    }

    #[test]
    fn to_line_round_trips() {
        let line = r#"{"id":"rt","machine":"wide2","backend":"ims","ops":["load","add"],"edges":[[0,1,13,0,"flow",false]]}"#;
        let r = parse_request(line).unwrap();
        assert_eq!(r.to_line(), line);
        assert_eq!(parse_request(&r.to_line()).unwrap(), r);
    }

    #[test]
    fn portfolio_specs_parse_canonically_and_round_trip() {
        let r = parse_request(
            r#"{"id":"p","backend":" portfolio( exact , sat ) ","ops":["add"]}"#,
        )
        .unwrap();
        // Whitespace-tolerant in, canonical form out.
        assert_eq!(r.backend.to_string(), "portfolio(exact,sat)");
        let line = r.to_line();
        assert!(line.contains("\"backend\":\"portfolio(exact,sat)\""), "{line}");
        assert_eq!(parse_request(&line).unwrap(), r);
    }
}
