//! The batch engine: JSONL requests in, JSONL responses out, through the
//! content-addressed cache and the deterministic worker pool.
//!
//! One batch is processed in three deterministic stages:
//!
//! 1. **Parse + canonicalize** (serial; graphs are tiny): every line
//!    becomes a [`Request`] with its [`Keyed`] canonical form, or an
//!    error response.
//! 2. **Schedule the misses** (parallel): the distinct cache keys not yet
//!    present, in first-appearance order, fan out over
//!    [`pool::try_par_map`]. A worker panic is contained per job and
//!    cached as a failure entry — the service never dies on one bad
//!    request, and the panic text replays from cache exactly like a
//!    clean error.
//! 3. **Respond** (serial, input order): every response is rendered from
//!    the cache entry through the request's own canonicalization
//!    permutation.
//!
//! Stage 2 is the only parallel stage and its results are keyed by
//! content, not by arrival, so the byte stream and all counters are
//! identical for any `--threads N`, any batch size, and cache hot or
//! cold — the repo-wide determinism contract extended to the service
//! (`DESIGN.md` §5e).
//!
//! A `{"id":…,"stats":true}` line anywhere in the stream is answered
//! in-line with the engine's tallies over the lines that *strictly
//! precede* it (stage 3 runs in input order, so the snapshot is
//! deterministic even though the preceding lines were scheduled in
//! parallel). With [`Engine::enable_latency`] the stats response also
//! carries per-backend wall-clock histograms of cache-miss scheduling
//! time — explicitly opt-in and explicitly *non*-deterministic, which
//! is why it is off by default and excluded from every determinism
//! gate.

use std::collections::{BTreeMap, HashSet};
use std::io::{self, BufRead, Write};
use std::time::Instant;

use ims_core::{BackendKind, BackendParams, BackendSpec, ProblemBuilder, SchedConfig, Scheduler};
use ims_press::PressureObserver;
use ims_prof::{phase, MetricsRegistry};
use ims_sat::default_registry;
use ims_stats::Histogram;

use crate::cache::{key_request, CanonProblem, Entry, Keyed, ScheduleCache};
use crate::json;
use crate::pool;
use crate::wire::{machine_by_name, parse_request, parse_stats_request, Request};

/// Everything a worker needs to schedule one cache miss. Derived from the
/// first request that missed on the key; every field below is part of the
/// key, so any other request sharing the key carries identical values.
#[derive(Debug, Clone)]
struct Job {
    key: u128,
    machine: String,
    backend: BackendSpec,
    budget_ratio: f64,
    max_ii: Option<i64>,
    node_limit: Option<u64>,
    pressure_limit: Option<u32>,
    canon: CanonProblem,
}

/// Schedules one canonical problem. Runs inside a pool worker; panics
/// (e.g. a machine that does not implement a requested opcode) are
/// contained by [`pool::try_par_map`] and turned into cached failures.
fn run_job(job: &Job) -> Entry {
    let machine = machine_by_name(&job.machine).expect("machine validated at parse time");
    let mut pb = ProblemBuilder::new(&machine);
    let nodes: Vec<_> = job
        .canon
        .ops
        .iter()
        .enumerate()
        .map(|(i, &op)| pb.add_op(op, ims_ir::OpId(i as u32)))
        .collect();
    for e in &job.canon.edges {
        pb.add_dep(
            nodes[e.from as usize],
            nodes[e.to as usize],
            e.delay,
            e.distance,
            e.kind,
            e.is_mem,
        );
    }
    let problem = pb.finish();

    let mut cfg = SchedConfig::new().budget_ratio(job.budget_ratio);
    if let Some(m) = job.max_ii {
        cfg = cfg.max_ii(m);
    }
    let n = problem.num_ops();
    let entry_ok = |schedule: &ims_core::Schedule, mii: i64, max_live: Option<u32>| Entry::Ok {
        ii: schedule.ii,
        mii,
        length: schedule.length,
        max_live,
        times: (0..n).map(|i| schedule.time[i + 1]).collect(),
        alts: (0..n).map(|i| schedule.alternative[i + 1]).collect(),
    };
    // A pressure limit steers the iterative scheduler through its
    // observer seam, so it only composes with the plain ims leaf; the
    // graph-level MaxLive bound is what the service enforces (the
    // rotating-allocation fit check needs a loop body, which wire
    // requests do not carry).
    if let Some(limit) = job.pressure_limit {
        if job.backend.as_leaf() != Some(BackendKind::Ims) {
            return Entry::Failed {
                error: "schedule failed: pressure_limit requires the ims backend".to_string(),
            };
        }
        let mut obs = PressureObserver::for_problem(&problem, limit);
        return match Scheduler::new(&problem)
            .config(cfg.pressure_limit(limit))
            .observer(&mut obs)
            .run()
        {
            Ok(out) => entry_ok(&out.schedule, out.mii.mii, Some(obs.max_live())),
            Err(e) => Entry::Failed { error: format!("schedule failed: {e}") },
        };
    }
    // Any spec the wire accepts resolves here (the registry carries every
    // name the parser knows); keep the failure path anyway so a drifted
    // registry degrades to an error response, not a panic.
    let mut params = BackendParams::new().sched(cfg);
    if let Some(n) = job.node_limit {
        params = params.node_limit(n);
    }
    let backend = match default_registry().resolve(&job.backend, &params) {
        Ok(b) => b,
        Err(e) => return Entry::Failed { error: format!("schedule failed: {e}") },
    };
    match backend.schedule(&problem) {
        Ok(out) => entry_ok(&out.schedule, out.mii.mii, None),
        Err(e) => Entry::Failed { error: format!("schedule failed: {e}") },
    }
}

/// Best-effort id recovery for lines that failed request validation, so
/// the client can still correlate the error response. Falls back to `""`.
fn recover_id(line: &str) -> String {
    json::parse(line)
        .ok()
        .and_then(|v| v.get("id").and_then(|i| i.as_str().map(str::to_string)))
        .unwrap_or_default()
}

fn render_error(id: &str, key: Option<u128>, error: &str) -> String {
    let mut s = format!("{{\"id\":\"{}\",\"ok\":false", json::escape(id));
    if let Some(k) = key {
        s.push_str(&format!(",\"key\":\"{k:032x}\""));
    }
    s.push_str(&format!(",\"error\":\"{}\"}}", json::escape(error)));
    s
}

fn render_response(req: &Request, keyed: &Keyed, entry: &Entry) -> String {
    match entry {
        Entry::Failed { error } => render_error(&req.id, Some(keyed.key), error),
        Entry::Ok { ii, mii, length, max_live, times, alts } => {
            let mut s = format!(
                "{{\"id\":\"{}\",\"ok\":true,\"key\":\"{:032x}\",\"ii\":{},\"mii\":{},\"length\":{}",
                json::escape(&req.id),
                keyed.key,
                ii,
                mii,
                length
            );
            if let Some(m) = max_live {
                s.push_str(&format!(",\"max_live\":{m}"));
            }
            s.push_str(",\"times\":[");
            // Cached times are in canonical order; emit them in the
            // request's own numbering via its permutation.
            for i in 0..req.ops.len() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&times[keyed.position[i]].to_string());
            }
            s.push_str("],\"alts\":[");
            for i in 0..req.ops.len() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&alts[keyed.position[i]].to_string());
            }
            s.push_str("]}");
            s
        }
    }
}

/// One input line after stage 1: a schedulable request, a stats probe,
/// or a pre-rendered error response.
enum Parsed {
    Request(Request, Keyed),
    Stats(String),
    Invalid(String),
}

/// The long-lived service state: cache plus response tallies.
#[derive(Debug)]
pub struct Engine {
    /// The content-addressed store (exposed for inspection in tests).
    pub cache: ScheduleCache,
    threads: usize,
    /// Total requests answered (every input line gets exactly one
    /// response line; stats probes count too).
    pub requests: u64,
    /// Responses with `ok:false` — parse rejections, clean scheduling
    /// errors, and contained worker panics alike.
    pub failed: u64,
    /// Per-backend wall-clock histograms (nanoseconds per cache-miss
    /// scheduling job), keyed by canonical backend spec. `None` unless
    /// [`Engine::enable_latency`] was called: timing is inherently
    /// non-deterministic, so it is opt-in and never part of the
    /// byte-determinism contract.
    latency: Option<BTreeMap<String, Histogram>>,
}

impl Engine {
    /// A fresh engine scheduling cache misses on `threads` pool workers.
    pub fn new(threads: usize) -> Self {
        Engine {
            cache: ScheduleCache::new(),
            threads,
            requests: 0,
            failed: 0,
            latency: None,
        }
    }

    /// Starts collecting per-backend scheduling-latency histograms,
    /// reported on stats responses. Non-deterministic by nature — keep
    /// it off anywhere response bytes are diffed.
    pub fn enable_latency(&mut self) {
        self.latency = Some(BTreeMap::new());
    }

    /// The recorded latency histogram for a canonical backend spec, if
    /// collection is on and that backend scheduled at least one miss.
    pub fn latency_of(&self, backend: &str) -> Option<&Histogram> {
        self.latency.as_ref()?.get(backend)
    }

    /// Renders the stats response for one probe: tallies over every line
    /// answered so far (within a batch, the strictly-preceding lines),
    /// plus latency percentiles when collection is on. `entries` is
    /// passed in because mid-batch the store already holds the whole
    /// batch's jobs; the caller knows how many belong to preceding lines.
    fn render_stats(&self, id: &str, entries: usize) -> String {
        let mut s = format!(
            "{{\"id\":\"{}\",\"ok\":true,\"stats\":{{\"requests\":{},\"hits\":{},\"misses\":{},\"failed\":{},\"entries\":{}",
            json::escape(id),
            self.requests,
            self.cache.hits,
            self.cache.misses,
            self.failed,
            entries
        );
        if let Some(lat) = &self.latency {
            s.push_str(",\"latency\":{");
            for (i, (backend, h)) in lat.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&format!(
                    "\"{}\":{{\"count\":{},\"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{},\"max_ns\":{}}}",
                    json::escape(backend),
                    h.total(),
                    h.p50().unwrap_or(0),
                    h.p90().unwrap_or(0),
                    h.p99().unwrap_or(0),
                    h.max().unwrap_or(0),
                ));
            }
            s.push('}');
        }
        s.push_str("}}");
        s
    }

    /// Processes one batch of request lines, writing one response line
    /// per request in input order.
    ///
    /// # Errors
    ///
    /// Only I/O errors from `out`; malformed requests become error
    /// responses, not process errors.
    pub fn process_batch(&mut self, lines: &[String], out: &mut impl Write) -> io::Result<()> {
        // Stage 1: parse + canonicalize. Stats probes are recognized
        // first — they carry no problem and are never hashed.
        let parsed: Vec<Parsed> = lines
            .iter()
            .map(|line| {
                if let Some(id) = parse_stats_request(line) {
                    return Parsed::Stats(id);
                }
                match parse_request(line) {
                    Ok(req) => {
                        let keyed = key_request(&req);
                        Parsed::Request(req, keyed)
                    }
                    Err(e) => Parsed::Invalid(render_error(
                        &recover_id(line),
                        None,
                        &format!("invalid request: {e}"),
                    )),
                }
            })
            .collect();

        // Stage 2: schedule the distinct missing keys, first-appearance
        // order, in parallel.
        let mut jobs: Vec<Job> = Vec::new();
        let mut queued: HashSet<u128> = HashSet::new();
        for item in &parsed {
            let Parsed::Request(req, keyed) = item else { continue };
            if self.cache.get(keyed.key).is_none() && queued.insert(keyed.key) {
                jobs.push(Job {
                    key: keyed.key,
                    machine: req.machine.clone(),
                    backend: req.backend.clone(),
                    budget_ratio: req.budget_ratio,
                    max_ii: req.max_ii,
                    node_limit: req.node_limit,
                    pressure_limit: req.pressure_limit,
                    canon: keyed.canon.clone(),
                });
            }
        }
        let results = pool::try_par_map(&jobs, self.threads, |_, job| {
            let t0 = Instant::now();
            let entry = run_job(job);
            (entry, t0.elapsed().as_nanos() as i64)
        });
        let fresh: HashSet<u128> = jobs.iter().map(|j| j.key).collect();
        for (job, result) in jobs.iter().zip(results) {
            let entry = match result {
                Ok((entry, wall_ns)) => {
                    // Latency is folded in serially, keyed by canonical
                    // backend spec; it feeds only opt-in stats output.
                    if let Some(lat) = self.latency.as_mut() {
                        lat.entry(job.backend.to_string()).or_default().add(wall_ns);
                    }
                    entry
                }
                Err(p) => Entry::Failed {
                    error: format!("schedule worker panicked: {}", p.message),
                },
            };
            self.cache.insert(job.key, entry);
        }

        // Stage 3: respond in input order, tallying hits and misses. A
        // stats probe is rendered *before* it is counted, so it reports
        // exactly the strictly-preceding lines — the scheduling of later
        // lines in stage 2 never leaks into the snapshot because the
        // cache tallies are also only advanced here, in input order.
        // Same for the entry count: stage 2 already inserted the whole
        // batch, so a probe's `entries` is the pre-batch store size plus
        // the fresh keys owed to preceding lines.
        let prior_entries = self.cache.len() - jobs.len();
        let mut counted: HashSet<u128> = HashSet::new();
        for item in &parsed {
            match item {
                Parsed::Stats(id) => {
                    writeln!(out, "{}", self.render_stats(id, prior_entries + counted.len()))?;
                    self.requests += 1;
                }
                Parsed::Invalid(line) => {
                    self.requests += 1;
                    self.failed += 1;
                    writeln!(out, "{line}")?;
                }
                Parsed::Request(req, keyed) => {
                    self.requests += 1;
                    if fresh.contains(&keyed.key) && counted.insert(keyed.key) {
                        self.cache.misses += 1;
                    } else {
                        self.cache.hits += 1;
                    }
                    let entry = self.cache.get(keyed.key).expect("miss was scheduled above");
                    if matches!(entry, Entry::Failed { .. }) {
                        self.failed += 1;
                    }
                    writeln!(out, "{}", render_response(req, keyed, entry))?;
                }
            }
        }
        Ok(())
    }

    /// Copies the engine's tallies into a profiler registry under the
    /// `serve.*` phase names.
    pub fn export_metrics(&self, reg: &mut MetricsRegistry) {
        reg.add(phase::SERVE_REQUESTS, self.requests);
        reg.add(phase::SERVE_CACHE_HITS, self.cache.hits);
        reg.add(phase::SERVE_CACHE_MISSES, self.cache.misses);
        reg.add(phase::SERVE_FAILED, self.failed);
    }

    /// One-line summary for stderr logging.
    pub fn summary(&self) -> String {
        format!(
            "serve: {} requests, {} hits, {} misses, {} failed, {} cached entries",
            self.requests,
            self.cache.hits,
            self.cache.misses,
            self.failed,
            self.cache.len()
        )
    }
}

/// Pumps a whole request stream through `engine` in batches of `batch`
/// lines, flushing responses after every batch (so interactive clients
/// and sockets see answers without waiting for EOF).
///
/// # Errors
///
/// I/O errors from either side of the stream.
pub fn serve_stream(
    engine: &mut Engine,
    reader: impl BufRead,
    mut writer: impl Write,
    batch: usize,
) -> io::Result<()> {
    let batch = batch.max(1);
    let mut pending: Vec<String> = Vec::with_capacity(batch);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        pending.push(line);
        if pending.len() >= batch {
            engine.process_batch(&pending, &mut writer)?;
            writer.flush()?;
            pending.clear();
        }
    }
    if !pending.is_empty() {
        engine.process_batch(&pending, &mut writer)?;
    }
    writer.flush()
}

/// Serves JSONL request streams over a Unix domain socket: binds `path`,
/// then accepts connections one at a time, each connection a complete
/// [`serve_stream`] conversation against the same shared engine (so the
/// cache stays warm across connections). `max_conns` limits how many
/// connections are served before returning (`None` serves forever).
///
/// # Errors
///
/// Bind/accept/stream I/O errors.
#[cfg(unix)]
pub fn serve_socket(
    engine: &mut Engine,
    path: &std::path::Path,
    batch: usize,
    max_conns: Option<usize>,
) -> io::Result<()> {
    use std::os::unix::net::UnixListener;

    // A stale socket file from a previous run would make bind fail.
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    let mut served = 0usize;
    while max_conns.is_none_or(|m| served < m) {
        let (stream, _) = listener.accept()?;
        let reader = io::BufReader::new(stream.try_clone()?);
        serve_stream(engine, reader, &stream, batch)?;
        stream.shutdown(std::net::Shutdown::Both).ok();
        served += 1;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn respond(engine: &mut Engine, lines: &[&str]) -> Vec<String> {
        let lines: Vec<String> = lines.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        engine.process_batch(&lines, &mut out).unwrap();
        String::from_utf8(out)
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect()
    }

    const CHAIN: &str = r#"{"id":"c1","machine":"minimal","ops":["add","mul"],"edges":[[0,1,1,0,"flow",false]]}"#;
    /// The same chain with the two ops listed in the other order.
    const CHAIN_PERM: &str = r#"{"id":"c2","machine":"minimal","ops":["mul","add"],"edges":[[1,0,1,0,"flow",false]]}"#;

    #[test]
    fn schedules_and_caches_a_simple_chain() {
        let mut engine = Engine::new(1);
        let out = respond(&mut engine, &[CHAIN, CHAIN]);
        assert_eq!(out.len(), 2);
        assert!(out[0].contains("\"ok\":true"), "{}", out[0]);
        // Two ops on the minimal machine's single universal unit: ResMII 2.
        assert!(out[0].contains("\"ii\":2"), "{}", out[0]);
        assert!(out[0].contains("\"times\":[0,1]"));
        // Identical requests differ only in nothing — same bytes.
        assert_eq!(out[0], out[1]);
        assert_eq!(engine.cache.misses, 1);
        assert_eq!(engine.cache.hits, 1);
        assert_eq!(engine.cache.len(), 1);
    }

    #[test]
    fn isomorphic_requests_hit_one_entry_with_times_in_their_own_order() {
        let mut engine = Engine::new(1);
        let out = respond(&mut engine, &[CHAIN, CHAIN_PERM]);
        assert_eq!(engine.cache.len(), 1, "one canonical entry");
        assert_eq!(engine.cache.misses, 1);
        assert_eq!(engine.cache.hits, 1);
        // c1: add is op 0 (time 0), mul op 1 (time 1).
        assert!(out[0].contains("\"times\":[0,1]"), "{}", out[0]);
        // c2 lists mul first: its times come back permuted.
        assert!(out[1].contains("\"times\":[1,0]"), "{}", out[1]);
        // Same key on both responses.
        let key = |s: &str| s.split("\"key\":\"").nth(1).unwrap()[..32].to_string();
        assert_eq!(key(&out[0]), key(&out[1]));
    }

    #[test]
    fn output_is_identical_across_thread_counts_and_batch_splits() {
        let reqs: Vec<String> = (0..12)
            .map(|i| {
                format!(
                    r#"{{"id":"r{i}","machine":"wide2","ops":["load","add","store"],"edges":[[0,1,{d},0,"flow",false],[1,2,1,0,"flow",false]]}}"#,
                    d = 1 + (i % 3)
                )
            })
            .collect();
        let run = |threads: usize, split: usize| -> (String, u64, u64) {
            let mut engine = Engine::new(threads);
            let mut out = Vec::new();
            for chunk in reqs.chunks(split) {
                engine.process_batch(chunk, &mut out).unwrap();
            }
            (String::from_utf8(out).unwrap(), engine.cache.hits, engine.cache.misses)
        };
        let baseline = run(1, reqs.len());
        for (threads, split) in [(4, 12), (4, 5), (2, 1), (8, 3)] {
            assert_eq!(run(threads, split), baseline, "threads={threads} split={split}");
        }
        // 3 distinct delays → 3 canonical problems.
        assert_eq!(baseline.2, 3);
        assert_eq!(baseline.1, 9);
    }

    #[test]
    fn malformed_lines_get_error_responses_not_process_death() {
        let mut engine = Engine::new(2);
        let out = respond(
            &mut engine,
            &[
                "this is not json",
                r#"{"id":"bad-op","ops":["warp"]}"#,
                CHAIN,
            ],
        );
        assert_eq!(out.len(), 3);
        assert!(out[0].contains("\"ok\":false") && out[0].contains("invalid JSON"));
        assert!(out[1].contains("\"id\":\"bad-op\"") && out[1].contains("unknown opcode"));
        assert!(out[2].contains("\"ok\":true"));
        assert_eq!(engine.failed, 2);
        assert_eq!(engine.requests, 3);
        // Parse failures touch no cache counters.
        assert_eq!(engine.cache.hits + engine.cache.misses, 1);
    }

    #[test]
    fn worker_panic_is_contained_cached_and_deterministic() {
        // "wide0" is shape-valid at parse time but its constructor
        // panics ("machine width must be positive") inside the worker.
        let line = r#"{"id":"p","machine":"wide0","ops":["add"],"edges":[]}"#;
        let mut a = Engine::new(1);
        let first = respond(&mut a, &[line, CHAIN]);
        assert!(first[0].contains("\"ok\":false"), "{}", first[0]);
        assert!(first[0].contains("panicked"), "{}", first[0]);
        assert!(first[1].contains("\"ok\":true"), "healthy request unaffected");
        // Replay: the failure is served from cache, byte-identical.
        let again = respond(&mut a, &[line]);
        assert_eq!(first[0], again[0]);
        assert_eq!(a.cache.hits, 1, "second pass is a hit");
        // And identical across thread counts.
        let mut b = Engine::new(4);
        let parallel = respond(&mut b, &[line, CHAIN]);
        assert_eq!(first, parallel);
    }

    #[test]
    fn clean_scheduling_errors_are_structured() {
        // max_ii below the MII: IiCapExceeded, no panic.
        let line = r#"{"id":"cap","machine":"minimal","max_ii":1,"ops":["add","add"],"edges":[[0,1,3,0,"flow",false],[1,0,3,1,"flow",false]]}"#;
        let mut engine = Engine::new(1);
        let out = respond(&mut engine, &[line]);
        assert!(out[0].contains("\"ok\":false"), "{}", out[0]);
        assert!(out[0].contains("schedule failed"), "{}", out[0]);
        assert!(out[0].contains("\"key\":\""), "failures still carry the key");
    }

    #[test]
    fn exact_backend_answers_and_caches_separately_from_ims() {
        let ims = r#"{"id":"i","machine":"minimal","ops":["add","mul"],"edges":[[0,1,1,0,"flow",false]]}"#;
        let exact = r#"{"id":"x","machine":"minimal","backend":"exact","ops":["add","mul"],"edges":[[0,1,1,0,"flow",false]]}"#;
        let mut engine = Engine::new(2);
        let out = respond(&mut engine, &[ims, exact]);
        assert!(out[0].contains("\"ok\":true"));
        assert!(out[1].contains("\"ok\":true"));
        assert_eq!(engine.cache.len(), 2, "backend is part of the key");
        assert_eq!(engine.cache.misses, 2);
    }

    #[test]
    fn portfolio_requests_answer_identically_across_thread_counts() {
        let lines = [
            r#"{"id":"pf","machine":"figure1","backend":"portfolio(ims,exact,sat)","ops":["mul","add"],"edges":[[0,1,5,0,"flow",false],[1,0,4,2,"flow",false]]}"#,
            r#"{"id":"sat","machine":"figure1","backend":"sat","ops":["mul","add"],"edges":[[0,1,5,0,"flow",false],[1,0,4,2,"flow",false]]}"#,
        ];
        let mut a = Engine::new(1);
        let cold = respond(&mut a, &lines);
        assert!(cold[0].contains("\"ok\":true"), "{}", cold[0]);
        assert!(cold[1].contains("\"ok\":true"), "{}", cold[1]);
        assert_eq!(a.cache.len(), 2, "spec is part of the key");
        // Hot replay and a parallel engine both reproduce the bytes.
        let hot = respond(&mut a, &lines);
        assert_eq!(cold, hot);
        let mut b = Engine::new(4);
        assert_eq!(respond(&mut b, &lines), cold);
    }

    #[test]
    fn unknown_backend_specs_fail_per_request_before_any_worker_runs() {
        let mut engine = Engine::new(2);
        let out = respond(
            &mut engine,
            &[
                r#"{"id":"bad","backend":"portfolio(ims,magic)","ops":["add"]}"#,
                CHAIN,
            ],
        );
        assert!(out[0].contains("\"ok\":false"), "{}", out[0]);
        assert!(out[0].contains("unknown backend"), "{}", out[0]);
        assert!(out[1].contains("\"ok\":true"), "healthy request unaffected");
        assert_eq!(engine.failed, 1);
        // The rejection happened at parse time: no cache traffic for it.
        assert_eq!(engine.cache.hits + engine.cache.misses, 1);
    }

    #[test]
    fn pressure_limited_requests_report_max_live_and_split_the_cache() {
        let plain = r#"{"id":"free","machine":"cydra_rf8","ops":["load","add","store"],"edges":[[0,1,13,0,"flow",false],[1,2,1,0,"flow",false]]}"#;
        let limited = r#"{"id":"tight","machine":"cydra_rf8","pressure_limit":8,"ops":["load","add","store"],"edges":[[0,1,13,0,"flow",false],[1,2,1,0,"flow",false]]}"#;
        let mut engine = Engine::new(1);
        let out = respond(&mut engine, &[plain, limited, limited]);
        assert!(out[0].contains("\"ok\":true"), "{}", out[0]);
        assert!(!out[0].contains("max_live"), "unlimited requests stay unchanged: {}", out[0]);
        assert!(out[1].contains("\"ok\":true"), "{}", out[1]);
        let m: u32 = out[1]
            .split("\"max_live\":")
            .nth(1)
            .expect("pressure-limited response carries max_live")
            .split(',')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(m >= 1 && m <= 8, "max_live {m} within the limit");
        // The limit is part of the key: two entries, one hit on replay.
        assert_eq!(engine.cache.len(), 2);
        assert_eq!(out[1], out[2]);
        // And the whole batch replays identically on a parallel engine.
        let mut b = Engine::new(4);
        assert_eq!(respond(&mut b, &[plain, limited, limited]), out);
    }

    #[test]
    fn pressure_limits_compose_only_with_the_ims_backend() {
        let line = r#"{"id":"px","machine":"minimal","backend":"exact","pressure_limit":4,"ops":["add"],"edges":[]}"#;
        let mut engine = Engine::new(1);
        let out = respond(&mut engine, &[line]);
        assert!(out[0].contains("\"ok\":false"), "{}", out[0]);
        assert!(out[0].contains("pressure_limit requires the ims backend"), "{}", out[0]);
        assert!(out[0].contains("\"key\":\""), "clean failure still carries the key");
    }

    #[test]
    fn infeasible_pressure_limits_fail_with_a_structured_error() {
        // Two loads feeding one add, with edge delays covering the load
        // latency: both values are live when the add issues, so no
        // schedule at any II keeps a single register live.
        let line = r#"{"id":"inf","machine":"cydra_rf8","pressure_limit":1,"max_ii":3,"ops":["load","load","add"],"edges":[[0,2,20,0,"flow",false],[1,2,20,0,"flow",false]]}"#;
        let mut engine = Engine::new(1);
        let out = respond(&mut engine, &[line]);
        assert!(out[0].contains("\"ok\":false"), "{}", out[0]);
        assert!(out[0].contains("pressure"), "structured pressure error: {}", out[0]);
        // Deterministic: the failure replays from cache byte-identically.
        let again = respond(&mut engine, &[line]);
        assert_eq!(out[0], again[0]);
    }

    #[test]
    fn serve_stream_batches_and_flushes() {
        let input = format!("{CHAIN}\n\n{CHAIN_PERM}\n{CHAIN}\n");
        let mut engine = Engine::new(2);
        let mut out = Vec::new();
        serve_stream(&mut engine, input.as_bytes(), &mut out, 2).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text.lines().count(), 3, "blank line skipped:\n{text}");
        assert_eq!(engine.requests, 3);
        assert_eq!(engine.cache.misses, 1);
        assert_eq!(engine.cache.hits, 2);
    }

    const STATS: &str = r#"{"id":"s","stats":true}"#;

    #[test]
    fn stats_probes_report_strictly_preceding_lines() {
        let mut engine = Engine::new(2);
        let out = respond(&mut engine, &[STATS, CHAIN, STATS, CHAIN, "garbage", STATS]);
        assert_eq!(
            out[0],
            r#"{"id":"s","ok":true,"stats":{"requests":0,"hits":0,"misses":0,"failed":0,"entries":0}}"#
        );
        assert_eq!(
            out[2],
            r#"{"id":"s","ok":true,"stats":{"requests":2,"hits":0,"misses":1,"failed":0,"entries":1}}"#
        );
        assert_eq!(
            out[5],
            r#"{"id":"s","ok":true,"stats":{"requests":5,"hits":1,"misses":1,"failed":1,"entries":1}}"#
        );
        assert_eq!(engine.requests, 6, "stats probes count as requests after rendering");
        // A probe in a later batch sees the accumulated totals.
        let next = respond(&mut engine, &[STATS]);
        assert_eq!(
            next[0],
            r#"{"id":"s","ok":true,"stats":{"requests":6,"hits":1,"misses":1,"failed":1,"entries":1}}"#
        );
    }

    #[test]
    fn stats_probes_are_deterministic_across_threads_and_splits() {
        let lines: Vec<String> = [STATS, CHAIN, STATS, CHAIN_PERM, STATS, CHAIN, STATS]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let run = |threads: usize, split: usize| -> String {
            let mut engine = Engine::new(threads);
            let mut out = Vec::new();
            for chunk in lines.chunks(split) {
                engine.process_batch(chunk, &mut out).unwrap();
            }
            String::from_utf8(out).unwrap()
        };
        let baseline = run(1, lines.len());
        for (threads, split) in [(4, 7), (4, 2), (2, 1), (8, 3)] {
            assert_eq!(run(threads, split), baseline, "threads={threads} split={split}");
        }
    }

    #[test]
    fn latency_histograms_are_opt_in_and_per_backend() {
        let mut engine = Engine::new(1);
        engine.enable_latency();
        let out = respond(&mut engine, &[CHAIN, STATS]);
        assert!(
            out[1].contains("\"latency\":{\"ims\":{\"count\":1,\"p50_ns\":"),
            "{}",
            out[1]
        );
        let h = engine.latency_of("ims").expect("one miss recorded");
        assert_eq!(h.total(), 1);
        assert!(engine.latency_of("exact").is_none());
        // Cache hits schedule nothing, so they record nothing.
        let again = respond(&mut engine, &[CHAIN, STATS]);
        assert!(again[1].contains("\"count\":1,"), "{}", again[1]);
        // Without the opt-in the stats response has no latency key.
        let mut plain = Engine::new(1);
        let o = respond(&mut plain, &[CHAIN, STATS]);
        assert!(!o[1].contains("latency"), "{}", o[1]);
    }

    #[test]
    fn metrics_export_uses_registered_phase_names() {
        let mut engine = Engine::new(1);
        respond(&mut engine, &[CHAIN, CHAIN, "garbage"]);
        let mut reg = MetricsRegistry::new();
        engine.export_metrics(&mut reg);
        assert_eq!(reg.counter(phase::SERVE_REQUESTS), 3);
        assert_eq!(reg.counter(phase::SERVE_CACHE_MISSES), 1);
        assert_eq!(reg.counter(phase::SERVE_CACHE_HITS), 1);
        assert_eq!(reg.counter(phase::SERVE_FAILED), 1);
        for name in [
            phase::SERVE_REQUESTS,
            phase::SERVE_CACHE_HITS,
            phase::SERVE_CACHE_MISSES,
            phase::SERVE_FAILED,
        ] {
            assert!(phase::describe(name).is_some(), "{name} not in REGISTRY");
        }
    }
}
