#![warn(missing_docs)]

//! Scheduler-as-a-service: a JSONL daemon over the modulo scheduler with
//! a content-addressed schedule cache.
//!
//! Rau's iterative modulo scheduler is fast per loop, but a production
//! fleet re-schedules the same kernels endlessly. This crate turns the
//! repo's scheduling pipeline into a long-running service (`scheduled`
//! binary): loop problems arrive as JSON lines over stdin or a Unix
//! socket ([`wire`]), fan out across the deterministic worker pool
//! ([`pool`], promoted here from the bench harness), and repeats are
//! answered from a cache ([`cache`]) keyed by a canonical hash of
//! *(dependence graph up to isomorphism, machine model, scheduling
//! configuration, backend)* — the canonicalization pass lives in
//! [`ims_graph::canon`] and is reused for corpus dedup ([`corpus`]).
//!
//! The repo-wide byte-determinism contract extends to the service: the
//! same request multiset produces byte-identical responses at any
//! `--threads N`, across batch splits, and cache hot or cold. Cache
//! hit/miss tallies are deliberately kept **out** of the responses (a
//! hit marker would break cold-vs-warm identity) and surface instead
//! through the `ims-prof` phase registry (`serve.*`) and a stderr
//! summary. See `DESIGN.md` §5e for the wire format and the exact
//! inventory of what the cache key does and does not hash.

pub mod cache;
pub mod corpus;
pub mod json;
pub mod pool;
pub mod service;
pub mod wire;

pub use cache::{key_request, Entry, Keyed, ScheduleCache};
pub use corpus::{dedup_keys, gen_requests, gen_requests_backend};
pub use service::{serve_stream, Engine};
pub use wire::{machine_by_name, parse_request, parse_stats_request, Request, WireEdge};

#[cfg(unix)]
pub use service::serve_socket;
