//! A std-only worker pool for corpus-scale scheduling.
//!
//! The paper's evaluation schedules 1,327 independent loops; nothing about
//! one loop's schedule depends on another's, so the corpus is
//! embarrassingly parallel. [`par_map`] fans a slice out over `threads`
//! scoped `std::thread` workers that pull chunks off a shared atomic
//! cursor (dynamic chunking, so a few expensive loops cannot strand a
//! worker), and reassembles the results **in input order**. Because every
//! result is keyed by its input index before merging, the output is
//! byte-for-byte identical for any thread count — determinism is a
//! property of the merge, not of the OS scheduler.
//!
//! Two failure-handling layers sit on top of the plain map:
//!
//! * [`try_par_map`] catches a panic in the user closure per *item* and
//!   returns it as a structured [`WorkerPanic`] carrying the input index
//!   of the item that blew up — a long-running service turns that into a
//!   per-request failure response instead of process death, and a batch
//!   driver can at least say *which* loop was at fault. The index is the
//!   item's position in the input, so the report is identical at any
//!   thread count.
//! * [`par_map`] still propagates the panic (batch drivers want to die on
//!   a scheduler bug), but with the item and chunk index attached instead
//!   of a bare `expect`.
//!
//! No external dependencies: `std::thread::scope` + `AtomicUsize` only.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// How many items a worker claims per visit to the shared cursor. Small
/// enough to balance a skewed corpus (one 163-op loop costs hundreds of
/// 4-op loops), large enough to keep cursor contention negligible.
const CHUNK: usize = 8;

/// The number of worker threads to use when the caller does not specify:
/// [`std::thread::available_parallelism`], clamped to the pool's tested
/// range, or 1 if the platform cannot say.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, 64)
}

/// Reads a `--threads N` (or `--threads=N`) flag from the process
/// arguments, falling back to [`default_threads`] when the flag is
/// absent. Shared by every corpus binary so they all accept the same
/// flag, with the same strictness: a malformed or zero value prints a
/// usage message to stderr and exits with status 2 (it is **not**
/// silently replaced by a default).
pub fn threads_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    threads_or_exit(&args)
}

/// [`threads_from_args`] over an explicit argument list: resolves the
/// `--threads` flag to a worker count, exiting the process with a usage
/// message on a malformed value. For binaries that already collected
/// their arguments.
pub fn threads_or_exit(args: &[String]) -> usize {
    match parse_threads(args) {
        Ok(Some(n)) => n,
        Ok(None) => default_threads(),
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: --threads N  (N >= 1, e.g. --threads 4 or --threads=4)");
            std::process::exit(2);
        }
    }
}

/// Why a `--threads` flag could not be resolved to a worker count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ThreadsError {
    /// `--threads` was the last argument, with no value following it.
    MissingValue,
    /// The value was not a decimal integer (carries the offending text).
    Invalid(String),
    /// The value parsed as 0, which names no worker configuration: the
    /// single-threaded baseline is `--threads 1`.
    Zero,
}

impl std::fmt::Display for ThreadsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ThreadsError::MissingValue => write!(f, "--threads requires a value"),
            ThreadsError::Invalid(v) => write!(f, "invalid --threads value {v:?}"),
            ThreadsError::Zero => write!(f, "--threads must be at least 1"),
        }
    }
}

/// Parses `--threads N` / `--threads=N` out of an argument list.
///
/// Returns `Ok(None)` when the flag is absent (callers fall back to
/// [`default_threads`]) and an error — never a silent default — when the
/// flag is present but malformed: a missing value, a non-numeric value,
/// or `0`. Drivers surface the error and exit nonzero; see
/// [`threads_or_exit`].
pub fn parse_threads(args: &[String]) -> Result<Option<usize>, ThreadsError> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let value = if a == "--threads" {
            it.next().ok_or(ThreadsError::MissingValue)?.as_str()
        } else if let Some(v) = a.strip_prefix("--threads=") {
            v
        } else {
            continue;
        };
        return match value.parse::<usize>() {
            Ok(0) => Err(ThreadsError::Zero),
            Ok(n) => Ok(Some(n)),
            Err(_) => Err(ThreadsError::Invalid(value.to_string())),
        };
    }
    Ok(None)
}

/// Why a `--backend` flag could not be resolved to a [`ims_core::BackendSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendError {
    /// `--backend` was the last argument, with no value following it.
    MissingValue,
    /// The value was not a recognizable spec (carries the parse error,
    /// which names the bad token and lists the registered names).
    Invalid(ims_core::ParseBackendError),
}

impl std::fmt::Display for BackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendError::MissingValue => write!(f, "--backend requires a value"),
            BackendError::Invalid(e) => write!(f, "invalid --backend value: {e}"),
        }
    }
}

/// Reads a `--backend SPEC` (or `--backend=SPEC`) flag from an argument
/// list — the backend-selection twin of [`parse_threads`], shared by
/// every driver so they all accept the same specs with the same
/// strictness. `Ok(None)` when the flag is absent (callers pick their
/// own default backend); an error — never a silent default — when the
/// flag is present but malformed.
pub fn parse_backend(args: &[String]) -> Result<Option<ims_core::BackendSpec>, BackendError> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let value = if a == "--backend" {
            it.next().ok_or(BackendError::MissingValue)?.as_str()
        } else if let Some(v) = a.strip_prefix("--backend=") {
            v
        } else {
            continue;
        };
        return match value.parse::<ims_core::BackendSpec>() {
            Ok(spec) => Ok(Some(spec)),
            Err(e) => Err(BackendError::Invalid(e)),
        };
    }
    Ok(None)
}

/// [`parse_backend`] with driver-grade failure handling: resolves the
/// `--backend` flag to a spec (or `default` when absent), exiting the
/// process with status 2 and a usage line on a malformed value — the
/// same contract as [`threads_or_exit`].
pub fn backend_or_exit(args: &[String], default: ims_core::BackendSpec) -> ims_core::BackendSpec {
    match parse_backend(args) {
        Ok(Some(spec)) => spec,
        Ok(None) => default,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: --backend SPEC  (ims, exact, sat, or portfolio(a,b,...))");
            std::process::exit(2);
        }
    }
}

/// Why a `--pressure-limit` flag could not be resolved to a register
/// count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PressureError {
    /// `--pressure-limit` was the last argument, with no value following.
    MissingValue,
    /// The value was not a decimal integer (carries the offending text).
    Invalid(String),
    /// The value parsed as 0, which no register file satisfies: pressure
    /// enforcement is *off* when the flag is absent, not at limit 0.
    Zero,
}

impl std::fmt::Display for PressureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PressureError::MissingValue => write!(f, "--pressure-limit requires a value"),
            PressureError::Invalid(v) => write!(f, "invalid --pressure-limit value {v:?}"),
            PressureError::Zero => write!(f, "--pressure-limit must be at least 1"),
        }
    }
}

/// Parses `--pressure-limit N` / `--pressure-limit=N` out of an argument
/// list — the register-pressure twin of [`parse_threads`], shared by the
/// drivers that grow a pressure-aware mode. `Ok(None)` when the flag is
/// absent (pressure enforcement disabled); an error — never a silent
/// default — when the flag is present but malformed.
pub fn parse_pressure(args: &[String]) -> Result<Option<u32>, PressureError> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let value = if a == "--pressure-limit" {
            it.next().ok_or(PressureError::MissingValue)?.as_str()
        } else if let Some(v) = a.strip_prefix("--pressure-limit=") {
            v
        } else {
            continue;
        };
        return match value.parse::<u32>() {
            Ok(0) => Err(PressureError::Zero),
            Ok(n) => Ok(Some(n)),
            Err(_) => Err(PressureError::Invalid(value.to_string())),
        };
    }
    Ok(None)
}

/// [`parse_pressure`] with driver-grade failure handling: resolves the
/// `--pressure-limit` flag to a register count (or `None` when absent),
/// exiting the process with status 2 and a usage line on a malformed
/// value — the same contract as [`threads_or_exit`].
pub fn pressure_or_exit(args: &[String]) -> Option<u32> {
    match parse_pressure(args) {
        Ok(limit) => limit,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: --pressure-limit N  (N >= 1, e.g. --pressure-limit 16 or --pressure-limit=16)"
            );
            std::process::exit(2);
        }
    }
}

/// A panic caught inside a pool worker, attributed to the input item
/// whose closure raised it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPanic {
    /// Input index of the item being processed when the panic fired.
    /// Determined by the input, not by worker arrival order, so error
    /// reports are identical at any thread count.
    pub index: usize,
    /// The panic payload, stringified (`&str` and `String` payloads are
    /// preserved verbatim; anything else becomes a placeholder).
    pub message: String,
}

impl std::fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "worker panicked on item {} (chunk {}): {}",
            self.index,
            self.index / CHUNK,
            self.message
        )
    }
}

/// Stringifies a caught panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Applies `f` to every item of `items` using `threads` worker threads and
/// returns the results in input order.
///
/// With `threads <= 1` the map runs inline on the calling thread (no
/// spawn, no atomics) — the deterministic baseline the parallel path must
/// reproduce exactly. `f` receives `(index, &item)` so callers can key
/// per-item state (seeds, labels) off the stable input position rather
/// than off arrival order.
///
/// # Panics
///
/// Propagates a panic from any worker after all workers have joined,
/// re-raised with the failing item's input index, its chunk index, and
/// the original payload text attached. Callers that must survive a
/// worker panic use [`try_par_map`] instead.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let results = try_par_map(items, threads, f);
    results
        .into_iter()
        .map(|r| match r {
            Ok(v) => v,
            Err(p) => panic!("corpus {p}"),
        })
        .collect()
}

/// [`par_map`] with per-item panic containment: each closure invocation
/// runs under [`catch_unwind`], and a panic becomes an
/// `Err(`[`WorkerPanic`]`)` in that item's output slot while every other
/// item still completes. The scheduling service maps the error to a
/// per-request failure response; [`par_map`] re-raises it.
///
/// Results are in input order for any thread count, exactly as
/// [`par_map`].
pub fn try_par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<Result<R, WorkerPanic>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let call = |i: usize, item: &T| -> Result<R, WorkerPanic> {
        catch_unwind(AssertUnwindSafe(|| f(i, item))).map_err(|payload| WorkerPanic {
            index: i,
            message: panic_message(payload),
        })
    };

    if threads <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, x)| call(i, x)).collect();
    }
    let workers = threads.min(items.len());
    let cursor = AtomicUsize::new(0);

    let mut indexed: Vec<(usize, Result<R, WorkerPanic>)> = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let cursor = &cursor;
                let call = &call;
                scope.spawn(move || {
                    let mut local: Vec<(usize, Result<R, WorkerPanic>)> = Vec::new();
                    loop {
                        let lo = cursor.fetch_add(CHUNK, Ordering::Relaxed);
                        if lo >= items.len() {
                            break;
                        }
                        let hi = (lo + CHUNK).min(items.len());
                        for (i, item) in items[lo..hi].iter().enumerate() {
                            local.push((lo + i, call(lo + i, item)));
                        }
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            // The closure's panics are contained per item; a panic escaping
            // the worker itself would be a pool bug, not a workload bug.
            indexed.extend(handle.join().expect("pool worker died outside the user closure"));
        }
    });

    // The merge re-imposes input order: output is independent of which
    // worker computed what, and therefore of the thread count.
    indexed.sort_unstable_by_key(|&(i, _)| i);
    debug_assert_eq!(indexed.len(), items.len());
    indexed.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_are_in_input_order_for_every_thread_count() {
        let items: Vec<u64> = (0..203).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 4, 8, 16] {
            let got = par_map(&items, threads, |_, &x| x * x);
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn index_matches_item_position() {
        let items: Vec<usize> = (0..57).collect();
        let got = par_map(&items, 4, |i, &x| (i, x));
        for (i, &(idx, x)) in got.iter().enumerate() {
            assert_eq!(idx, i);
            assert_eq!(x, i);
        }
    }

    #[test]
    fn every_item_is_processed_exactly_once() {
        let calls = AtomicU64::new(0);
        let items: Vec<u8> = vec![0; 100];
        let _ = par_map(&items, 8, |_, _| {
            calls.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(calls.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, 4, |_, &x| x).is_empty());
        assert_eq!(par_map(&[7u32], 4, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn thread_count_zero_behaves_like_one() {
        let items: Vec<u32> = (0..10).collect();
        assert_eq!(
            par_map(&items, 0, |_, &x| x),
            par_map(&items, 1, |_, &x| x)
        );
    }

    #[test]
    fn default_threads_is_sane() {
        let t = default_threads();
        assert!((1..=64).contains(&t));
    }

    #[test]
    fn threads_flag_parses_both_spellings() {
        let args = |s: &[&str]| s.iter().map(|x| x.to_string()).collect::<Vec<_>>();
        assert_eq!(parse_threads(&args(&["bin", "--threads", "4"])), Ok(Some(4)));
        assert_eq!(parse_threads(&args(&["bin", "--threads=8"])), Ok(Some(8)));
        assert_eq!(parse_threads(&args(&["bin"])), Ok(None));
    }

    #[test]
    fn threads_flag_rejects_malformed_values() {
        let args = |s: &[&str]| s.iter().map(|x| x.to_string()).collect::<Vec<_>>();
        assert_eq!(
            parse_threads(&args(&["bin", "--threads"])),
            Err(ThreadsError::MissingValue)
        );
        assert_eq!(
            parse_threads(&args(&["bin", "--threads", "abc"])),
            Err(ThreadsError::Invalid("abc".into()))
        );
        assert_eq!(
            parse_threads(&args(&["bin", "--threads=1.5"])),
            Err(ThreadsError::Invalid("1.5".into()))
        );
        assert_eq!(
            parse_threads(&args(&["bin", "--threads", "0"])),
            Err(ThreadsError::Zero)
        );
        assert_eq!(
            parse_threads(&args(&["bin", "--threads=-3"])),
            Err(ThreadsError::Invalid("-3".into()))
        );
    }

    #[test]
    fn backend_flag_parses_both_spellings_and_full_specs() {
        use ims_core::{BackendKind, BackendSpec};
        let args = |s: &[&str]| s.iter().map(|x| x.to_string()).collect::<Vec<_>>();
        assert_eq!(
            parse_backend(&args(&["bin", "--backend", "sat"])),
            Ok(Some(BackendSpec::Leaf(BackendKind::Sat)))
        );
        assert_eq!(
            parse_backend(&args(&["bin", "--backend=portfolio(ims,exact)"])),
            Ok(Some(BackendSpec::Portfolio(vec![
                BackendKind::Ims,
                BackendKind::Exact
            ])))
        );
        assert_eq!(parse_backend(&args(&["bin"])), Ok(None));
    }

    #[test]
    fn backend_flag_rejects_malformed_values() {
        let args = |s: &[&str]| s.iter().map(|x| x.to_string()).collect::<Vec<_>>();
        assert_eq!(
            parse_backend(&args(&["bin", "--backend"])),
            Err(BackendError::MissingValue)
        );
        let err = parse_backend(&args(&["bin", "--backend", "magic"])).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("magic") && msg.contains("ims, exact, sat"), "{msg}");
        let err = parse_backend(&args(&["bin", "--backend=portfolio(ims,"])).unwrap_err();
        assert!(matches!(err, BackendError::Invalid(_)), "{err}");
    }

    #[test]
    fn pressure_flag_parses_both_spellings() {
        let args = |s: &[&str]| s.iter().map(|x| x.to_string()).collect::<Vec<_>>();
        assert_eq!(
            parse_pressure(&args(&["bin", "--pressure-limit", "16"])),
            Ok(Some(16))
        );
        assert_eq!(
            parse_pressure(&args(&["bin", "--pressure-limit=12"])),
            Ok(Some(12))
        );
        assert_eq!(parse_pressure(&args(&["bin"])), Ok(None));
    }

    #[test]
    fn pressure_flag_rejects_malformed_values() {
        let args = |s: &[&str]| s.iter().map(|x| x.to_string()).collect::<Vec<_>>();
        assert_eq!(
            parse_pressure(&args(&["bin", "--pressure-limit"])),
            Err(PressureError::MissingValue)
        );
        assert_eq!(
            parse_pressure(&args(&["bin", "--pressure-limit", "lots"])),
            Err(PressureError::Invalid("lots".into()))
        );
        assert_eq!(
            parse_pressure(&args(&["bin", "--pressure-limit=2.5"])),
            Err(PressureError::Invalid("2.5".into()))
        );
        assert_eq!(
            parse_pressure(&args(&["bin", "--pressure-limit", "0"])),
            Err(PressureError::Zero)
        );
        assert_eq!(
            parse_pressure(&args(&["bin", "--pressure-limit=-4"])),
            Err(PressureError::Invalid("-4".into()))
        );
    }

    #[test]
    fn try_par_map_contains_panics_per_item() {
        let items: Vec<u32> = (0..40).collect();
        for threads in [1, 4] {
            let got = try_par_map(&items, threads, |_, &x| {
                if x % 13 == 5 {
                    panic!("boom at {x}");
                }
                x * 2
            });
            assert_eq!(got.len(), items.len());
            for (i, r) in got.iter().enumerate() {
                if i % 13 == 5 {
                    let p = r.as_ref().unwrap_err();
                    assert_eq!(p.index, i);
                    assert_eq!(p.message, format!("boom at {i}"));
                } else {
                    assert_eq!(r.as_ref().unwrap(), &((i as u32) * 2));
                }
            }
        }
    }

    #[test]
    fn worker_panic_display_names_item_and_chunk() {
        let p = WorkerPanic { index: 19, message: "kaput".into() };
        assert_eq!(
            p.to_string(),
            "worker panicked on item 19 (chunk 2): kaput"
        );
    }

    #[test]
    fn par_map_repropagates_with_item_attribution() {
        let items: Vec<u32> = (0..20).collect();
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            par_map(&items, 4, |_, &x| {
                if x == 11 {
                    panic!("bad loop");
                }
                x
            })
        }));
        let payload = caught.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<String>().expect("string payload");
        assert_eq!(msg, "corpus worker panicked on item 11 (chunk 1): bad loop");
    }
}
