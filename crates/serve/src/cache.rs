//! The content-addressed schedule cache.
//!
//! Every request is reduced to a **canonical problem** — its operations
//! and edges rewritten into the isomorphism-stable node order computed by
//! [`ims_graph::canonical_form`] — and keyed by a 128-bit FNV-1a hash
//! over:
//!
//! * a format-version tag,
//! * the machine name, the backend spec in canonical form (so
//!   `portfolio( sat , ims )` and `portfolio(sat,ims)` share an entry
//!   while member *order* still distinguishes keys — it breaks winner
//!   ties), the `budget_ratio` bit pattern, `max_ii`, `node_limit`, and
//!   `pressure_limit` (everything that can change the answer),
//! * the canonical graph encoding (labels + edges, canonically ordered).
//!
//! The request `id` is **not** hashed, and neither is anything about node
//! numbering: two requests describing the same loop with permuted
//! operation indices collide on one entry. The cache therefore stores the
//! schedule of the *canonical* problem; each response maps the cached
//! canonical times back through its own request's canonicalization
//! permutation, so every requester receives times in its own numbering —
//! valid because a schedule transports along a graph isomorphism
//! unchanged (same II, same length, per-node times carried by the node
//! mapping).

use std::collections::HashMap;

use ims_graph::canon::{canonical_form, fnv128};
use ims_graph::CanonicalForm;
use ims_ir::Opcode;

use crate::wire::{Request, WireEdge};

/// A request rewritten into canonical node order: the schedulable content
/// of the request, independent of how the client numbered its operations.
/// Two isomorphic requests produce equal canonical problems — this is
/// what a cache-missing worker actually schedules, so which request
/// triggered the miss can never leak into the cached entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonProblem {
    /// Opcodes in canonical order.
    pub ops: Vec<Opcode>,
    /// Edges with endpoints in canonical indices, sorted.
    pub edges: Vec<WireEdge>,
}

/// A request bound to its canonical problem, permutation, and cache key.
#[derive(Debug, Clone)]
pub struct Keyed {
    /// The canonical problem to schedule on a miss.
    pub canon: CanonProblem,
    /// `position[i]` = canonical index of request operation `i`.
    pub position: Vec<usize>,
    /// The content-addressed cache key.
    pub key: u128,
}

/// Canonicalizes `req` and derives its cache key.
pub fn key_request(req: &Request) -> Keyed {
    let graph = req.graph();
    let labels = req.labels();
    let form = canonical_form(&graph, &labels);
    let canon = canonical_problem(req, &form);
    let key = cache_key(req, &canon);
    Keyed {
        canon,
        position: form.position,
        key,
    }
}

/// Rewrites the request's ops and edges into canonical order.
fn canonical_problem(req: &Request, form: &CanonicalForm) -> CanonProblem {
    let ops: Vec<Opcode> = form.order.iter().map(|v| req.ops[v.index()]).collect();
    let mut edges: Vec<WireEdge> = req
        .edges
        .iter()
        .map(|e| WireEdge {
            from: form.position[e.from as usize] as u32,
            to: form.position[e.to as usize] as u32,
            ..*e
        })
        .collect();
    edges.sort_by_key(|e| (e.from, e.to, e.delay, e.distance, e.kind as u8, e.is_mem));
    CanonProblem { ops, edges }
}

/// The 128-bit content hash: configuration fields that affect the
/// schedule, then the canonical graph bytes. See the module docs for the
/// exact inventory of what is and is not hashed.
fn cache_key(req: &Request, canon: &CanonProblem) -> u128 {
    let mut bytes: Vec<u8> = Vec::new();
    // v3: the key grew the pressure_limit field.
    bytes.extend_from_slice(b"ims-serve-key-v3\0");
    bytes.extend_from_slice(req.machine.as_bytes());
    bytes.push(0);
    bytes.extend_from_slice(req.backend.canonical().as_bytes());
    bytes.push(0);
    bytes.extend_from_slice(&req.budget_ratio.to_bits().to_be_bytes());
    match req.max_ii {
        None => bytes.push(0),
        Some(m) => {
            bytes.push(1);
            bytes.extend_from_slice(&m.to_be_bytes());
        }
    }
    match req.node_limit {
        None => bytes.push(0),
        Some(n) => {
            bytes.push(1);
            bytes.extend_from_slice(&n.to_be_bytes());
        }
    }
    match req.pressure_limit {
        None => bytes.push(0),
        Some(p) => {
            bytes.push(1);
            bytes.extend_from_slice(&p.to_be_bytes());
        }
    }
    // The canonical problem is a pure function of the canonical encoding,
    // so hashing its serialization is hashing the encoding.
    bytes.extend_from_slice(&(canon.ops.len() as u64).to_be_bytes());
    for op in &canon.ops {
        bytes.extend_from_slice(op.mnemonic().as_bytes());
        bytes.push(0);
    }
    for e in &canon.edges {
        bytes.extend_from_slice(&e.from.to_be_bytes());
        bytes.extend_from_slice(&e.to.to_be_bytes());
        bytes.extend_from_slice(&e.delay.to_be_bytes());
        bytes.extend_from_slice(&e.distance.to_be_bytes());
        bytes.push(e.kind as u8);
        bytes.push(e.is_mem as u8);
    }
    fnv128(&bytes)
}

/// A cached scheduling outcome, in canonical node order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Entry {
    /// The canonical problem scheduled successfully.
    Ok {
        /// Achieved initiation interval.
        ii: i64,
        /// The MII lower bound.
        mii: i64,
        /// Single-iteration schedule length.
        length: i64,
        /// Peak register pressure (MaxLive) of the accepted schedule —
        /// recorded only for pressure-limited requests, where it is
        /// guaranteed `<=` the requested `pressure_limit`.
        max_live: Option<u32>,
        /// Issue time per canonical operation.
        times: Vec<i64>,
        /// Chosen alternative per canonical operation.
        alts: Vec<usize>,
    },
    /// Scheduling failed (clean error or contained worker panic); the
    /// message is deterministic, so failures replay from cache too.
    Failed {
        /// Human-readable failure description.
        error: String,
    },
}

/// The in-memory content-addressed store plus its hit/miss tallies.
/// Tallies are counted at response time in request order, so they are
/// identical for any worker-thread count.
#[derive(Debug, Default)]
pub struct ScheduleCache {
    entries: HashMap<u128, Entry>,
    /// Responses served from an entry that existed before their batch.
    pub hits: u64,
    /// Responses that required scheduling work this batch (one per first
    /// occurrence of a new key; later duplicates in the same batch are
    /// hits — the work was already merged when they were answered).
    pub misses: u64,
}

impl ScheduleCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct canonical problems cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a key.
    pub fn get(&self, key: u128) -> Option<&Entry> {
        self.entries.get(&key)
    }

    /// Inserts a freshly computed entry.
    pub fn insert(&mut self, key: u128, entry: Entry) {
        self.entries.insert(key, entry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::parse_request;

    #[test]
    fn isomorphic_requests_share_a_key_and_canonical_problem() {
        // The same 3-op chain with operations listed in two different
        // orders (edge endpoints renumbered to match).
        let a = parse_request(
            r#"{"id":"a","ops":["load","add","store"],
                "edges":[[0,1,13,0,"flow",false],[1,2,1,0,"flow",false]]}"#,
        )
        .unwrap();
        let b = parse_request(
            r#"{"id":"b","ops":["store","load","add"],
                "edges":[[1,2,13,0,"flow",false],[2,0,1,0,"flow",false]]}"#,
        )
        .unwrap();
        let ka = key_request(&a);
        let kb = key_request(&b);
        assert_eq!(ka.key, kb.key);
        assert_eq!(ka.canon, kb.canon);
        // The permutations differ — that is the point.
        assert_ne!(ka.position, kb.position);
    }

    #[test]
    fn config_fields_split_the_key() {
        let base = r#"{"id":"c","ops":["add"],"edges":[]}"#;
        let k0 = key_request(&parse_request(base).unwrap()).key;
        for variant in [
            r#"{"id":"c","machine":"minimal","ops":["add"],"edges":[]}"#,
            r#"{"id":"c","backend":"exact","ops":["add"],"edges":[]}"#,
            r#"{"id":"c","budget_ratio":6.0,"ops":["add"],"edges":[]}"#,
            r#"{"id":"c","max_ii":5,"ops":["add"],"edges":[]}"#,
            r#"{"id":"c","node_limit":10,"ops":["add"],"edges":[]}"#,
            r#"{"id":"c","pressure_limit":8,"ops":["add"],"edges":[]}"#,
            r#"{"id":"c","ops":["sub"],"edges":[]}"#,
        ] {
            let kv = key_request(&parse_request(variant).unwrap()).key;
            assert_ne!(k0, kv, "{variant}");
        }
        // The id is NOT part of the key.
        let renamed = key_request(&parse_request(r#"{"id":"zzz","ops":["add"],"edges":[]}"#).unwrap());
        assert_eq!(k0, renamed.key);
    }

    #[test]
    fn cache_stores_and_replays_entries() {
        let mut cache = ScheduleCache::new();
        assert!(cache.is_empty());
        let entry = Entry::Ok {
            ii: 2,
            mii: 2,
            length: 4,
            max_live: None,
            times: vec![0, 2],
            alts: vec![0, 0],
        };
        cache.insert(7, entry.clone());
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(7), Some(&entry));
        assert_eq!(cache.get(8), None);
    }
}
