//! `scheduled` — the scheduling service daemon.
//!
//! Reads JSONL scheduling requests (stdin by default), answers each line
//! with a JSONL response, and serves repeated problems from a
//! content-addressed cache. Byte-deterministic: the same request stream
//! yields the same response bytes at any `--threads N`, cache hot or
//! cold.
//!
//! ```text
//! scheduled [--threads N] [--batch N] [--requests FILE] [--profile FILE]
//!           [--latency] [--socket PATH [--conns N]]
//! scheduled --gen-requests N [--seed S] [--backend SPEC]
//! scheduled --dedup FILE
//! ```
//!
//! * default: serve stdin → stdout until EOF.
//! * `--requests FILE`: serve the lines of FILE instead of stdin.
//! * `--socket PATH`: serve Unix-socket connections sequentially against
//!   one shared cache; `--conns N` exits after N connections (for tests).
//! * `--profile FILE`: write a `BENCH_*`-style snapshot with the
//!   `serve.*` counters on exit.
//! * `--latency`: collect per-backend scheduling-latency histograms,
//!   reported on `{"id":…,"stats":true}` probe responses. Off by
//!   default because wall-clock figures are non-deterministic; the rest
//!   of a stats response (request/hit/miss/failure/entry tallies over
//!   the strictly-preceding lines) is deterministic and always on.
//! * `--gen-requests N --seed S --backend SPEC`: print N request lines
//!   generated from the seeded benchmark corpus, routed to SPEC (`ims`,
//!   `exact`, `sat`, or `portfolio(a,b,...)`; default `ims`), then exit.
//! * `--dedup FILE`: canonicalize the request lines of FILE and report
//!   distinct-problem / structural-duplicate counts, then exit.

use std::fs::File;
use std::io::{self, BufRead, BufReader, Write};
use std::process::exit;

use ims_prof::{snapshot, MetricsRegistry};
use ims_serve::{dedup_keys, gen_requests_backend, pool, serve_stream, Engine};

fn usage() -> ! {
    eprintln!(
        "usage: scheduled [--threads N] [--batch N] [--requests FILE] [--profile FILE]\n\
         \x20                [--latency] [--socket PATH [--conns N]]\n\
         \x20      scheduled --gen-requests N [--seed S] [--backend SPEC]\n\
         \x20      scheduled --dedup FILE"
    );
    exit(2);
}

/// Reads the value of `--flag V` / `--flag=V` from `args`, exiting with
/// usage on a present-but-malformed value.
fn flag<T: std::str::FromStr>(args: &[String], name: &str) -> Option<T> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let v = if a == name {
            it.next().map(String::as_str)
        } else if let Some(rest) = a.strip_prefix(name) {
            rest.strip_prefix('=')
        } else {
            continue;
        };
        let Some(v) = v else {
            eprintln!("error: {name} requires a value");
            usage();
        };
        return match v.parse() {
            Ok(t) => Some(t),
            Err(_) => {
                eprintln!("error: invalid {name} value {v:?}");
                usage();
            }
        };
    }
    None
}

fn main() -> io::Result<()> {
    let args: Vec<String> = std::env::args().collect();

    if let Some(n) = flag::<usize>(&args, "--gen-requests") {
        let seed = flag::<u64>(&args, "--seed").unwrap_or(7);
        let backend = pool::backend_or_exit(&args, ims_core::BackendSpec::default());
        let stdout = io::stdout();
        let mut out = stdout.lock();
        for line in gen_requests_backend(seed, n, &backend) {
            writeln!(out, "{line}")?;
        }
        return Ok(());
    }

    if let Some(path) = flag::<String>(&args, "--dedup") {
        let lines: Vec<String> = BufReader::new(File::open(&path)?)
            .lines()
            .collect::<io::Result<_>>()?;
        let (keys, dups) = dedup_keys(&lines);
        println!(
            "{} lines, {} distinct canonical problems, {} structural duplicates",
            lines.len(),
            keys.len(),
            dups
        );
        return Ok(());
    }

    // --threads is strict: a malformed value exits 2 with a usage line
    // (threads_or_exit), never a silent default.
    let threads = pool::threads_or_exit(&args);
    let batch = flag::<usize>(&args, "--batch").unwrap_or(256);
    let profile = flag::<String>(&args, "--profile");
    let mut engine = Engine::new(threads);
    if args.iter().any(|a| a == "--latency") {
        engine.enable_latency();
    }

    if let Some(socket_path) = flag::<String>(&args, "--socket") {
        #[cfg(unix)]
        {
            let conns = flag::<usize>(&args, "--conns");
            ims_serve::serve_socket(
                &mut engine,
                std::path::Path::new(&socket_path),
                batch,
                conns,
            )?;
        }
        #[cfg(not(unix))]
        {
            let _ = socket_path;
            eprintln!("error: --socket requires a Unix platform");
            exit(2);
        }
    } else if let Some(requests_path) = flag::<String>(&args, "--requests") {
        let reader = BufReader::new(File::open(&requests_path)?);
        let stdout = io::stdout();
        serve_stream(&mut engine, reader, stdout.lock(), batch)?;
    } else {
        let stdin = io::stdin();
        let stdout = io::stdout();
        serve_stream(&mut engine, stdin.lock(), stdout.lock(), batch)?;
    }

    if let Some(profile_path) = profile {
        let mut reg = MetricsRegistry::new();
        engine.export_metrics(&mut reg);
        std::fs::write(&profile_path, snapshot::render_snapshot("serve", &reg))?;
    }
    eprintln!("{}", engine.summary());
    Ok(())
}
