//! End-to-end contract of the `scheduled` binary: replaying a request
//! file twice yields byte-identical response halves with the second pass
//! fully cache-served, the response stream is byte-identical across
//! `--threads` values, failures come back as structured responses, and a
//! malformed `--threads` is a hard usage error.

use std::io::Write;
use std::path::PathBuf;
use std::process::{Command, Output, Stdio};

use ims_prof::snapshot::Snapshot;
use ims_prof::phase;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ims_serve_e2e_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Runs `scheduled` with `args`, feeding `input` on stdin.
fn scheduled(args: &[&str], input: &str) -> Output {
    let mut child = Command::new(env!("CARGO_BIN_EXE_scheduled"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn scheduled");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(input.as_bytes())
        .unwrap();
    child.wait_with_output().expect("scheduled runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).expect("stdout is UTF-8")
}

/// A deterministic request corpus: the first `n` seeded corpus loops.
fn requests(n: usize) -> String {
    let out = scheduled(&["--gen-requests", &n.to_string(), "--seed", "7"], "");
    assert!(out.status.success());
    let text = stdout(&out);
    assert_eq!(text.lines().count(), n);
    text
}

fn counters(profile_path: &PathBuf) -> std::collections::BTreeMap<String, u64> {
    let text = std::fs::read_to_string(profile_path).expect("profile written");
    Snapshot::parse(&text).expect("profile parses").counters
}

#[test]
fn replay_is_byte_identical_and_second_pass_fully_cached() {
    let dir = scratch("replay");
    let reqs = requests(8);
    let doubled = format!("{reqs}{reqs}");
    let profile = dir.join("replay.json");

    let out = scheduled(
        &["--threads", "1", "--profile", profile.to_str().unwrap()],
        &doubled,
    );
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let text = stdout(&out);
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 16, "one response per request line");
    // The two passes over the same file answer byte-identically: a cache
    // hit must be indistinguishable from a fresh schedule.
    assert_eq!(lines[..8], lines[8..], "cold and warm halves differ");
    for line in &lines {
        assert!(line.contains("\"ok\":true"), "{line}");
    }

    let c = counters(&profile);
    let hits = c[phase::SERVE_CACHE_HITS];
    let misses = c[phase::SERVE_CACHE_MISSES];
    assert_eq!(c[phase::SERVE_REQUESTS], 16);
    assert_eq!(hits + misses, 16);
    assert!(misses <= 8, "at most one miss per distinct problem: {misses}");
    assert!(hits >= 8, "the whole second pass must be cache-served: {hits}");
    assert_eq!(c[phase::SERVE_FAILED], 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn responses_are_byte_identical_across_thread_counts() {
    let dir = scratch("threads");
    let reqs = requests(10);
    let run = |threads: &str, profile: &PathBuf| {
        let out = scheduled(
            &["--threads", threads, "--profile", profile.to_str().unwrap()],
            &reqs,
        );
        assert!(out.status.success());
        stdout(&out)
    };
    let p1 = dir.join("t1.json");
    let p4 = dir.join("t4.json");
    let serial = run("1", &p1);
    let parallel = run("4", &p4);
    assert_eq!(serial, parallel, "--threads must not change response bytes");
    // The cache tallies are part of the determinism contract too.
    assert_eq!(counters(&p1), counters(&p4));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn requests_file_flag_matches_stdin() {
    let dir = scratch("reqfile");
    let reqs = requests(5);
    let path = dir.join("reqs.jsonl");
    std::fs::write(&path, &reqs).unwrap();
    let from_stdin = scheduled(&["--threads", "2"], &reqs);
    let from_file = scheduled(&["--threads", "2", "--requests", path.to_str().unwrap()], "");
    assert!(from_file.status.success());
    assert_eq!(stdout(&from_stdin), stdout(&from_file));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn failures_are_structured_responses_not_crashes() {
    // A parse error, a contained constructor panic (wide0), and a clean
    // scheduling failure (max_ii below MII) each answer in place.
    let input = "\
not json\n\
{\"id\":\"w\",\"machine\":\"wide0\",\"ops\":[\"add\"]}\n\
{\"id\":\"cap\",\"machine\":\"minimal\",\"max_ii\":1,\"ops\":[\"add\",\"add\"],\"edges\":[[0,1,3,0,\"flow\",false],[1,0,3,1,\"flow\",false]]}\n\
{\"id\":\"ok\",\"machine\":\"minimal\",\"ops\":[\"add\"]}\n";
    let out = scheduled(&["--threads", "2"], input);
    assert!(out.status.success(), "failures must not kill the service");
    let text = stdout(&out);
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 4);
    assert!(lines[0].contains("\"ok\":false") && lines[0].contains("invalid JSON"));
    assert!(lines[1].contains("\"ok\":false") && lines[1].contains("panicked"), "{}", lines[1]);
    assert!(lines[2].contains("\"ok\":false") && lines[2].contains("schedule failed"));
    assert!(lines[3].contains("\"ok\":true"));
}

#[test]
fn malformed_threads_is_a_usage_error() {
    for args in [
        &["--threads", "zero"][..],
        &["--threads", "0"][..],
        &["--threads"][..],
    ] {
        let out = scheduled(args, "");
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("usage:"), "{args:?} -> {err}");
        assert!(out.stdout.is_empty());
    }
}

#[test]
fn gen_requests_is_reproducible_and_dedup_reports() {
    let a = requests(6);
    let b = requests(6);
    assert_eq!(a, b, "generation is a pure function of (seed, n)");

    let dir = scratch("dedup");
    let path = dir.join("corpus.jsonl");
    // Append a renumbered duplicate of a tiny problem plus its original.
    let extra = concat!(
        r#"{"id":"d1","ops":["load","add"],"edges":[[0,1,13,0,"flow",false]]}"#,
        "\n",
        r#"{"id":"d2","ops":["add","load"],"edges":[[1,0,13,0,"flow",false]]}"#,
        "\n"
    );
    std::fs::write(&path, format!("{a}{extra}")).unwrap();
    let out = scheduled(&["--dedup", path.to_str().unwrap()], "");
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("8 lines"), "{text}");
    assert!(text.contains("structural duplicate"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[cfg(unix)]
#[test]
fn socket_mode_serves_a_connection() {
    use std::io::Read;
    use std::os::unix::net::UnixStream;

    let dir = scratch("socket");
    let sock = dir.join("scheduled.sock");
    let mut child = Command::new(env!("CARGO_BIN_EXE_scheduled"))
        .args(["--threads", "2", "--socket", sock.to_str().unwrap(), "--conns", "1"])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn scheduled --socket");

    // Wait for the listener to come up.
    let mut stream = None;
    for _ in 0..200 {
        if let Ok(s) = UnixStream::connect(&sock) {
            stream = Some(s);
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    let mut stream = stream.expect("socket accepts within 2s");
    stream
        .write_all(b"{\"id\":\"s\",\"machine\":\"minimal\",\"ops\":[\"add\"]}\n")
        .unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let mut reply = String::new();
    stream.read_to_string(&mut reply).unwrap();
    assert!(reply.contains("\"id\":\"s\"") && reply.contains("\"ok\":true"), "{reply}");

    let status = child.wait().expect("exits after --conns 1");
    assert!(status.success());
    std::fs::remove_dir_all(&dir).ok();
}
