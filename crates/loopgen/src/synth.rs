//! Seeded synthetic loop generation.
//!
//! The generator emits *valid* (dynamic-single-assignment, fully typed)
//! loop bodies whose structure spans the paper's corpus: pointer-walking
//! load/store streams (whose address increments are the ubiquitous
//! single-operation SCCs of §4.2), arithmetic expression trees, optional
//! multi-operation recurrence circuits, and an optional count-down branch.
//! Distribution calibration to Table 3 happens in
//! [`crate::corpus::paper_corpus`].

use ims_ir::{LoopBody, LoopBuilder, MemRef, Opcode, Operand, Value, VReg};
use ims_testkit::Rng;

/// Shape parameters for one synthetic loop.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthConfig {
    /// Approximate number of operations to emit (the structural grain means
    /// the result can overshoot by a few).
    pub ops_target: usize,
    /// Lengths of the multi-operation recurrence circuits to include
    /// (empty for a vectorizable loop). Each length is the number of
    /// operations on the circuit, at least 2.
    pub recurrences: Vec<usize>,
    /// Whether to emit an explicit count-down branch.
    pub with_branch: bool,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            ops_target: 12,
            recurrences: Vec::new(),
            with_branch: true,
        }
    }
}

/// Generates one valid loop body with the given shape.
///
/// The body always validates (`LoopBuilder::finish` is used internally) and
/// is deterministic for a given `rng` state and config.
///
/// # Panics
///
/// Panics if a recurrence length is less than 2 (single-operation
/// recurrences arise naturally from the pointer increments).
pub fn generate_loop<R: Rng>(rng: &mut R, config: &SynthConfig) -> LoopBody {
    for &len in &config.recurrences {
        assert!(len >= 2, "multi-operation recurrences need length >= 2");
    }
    let mut b = LoopBuilder::new("synth", 16);
    let mut pool: Vec<VReg> = Vec::new();
    let mut budget = config.ops_target as i64;

    // A couple of scalar live-ins so expressions have leaves.
    for i in 0..2 {
        pool.push(b.live_in(&format!("c{i}"), Value::Float(1.0 + i as f64 / 4.0)));
    }

    // Load streams: ptr (live-in) + load + pointer increment.
    let num_loads = (config.ops_target / 9).clamp(1, 4);
    for i in 0..num_loads {
        let arr = b.array(format!("a{i}"), 64);
        let p = b.ptr(&format!("p{i}"), arr, 0);
        let v = b.load(
            &format!("v{i}"),
            p,
            Some(MemRef::new(arr, 0, 1)),
        );
        b.addr_add(p, p, 1);
        pool.push(v);
        budget -= 2;
    }

    let pick = |rng: &mut R, pool: &[VReg]| -> Operand {
        if pool.is_empty() || rng.gen_bool(0.15) {
            Operand::ImmFloat(rng.gen_range(0.25..2.0))
        } else {
            pool[rng.gen_range(0..pool.len())].into()
        }
    };

    // Multi-operation recurrence circuits.
    for (ri, &len) in config.recurrences.iter().enumerate() {
        let acc = b.fresh(&format!("acc{ri}"));
        b.bind_live_in(acc, Value::Float(0.5));
        let mut cur: Operand = acc.into();
        for j in 0..len - 1 {
            let other = pick(rng, &pool);
            let opcode = if rng.gen_bool(0.5) { Opcode::Add } else { Opcode::Mul };
            let v = b.op(&format!("r{ri}_{j}"), opcode, vec![cur, other]);
            cur = v.into();
            pool.push(v);
        }
        b.rebind(acc, Opcode::Add, vec![cur, pick(rng, &pool)]);
        budget -= len as i64;
    }

    // Filler arithmetic.
    while budget > 3 {
        let roll = rng.gen_range(0..100);
        let a = pick(rng, &pool);
        let c = pick(rng, &pool);
        let idx = pool.len();
        let v = match roll {
            0..=34 => b.op(&format!("t{idx}"), Opcode::Add, vec![a, c]),
            35..=54 => b.op(&format!("t{idx}"), Opcode::Mul, vec![a, c]),
            55..=69 => b.op(&format!("t{idx}"), Opcode::Sub, vec![a, c]),
            70..=79 => b.op(&format!("t{idx}"), Opcode::Min, vec![a, c]),
            80..=89 => b.op(&format!("t{idx}"), Opcode::Max, vec![a, c]),
            90..=95 => b.op(&format!("t{idx}"), Opcode::Abs, vec![a]),
            96..=97 => b.op(&format!("t{idx}"), Opcode::Div, vec![a, c]),
            _ => b.op(&format!("t{idx}"), Opcode::Sqrt, vec![a]),
        };
        pool.push(v);
        budget -= 1;
    }

    // A store stream consuming a computed value.
    {
        let arr = b.array("out", 64);
        let p = b.ptr("pout", arr, 0);
        let val = pick(rng, &pool);
        b.store(p, val, Some(MemRef::new(arr, 0, 1)));
        b.addr_add(p, p, 1);
    }

    if config.with_branch {
        let cnt = b.fresh("cnt");
        b.bind_live_in(cnt, Value::Int(16));
        b.addr_sub(cnt, cnt, 1);
        b.branch(cnt);
    }

    b.finish().expect("generated bodies are valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ims_ir::validate::validate;
    use ims_testkit::Xoshiro256;

    #[test]
    fn generated_bodies_validate() {
        let mut rng = Xoshiro256::seed_from_u64(7);
        for i in 0..50 {
            let cfg = SynthConfig {
                ops_target: 4 + (i % 40),
                recurrences: if i % 4 == 0 { vec![2 + i % 5] } else { vec![] },
                with_branch: i % 2 == 0,
            };
            let body = generate_loop(&mut rng, &cfg);
            assert!(validate(&body).is_ok(), "config {cfg:?}");
        }
    }

    #[test]
    fn determinism_per_seed() {
        let cfg = SynthConfig {
            ops_target: 20,
            recurrences: vec![3],
            with_branch: true,
        };
        let a = generate_loop(&mut Xoshiro256::seed_from_u64(42), &cfg);
        let b = generate_loop(&mut Xoshiro256::seed_from_u64(42), &cfg);
        assert_eq!(a, b);
        let c = generate_loop(&mut Xoshiro256::seed_from_u64(43), &cfg);
        assert_ne!(a, c, "different seeds should give different loops");
    }

    #[test]
    fn op_count_tracks_target() {
        let mut rng = Xoshiro256::seed_from_u64(1);
        for target in [6usize, 12, 30, 80, 160] {
            let cfg = SynthConfig {
                ops_target: target,
                recurrences: vec![],
                with_branch: true,
            };
            let body = generate_loop(&mut rng, &cfg);
            let n = body.num_ops();
            assert!(
                n as i64 >= target as i64 - 4 && n <= target + 8,
                "target {target}, got {n}"
            );
        }
    }

    #[test]
    fn recurrences_form_cycles() {
        // The recurrence accumulator must be defined and read in a chain.
        let cfg = SynthConfig {
            ops_target: 10,
            recurrences: vec![4],
            with_branch: false,
        };
        let body = generate_loop(&mut Xoshiro256::seed_from_u64(5), &cfg);
        // At least one register is both defined and used before its
        // definition (the accumulator).
        assert!(validate(&body).is_ok());
        let has_acc = body.live_ins().iter().any(|li| body.def_of(li.reg).is_some());
        assert!(has_acc, "recurrence accumulator missing");
    }

    #[test]
    #[should_panic(expected = "length >= 2")]
    fn short_recurrence_rejected() {
        let cfg = SynthConfig {
            ops_target: 10,
            recurrences: vec![1],
            with_branch: false,
        };
        let _ = generate_loop(&mut Xoshiro256::seed_from_u64(0), &cfg);
    }
}
