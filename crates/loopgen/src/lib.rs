#![warn(missing_docs)]

//! The benchmark-loop corpus.
//!
//! The paper's input set was *"1327 loops (1002 from the Perfect Club, 298
//! from Spec, and 27 from the LFK)"*, extracted by the Cydra 5 Fortran
//! compiler (§4.1). Those compiler dumps are not available, so this crate
//! provides the substitute described in `DESIGN.md` §3:
//!
//! * [`kernels`](mod@kernels): 31 hand-written loops in the style of the Livermore
//!   Fortran Kernels — reductions, first/second-order recurrences,
//!   stencils, gathers with unanalyzable addresses, predicated
//!   (IF-converted) loops, long-latency divide/sqrt loops. Each comes with
//!   deterministic input data so the simulator can execute it end-to-end.
//! * [`synth`]: a seeded random generator of *valid* loop bodies whose
//!   corpus-level statistics are calibrated to the paper's Table 3
//!   (operation counts with median ≈12, mean ≈19.5, max 163, heavily
//!   skewed small; 77% of loops with no non-trivial SCC; SCC sizes almost
//!   always 1).
//! * [`corpus`]: [`corpus::paper_corpus`] assembles the full 1327-loop
//!   substitute corpus with a synthetic execution profile (`EntryFreq`,
//!   `LoopFreq`, and the 597/1327 executed-loop fraction of §4.3).

pub mod corpus;
pub mod kernels;
pub mod synth;

pub use corpus::{corpus_of_size, paper_corpus, Corpus, CorpusLoop, Profile, Source};
pub use kernels::{kernels, Kernel};
pub use synth::{generate_loop, SynthConfig};
