//! Hand-written Livermore-style benchmark kernels.
//!
//! Each kernel is a complete, *executable* loop: a body plus deterministic
//! initial array contents, so the integration suite can schedule it, run it
//! through every execution mode of the simulator, and check semantic
//! equivalence. The selection mirrors the loop shapes the paper's corpus
//! contains: vectorizable expression loops, register and memory
//! recurrences (first and second order), reductions, stencils, gathers and
//! scatters through unanalyzable addresses, predicated (IF-converted)
//! bodies, and long-latency divide/square-root loops.

use ims_ir::{ArrayId, CmpKind, LoopBody, LoopBuilder, MemRef, Value};

/// A named, executable benchmark kernel.
#[derive(Debug, Clone)]
pub struct Kernel {
    /// Short identifier, e.g. `"inner_product"`.
    pub name: &'static str,
    /// The loop body (trip count baked in).
    pub body: LoopBody,
    /// Initial contents per array (shorter vectors leave trailing zeros).
    pub init: Vec<(ArrayId, Vec<Value>)>,
}

fn f(i: usize) -> Value {
    // Deterministic, well-conditioned float data.
    Value::Float(1.0 + ((i * 7 + 3) % 17) as f64 / 8.0)
}

fn fvec(len: usize) -> Vec<Value> {
    (0..len).map(f).collect()
}

/// All hand-written kernels, instantiated with trip count `n`.
///
/// # Panics
///
/// Panics if `n < 4` (the kernels' stencil offsets need a few elements).
pub fn kernels(n: u32) -> Vec<Kernel> {
    assert!(n >= 4, "kernels need a trip count of at least 4");
    let mut out = Vec::new();
    let nu = n as usize;

    // LFK 1: hydro fragment — x[k] = q + y[k]*(r*z[k+10] + t*z[k+11]).
    out.push({
        let mut b = LoopBuilder::new("hydro", n);
        let x = b.array("x", nu);
        let y = b.array("y", nu);
        let z = b.array("z", nu + 11);
        let px = b.ptr("px", x, 0);
        let py = b.ptr("py", y, 0);
        let pz10 = b.ptr("pz10", z, 10);
        let pz11 = b.ptr("pz11", z, 11);
        let vy = b.load("vy", py, Some(MemRef::new(y, 0, 1)));
        let vz10 = b.load("vz10", pz10, Some(MemRef::new(z, 10, 1)));
        let vz11 = b.load("vz11", pz11, Some(MemRef::new(z, 11, 1)));
        let t1 = b.mul("t1", vz10, 0.5f64);
        let t2 = b.mul("t2", vz11, 0.25f64);
        let t3 = b.add("t3", t1, t2);
        let t4 = b.mul("t4", vy, t3);
        let t5 = b.add("t5", t4, 2.0f64);
        b.store(px, t5, Some(MemRef::new(x, 0, 1)));
        b.addr_add(px, px, 1);
        b.addr_add(py, py, 1);
        b.addr_add(pz10, pz10, 1);
        b.addr_add(pz11, pz11, 1);
        Kernel {
            name: "hydro",
            body: b.finish().expect("kernel is valid"),
            init: vec![(y, fvec(nu)), (z, fvec(nu + 11))],
        }
    });

    // LFK 11: first sum — x[k] = x[k-1] + y[k] (memory recurrence).
    out.push({
        let mut b = LoopBuilder::new("cumsum", n);
        let x = b.array("x", nu + 1);
        let y = b.array("y", nu);
        let pxl = b.ptr("pxl", x, 0);
        let pxs = b.ptr("pxs", x, 1);
        let py = b.ptr("py", y, 0);
        let prev = b.load("prev", pxl, Some(MemRef::new(x, 0, 1)));
        let vy = b.load("vy", py, Some(MemRef::new(y, 0, 1)));
        let s = b.add("s", prev, vy);
        b.store(pxs, s, Some(MemRef::new(x, 1, 1)));
        b.addr_add(pxl, pxl, 1);
        b.addr_add(pxs, pxs, 1);
        b.addr_add(py, py, 1);
        Kernel {
            name: "cumsum",
            body: b.finish().expect("kernel is valid"),
            init: vec![(x, vec![Value::Float(3.0)]), (y, fvec(nu))],
        }
    });

    // LFK 3: inner product — q += z[k]*x[k], running value stored.
    out.push({
        let mut b = LoopBuilder::new("inner_product", n);
        let z = b.array("z", nu);
        let x = b.array("x", nu);
        let o = b.array("o", nu);
        let pz = b.ptr("pz", z, 0);
        let px = b.ptr("px", x, 0);
        let po = b.ptr("po", o, 0);
        let q = b.fresh("q");
        b.bind_live_in(q, Value::Float(0.0));
        let vz = b.load("vz", pz, Some(MemRef::new(z, 0, 1)));
        let vx = b.load("vx", px, Some(MemRef::new(x, 0, 1)));
        let prod = b.mul("prod", vz, vx);
        b.rebind_add(q, q, prod);
        b.store(po, q, Some(MemRef::new(o, 0, 1)));
        b.addr_add(pz, pz, 1);
        b.addr_add(px, px, 1);
        b.addr_add(po, po, 1);
        Kernel {
            name: "inner_product",
            body: b.finish().expect("kernel is valid"),
            init: vec![(z, fvec(nu)), (x, fvec(nu))],
        }
    });

    // LFK 5: tridiagonal elimination — x[i] = z[i]*(y[i] − x[i−1]).
    out.push({
        let mut b = LoopBuilder::new("tridiag", n);
        let x = b.array("x", nu + 1);
        let y = b.array("y", nu);
        let z = b.array("z", nu);
        let pxl = b.ptr("pxl", x, 0);
        let pxs = b.ptr("pxs", x, 1);
        let py = b.ptr("py", y, 0);
        let pz = b.ptr("pz", z, 0);
        let prev = b.load("prev", pxl, Some(MemRef::new(x, 0, 1)));
        let vy = b.load("vy", py, Some(MemRef::new(y, 0, 1)));
        let vz = b.load("vz", pz, Some(MemRef::new(z, 0, 1)));
        let d = b.sub("d", vy, prev);
        let r = b.mul("r", vz, d);
        b.store(pxs, r, Some(MemRef::new(x, 1, 1)));
        b.addr_add(pxl, pxl, 1);
        b.addr_add(pxs, pxs, 1);
        b.addr_add(py, py, 1);
        b.addr_add(pz, pz, 1);
        Kernel {
            name: "tridiag",
            body: b.finish().expect("kernel is valid"),
            init: vec![
                (x, vec![Value::Float(0.25)]),
                (y, fvec(nu)),
                (z, (0..nu).map(|i| Value::Float(0.5 + (i % 3) as f64 / 8.0)).collect()),
            ],
        }
    });

    // LFK 7: equation-of-state fragment (long expression, no recurrence).
    out.push({
        let mut b = LoopBuilder::new("state_eqn", n);
        let x = b.array("x", nu);
        let u = b.array("u", nu + 3);
        let z = b.array("z", nu);
        let y = b.array("y", nu);
        let px = b.ptr("px", x, 0);
        let pu = b.ptr("pu", u, 0);
        let pu3 = b.ptr("pu3", u, 3);
        let pz = b.ptr("pz", z, 0);
        let py = b.ptr("py", y, 0);
        let vu = b.load("vu", pu, Some(MemRef::new(u, 0, 1)));
        let vu3 = b.load("vu3", pu3, Some(MemRef::new(u, 3, 1)));
        let vz = b.load("vz", pz, Some(MemRef::new(z, 0, 1)));
        let vy = b.load("vy", py, Some(MemRef::new(y, 0, 1)));
        let ry = b.mul("ry", vy, 0.5f64);
        let inner = b.add("inner", vz, ry);
        let rinner = b.mul("rinner", inner, 0.5f64);
        let t1 = b.add("t1", vu, rinner);
        let tu3 = b.mul("tu3", vu3, 0.125f64);
        let res = b.add("res", t1, tu3);
        b.store(px, res, Some(MemRef::new(x, 0, 1)));
        b.addr_add(px, px, 1);
        b.addr_add(pu, pu, 1);
        b.addr_add(pu3, pu3, 1);
        b.addr_add(pz, pz, 1);
        b.addr_add(py, py, 1);
        Kernel {
            name: "state_eqn",
            body: b.finish().expect("kernel is valid"),
            init: vec![(u, fvec(nu + 3)), (z, fvec(nu)), (y, fvec(nu))],
        }
    });

    // LFK 12: first difference — x[k] = y[k+1] − y[k].
    out.push({
        let mut b = LoopBuilder::new("first_diff", n);
        let x = b.array("x", nu);
        let y = b.array("y", nu + 1);
        let px = b.ptr("px", x, 0);
        let py0 = b.ptr("py0", y, 0);
        let py1 = b.ptr("py1", y, 1);
        let v0 = b.load("v0", py0, Some(MemRef::new(y, 0, 1)));
        let v1 = b.load("v1", py1, Some(MemRef::new(y, 1, 1)));
        let d = b.sub("d", v1, v0);
        b.store(px, d, Some(MemRef::new(x, 0, 1)));
        b.addr_add(px, px, 1);
        b.addr_add(py0, py0, 1);
        b.addr_add(py1, py1, 1);
        Kernel {
            name: "first_diff",
            body: b.finish().expect("kernel is valid"),
            init: vec![(y, fvec(nu + 1))],
        }
    });

    // saxpy: y[i] = y[i] + a·x[i].
    out.push({
        let mut b = LoopBuilder::new("saxpy", n);
        let x = b.array("x", nu);
        let y = b.array("y", nu);
        let px = b.ptr("px", x, 0);
        let py = b.ptr("py", y, 0);
        let a = b.live_in("a", Value::Float(2.5));
        let vx = b.load("vx", px, Some(MemRef::new(x, 0, 1)));
        let vy = b.load("vy", py, Some(MemRef::new(y, 0, 1)));
        let ax = b.mul("ax", a, vx);
        let s = b.add("s", vy, ax);
        b.store(py, s, Some(MemRef::new(y, 0, 1)));
        b.addr_add(px, px, 1);
        b.addr_add(py, py, 1);
        Kernel {
            name: "saxpy",
            body: b.finish().expect("kernel is valid"),
            init: vec![(x, fvec(nu)), (y, fvec(nu))],
        }
    });

    // Sum of squares with the running value stored.
    out.push({
        let mut b = LoopBuilder::new("norm", n);
        let x = b.array("x", nu);
        let o = b.array("o", nu);
        let px = b.ptr("px", x, 0);
        let po = b.ptr("po", o, 0);
        let s = b.fresh("s");
        b.bind_live_in(s, Value::Float(0.0));
        let v = b.load("v", px, Some(MemRef::new(x, 0, 1)));
        let sq = b.mul("sq", v, v);
        b.rebind_add(s, s, sq);
        b.store(po, s, Some(MemRef::new(o, 0, 1)));
        b.addr_add(px, px, 1);
        b.addr_add(po, po, 1);
        Kernel {
            name: "norm",
            body: b.finish().expect("kernel is valid"),
            init: vec![(x, fvec(nu))],
        }
    });

    // Second-order register recurrence: w = w[-1] + 0.5·w[-2].
    out.push({
        let mut b = LoopBuilder::new("rec2", n);
        let o = b.array("o", nu);
        let po = b.ptr("po", o, 0);
        let w = b.fresh("w");
        b.bind_live_in(w, Value::Float(1.0));
        let two_back = b.back(w, 1);
        let half = b.op("half", ims_ir::Opcode::Mul, vec![two_back, 0.5f64.into()]);
        b.rebind_add(w, w, half);
        b.store(po, w, Some(MemRef::new(o, 0, 1)));
        b.addr_add(po, po, 1);
        Kernel {
            name: "rec2",
            body: b.finish().expect("kernel is valid"),
            init: vec![],
        }
    });

    // Gather through an index array (unanalyzable load address).
    out.push({
        let mut b = LoopBuilder::new("gather", n);
        let idx = b.array("idx", nu);
        let x = b.array("x", nu);
        let o = b.array("o", nu);
        let pidx = b.ptr("pidx", idx, 0);
        let xbase = b.ptr("xbase", x, 0);
        let po = b.ptr("po", o, 0);
        let vi = b.load("vi", pidx, Some(MemRef::new(idx, 0, 1)));
        let addr = b.op("addr", ims_ir::Opcode::AddrAdd, vec![xbase.into(), vi.into()]);
        let v = b.load("v", addr, None); // unanalyzable
        b.store(po, v, Some(MemRef::new(o, 0, 1)));
        b.addr_add(pidx, pidx, 1);
        b.addr_add(po, po, 1);
        Kernel {
            name: "gather",
            body: b.finish().expect("kernel is valid"),
            init: vec![
                (idx, (0..nu).map(|i| Value::Int(((i * 5 + 1) % nu) as i64)).collect()),
                (x, fvec(nu)),
            ],
        }
    });

    // Scatter through an index array (unanalyzable store address).
    out.push({
        let mut b = LoopBuilder::new("scatter", n);
        let idx = b.array("idx", nu);
        let x = b.array("x", nu);
        let o = b.array("o", nu);
        let pidx = b.ptr("pidx", idx, 0);
        let obase = b.ptr("obase", o, 0);
        let px = b.ptr("px", x, 0);
        let vi = b.load("vi", pidx, Some(MemRef::new(idx, 0, 1)));
        let v = b.load("v", px, Some(MemRef::new(x, 0, 1)));
        let addr = b.op("addr", ims_ir::Opcode::AddrAdd, vec![obase.into(), vi.into()]);
        b.store(addr, v, None); // unanalyzable
        b.addr_add(pidx, pidx, 1);
        b.addr_add(px, px, 1);
        Kernel {
            name: "scatter",
            body: b.finish().expect("kernel is valid"),
            init: vec![
                (idx, (0..nu).map(|i| Value::Int(((i * 3 + 2) % nu) as i64)).collect()),
                (x, fvec(nu)),
            ],
        }
    });

    // IF-converted conditional copy: out[i] = x[i] when x[i] > 2.
    out.push({
        let mut b = LoopBuilder::new("predicated_copy", n);
        let x = b.array("x", nu);
        let o = b.array("o", nu);
        let px = b.ptr("px", x, 0);
        let po = b.ptr("po", o, 0);
        let v = b.load("v", px, Some(MemRef::new(x, 0, 1)));
        let p = b.pred_set("p", CmpKind::Gt, v, 2.0f64);
        let st = b.store(po, v, Some(MemRef::new(o, 0, 1)));
        b.guard(st, p);
        b.addr_add(px, px, 1);
        b.addr_add(po, po, 1);
        Kernel {
            name: "predicated_copy",
            body: b.finish().expect("kernel is valid"),
            init: vec![(x, fvec(nu))],
        }
    });

    // IF-converted two-way select: out[i] = x[i] > 2 ? x[i] : −x[i].
    out.push({
        let mut b = LoopBuilder::new("select", n);
        let x = b.array("x", nu);
        let o = b.array("o", nu);
        let px = b.ptr("px", x, 0);
        let po = b.ptr("po", o, 0);
        let v = b.load("v", px, Some(MemRef::new(x, 0, 1)));
        let neg = b.sub("neg", 0.0f64, v);
        let p1 = b.pred_set("p1", CmpKind::Gt, v, 2.0f64);
        let p2 = b.pred_set("p2", CmpKind::Le, v, 2.0f64);
        let st1 = b.store(po, v, Some(MemRef::new(o, 0, 1)));
        b.guard(st1, p1);
        let st2 = b.store(po, neg, Some(MemRef::new(o, 0, 1)));
        b.guard(st2, p2);
        b.addr_add(px, px, 1);
        b.addr_add(po, po, 1);
        Kernel {
            name: "select",
            body: b.finish().expect("kernel is valid"),
            init: vec![(x, fvec(nu))],
        }
    });

    // LFK 24-flavor: running maximum, stored each iteration.
    out.push({
        let mut b = LoopBuilder::new("max_reduce", n);
        let x = b.array("x", nu);
        let o = b.array("o", nu);
        let px = b.ptr("px", x, 0);
        let po = b.ptr("po", o, 0);
        let m = b.fresh("m");
        b.bind_live_in(m, Value::Float(f64::NEG_INFINITY));
        let v = b.load("v", px, Some(MemRef::new(x, 0, 1)));
        b.rebind(m, ims_ir::Opcode::Max, vec![m.into(), v.into()]);
        b.store(po, m, Some(MemRef::new(o, 0, 1)));
        b.addr_add(px, px, 1);
        b.addr_add(po, po, 1);
        Kernel {
            name: "max_reduce",
            body: b.finish().expect("kernel is valid"),
            init: vec![(x, fvec(nu))],
        }
    });

    // Absolute-value sum.
    out.push({
        let mut b = LoopBuilder::new("abs_sum", n);
        let x = b.array("x", nu);
        let o = b.array("o", nu);
        let px = b.ptr("px", x, 0);
        let po = b.ptr("po", o, 0);
        let s = b.fresh("s");
        b.bind_live_in(s, Value::Float(0.0));
        let v = b.load("v", px, Some(MemRef::new(x, 0, 1)));
        let a = b.abs("a", v);
        b.rebind_add(s, s, a);
        b.store(po, s, Some(MemRef::new(o, 0, 1)));
        b.addr_add(px, px, 1);
        b.addr_add(po, po, 1);
        Kernel {
            name: "abs_sum",
            body: b.finish().expect("kernel is valid"),
            init: vec![(x, (0..nu).map(|i| Value::Float(if i % 2 == 0 { 1.5 } else { -2.5 })).collect())],
        }
    });

    // Elementwise division (22-cycle unpipelined divide).
    out.push({
        let mut b = LoopBuilder::new("divide", n);
        let x = b.array("x", nu);
        let z = b.array("z", nu);
        let y = b.array("y", nu);
        let px = b.ptr("px", x, 0);
        let pz = b.ptr("pz", z, 0);
        let py = b.ptr("py", y, 0);
        let vx = b.load("vx", px, Some(MemRef::new(x, 0, 1)));
        let vz = b.load("vz", pz, Some(MemRef::new(z, 0, 1)));
        let q = b.div("q", vx, vz);
        b.store(py, q, Some(MemRef::new(y, 0, 1)));
        b.addr_add(px, px, 1);
        b.addr_add(pz, pz, 1);
        b.addr_add(py, py, 1);
        Kernel {
            name: "divide",
            body: b.finish().expect("kernel is valid"),
            init: vec![(x, fvec(nu)), (z, fvec(nu))],
        }
    });

    // Square root (26-cycle unpipelined).
    out.push({
        let mut b = LoopBuilder::new("sqrt_map", n);
        let x = b.array("x", nu);
        let y = b.array("y", nu);
        let px = b.ptr("px", x, 0);
        let py = b.ptr("py", y, 0);
        let v = b.load("v", px, Some(MemRef::new(x, 0, 1)));
        let a = b.abs("a", v);
        let r = b.sqrt("r", a);
        b.store(py, r, Some(MemRef::new(y, 0, 1)));
        b.addr_add(px, px, 1);
        b.addr_add(py, py, 1);
        Kernel {
            name: "sqrt_map",
            body: b.finish().expect("kernel is valid"),
            init: vec![(x, fvec(nu))],
        }
    });

    // Three-point stencil: b[i] = (a[i] + a[i+1] + a[i+2]) / 3.
    out.push({
        let mut b = LoopBuilder::new("stencil3", n);
        let a = b.array("a", nu + 2);
        let o = b.array("o", nu);
        let p0 = b.ptr("p0", a, 0);
        let p1 = b.ptr("p1", a, 1);
        let p2 = b.ptr("p2", a, 2);
        let po = b.ptr("po", o, 0);
        let v0 = b.load("v0", p0, Some(MemRef::new(a, 0, 1)));
        let v1 = b.load("v1", p1, Some(MemRef::new(a, 1, 1)));
        let v2 = b.load("v2", p2, Some(MemRef::new(a, 2, 1)));
        let s1 = b.add("s1", v0, v1);
        let s2 = b.add("s2", s1, v2);
        let r = b.mul("r", s2, 1.0f64 / 3.0);
        b.store(po, r, Some(MemRef::new(o, 0, 1)));
        b.addr_add(p0, p0, 1);
        b.addr_add(p1, p1, 1);
        b.addr_add(p2, p2, 1);
        b.addr_add(po, po, 1);
        Kernel {
            name: "stencil3",
            body: b.finish().expect("kernel is valid"),
            init: vec![(a, fvec(nu + 2))],
        }
    });

    // Wavefront: a[i+2] = a[i+1] − a[i] (memory recurrence, distances 1, 2).
    out.push({
        let mut b = LoopBuilder::new("wavefront", n);
        let a = b.array("a", nu + 2);
        let p0 = b.ptr("p0", a, 0);
        let p1 = b.ptr("p1", a, 1);
        let p2 = b.ptr("p2", a, 2);
        let v0 = b.load("v0", p0, Some(MemRef::new(a, 0, 1)));
        let v1 = b.load("v1", p1, Some(MemRef::new(a, 1, 1)));
        let d = b.sub("d", v1, v0);
        b.store(p2, d, Some(MemRef::new(a, 2, 1)));
        b.addr_add(p0, p0, 1);
        b.addr_add(p1, p1, 1);
        b.addr_add(p2, p2, 1);
        Kernel {
            name: "wavefront",
            body: b.finish().expect("kernel is valid"),
            init: vec![(a, vec![Value::Float(5.0), Value::Float(3.0)])],
        }
    });

    // Plain copy.
    out.push({
        let mut b = LoopBuilder::new("copy", n);
        let a = b.array("a", nu);
        let o = b.array("o", nu);
        let pa = b.ptr("pa", a, 0);
        let po = b.ptr("po", o, 0);
        let v = b.load("v", pa, Some(MemRef::new(a, 0, 1)));
        b.store(po, v, Some(MemRef::new(o, 0, 1)));
        b.addr_add(pa, pa, 1);
        b.addr_add(po, po, 1);
        Kernel {
            name: "copy",
            body: b.finish().expect("kernel is valid"),
            init: vec![(a, fvec(nu))],
        }
    });

    // In-place scale.
    out.push({
        let mut b = LoopBuilder::new("scale", n);
        let a = b.array("a", nu);
        let pa = b.ptr("pa", a, 0);
        let v = b.load("v", pa, Some(MemRef::new(a, 0, 1)));
        let w = b.mul("w", v, 1.25f64);
        b.store(pa, w, Some(MemRef::new(a, 0, 1)));
        b.addr_add(pa, pa, 1);
        Kernel {
            name: "scale",
            body: b.finish().expect("kernel is valid"),
            init: vec![(a, fvec(nu))],
        }
    });

    // Strided complex-like update: c[2i] += c[2i+1].
    out.push({
        let mut b = LoopBuilder::new("stride2", n);
        let c = b.array("c", 2 * nu);
        let pre = b.ptr("pre", c, 0);
        let pim = b.ptr("pim", c, 1);
        let vr = b.load("vr", pre, Some(MemRef::new(c, 0, 2)));
        let vi = b.load("vi", pim, Some(MemRef::new(c, 1, 2)));
        let s = b.add("s", vr, vi);
        b.store(pre, s, Some(MemRef::new(c, 0, 2)));
        b.addr_add(pre, pre, 2);
        b.addr_add(pim, pim, 2);
        Kernel {
            name: "stride2",
            body: b.finish().expect("kernel is valid"),
            init: vec![(c, fvec(2 * nu))],
        }
    });

    // Explicit count-down loop control with the loop-closing branch.
    out.push({
        let mut b = LoopBuilder::new("branch_loop", n);
        let x = b.array("x", nu);
        let o = b.array("o", nu);
        let px = b.ptr("px", x, 0);
        let po = b.ptr("po", o, 0);
        let cnt = b.fresh("cnt");
        b.bind_live_in(cnt, Value::Int(n as i64));
        let v = b.load("v", px, Some(MemRef::new(x, 0, 1)));
        let w = b.add("w", v, 1.0f64);
        b.store(po, w, Some(MemRef::new(o, 0, 1)));
        b.addr_add(px, px, 1);
        b.addr_add(po, po, 1);
        b.addr_sub(cnt, cnt, 1);
        b.branch(cnt);
        Kernel {
            name: "branch_loop",
            body: b.finish().expect("kernel is valid"),
            init: vec![(x, fvec(nu))],
        }
    });

    // LFK 7 long form.
    out.push({
        let mut b = LoopBuilder::new("state_frag_long", n);
        let x = b.array("x", nu);
        let u = b.array("u", nu + 3);
        let y = b.array("y", nu);
        let z = b.array("z", nu);
        let px = b.ptr("px", x, 0);
        let pu0 = b.ptr("pu0", u, 0);
        let pu1 = b.ptr("pu1", u, 1);
        let pu2 = b.ptr("pu2", u, 2);
        let pu3 = b.ptr("pu3", u, 3);
        let py = b.ptr("py", y, 0);
        let pz = b.ptr("pz", z, 0);
        let r = b.live_in("r", Value::Float(0.5));
        let t = b.live_in("t", Value::Float(0.25));
        let vu0 = b.load("vu0", pu0, Some(MemRef::new(u, 0, 1)));
        let vu1 = b.load("vu1", pu1, Some(MemRef::new(u, 1, 1)));
        let vu2 = b.load("vu2", pu2, Some(MemRef::new(u, 2, 1)));
        let vu3 = b.load("vu3", pu3, Some(MemRef::new(u, 3, 1)));
        let vy = b.load("vy", py, Some(MemRef::new(y, 0, 1)));
        let vz = b.load("vz", pz, Some(MemRef::new(z, 0, 1)));
        let ry = b.mul("ry", r, vy);
        let zin = b.add("zin", vz, ry);
        let rzin = b.mul("rzin", r, zin);
        let left = b.add("left", vu0, rzin);
        let ru1 = b.mul("ru1", r, vu1);
        let in2 = b.add("in2", vu2, ru1);
        let rin2 = b.mul("rin2", r, in2);
        let in3 = b.add("in3", vu3, rin2);
        let right = b.mul("right", t, in3);
        let res = b.add("res", left, right);
        b.store(px, res, Some(MemRef::new(x, 0, 1)));
        for p in [px, pu0, pu1, pu2, pu3, py, pz] {
            b.addr_add(p, p, 1);
        }
        Kernel {
            name: "state_frag_long",
            body: b.finish().expect("kernel is valid"),
            init: vec![(u, fvec(nu + 3)), (y, fvec(nu)), (z, fvec(nu))],
        }
    });

    // Running max written to a fixed location (stride-0 store).
    out.push({
        let mut b = LoopBuilder::new("peak_store", n);
        let x = b.array("x", nu);
        let o = b.array("o", 1);
        let px = b.ptr("px", x, 0);
        let po = b.ptr("po", o, 0);
        let m = b.fresh("m");
        b.bind_live_in(m, Value::Float(f64::NEG_INFINITY));
        let v = b.load("v", px, Some(MemRef::new(x, 0, 1)));
        b.rebind(m, ims_ir::Opcode::Max, vec![m.into(), v.into()]);
        b.store(po, m, Some(MemRef::new(o, 0, 0)));
        b.addr_add(px, px, 1);
        Kernel {
            name: "peak_store",
            body: b.finish().expect("kernel is valid"),
            init: vec![(x, fvec(nu))],
        }
    });

    // Loop-invariant product applied elementwise.
    out.push({
        let mut b = LoopBuilder::new("invariant_mul", n);
        let x = b.array("x", nu);
        let y = b.array("y", nu);
        let px = b.ptr("px", x, 0);
        let py = b.ptr("py", y, 0);
        let a = b.live_in("a", Value::Float(1.5));
        let c = b.live_in("c", Value::Float(2.0));
        let ac = b.mul("ac", a, c);
        let v = b.load("v", px, Some(MemRef::new(x, 0, 1)));
        let w = b.mul("w", ac, v);
        b.store(py, w, Some(MemRef::new(y, 0, 1)));
        b.addr_add(px, px, 1);
        b.addr_add(py, py, 1);
        Kernel {
            name: "invariant_mul",
            body: b.finish().expect("kernel is valid"),
            init: vec![(x, fvec(nu))],
        }
    });

    // Reverse copy: reads run backward through the source (negative
    // stride), exercising the d < 0 branch of the memory analyzer.
    out.push({
        let mut b = LoopBuilder::new("reverse_copy", n);
        let a = b.array("a", nu);
        let o = b.array("o", nu);
        let pa = b.ptr("pa", a, nu as i64 - 1);
        let po = b.ptr("po", o, 0);
        let v = b.load("v", pa, Some(MemRef::new(a, nu as i64 - 1, -1)));
        b.store(po, v, Some(MemRef::new(o, 0, 1)));
        b.addr_sub(pa, pa, 1);
        b.addr_add(po, po, 1);
        Kernel {
            name: "reverse_copy",
            body: b.finish().expect("kernel is valid"),
            init: vec![(a, fvec(nu))],
        }
    });

    // LFK 4 flavor: banded linear equations fragment —
    // x[i] = x[i] - g[i]*x[i+5] with a fixed band offset.
    out.push({
        let mut b = LoopBuilder::new("banded", n);
        let x = b.array("x", nu + 5);
        let g = b.array("g", nu);
        let px = b.ptr("px", x, 0);
        let pb = b.ptr("pb", x, 5);
        let pg = b.ptr("pg", g, 0);
        let vx = b.load("vx", px, Some(MemRef::new(x, 0, 1)));
        let vb = b.load("vb", pb, Some(MemRef::new(x, 5, 1)));
        let vg = b.load("vg", pg, Some(MemRef::new(g, 0, 1)));
        let prod = b.mul("prod", vg, vb);
        let res = b.sub("res", vx, prod);
        b.store(px, res, Some(MemRef::new(x, 0, 1)));
        b.addr_add(px, px, 1);
        b.addr_add(pb, pb, 1);
        b.addr_add(pg, pg, 1);
        Kernel {
            name: "banded",
            body: b.finish().expect("kernel is valid"),
            init: vec![(x, fvec(nu + 5)), (g, (0..nu).map(|i| Value::Float(0.25 + (i % 2) as f64 / 8.0)).collect())],
        }
    });

    // Complex multiply by a constant (interleaved re/im, stride 2):
    // (re, im) = (re*cr - im*ci, re*ci + im*cr).
    out.push({
        let mut b = LoopBuilder::new("complex_mul", n);
        let c = b.array("c", 2 * nu);
        let pre = b.ptr("pre", c, 0);
        let pim = b.ptr("pim", c, 1);
        let cr = b.live_in("cr", Value::Float(0.8));
        let ci = b.live_in("ci", Value::Float(0.6));
        let re = b.load("re", pre, Some(MemRef::new(c, 0, 2)));
        let im = b.load("im", pim, Some(MemRef::new(c, 1, 2)));
        let rr = b.mul("rr", re, cr);
        let ii_ = b.mul("ii", im, ci);
        let ri = b.mul("ri", re, ci);
        let ir = b.mul("ir", im, cr);
        let nre = b.sub("nre", rr, ii_);
        let nim = b.add("nim", ri, ir);
        b.store(pre, nre, Some(MemRef::new(c, 0, 2)));
        b.store(pim, nim, Some(MemRef::new(c, 1, 2)));
        b.addr_add(pre, pre, 2);
        b.addr_add(pim, pim, 2);
        Kernel {
            name: "complex_mul",
            body: b.finish().expect("kernel is valid"),
            init: vec![(c, fvec(2 * nu))],
        }
    });

    // Two independent accumulators (two trivial SCCs on the adder).
    out.push({
        let mut b = LoopBuilder::new("two_accumulators", n);
        let x = b.array("x", nu);
        let o = b.array("o", 2);
        let px = b.ptr("px", x, 0);
        let po0 = b.ptr("po0", o, 0);
        let po1 = b.ptr("po1", o, 1);
        let s_even = b.fresh("s_even");
        b.bind_live_in(s_even, Value::Float(0.0));
        let s_odd = b.fresh("s_odd");
        b.bind_live_in(s_odd, Value::Float(0.0));
        let v = b.load("v", px, Some(MemRef::new(x, 0, 1)));
        let sq = b.mul("sq", v, v);
        b.rebind_add(s_even, s_even, v);
        b.rebind_add(s_odd, s_odd, sq);
        b.store(po0, s_even, Some(MemRef::new(o, 0, 0)));
        b.store(po1, s_odd, Some(MemRef::new(o, 1, 0)));
        b.addr_add(px, px, 1);
        Kernel {
            name: "two_accumulators",
            body: b.finish().expect("kernel is valid"),
            init: vec![(x, fvec(nu))],
        }
    });

    // Predicated clipping with a precomputed predicate-clear fallback:
    // out[i] = min(x[i], 4.0), but written as an IF-converted clamp that
    // also exercises PredClear.
    out.push({
        let mut b = LoopBuilder::new("clamp", n);
        let x = b.array("x", nu);
        let o = b.array("o", nu);
        let px = b.ptr("px", x, 0);
        let po = b.ptr("po", o, 0);
        let v = b.load("v", px, Some(MemRef::new(x, 0, 1)));
        let over = b.pred_set("over", CmpKind::Gt, v, 4.0f64);
        let under = b.pred_set("under", CmpKind::Le, v, 4.0f64);
        let _dead = b.pred_clear("dead");
        let st1 = b.store(po, 4.0f64, Some(MemRef::new(o, 0, 1)));
        b.guard(st1, over);
        let st2 = b.store(po, v, Some(MemRef::new(o, 0, 1)));
        b.guard(st2, under);
        b.addr_add(px, px, 1);
        b.addr_add(po, po, 1);
        Kernel {
            name: "clamp",
            body: b.finish().expect("kernel is valid"),
            init: vec![(x, fvec(nu))],
        }
    });

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ims_ir::validate::validate;

    #[test]
    fn all_kernels_validate() {
        for k in kernels(16) {
            assert!(validate(&k.body).is_ok(), "{} failed validation", k.name);
        }
    }

    #[test]
    fn kernel_names_are_unique() {
        let ks = kernels(8);
        let mut names: Vec<&str> = ks.iter().map(|k| k.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), ks.len());
    }

    #[test]
    fn corpus_has_a_healthy_variety() {
        let ks = kernels(16);
        assert!(ks.len() >= 20, "only {} kernels", ks.len());
        // At least one kernel with predication, one with a branch, one with
        // an unanalyzable access, one with divide, one with sqrt.
        assert!(ks.iter().any(|k| k.body.ops().iter().any(|o| o.pred.is_some())));
        assert!(ks
            .iter()
            .any(|k| k.body.ops().iter().any(|o| o.opcode == ims_ir::Opcode::Branch)));
        assert!(ks
            .iter()
            .any(|k| k.body.ops().iter().any(|o| o.opcode.is_mem() && o.mem.is_none())));
        assert!(ks
            .iter()
            .any(|k| k.body.ops().iter().any(|o| o.opcode == ims_ir::Opcode::Div)));
        assert!(ks
            .iter()
            .any(|k| k.body.ops().iter().any(|o| o.opcode == ims_ir::Opcode::Sqrt)));
    }

    #[test]
    fn init_arrays_fit_declarations() {
        for k in kernels(12) {
            for (array, data) in &k.init {
                let decl = &k.body.arrays()[array.index()];
                assert!(
                    data.len() <= decl.len,
                    "{}: init for {} overflows",
                    k.name,
                    decl.name
                );
            }
        }
    }

    #[test]
    fn trip_counts_propagate() {
        for k in kernels(9) {
            assert_eq!(k.body.trip_count(), 9, "{}", k.name);
        }
    }

    #[test]
    #[should_panic(expected = "at least 4")]
    fn tiny_trip_count_rejected() {
        let _ = kernels(3);
    }
}
