//! Assembly of the full substitute corpus.

use ims_ir::LoopBody;
use ims_testkit::{Rng, Xoshiro256};

use crate::kernels::kernels;
use crate::synth::{generate_loop, SynthConfig};

/// Where a corpus loop came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// A hand-written Livermore-style kernel (§4.1's "27 from the LFK").
    Kernel(&'static str),
    /// A synthetic loop calibrated to the paper's corpus statistics.
    Synthetic,
}

/// An execution profile in the sense of §4.3: *"EntryFreq is the number of
/// times the loop is entered, LoopFreq is the number of times the loop body
/// is traversed"*; both are *"obtained by profiling the benchmark
/// programs"* — here, synthesized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Profile {
    /// Times the loop is entered.
    pub entry_freq: u64,
    /// Times the loop body is traversed.
    pub loop_freq: u64,
    /// Whether the loop executes at all under the profiling input (§4.3:
    /// *"Only 597 of the 1327 loops end up being executed"*).
    pub executed: bool,
}

/// One loop of the corpus.
#[derive(Debug, Clone)]
pub struct CorpusLoop {
    /// The loop body.
    pub body: LoopBody,
    /// Its synthetic execution profile.
    pub profile: Profile,
    /// Provenance.
    pub source: Source,
}

/// The full corpus.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// The loops, hand kernels first.
    pub loops: Vec<CorpusLoop>,
}

impl Corpus {
    /// Number of loops.
    pub fn len(&self) -> usize {
        self.loops.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.loops.is_empty()
    }
}

/// Samples an operation-count target from a log-normal calibrated to
/// Table 3's "Number of operations" row: minimum 4 (hit rarely), median
/// ≈ 12, mean ≈ 19.5, maximum capped at 163.
fn sample_ops_target<R: Rng>(rng: &mut R) -> usize {
    let z: f64 = {
        // Box–Muller from two uniforms.
        let u1: f64 = rng.gen_range(1e-12..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    };
    let x = (2.15 + 1.1 * z).exp();
    (3.0 + x).round().clamp(4.0, 163.0) as usize
}

/// Samples the multi-operation recurrence structure: 77% of loops have no
/// non-trivial SCC (Table 3); the rest have a few, almost always small,
/// with a long tail (the paper saw up to 6 SCCs and up to 42 nodes in one).
fn sample_recurrences<R: Rng>(rng: &mut R, ops_target: usize) -> Vec<usize> {
    if rng.gen_bool(0.77) {
        return Vec::new();
    }
    let count = match rng.gen_range(0..100) {
        0..=69 => 1,
        70..=89 => 2,
        90..=96 => 3,
        _ => rng.gen_range(4..=6),
    };
    (0..count)
        .map(|_| {
            let len = if rng.gen_bool(0.02) {
                rng.gen_range(9..=40)
            } else {
                2 + (rng.gen_range(0.0f64..1.0).powi(2) * 6.0) as usize
            };
            len.min(ops_target.max(4))
        })
        .collect()
}

fn sample_profile<R: Rng>(rng: &mut R) -> Profile {
    let z: f64 = {
        let u1: f64 = rng.gen_range(1e-12..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    };
    let loop_freq = (3.5 + 1.0 * z).exp().round().clamp(1.0, 100_000.0) as u64;
    Profile {
        entry_freq: 1,
        loop_freq,
        // 597 / 1327 of the loops execute under the profiling input.
        executed: rng.gen_bool(597.0 / 1327.0),
    }
}

/// Builds the 1327-loop substitute corpus: every hand-written kernel plus
/// synthetic loops calibrated to Table 3. Deterministic in `seed`.
pub fn paper_corpus(seed: u64) -> Corpus {
    corpus_of_size(seed, 1327)
}

/// Builds a corpus of the given size (hand kernels first; at least as many
/// loops as kernels are produced).
pub fn corpus_of_size(seed: u64, size: usize) -> Corpus {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut loops = Vec::with_capacity(size);
    for k in kernels(64) {
        loops.push(CorpusLoop {
            body: k.body,
            profile: sample_profile(&mut rng),
            source: Source::Kernel(k.name),
        });
    }
    while loops.len() < size {
        let ops_target = sample_ops_target(&mut rng);
        let config = SynthConfig {
            ops_target,
            recurrences: sample_recurrences(&mut rng, ops_target),
            with_branch: rng.gen_bool(0.5),
        };
        loops.push(CorpusLoop {
            body: generate_loop(&mut rng, &config),
            profile: sample_profile(&mut rng),
            source: Source::Synthetic,
        });
    }
    Corpus { loops }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ims_ir::validate::validate;

    #[test]
    fn corpus_has_requested_size_and_validates() {
        let c = corpus_of_size(1, 100);
        assert_eq!(c.len(), 100);
        assert!(!c.is_empty());
        for l in &c.loops {
            assert!(validate(&l.body).is_ok());
        }
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = corpus_of_size(9, 50);
        let b = corpus_of_size(9, 50);
        for (x, y) in a.loops.iter().zip(&b.loops) {
            assert_eq!(x.body, y.body);
            assert_eq!(x.profile, y.profile);
        }
    }

    #[test]
    fn kernels_lead_the_corpus() {
        let c = corpus_of_size(2, 60);
        assert!(matches!(c.loops[0].source, Source::Kernel(_)));
        assert!(c
            .loops
            .iter()
            .any(|l| matches!(l.source, Source::Synthetic)));
    }

    #[test]
    fn op_count_distribution_matches_table_3_shape() {
        let c = paper_corpus(17);
        assert_eq!(c.len(), 1327);
        let mut ns: Vec<usize> = c.loops.iter().map(|l| l.body.num_ops()).collect();
        ns.sort_unstable();
        let median = ns[ns.len() / 2] as f64;
        let mean = ns.iter().sum::<usize>() as f64 / ns.len() as f64;
        let max = *ns.last().unwrap();
        assert!((9.0..=16.0).contains(&median), "median {median}");
        assert!((15.0..=25.0).contains(&mean), "mean {mean}");
        assert!(max >= 100, "max {max}");
        assert!(*ns.first().unwrap() >= 4);
        // Skew: median below mean, as in the paper.
        assert!(median < mean);
    }

    #[test]
    fn profiles_are_plausible() {
        let c = corpus_of_size(3, 500);
        let executed = c.loops.iter().filter(|l| l.profile.executed).count();
        let frac = executed as f64 / c.len() as f64;
        assert!((0.35..=0.55).contains(&frac), "executed fraction {frac}");
        assert!(c.loops.iter().all(|l| l.profile.entry_freq == 1));
        assert!(c.loops.iter().all(|l| l.profile.loop_freq >= 1));
    }
}
