//! Property test for the incremental pressure tracker: after any random
//! place/evict script ending in a full placement, [`PressureModel::max_live`]
//! must equal MaxLive recomputed from scratch via `ims_codegen::lifetimes`
//! on the final schedule — the two share only the `resolve_use` rule, so a
//! row-arithmetic or incremental-update bug cannot hide in both.

use ims_codegen::lifetimes;
use ims_core::Schedule;
use ims_deps::{build_problem, node_of, BuildOptions};
use ims_loopgen::{generate_loop, SynthConfig};
use ims_machine::cydra;
use ims_press::{shapes_from_body, PressureModel};
use ims_testkit::{check, prop_assert_eq, Gen, PropConfig, Regression, Xoshiro256};

/// A generated workload: loop seed/shape, candidate II, a place/evict
/// toggle script over `(op, time)` pairs, and fallback times for whatever
/// the script leaves unplaced.
type Script = (u64, usize, i64, Vec<(usize, i64)>, Vec<i64>);

fn gen_script(g: &mut Gen) -> Script {
    let seed = g.u64();
    let ops_target = g.usize_in(3, 18);
    let ii = g.i64_in(1, 12);
    let script = g.vec_with(30, |g| (g.usize_in(0, 64), g.i64_in(0, 40)));
    let final_times = (0..64).map(|_| g.i64_in(0, 40)).collect();
    (seed, ops_target, ii, script, final_times)
}

#[test]
fn incremental_max_live_matches_codegen_lifetimes() {
    check(
        "incremental_max_live_matches_codegen_lifetimes",
        &PropConfig::with_cases(96),
        &[Regression::new(0x5eed_11fe_0000_0001, 12)],
        gen_script,
        |(seed, ops_target, ii, script, final_times)| {
            let (seed, ops_target, ii) = (*seed, *ops_target, *ii);
            let config = SynthConfig {
                ops_target,
                recurrences: vec![],
                with_branch: false,
            };
            let mut rng = Xoshiro256::seed_from_u64(seed);
            let body = generate_loop(&mut rng, &config);
            let machine = cydra();
            let problem = build_problem(&body, &machine, &BuildOptions::default());
            let num_nodes = problem.graph().num_nodes();
            let num_ops = problem.num_ops();

            let shapes = shapes_from_body(&body, &problem);
            let mut model = PressureModel::new(shapes, num_nodes, ii);
            // Drive the tracker through arbitrary churn: toggle each
            // scripted op between placed and evicted, like the iterative
            // scheduler's displacement loop does.
            let mut times: Vec<Option<i64>> = vec![None; num_ops];
            for &(pick, t) in script {
                let op = pick % num_ops;
                let node = node_of(ims_ir::OpId(op as u32));
                if times[op].is_some() {
                    times[op] = None;
                    model.evict(node);
                } else {
                    times[op] = Some(t);
                    model.place(node, t);
                }
            }
            // Finish with a full (not necessarily legal) placement — the
            // lifetime arithmetic is schedule-validity-agnostic.
            for op in 0..num_ops {
                if times[op].is_none() {
                    let t = final_times[op % final_times.len()];
                    times[op] = Some(t);
                    model.place(node_of(ims_ir::OpId(op as u32)), t);
                }
            }

            // From-scratch oracle: codegen lifetimes over the final
            // schedule, summed into per-row live counts.
            let mut time = vec![0i64; num_nodes];
            for op in 0..num_ops {
                time[op + 1] = times[op].expect("fully placed");
            }
            let schedule = Schedule {
                ii,
                time,
                alternative: vec![0; num_nodes],
                length: 0,
            };
            let lts = lifetimes(&body, &problem, &schedule);
            let oracle = (0..ii)
                .map(|r| {
                    lts.iter()
                        .map(|lt| {
                            let len = lt.death - lt.birth + 1;
                            let extra = ((r - lt.birth).rem_euclid(ii) < len % ii) as u32;
                            (len / ii) as u32 + extra
                        })
                        .sum::<u32>()
                })
                .max()
                .unwrap_or(0);
            prop_assert_eq!(model.max_live(), oracle, "II {} over {} ops", ii, num_ops);
            Ok(())
        },
    );
}
