//! The policy layer: a [`SchedObserver`] that enforces a MaxLive limit.

use ims_codegen::{allocate_rotating, lifetimes};
use ims_core::{Problem, SchedObserver, Schedule};
use ims_graph::NodeId;
use ims_ir::LoopBody;

use crate::model::{shapes_from_body, shapes_from_problem, PressureModel};

/// Register-pressure enforcement for the iterative scheduler.
///
/// Plugs into [`Scheduler::observer`](ims_core::Scheduler::observer) and
/// implements the two consulted hooks:
///
/// * [`placement_vetoed`](SchedObserver::placement_vetoed) — a tentative
///   placement that would push [`PressureModel::max_live`] over the limit
///   is vetoed, so `FindTimeSlot` treats the slot as a resource conflict
///   and keeps searching (the forced-slot rule still overrides the veto,
///   preserving forward progress);
/// * [`attempt_accept`](SchedObserver::attempt_accept) — a completed
///   attempt whose MaxLive exceeds the limit, or (when the IR body is
///   available) whose rotating allocation does not fit the declared file,
///   is rejected, bumping the candidate II. Capacity that is infeasible
///   even at the II cap surfaces as
///   [`ScheduleError::PressureInfeasible`](ims_core::ScheduleError) when
///   [`SchedConfig::pressure_limit`](ims_core::SchedConfig) is set.
///
/// The observer's event hooks keep the model in sync with every placement
/// and eviction, so after a successful run [`max_live`](Self::max_live)
/// reports the accepted schedule's register pressure.
pub struct PressureObserver<'a, 'm> {
    problem: &'a Problem<'m>,
    body: Option<&'a LoopBody>,
    model: PressureModel,
    limit: u32,
    rejects: u64,
    ii_bumps: u64,
}

impl<'a, 'm> PressureObserver<'a, 'm> {
    /// An observer that limits MaxLive to `limit` and additionally checks
    /// the rotating-allocation fit (`allocate_rotating(...).size ≤ limit`)
    /// on every completed attempt — the strongest guarantee: an accepted
    /// schedule is known to fit a rotating file of `limit` registers.
    ///
    /// # Panics
    ///
    /// Panics if `limit` is 0.
    pub fn for_body(body: &'a LoopBody, problem: &'a Problem<'m>, limit: u32) -> Self {
        let shapes = shapes_from_body(body, problem);
        Self::with_shapes(problem, Some(body), shapes, limit)
    }

    /// An observer for a bare dependence-graph problem (no IR body, as in
    /// `ims-serve`): lifetimes come from the graph's register-flow edges
    /// and only the MaxLive bound is enforced.
    ///
    /// # Panics
    ///
    /// Panics if `limit` is 0.
    pub fn for_problem(problem: &'a Problem<'m>, limit: u32) -> Self {
        let shapes = shapes_from_problem(problem);
        Self::with_shapes(problem, None, shapes, limit)
    }

    fn with_shapes(
        problem: &'a Problem<'m>,
        body: Option<&'a LoopBody>,
        shapes: Vec<crate::ValueShape>,
        limit: u32,
    ) -> Self {
        assert!(limit > 0, "pressure limit must be positive");
        let num_nodes = problem.graph().num_nodes();
        PressureObserver {
            problem,
            body,
            model: PressureModel::new(shapes, num_nodes, 1),
            limit,
            rejects: 0,
            ii_bumps: 0,
        }
    }

    /// The configured MaxLive limit.
    pub fn limit(&self) -> u32 {
        self.limit
    }

    /// The model's current MaxLive (the accepted schedule's pressure after
    /// a successful run).
    pub fn max_live(&self) -> u32 {
        self.model.max_live()
    }

    /// Cumulative lifetime-interval updates (`press.maxlive.updates`).
    pub fn updates(&self) -> u64 {
        self.model.updates()
    }

    /// Placements vetoed for exceeding the limit (`press.rejects`).
    pub fn rejects(&self) -> u64 {
        self.rejects
    }

    /// Completed attempts rejected, bumping the II (`press.ii_bumps`).
    pub fn ii_bumps(&self) -> u64 {
        self.ii_bumps
    }
}

impl SchedObserver for PressureObserver<'_, '_> {
    fn attempt_start(&mut self, ii: i64, _budget: i64) {
        self.model.reset(ii);
    }

    fn op_scheduled(&mut self, node: NodeId, time: i64, _alt: usize, _forced: bool) {
        self.model.place(node, time);
    }

    fn op_evicted(&mut self, node: NodeId, _evictor: NodeId) {
        self.model.evict(node);
    }

    fn placement_vetoed(&mut self, node: NodeId, time: i64) -> bool {
        // Probe by tentative placement; `node` is unscheduled here (the
        // scheduler only searches slots for unscheduled operations), so
        // the evict below restores the exact prior state.
        self.model.place(node, time);
        let over = self.model.max_live() > self.limit;
        self.model.evict(node);
        if over {
            self.rejects += 1;
        }
        over
    }

    fn attempt_accept(&mut self, _ii: i64, schedule: &Schedule) -> bool {
        let mut ok = self.model.max_live() <= self.limit;
        if ok {
            if let Some(body) = self.body {
                // The rotating file's inter-writer gaps can exceed MaxLive;
                // demand the actual allocation fits (the §5g rotating-fit
                // invariant). A larger II shrinks the gaps, so bumping on
                // rejection converges.
                let lts = lifetimes(body, self.problem, schedule);
                ok = allocate_rotating(body, &lts, schedule.ii).size <= self.limit as usize;
            }
        }
        if !ok {
            self.ii_bumps += 1;
        }
        ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ims_core::{modulo_schedule, SchedConfig, ScheduleError, Scheduler};
    use ims_deps::{build_problem, BuildOptions};
    use ims_ir::{LoopBuilder, Value};
    use ims_machine::{cydra_rf, cydra_simple};

    /// A loop with real overlap pressure: two loaded streams multiplied
    /// into an accumulated sum.
    fn dot_body() -> LoopBody {
        let mut b = LoopBuilder::new("dot", 64);
        let pa = b.live_in("pa", Value::Int(0));
        let pb = b.live_in("pb", Value::Int(0));
        let _a = b.array("a", 64);
        let _bb = b.array("b", 64);
        let x = b.load("x", pa, None);
        let y = b.load("y", pb, None);
        let m = b.mul("m", x, y);
        let acc = b.fresh("acc");
        b.bind_live_in(acc, Value::Float(0.0));
        b.rebind_add(acc, acc, m);
        b.store(pa, acc, None);
        b.finish().unwrap()
    }

    #[test]
    fn generous_limit_reproduces_the_blind_schedule_exactly() {
        let m = cydra_rf(64);
        let body = dot_body();
        let p = build_problem(&body, &m, &BuildOptions::default());
        let blind = modulo_schedule(&p, &SchedConfig::default()).unwrap();
        let mut obs = PressureObserver::for_body(&body, &p, 64);
        let aware = Scheduler::new(&p)
            .config(SchedConfig::default().pressure_limit(64))
            .observer(&mut obs)
            .run()
            .unwrap();
        assert_eq!(aware.schedule, blind.schedule, "no veto ever fires");
        assert_eq!(obs.ii_bumps(), 0);
        assert!(obs.max_live() <= 64);
    }

    #[test]
    fn accepted_schedules_respect_the_limit_and_fit_rotation() {
        let m = cydra_rf(12);
        let body = dot_body();
        let p = build_problem(&body, &m, &BuildOptions::default());
        let mut obs = PressureObserver::for_body(&body, &p, 12);
        let out = Scheduler::new(&p)
            .config(SchedConfig::default().pressure_limit(12))
            .observer(&mut obs)
            .run()
            .unwrap();
        assert!(obs.max_live() <= 12);
        let lts = lifetimes(&body, &p, &out.schedule);
        let alloc = allocate_rotating(&body, &lts, out.schedule.ii);
        assert!(alloc.size <= 12, "rotating file of {} > 12", alloc.size);
    }

    #[test]
    fn impossible_limit_is_pressure_infeasible() {
        let m = cydra_rf(1);
        let body = dot_body();
        let p = build_problem(&body, &m, &BuildOptions::default());
        let mut obs = PressureObserver::for_body(&body, &p, 1);
        let err = Scheduler::new(&p)
            .config(SchedConfig::default().pressure_limit(1).max_ii(30))
            .observer(&mut obs)
            .run()
            .unwrap_err();
        assert!(
            matches!(err, ScheduleError::PressureInfeasible { limit: 1, .. }),
            "got {err:?}"
        );
        assert!(obs.ii_bumps() > 0 || obs.rejects() > 0);
    }

    #[test]
    fn graph_only_observer_tracks_pressure_too() {
        let m = cydra_simple();
        let body = dot_body();
        let p = build_problem(&body, &m, &BuildOptions::default());
        let mut obs = PressureObserver::for_problem(&p, 64);
        let out = Scheduler::new(&p)
            .config(SchedConfig::default().pressure_limit(64))
            .observer(&mut obs)
            .run()
            .unwrap();
        assert!(out.schedule.ii >= out.mii.mii);
        assert!(obs.max_live() >= 1, "the accumulator alone is live");
    }

    #[test]
    #[should_panic(expected = "pressure limit must be positive")]
    fn zero_limit_panics() {
        let m = cydra_simple();
        let body = dot_body();
        let p = build_problem(&body, &m, &BuildOptions::default());
        let _ = PressureObserver::for_body(&body, &p, 0);
    }
}
