//! The incremental MaxLive tracker.
//!
//! See `DESIGN.md` §5g for the row layout and cost model.

use ims_core::{NodeKind, Problem, Schedule};
use ims_deps::{node_of, resolve_use};
use ims_graph::{DepKind, NodeId};
use ims_ir::LoopBody;

/// The lifetime *shape* of one value: everything about its live range
/// that does not depend on the schedule. Once the defining and consuming
/// operations have issue times, the range on the flat time line is
///
/// ```text
/// birth = t(def) + latency
/// death = max(birth, max over scheduled uses of t(use) + II · distance)
/// ```
///
/// — exactly the rule `ims_codegen::lifetimes` applies to a complete
/// schedule, restricted here to whichever operations are currently placed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueShape {
    /// The node defining the value.
    pub def: NodeId,
    /// The defining opcode's latency (birth offset from the issue time).
    pub latency: i64,
    /// Consumers as `(node, iteration distance)` pairs; a node reading the
    /// value twice appears twice (harmless: `max` is idempotent).
    pub uses: Vec<(NodeId, u32)>,
}

/// Extracts one [`ValueShape`] per register-defining operation of `body`,
/// resolving each use through [`resolve_use`] — the same single source of
/// truth `ims_codegen::lifetimes` uses, so the two agree by construction
/// (the workspace's property tests check this).
pub fn shapes_from_body(body: &LoopBody, problem: &Problem<'_>) -> Vec<ValueShape> {
    let mut out = Vec::new();
    for (def_id, def_op) in body.iter() {
        let Some(reg) = def_op.dest else { continue };
        let def = node_of(def_id);
        let mut uses = Vec::new();
        for (use_id, use_op) in body.iter() {
            for u in use_op.reg_uses() {
                if u.reg != reg {
                    continue;
                }
                if let Some((d, distance)) = resolve_use(body, use_id, u) {
                    debug_assert_eq!(d, def_id, "single assignment: one def per register");
                    uses.push((node_of(use_id), distance));
                }
            }
        }
        out.push(ValueShape {
            def,
            latency: problem.latency(def),
            uses,
        });
    }
    out
}

/// Extracts value shapes from a bare [`Problem`] (no IR body available —
/// the `ims-serve` path, where loops arrive as canonical graphs): one
/// value per result-producing operation node, with its register-flow
/// successor edges (`DepKind::Flow`, non-memory) as the uses. The
/// START/STOP scaffolding is `DepKind::Control` and is excluded
/// automatically.
pub fn shapes_from_problem(problem: &Problem<'_>) -> Vec<ValueShape> {
    let mut out = Vec::new();
    for node in problem.op_nodes() {
        let NodeKind::Op { opcode, .. } = problem.kind(node) else {
            continue;
        };
        if !opcode.has_dest() {
            continue;
        }
        let uses = problem
            .graph()
            .succs(node)
            .filter(|e| e.kind == DepKind::Flow && !e.is_mem)
            .map(|e| (e.to, e.distance))
            .collect();
        out.push(ValueShape {
            def: node,
            latency: problem.latency(node),
            uses,
        });
    }
    out
}

/// Incremental per-cycle live-count tracker over a modulo schedule in
/// progress.
///
/// A value live over flat cycles `[birth, death]` (length `L`) is live at
/// kernel row `r` exactly `⌊L / II⌋ + (1 if (r − birth) mod II < L mod II)`
/// times — the iteration overlap that makes MaxLive exceed the number of
/// values. The tracker therefore keeps the uniform part `⌊L / II⌋` in one
/// scalar and spreads the `L mod II` remainder over *mirrored* physical
/// rows (`2·II` of them, as in the bitset MRT): the remainder interval
/// starting at `birth mod II` never wraps, so updates are straight-line
/// array arithmetic with no modulo in the loop.
///
/// [`place`](PressureModel::place) / [`evict`](PressureModel::evict) cost
/// O(affected lifetimes · lifetime length); [`max_live`](PressureModel::max_live)
/// costs O(II).
#[derive(Debug, Clone)]
pub struct PressureModel {
    ii: i64,
    /// Mirrored remainder rows: logical row `r` is `rows[r] + rows[r + ii]`.
    rows: Vec<u32>,
    /// Live count contributed uniformly to every row.
    uniform: u32,
    shapes: Vec<ValueShape>,
    /// Issue time per graph node (`None` = unscheduled).
    times: Vec<Option<i64>>,
    /// Shape indices affected by each node (as def or consumer).
    node_values: Vec<Vec<u32>>,
    /// Currently applied `(birth, death)` interval per shape.
    current: Vec<Option<(i64, i64)>>,
    /// Cumulative interval applications/removals (the `press.maxlive.updates`
    /// counter); survives [`reset`](PressureModel::reset).
    updates: u64,
}

impl PressureModel {
    /// A tracker for `shapes` over a graph of `num_nodes` nodes, at
    /// candidate initiation interval `ii`.
    ///
    /// # Panics
    ///
    /// Panics if `ii < 1` or a shape mentions a node `>= num_nodes`.
    pub fn new(shapes: Vec<ValueShape>, num_nodes: usize, ii: i64) -> Self {
        assert!(ii >= 1, "II must be positive");
        let mut node_values = vec![Vec::new(); num_nodes];
        for (v, shape) in shapes.iter().enumerate() {
            node_values[shape.def.index()].push(v as u32);
            for &(use_node, _) in &shape.uses {
                if !node_values[use_node.index()].contains(&(v as u32)) {
                    node_values[use_node.index()].push(v as u32);
                }
            }
        }
        let current = vec![None; shapes.len()];
        PressureModel {
            ii,
            rows: vec![0; 2 * ii as usize],
            uniform: 0,
            shapes,
            times: vec![None; num_nodes],
            node_values,
            current,
            updates: 0,
        }
    }

    /// Clears all placements and switches to a new candidate `ii` (fired on
    /// every `attempt_start`). The cumulative update counter is preserved.
    ///
    /// # Panics
    ///
    /// Panics if `ii < 1`.
    pub fn reset(&mut self, ii: i64) {
        assert!(ii >= 1, "II must be positive");
        self.ii = ii;
        self.rows.clear();
        self.rows.resize(2 * ii as usize, 0);
        self.uniform = 0;
        self.times.iter_mut().for_each(|t| *t = None);
        self.current.iter_mut().for_each(|c| *c = None);
    }

    /// The candidate initiation interval currently tracked.
    pub fn ii(&self) -> i64 {
        self.ii
    }

    /// Cumulative interval applications/removals across all attempts.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Records `node` as issued at `time` and refreshes every lifetime it
    /// participates in.
    pub fn place(&mut self, node: NodeId, time: i64) {
        self.times[node.index()] = Some(time);
        self.refresh_node(node);
    }

    /// Records `node` as unscheduled and refreshes every lifetime it
    /// participates in.
    pub fn evict(&mut self, node: NodeId) {
        self.times[node.index()] = None;
        self.refresh_node(node);
    }

    /// Resets to `schedule.ii` and places every node at its scheduled
    /// time — for reporting the pressure of a schedule produced without
    /// this tracker (the pressure-blind baseline in `ims-bench`).
    pub fn load_schedule(&mut self, schedule: &Schedule) {
        self.reset(schedule.ii);
        let n = self.times.len().min(schedule.time.len());
        for i in 0..n {
            self.place(NodeId(i as u32), schedule.time[i]);
        }
    }

    /// The maximum over kernel rows of the number of simultaneously live
    /// values, counting every in-flight iteration's copy.
    pub fn max_live(&self) -> u32 {
        let ii = self.ii as usize;
        let peak = (0..ii)
            .map(|r| self.rows[r] + self.rows[r + ii])
            .max()
            .unwrap_or(0);
        self.uniform + peak
    }

    /// The live count at kernel row `r` (mainly for tests and reporting).
    ///
    /// # Panics
    ///
    /// Panics if `r` is not in `[0, II)`.
    pub fn live_at(&self, r: i64) -> u32 {
        assert!((0..self.ii).contains(&r), "row {r} out of range");
        self.uniform + self.rows[r as usize] + self.rows[r as usize + self.ii as usize]
    }

    fn refresh_node(&mut self, node: NodeId) {
        let values = std::mem::take(&mut self.node_values[node.index()]);
        for &v in &values {
            self.refresh_value(v as usize);
        }
        self.node_values[node.index()] = values;
    }

    fn refresh_value(&mut self, v: usize) {
        let next = self.interval_of(v);
        if next == self.current[v] {
            return;
        }
        if let Some((b, d)) = self.current[v] {
            self.apply(b, d, false);
        }
        if let Some((b, d)) = next {
            self.apply(b, d, true);
        }
        self.current[v] = next;
    }

    /// The `(birth, death)` interval of value `v` under the *current
    /// partial placement*: `None` while the def is unscheduled; scheduled
    /// uses extend the death, unscheduled ones don't constrain it yet.
    fn interval_of(&self, v: usize) -> Option<(i64, i64)> {
        let shape = &self.shapes[v];
        let t_def = self.times[shape.def.index()]?;
        let birth = t_def + shape.latency;
        let mut death = birth;
        for &(use_node, distance) in &shape.uses {
            if let Some(t_use) = self.times[use_node.index()] {
                death = death.max(t_use + self.ii * distance as i64);
            }
        }
        Some((birth, death))
    }

    /// Adds (or removes) one live interval `[b, d]` from the rows: the
    /// whole-II multiples go to `uniform`, the remainder to the physical
    /// rows `[b mod II, b mod II + L mod II)` — in range by construction
    /// because `b mod II < II` and `L mod II < II`.
    fn apply(&mut self, b: i64, d: i64, add: bool) {
        debug_assert!(d >= b, "value dies before it is born");
        self.updates += 1;
        let len = d - b + 1;
        let whole = (len / self.ii) as u32;
        let rem = (len % self.ii) as usize;
        let start = b.rem_euclid(self.ii) as usize;
        if add {
            self.uniform += whole;
            for row in &mut self.rows[start..start + rem] {
                *row += 1;
            }
        } else {
            self.uniform -= whole;
            for row in &mut self.rows[start..start + rem] {
                *row -= 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(def: u32, latency: i64, uses: &[(u32, u32)]) -> ValueShape {
        ValueShape {
            def: NodeId(def),
            latency,
            uses: uses.iter().map(|&(n, d)| (NodeId(n), d)).collect(),
        }
    }

    /// Brute-force row occupancy from the applied intervals.
    fn naive_max_live(intervals: &[(i64, i64)], ii: i64) -> u32 {
        (0..ii)
            .map(|r| {
                intervals
                    .iter()
                    .map(|&(b, d)| (b..=d).filter(|c| c.rem_euclid(ii) == r).count() as u32)
                    .sum()
            })
            .max()
            .unwrap_or(0)
    }

    #[test]
    fn empty_model_has_zero_pressure() {
        let m = PressureModel::new(vec![], 4, 3);
        assert_eq!(m.max_live(), 0);
    }

    #[test]
    fn single_value_row_math() {
        // def at node 1, latency 2, read by node 2 at distance 1.
        let shapes = vec![shape(1, 2, &[(2, 1)])];
        let mut m = PressureModel::new(shapes, 4, 3);
        m.place(NodeId(1), 1); // birth 3, death 3 until the use lands
        assert_eq!(m.max_live(), 1);
        m.place(NodeId(2), 5); // death = 5 + 3·1 = 8 → live [3, 8], L = 6
        assert_eq!(m.max_live(), naive_max_live(&[(3, 8)], 3));
        assert_eq!(m.max_live(), 2, "6 cycles over II 3 = 2 everywhere");
        m.evict(NodeId(2));
        assert_eq!(m.max_live(), 1);
        m.evict(NodeId(1));
        assert_eq!(m.max_live(), 0);
        assert!(m.updates() > 0);
    }

    #[test]
    fn remainder_rows_wrap_through_the_mirror() {
        // Live [2, 3] at II 3: the remainder interval starts at physical
        // row 2 and spills onto row 3 — the mirror of logical row 0.
        let shapes = vec![shape(1, 0, &[(2, 0)])];
        let mut m = PressureModel::new(shapes, 3, 3);
        m.place(NodeId(1), 2);
        m.place(NodeId(2), 3);
        assert_eq!(m.live_at(0), 1);
        assert_eq!(m.live_at(1), 0);
        assert_eq!(m.live_at(2), 1);
        assert_eq!(m.max_live(), naive_max_live(&[(2, 3)], 3));
    }

    #[test]
    fn overlapping_values_sum() {
        let shapes = vec![shape(1, 0, &[(3, 0)]), shape(2, 0, &[(3, 0)])];
        let mut m = PressureModel::new(shapes, 4, 2);
        m.place(NodeId(1), 0);
        m.place(NodeId(2), 1);
        m.place(NodeId(3), 4);
        // Values live [0,4] and [1,4].
        assert_eq!(m.max_live(), naive_max_live(&[(0, 4), (1, 4)], 2));
        assert_eq!(m.max_live(), 5);
    }

    #[test]
    fn reset_clears_placements_and_switches_ii() {
        let shapes = vec![shape(1, 1, &[(2, 2)])];
        let mut m = PressureModel::new(shapes, 3, 2);
        m.place(NodeId(1), 0);
        m.place(NodeId(2), 1);
        assert!(m.max_live() > 0);
        let updates_before = m.updates();
        m.reset(5);
        assert_eq!(m.ii(), 5);
        assert_eq!(m.max_live(), 0);
        assert_eq!(m.updates(), updates_before, "reset is not an update");
        m.place(NodeId(1), 0);
        m.place(NodeId(2), 1);
        // birth 1, death 1 + 5·2 = 11 → L = 11.
        assert_eq!(m.max_live(), naive_max_live(&[(1, 11)], 5));
    }

    #[test]
    fn replacing_a_node_moves_its_interval() {
        let shapes = vec![shape(1, 0, &[(2, 0)])];
        let mut m = PressureModel::new(shapes, 3, 4);
        m.place(NodeId(1), 0);
        m.place(NodeId(2), 9); // live [0, 9]
        assert_eq!(m.max_live(), naive_max_live(&[(0, 9)], 4));
        m.place(NodeId(2), 1); // shrink to [0, 1]
        assert_eq!(m.max_live(), naive_max_live(&[(0, 1)], 4));
        assert_eq!(m.max_live(), 1);
    }

    #[test]
    fn load_schedule_matches_manual_placement() {
        let shapes = vec![shape(1, 0, &[(2, 0)]), shape(2, 1, &[(1, 1)])];
        let mut by_hand = PressureModel::new(shapes.clone(), 3, 3);
        by_hand.place(NodeId(0), 0);
        by_hand.place(NodeId(1), 2);
        by_hand.place(NodeId(2), 7);
        let mut loaded = PressureModel::new(shapes, 3, 1);
        loaded.load_schedule(&Schedule {
            ii: 3,
            time: vec![0, 2, 7],
            alternative: vec![0, 0, 0],
            length: 0,
        });
        assert_eq!(loaded.ii(), 3);
        assert_eq!(loaded.max_live(), by_hand.max_live());
    }

    #[test]
    #[should_panic(expected = "II must be positive")]
    fn zero_ii_panics() {
        let _ = PressureModel::new(vec![], 1, 0);
    }
}
