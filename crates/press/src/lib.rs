#![deny(missing_docs)]

//! Register-pressure-aware modulo scheduling.
//!
//! Rau's paper schedules against function-unit reservation tables and
//! leaves the register file as a post-scheduling concern; nothing in the
//! core algorithm stops a schedule whose **MaxLive** — the peak number of
//! simultaneously live values, counting every in-flight iteration's copy —
//! exceeds a finite rotating register file. This crate closes that gap
//! through the scheduler's observer seam, with no change to the
//! pressure-blind default path:
//!
//! * [`PressureModel`] — an incremental per-kernel-row live-count tracker,
//!   updated in O(lifetime length) as operations are placed and evicted,
//!   with an O(II) [`max_live`](PressureModel::max_live) query. Rows are
//!   kept *mirrored* (2·II physical rows), the same trick as the bitset
//!   modulo reservation table, so the remainder of a lifetime never wraps;
//! * [`ValueShape`] / [`shapes_from_body`] / [`shapes_from_problem`] —
//!   the schedule-independent part of each value's lifetime, extracted
//!   either from the IR body (via the same `resolve_use` rule as
//!   `ims_codegen::lifetimes`, so the two agree exactly) or from a bare
//!   dependence graph's register-flow edges;
//! * [`PressureObserver`] — the policy layer: vetoes placements that would
//!   exceed the limit (`FindTimeSlot` then treats the slot as a resource
//!   conflict), rejects completed attempts whose MaxLive or rotating
//!   allocation does not fit (bumping the II), and feeds the `press.*`
//!   profiling counters.
//!
//! Set [`SchedConfig::pressure_limit`](ims_core::SchedConfig) alongside
//! the observer so capacity infeasibility surfaces as the structured
//! [`ScheduleError::PressureInfeasible`](ims_core::ScheduleError).
//!
//! # Examples
//!
//! Schedule a small accumulation loop against a 16-register rotating file:
//!
//! ```
//! use ims_core::{SchedConfig, Scheduler};
//! use ims_deps::{build_problem, BuildOptions};
//! use ims_ir::{LoopBuilder, Value};
//! use ims_machine::cydra_rf;
//! use ims_press::PressureObserver;
//!
//! let mut b = LoopBuilder::new("acc", 16);
//! let x = b.live_in("x", Value::Float(1.0));
//! let acc = b.fresh("acc");
//! b.bind_live_in(acc, Value::Float(0.0));
//! b.rebind_add(acc, acc, x);
//! let body = b.finish()?;
//!
//! let machine = cydra_rf(16);
//! let limit = machine.register_file().unwrap();
//! let problem = build_problem(&body, &machine, &BuildOptions::default());
//! let mut obs = PressureObserver::for_body(&body, &problem, limit);
//! let out = Scheduler::new(&problem)
//!     .config(SchedConfig::default().pressure_limit(limit))
//!     .observer(&mut obs)
//!     .run()?;
//! assert!(obs.max_live() <= limit);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod model;
mod observer;

pub use model::{shapes_from_body, shapes_from_problem, PressureModel, ValueShape};
pub use observer::PressureObserver;
