//! Flat memory with per-array layout.

use ims_ir::{ArrayId, LiveInValue, LoopBody, OpId, Value};

use crate::error::SimError;

/// Flat simulated memory: the body's arrays laid out contiguously in
/// declaration order. Cells default to `Float(0.0)`.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryImage {
    bases: Vec<usize>,
    lens: Vec<usize>,
    cells: Vec<Value>,
}

impl MemoryImage {
    /// Lays out memory for `body`'s arrays, zero-filled.
    pub fn for_body(body: &LoopBody) -> Self {
        let mut bases = Vec::with_capacity(body.arrays().len());
        let mut lens = Vec::with_capacity(body.arrays().len());
        let mut next = 0usize;
        for a in body.arrays() {
            bases.push(next);
            lens.push(a.len);
            next += a.len;
        }
        MemoryImage {
            bases,
            lens,
            cells: vec![Value::Float(0.0); next],
        }
    }

    /// The flat base address of `array`.
    ///
    /// # Panics
    ///
    /// Panics if `array` is out of range.
    pub fn base(&self, array: ArrayId) -> i64 {
        self.bases[array.index()] as i64
    }

    /// Sets `array[idx]`.
    ///
    /// # Panics
    ///
    /// Panics if the element is out of range.
    pub fn set(&mut self, array: ArrayId, idx: usize, value: Value) {
        assert!(idx < self.lens[array.index()], "array index out of range");
        self.cells[self.bases[array.index()] + idx] = value;
    }

    /// Reads `array[idx]`.
    ///
    /// # Panics
    ///
    /// Panics if the element is out of range.
    pub fn get(&self, array: ArrayId, idx: usize) -> Value {
        assert!(idx < self.lens[array.index()], "array index out of range");
        self.cells[self.bases[array.index()] + idx]
    }

    /// All cells, in layout order.
    pub fn cells(&self) -> &[Value] {
        &self.cells
    }

    /// Reads the cell at flat address `addr` on behalf of `op`.
    ///
    /// # Errors
    ///
    /// [`SimError::BadAddress`] when out of range.
    pub fn read(&self, op: OpId, addr: i64) -> Result<Value, SimError> {
        usize::try_from(addr)
            .ok()
            .and_then(|a| self.cells.get(a).copied())
            .ok_or(SimError::BadAddress { op, addr })
    }

    /// Writes the cell at flat address `addr` on behalf of `op`.
    ///
    /// # Errors
    ///
    /// [`SimError::BadAddress`] when out of range.
    pub fn write(&mut self, op: OpId, addr: i64, value: Value) -> Result<(), SimError> {
        let a = usize::try_from(addr)
            .ok()
            .filter(|&a| a < self.cells.len())
            .ok_or(SimError::BadAddress { op, addr })?;
        self.cells[a] = value;
        Ok(())
    }

    /// Resolves a live-in binding against this layout.
    pub fn resolve(&self, v: LiveInValue) -> Value {
        match v {
            LiveInValue::Const(c) => c,
            LiveInValue::ArrayBase { array, offset } => Value::Int(self.base(array) + offset),
        }
    }

    /// Per-register lag-1 live-in values for `body` under this layout,
    /// indexable by `VReg::index`.
    pub fn live_in_values(&self, body: &LoopBody) -> Vec<Option<Value>> {
        let mut out = vec![None; body.num_vregs()];
        for li in body.live_ins() {
            if li.lag == 1 {
                out[li.reg.index()] = Some(self.resolve(li.value));
            }
        }
        out
    }

    /// The live-in value of `reg` for reads reaching `lag` iterations
    /// before the loop (exact lag, falling back to the lag-1 binding).
    pub fn live_in_lag(
        &self,
        body: &LoopBody,
        reg: ims_ir::VReg,
        lag: u32,
    ) -> Option<Value> {
        body.live_in_value(reg, lag).map(|v| self.resolve(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ims_ir::LoopBuilder;

    fn body_with_arrays() -> LoopBody {
        let mut b = LoopBuilder::new("t", 4);
        let a = b.array("a", 3);
        let c = b.array("c", 2);
        let p = b.ptr("p", c, 1);
        let _ = (a, p);
        b.finish().unwrap()
    }

    #[test]
    fn layout_is_contiguous() {
        let body = body_with_arrays();
        let img = MemoryImage::for_body(&body);
        assert_eq!(img.base(ArrayId(0)), 0);
        assert_eq!(img.base(ArrayId(1)), 3);
        assert_eq!(img.cells().len(), 5);
    }

    #[test]
    fn get_set_round_trip() {
        let body = body_with_arrays();
        let mut img = MemoryImage::for_body(&body);
        img.set(ArrayId(1), 1, Value::Int(7));
        assert_eq!(img.get(ArrayId(1), 1), Value::Int(7));
        assert_eq!(img.read(OpId(0), 4).unwrap(), Value::Int(7));
    }

    #[test]
    fn bad_addresses_error() {
        let body = body_with_arrays();
        let mut img = MemoryImage::for_body(&body);
        assert!(matches!(
            img.read(OpId(0), 5),
            Err(SimError::BadAddress { addr: 5, .. })
        ));
        assert!(img.write(OpId(0), -1, Value::Int(0)).is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        let body = body_with_arrays();
        let mut img = MemoryImage::for_body(&body);
        img.set(ArrayId(0), 3, Value::Int(0));
    }

    #[test]
    fn live_ins_resolve_array_bases() {
        let body = body_with_arrays();
        let img = MemoryImage::for_body(&body);
        let lv = img.live_in_values(&body);
        // p = &c[1] = base(c) + 1 = 4.
        assert_eq!(lv[0], Some(Value::Int(4)));
    }
}
