//! Equivalence checking between execution modes.

use ims_ir::{Value, VReg};

use crate::memory::MemoryImage;
use crate::ExecResult;

/// The first divergence found between two executions.
#[derive(Debug, Clone, PartialEq)]
pub enum Mismatch {
    /// The memory layouts have different sizes (different bodies?).
    MemoryShape,
    /// A memory cell differs.
    MemoryCell {
        /// Flat address of the differing cell.
        index: usize,
        /// Value in the first execution.
        a: Value,
        /// Value in the second execution.
        b: Value,
    },
    /// A final register value differs.
    FinalReg {
        /// The differing register.
        reg: VReg,
        /// Value in the first execution.
        a: Option<Value>,
        /// Value in the second execution.
        b: Option<Value>,
    },
}

/// Compares final memory contents cell by cell (with numeric promotion:
/// `Int(2)` equals `Float(2.0)`).
pub fn compare_memory(a: &MemoryImage, b: &MemoryImage) -> Option<Mismatch> {
    if a.cells().len() != b.cells().len() {
        return Some(Mismatch::MemoryShape);
    }
    for (i, (x, y)) in a.cells().iter().zip(b.cells()).enumerate() {
        if !x.same(*y) {
            return Some(Mismatch::MemoryCell {
                index: i,
                a: *x,
                b: *y,
            });
        }
    }
    None
}

/// Compares two executions: memory always; final registers only when both
/// executions report them (executors of renamed code report none).
pub fn compare_results(a: &ExecResult, b: &ExecResult) -> Option<Mismatch> {
    if let Some(m) = compare_memory(&a.memory, &b.memory) {
        return Some(m);
    }
    if a.final_regs.is_empty() || b.final_regs.is_empty() {
        return None;
    }
    for (i, (x, y)) in a.final_regs.iter().zip(&b.final_regs).enumerate() {
        let equal = match (x, y) {
            (None, None) => true,
            (Some(p), Some(q)) => p.same(*q),
            _ => false,
        };
        if !equal {
            return Some(Mismatch::FinalReg {
                reg: VReg(i as u32),
                a: *x,
                b: *y,
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use ims_ir::{ArrayId, LoopBuilder};

    fn image() -> MemoryImage {
        let mut b = LoopBuilder::new("t", 1);
        let _ = b.array("a", 2);
        MemoryImage::for_body(&b.finish_unchecked())
    }

    #[test]
    fn identical_images_match() {
        let a = image();
        let b = a.clone();
        assert_eq!(compare_memory(&a, &b), None);
    }

    #[test]
    fn differing_cell_reported() {
        let a = image();
        let mut b = a.clone();
        b.set(ArrayId(0), 1, Value::Float(5.0));
        assert!(matches!(
            compare_memory(&a, &b),
            Some(Mismatch::MemoryCell { index: 1, .. })
        ));
    }

    #[test]
    fn numeric_promotion_in_memory() {
        let mut a = image();
        let mut b = a.clone();
        a.set(ArrayId(0), 0, Value::Int(2));
        b.set(ArrayId(0), 0, Value::Float(2.0));
        assert_eq!(compare_memory(&a, &b), None);
    }

    #[test]
    fn final_regs_compared_when_present() {
        let a = ExecResult {
            memory: image(),
            final_regs: vec![Some(Value::Int(1))],
            cycles: 0,
        };
        let mut b = a.clone();
        assert_eq!(compare_results(&a, &b), None);
        b.final_regs[0] = Some(Value::Int(2));
        assert!(matches!(
            compare_results(&a, &b),
            Some(Mismatch::FinalReg { reg: VReg(0), .. })
        ));
        // Empty final regs on one side: memory-only comparison.
        b.final_regs = vec![];
        assert_eq!(compare_results(&a, &b), None);
    }
}
