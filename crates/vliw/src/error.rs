//! Simulation errors.

use std::fmt;

use ims_ir::{eval::EvalError, OpId};

/// A dynamic error during simulation. Timing errors
/// ([`SimError::ReadBeforeReady`]) are the interesting ones: they mean a
/// schedule violated the machine's NUAL latency contract.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// An operation read a register whose producer's latency had not yet
    /// elapsed — the schedule is illegal on NUAL hardware.
    ReadBeforeReady {
        /// The reading operation.
        op: OpId,
        /// The cycle of the read.
        cycle: i64,
        /// The cycle the value becomes architecturally visible.
        available: i64,
    },
    /// An operation read a register that holds no value (no executed
    /// definition and no live-in binding).
    UnwrittenRead {
        /// The reading operation.
        op: OpId,
    },
    /// A memory access outside the laid-out arrays.
    BadAddress {
        /// The accessing operation.
        op: OpId,
        /// The offending flat address.
        addr: i64,
    },
    /// A memory address operand that is not an integer.
    BadAddressType {
        /// The accessing operation.
        op: OpId,
    },
    /// A dynamic type error in operation semantics.
    Eval(EvalError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::ReadBeforeReady {
                op,
                cycle,
                available,
            } => write!(
                f,
                "{op} reads at cycle {cycle} a value available only at {available}"
            ),
            SimError::UnwrittenRead { op } => write!(f, "{op} reads an unwritten register"),
            SimError::BadAddress { op, addr } => write!(f, "{op} accesses bad address {addr}"),
            SimError::BadAddressType { op } => write!(f, "{op} address operand is not integer"),
            SimError::Eval(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Eval(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EvalError> for SimError {
    fn from(e: EvalError) -> Self {
        SimError::Eval(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ims_ir::Opcode;

    #[test]
    fn displays_are_informative() {
        let e = SimError::ReadBeforeReady {
            op: OpId(3),
            cycle: 10,
            available: 12,
        };
        assert!(e.to_string().contains("op3"));
        assert!(e.to_string().contains("12"));
        let e = SimError::from(EvalError {
            opcode: Opcode::Load,
            reason: "x",
        });
        assert!(matches!(e, SimError::Eval(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
