#![warn(missing_docs)]

//! A NUAL VLIW simulator for validating modulo-scheduled loops end-to-end.
//!
//! The paper's experiments assume Cydra 5 hardware semantics: **non-unit
//! assumed latencies** (a result is architecturally visible exactly at
//! `issue + latency`, no interlocks), predicated execution, and rotating
//! register files. We cannot run on a Cydra 5, so this crate is the
//! substitute testbed (see `DESIGN.md` §3): it executes a loop four ways
//! and cross-checks the results —
//!
//! 1. [`run_sequential`]: the reference semantics, one iteration at a time,
//!    latencies ignored.
//! 2. [`run_overlapped`]: the modulo schedule executed directly, iteration
//!    `i` issuing at `i·II + time(op)`, with expanded-virtual-register
//!    semantics and **strict latency checking** — reading a register before
//!    its producer's latency has elapsed is an error, so an illegal
//!    schedule cannot silently produce the right answer.
//! 3. [`run_mve`]: the modulo-variable-expanded code from `ims-codegen`
//!    (prologue / unrolled kernel / coda) on a conventional register file.
//! 4. [`run_rotating`]: the kernel-only rotating-register code, with the
//!    rotating base advancing every II and instances staged by iteration.
//!
//! Because the schedule never changes an operation's operands (only its
//! time), all four executions compute bit-identical values; any divergence
//! is a bug in the scheduler or code generator, which is exactly what the
//! integration suite asserts.
//!
//! # Examples
//!
//! ```
//! use ims_vliw::{run_overlapped, run_sequential, compare_results, MemoryImage};
//! use ims_core::{modulo_schedule, SchedConfig};
//! use ims_deps::{build_problem, BuildOptions};
//! use ims_ir::{LoopBuilder, MemRef, Value};
//! use ims_machine::cydra_simple;
//!
//! let mut b = LoopBuilder::new("sum", 16);
//! let a = b.array("a", 16);
//! let pa = b.ptr("pa", a, 0);
//! let s = b.fresh("s");
//! b.bind_live_in(s, Value::Float(0.0));
//! let v = b.load("v", pa, Some(MemRef::new(a, 0, 1)));
//! b.rebind_add(s, s, v);
//! b.addr_add(pa, pa, 1);
//! let body = b.finish()?;
//!
//! let m = cydra_simple();
//! let problem = build_problem(&body, &m, &BuildOptions::default());
//! let out = modulo_schedule(&problem, &SchedConfig::default()).expect("schedulable");
//!
//! let mut image = MemoryImage::for_body(&body);
//! for i in 0..16 {
//!     image.set(ims_ir::ArrayId(0), i, Value::Float(i as f64));
//! }
//! let seq = run_sequential(&body, image.clone()).expect("runs");
//! let pipe = run_overlapped(&body, &problem, &out.schedule, image).expect("runs");
//! assert!(compare_results(&seq, &pipe).is_none());
//! # Ok::<(), ims_ir::validate::ValidateError>(())
//! ```

mod coderun;
mod compare;
mod error;
mod memory;
mod overlapped;
mod sequential;

pub use coderun::{run_mve, run_rotating};
pub use compare::{compare_memory, compare_results, Mismatch};
pub use error::SimError;
pub use memory::MemoryImage;
pub use overlapped::{run_overlapped, run_overlapped_profiled};
pub use sequential::run_sequential;

use ims_ir::Value;

/// The observable outcome of executing a loop.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecResult {
    /// Final memory contents.
    pub memory: MemoryImage,
    /// Final value of each virtual register (most recent executed
    /// definition, else the live-in value, else `None`). Executors of
    /// renamed code ([`run_mve`], [`run_rotating`]) leave this empty and
    /// are compared on memory only.
    pub final_regs: Vec<Option<Value>>,
    /// Cycles executed (0 for the sequential reference, which has no
    /// timing model).
    pub cycles: u64,
}
