//! Direct execution of a modulo schedule with overlapped iterations.

use std::collections::BTreeMap;

use ims_core::{Problem, Schedule};
use ims_deps::{node_of, resolve_use};
use ims_ir::{eval, LoopBody, OpId, Opcode, Operand, Value};
use ims_prof::{phase, ProfSink};

use crate::error::SimError;
use crate::memory::MemoryImage;
use crate::ExecResult;

/// Executes the modulo schedule directly: iteration `i`'s instance of an
/// operation issues at cycle `i·II + time(op)`, exactly the steady state
/// the schedule promises (§1: the same schedule *"repeated at regular
/// intervals"*).
///
/// Registers follow expanded-virtual-register semantics — each
/// `(iteration, register)` pair is distinct storage, the software
/// equivalent of rotating registers — and are **latency-checked**: a read
/// before the producing operation's latency has elapsed returns
/// [`SimError::ReadBeforeReady`]. Stores become architecturally visible at
/// `issue + latency(store)`; loads sample memory at issue.
///
/// # Errors
///
/// Any [`SimError`]; `ReadBeforeReady` indicates an illegal schedule.
pub fn run_overlapped(
    body: &LoopBody,
    problem: &Problem<'_>,
    schedule: &Schedule,
    memory: MemoryImage,
) -> Result<ExecResult, SimError> {
    let n = body.trip_count() as i64;
    let nv = body.num_vregs();
    let ii = schedule.ii;
    let live_in = memory.live_in_values(body);
    let live_in_seed = memory.clone();
    let mut memory = memory;

    // Every (cycle, iteration, op) instance, in issue order. Within a
    // cycle, order by (iteration, op id) for determinism (the order is
    // semantically irrelevant: NUAL reads never see same-cycle writes).
    let mut instances: Vec<(i64, i64, OpId)> = Vec::new();
    for (id, _) in body.iter() {
        let t = schedule.time_of(node_of(id));
        for i in 0..n {
            instances.push((i * ii + t, i, id));
        }
    }
    instances.sort_unstable();

    // reg_file[iter][vreg]: Empty until the defining instance executes,
    // then either Written (with its visibility cycle) or Squashed (the
    // instance ran with a false predicate and wrote nothing).
    #[derive(Clone, Copy, PartialEq)]
    enum Cell {
        Empty,
        Squashed,
        Written(i64, Value),
    }
    let mut reg_file: Vec<Vec<Cell>> = vec![vec![Cell::Empty; nv]; n as usize];
    // Pending memory commits: cycle -> [(op, addr, value)].
    let mut pending_stores: BTreeMap<i64, Vec<(OpId, i64, Value)>> = BTreeMap::new();

    let read = |reg_file: &[Vec<Cell>],
                at: OpId,
                u: ims_ir::RegUse,
                iter: i64,
                cycle: i64|
     -> Result<Value, SimError> {
        match resolve_use(body, at, u) {
            None => live_in_seed
                .live_in_lag(body, u.reg, 1 + u.prev)
                .ok_or(SimError::UnwrittenRead { op: at }),
            Some((_, d)) => {
                let mut j = iter - d as i64;
                if j < 0 {
                    // A pre-loop instance: the per-lag live-in seed.
                    return live_in_seed
                        .live_in_lag(body, u.reg, (-j) as u32)
                        .ok_or(SimError::UnwrittenRead { op: at });
                }
                while j >= 0 {
                    match reg_file[j as usize][u.reg.index()] {
                        Cell::Written(avail, v) => {
                            if avail > cycle {
                                return Err(SimError::ReadBeforeReady {
                                    op: at,
                                    cycle,
                                    available: avail,
                                });
                            }
                            return Ok(v);
                        }
                        // A squashed predicated write: the register keeps
                        // its previous instance's value.
                        Cell::Squashed => j -= 1,
                        // The defining instance has not even issued yet:
                        // the schedule is broken.
                        Cell::Empty => return Err(SimError::UnwrittenRead { op: at }),
                    }
                }
                live_in_seed
                    .live_in_lag(body, u.reg, 1)
                    .ok_or(SimError::UnwrittenRead { op: at })
            }
        }
    };

    let mut last_cycle = 0i64;
    for (cycle, iter, id) in instances {
        last_cycle = last_cycle.max(cycle);
        // Commit stores due at or before this cycle.
        let due: Vec<i64> = pending_stores.range(..=cycle).map(|(c, _)| *c).collect();
        for c in due {
            for (op, addr, v) in pending_stores.remove(&c).expect("key just observed") {
                memory.write(op, addr, v)?;
            }
        }

        let op = body.op(id);
        if let Some(p) = op.pred {
            let pv = read(&reg_file, id, p, iter, cycle)?;
            if !pv.truthy() {
                if let Some(dest) = op.dest {
                    reg_file[iter as usize][dest.index()] = Cell::Squashed;
                }
                continue;
            }
        }
        let mut srcs = Vec::with_capacity(op.srcs.len());
        for s in &op.srcs {
            srcs.push(match s {
                Operand::ImmInt(v) => Value::Int(*v),
                Operand::ImmFloat(v) => Value::Float(*v),
                Operand::Reg(u) => read(&reg_file, id, *u, iter, cycle)?,
            });
        }
        let latency = problem.latency(node_of(id));
        match op.opcode {
            Opcode::Load => {
                let addr = srcs[0]
                    .as_int()
                    .ok_or(SimError::BadAddressType { op: id })?;
                let v = memory.read(id, addr)?;
                let dest = op.dest.expect("loads have destinations");
                reg_file[iter as usize][dest.index()] = Cell::Written(cycle + latency, v);
            }
            Opcode::Store => {
                let addr = srcs[0]
                    .as_int()
                    .ok_or(SimError::BadAddressType { op: id })?;
                pending_stores
                    .entry(cycle + latency)
                    .or_default()
                    .push((id, addr, srcs[1]));
            }
            Opcode::Branch => {}
            _ => {
                let v = eval::apply(op.opcode, op.cmp, &srcs)?;
                let dest = op.dest.expect("value ops have destinations");
                reg_file[iter as usize][dest.index()] = Cell::Written(cycle + latency, v);
            }
        }
    }

    // Drain remaining stores.
    for (_, stores) in std::mem::take(&mut pending_stores) {
        for (op, addr, v) in stores {
            memory.write(op, addr, v)?;
        }
    }

    let mut final_regs = vec![None; nv];
    for r in 0..nv {
        for iter in (0..n as usize).rev() {
            if let Cell::Written(_, v) = reg_file[iter][r] {
                final_regs[r] = Some(v);
                break;
            }
        }
        if final_regs[r].is_none() {
            final_regs[r] = live_in[r];
        }
    }

    Ok(ExecResult {
        memory,
        final_regs,
        cycles: (last_cycle + 1) as u64,
    })
}

/// [`run_overlapped`] + `vliw.sim.*` counters: on success one
/// [`phase::VLIW_SIM_LOOPS`] and the executed [`phase::VLIW_SIM_CYCLES`];
/// on error one [`phase::VLIW_SIM_ERRORS`]. With a `NullSink` this is
/// exactly [`run_overlapped`].
///
/// # Errors
///
/// As [`run_overlapped`].
pub fn run_overlapped_profiled<P: ProfSink>(
    body: &LoopBody,
    problem: &Problem<'_>,
    schedule: &Schedule,
    memory: MemoryImage,
    prof: &mut P,
) -> Result<ExecResult, SimError> {
    let result = run_overlapped(body, problem, schedule, memory);
    match &result {
        Ok(exec) => {
            prof.count(phase::VLIW_SIM_LOOPS, 1);
            prof.count(phase::VLIW_SIM_CYCLES, exec.cycles);
        }
        Err(_) => prof.count(phase::VLIW_SIM_ERRORS, 1),
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compare::compare_results;
    use crate::sequential::run_sequential;
    use ims_core::{modulo_schedule, SchedConfig};
    use ims_deps::{build_problem, BuildOptions};
    use ims_ir::{ArrayId, LoopBuilder, MemRef};
    use ims_machine::{cydra, cydra_simple};

    fn check_equivalent(body: &LoopBody, machine: &ims_machine::MachineModel, img: MemoryImage) {
        let p = build_problem(body, machine, &BuildOptions::default());
        let out = modulo_schedule(&p, &SchedConfig::with_budget_ratio(6.0)).unwrap();
        let seq = run_sequential(body, img.clone()).unwrap();
        let pipe = run_overlapped(body, &p, &out.schedule, img).unwrap();
        if let Some(m) = compare_results(&seq, &pipe) {
            panic!("sequential and overlapped execution diverge: {m:?}");
        }
    }

    #[test]
    fn dot_product_matches_sequential() {
        let n = 20;
        let mut b = LoopBuilder::new("dot", n);
        let a = b.array("a", n as usize);
        let bb = b.array("b", n as usize);
        let pa = b.ptr("pa", a, 0);
        let pb = b.ptr("pb", bb, 0);
        let s = b.fresh("s");
        b.bind_live_in(s, Value::Float(0.0));
        let va = b.load("va", pa, Some(MemRef::new(a, 0, 1)));
        let vb = b.load("vb", pb, Some(MemRef::new(bb, 0, 1)));
        let prod = b.mul("prod", va, vb);
        b.rebind_add(s, s, prod);
        b.addr_add(pa, pa, 1);
        b.addr_add(pb, pb, 1);
        let body = b.finish().unwrap();
        let mut img = MemoryImage::for_body(&body);
        for i in 0..n as usize {
            img.set(ArrayId(0), i, Value::Float(i as f64));
            img.set(ArrayId(1), i, Value::Float(2.0));
        }
        check_equivalent(&body, &cydra_simple(), img);
    }

    #[test]
    fn dot_product_on_complex_tables_too() {
        let n = 12;
        let mut b = LoopBuilder::new("dotc", n);
        let a = b.array("a", n as usize);
        let pa = b.ptr("pa", a, 0);
        let s = b.fresh("s");
        b.bind_live_in(s, Value::Float(0.0));
        let va = b.load("va", pa, Some(MemRef::new(a, 0, 1)));
        b.rebind_add(s, s, va);
        b.addr_add(pa, pa, 1);
        let body = b.finish().unwrap();
        let mut img = MemoryImage::for_body(&body);
        for i in 0..n as usize {
            img.set(ArrayId(0), i, Value::Float((i * i) as f64));
        }
        check_equivalent(&body, &cydra(), img);
    }

    #[test]
    fn stencil_with_memory_recurrence() {
        // a[i] = a[i-2] + 1: a genuine cross-iteration memory dependence.
        let n = 10;
        let mut b = LoopBuilder::new("stencil", n);
        let a = b.array("a", n as usize + 2);
        let pl = b.ptr("pl", a, 0);
        let ps = b.ptr("ps", a, 2);
        let v = b.load("v", pl, Some(MemRef::new(a, 0, 1)));
        let w = b.add("w", v, 1.0f64);
        b.store(ps, w, Some(MemRef::new(a, 2, 1)));
        b.addr_add(pl, pl, 1);
        b.addr_add(ps, ps, 1);
        let body = b.finish().unwrap();
        let mut img = MemoryImage::for_body(&body);
        img.set(ArrayId(0), 0, Value::Float(10.0));
        img.set(ArrayId(0), 1, Value::Float(20.0));
        check_equivalent(&body, &cydra_simple(), img);
    }

    #[test]
    fn timing_violation_detected() {
        // Hand-build an illegal schedule: consumer placed right after a
        // 20-cycle load. The overlapped executor must reject it.
        let n = 4;
        let mut b = LoopBuilder::new("bad", n);
        let a = b.array("a", n as usize);
        let pa = b.ptr("pa", a, 0);
        let v = b.load("v", pa, Some(MemRef::new(a, 0, 1)));
        let _w = b.add("w", v, 1.0f64);
        b.addr_add(pa, pa, 1);
        let body = b.finish().unwrap();
        let m = cydra_simple();
        let p = build_problem(&body, &m, &BuildOptions::default());
        let out = modulo_schedule(&p, &SchedConfig::default()).unwrap();
        let mut bad = out.schedule.clone();
        // Move the add to one cycle after the load.
        let load_t = bad.time_of(ims_deps::node_of(OpId(0)));
        bad.time[ims_deps::node_of(OpId(1)).index()] = load_t + 1;
        let err =
            run_overlapped(&body, &p, &bad, MemoryImage::for_body(&body)).unwrap_err();
        assert!(matches!(err, SimError::ReadBeforeReady { .. }), "{err}");
    }

    #[test]
    fn overlapped_cycles_reflect_pipelining() {
        // Total cycles ≈ (n-1)*II + SL, far less than n*SL for a
        // long-latency loop.
        let n = 32;
        let mut b = LoopBuilder::new("deep", n);
        let a = b.array("a", n as usize);
        let pa = b.ptr("pa", a, 0);
        let v = b.load("v", pa, Some(MemRef::new(a, 0, 1)));
        let w = b.mul("w", v, 2.0f64);
        b.store(pa, w, Some(MemRef::new(a, 0, 1)));
        b.addr_add(pa, pa, 1);
        let body = b.finish().unwrap();
        let m = cydra_simple();
        let p = build_problem(&body, &m, &BuildOptions::default());
        let out = modulo_schedule(&p, &SchedConfig::default()).unwrap();
        let pipe =
            run_overlapped(&body, &p, &out.schedule, MemoryImage::for_body(&body)).unwrap();
        let serial_estimate = n as u64 * out.schedule.length as u64;
        assert!(
            pipe.cycles < serial_estimate / 2,
            "pipelining gained little: {} vs {serial_estimate}",
            pipe.cycles
        );
    }
}
