//! Execution of generated pipelined code (MVE and rotating forms).

use std::collections::BTreeMap;

use ims_codegen::{CodeOperand, CodeReg, Inst, MveCode, RotatingCode, SlotOp};
use ims_ir::{eval, LoopBody, Opcode, Value};

use crate::error::SimError;
use crate::memory::MemoryImage;
use crate::ExecResult;

/// A register cell with NUAL visibility: a write commits (becomes
/// architecturally visible) at its `avail` cycle. Several writes to the
/// same physical register can be in flight at once (latencies up to 26
/// cycles versus IIs of a few), so the cell keeps the commit-ordered
/// history of uncommitted writes plus the last committed value; a read
/// returns the most recently committed write, and errors if the register
/// has only uncommitted contents (hardware would return garbage).
#[derive(Debug, Clone, Default)]
struct Cell {
    /// `(avail, value)` sorted by `avail`; pruned to the last committed
    /// entry plus everything still in flight.
    writes: Vec<(i64, Value)>,
}

impl Cell {
    fn read(&self, op: ims_ir::OpId, cycle: i64) -> Result<Value, SimError> {
        if self.writes.is_empty() {
            return Err(SimError::UnwrittenRead { op });
        }
        match self.writes.iter().rev().find(|&&(a, _)| a <= cycle) {
            Some(&(_, v)) => Ok(v),
            None => Err(SimError::ReadBeforeReady {
                op,
                cycle,
                available: self.writes[0].0,
            }),
        }
    }

    fn write(&mut self, avail: i64, value: Value, now: i64) {
        let pos = self.writes.partition_point(|&(a, _)| a <= avail);
        self.writes.insert(pos, (avail, value));
        // Prune: keep the latest committed entry and all in-flight ones.
        let committed = self.writes.partition_point(|&(a, _)| a <= now);
        if committed > 1 {
            self.writes.drain(..committed - 1);
        }
    }
}

#[derive(Debug)]
struct CodeState {
    statics: Vec<Cell>,
    rotating: Vec<Cell>,
    memory: MemoryImage,
    pending_stores: BTreeMap<i64, Vec<(ims_ir::OpId, i64, Value)>>,
}

impl CodeState {
    fn resolve(&self, reg: CodeReg, pass: i64) -> (bool, usize) {
        match reg {
            CodeReg::Static(i) => (false, i),
            CodeReg::Rotating(off) => {
                let s = self.rotating.len().max(1) as i64;
                (true, (off as i64 + pass).rem_euclid(s) as usize)
            }
        }
    }

    fn read(&self, op: ims_ir::OpId, reg: CodeReg, pass: i64, cycle: i64) -> Result<Value, SimError> {
        let (rot, idx) = self.resolve(reg, pass);
        let cell = if rot { &self.rotating[idx] } else { &self.statics[idx] };
        cell.read(op, cycle)
    }

    fn write(&mut self, reg: CodeReg, pass: i64, avail: i64, cycle: i64, value: Value) {
        let (rot, idx) = self.resolve(reg, pass);
        let slot = if rot {
            &mut self.rotating[idx]
        } else {
            &mut self.statics[idx]
        };
        slot.write(avail, value, cycle);
    }

    fn commit_stores(&mut self, cycle: i64) -> Result<(), SimError> {
        let due: Vec<i64> = self
            .pending_stores
            .range(..=cycle)
            .map(|(c, _)| *c)
            .collect();
        for c in due {
            for (op, addr, v) in self.pending_stores.remove(&c).expect("key observed") {
                self.memory.write(op, addr, v)?;
            }
        }
        Ok(())
    }

    fn exec(
        &mut self,
        body: &LoopBody,
        machine: &ims_machine::MachineModel,
        slot: &SlotOp,
        pass: i64,
        cycle: i64,
    ) -> Result<(), SimError> {
        let op = body.op(slot.op);
        if let Some(p) = slot.pred {
            if !self.read(slot.op, p, pass, cycle)?.truthy() {
                return Ok(());
            }
        }
        let mut srcs = Vec::with_capacity(slot.srcs.len());
        for s in &slot.srcs {
            srcs.push(match s {
                CodeOperand::ImmInt(v) => Value::Int(*v),
                CodeOperand::ImmFloat(v) => Value::Float(*v),
                CodeOperand::Reg(r) => self.read(slot.op, *r, pass, cycle)?,
            });
        }
        let latency = machine.latency(op.opcode) as i64;
        match op.opcode {
            Opcode::Load => {
                let addr = srcs[0]
                    .as_int()
                    .ok_or(SimError::BadAddressType { op: slot.op })?;
                let v = self.memory.read(slot.op, addr)?;
                let dest = slot.dest.expect("loads have destinations");
                self.write(dest, pass, cycle + latency, cycle, v);
            }
            Opcode::Store => {
                let addr = srcs[0]
                    .as_int()
                    .ok_or(SimError::BadAddressType { op: slot.op })?;
                self.pending_stores
                    .entry(cycle + latency)
                    .or_default()
                    .push((slot.op, addr, srcs[1]));
            }
            Opcode::Branch => {}
            _ => {
                let v = eval::apply(op.opcode, op.cmp, &srcs)?;
                let dest = slot.dest.expect("value ops have destinations");
                self.write(dest, pass, cycle + latency, cycle, v);
            }
        }
        Ok(())
    }

    fn finish(mut self, cycles: u64) -> Result<ExecResult, SimError> {
        for (_, stores) in std::mem::take(&mut self.pending_stores) {
            for (op, addr, v) in stores {
                self.memory.write(op, addr, v)?;
            }
        }
        Ok(ExecResult {
            memory: self.memory,
            final_regs: Vec::new(),
            cycles,
        })
    }
}

fn seeded_state(
    memory: MemoryImage,
    num_static: usize,
    num_rotating: usize,
    seeds: &[ims_codegen::code::Seed],
) -> CodeState {
    let mut st = CodeState {
        statics: vec![Cell::default(); num_static],
        rotating: vec![Cell::default(); num_rotating],
        memory,
        pending_stores: BTreeMap::new(),
    };
    for seed in seeds {
        let v = st.memory.resolve(seed.value);
        match seed.reg {
            CodeReg::Static(i) => st.statics[i].write(i64::MIN / 2, v, 0),
            // Rotating seeds are physical indices valid at pass 0.
            CodeReg::Rotating(i) => st.rotating[i].write(i64::MIN / 2, v, 0),
        }
    }
    st
}

/// Executes modulo-variable-expanded code: prologue, `kernel_reps`
/// repetitions of the unrolled kernel, then the coda. Returns the final
/// memory image (register state is renamed and not comparable directly).
///
/// # Errors
///
/// Any [`SimError`]; a `ReadBeforeReady` means the code generator emitted
/// an instruction stream that violates the machine's latency contract.
pub fn run_mve(
    code: &MveCode,
    body: &LoopBody,
    machine: &ims_machine::MachineModel,
    memory: MemoryImage,
) -> Result<ExecResult, SimError> {
    let mut st = seeded_state(memory, code.num_static_regs, 0, &code.seeds);
    let mut cycle = 0i64;
    let run_section = |st: &mut CodeState, insts: &[Inst], cycle: &mut i64| -> Result<(), SimError> {
        for inst in insts {
            st.commit_stores(*cycle)?;
            for slot in &inst.ops {
                st.exec(body, machine, slot, 0, *cycle)?;
            }
            *cycle += 1;
        }
        Ok(())
    };
    run_section(&mut st, &code.prologue, &mut cycle)?;
    for _ in 0..code.kernel_reps {
        run_section(&mut st, &code.kernel, &mut cycle)?;
    }
    run_section(&mut st, &code.coda, &mut cycle)?;
    st.finish(cycle as u64)
}

/// Executes kernel-only rotating-register code: `passes` passes over the
/// `II`-instruction kernel, the rotating base advancing each pass, each
/// instance staged by `iteration = pass − stage` (instances outside
/// `[0, trip_count)` are squashed, exactly what the staging predicates of
/// the kernel-only schema do).
///
/// # Errors
///
/// Any [`SimError`].
pub fn run_rotating(
    code: &RotatingCode,
    body: &LoopBody,
    machine: &ims_machine::MachineModel,
    memory: MemoryImage,
) -> Result<ExecResult, SimError> {
    let n = body.trip_count() as i64;
    let mut st = seeded_state(memory, code.num_static_regs, code.rotating_size, &code.seeds);
    let mut cycle = 0i64;
    for pass in 0..code.passes as i64 {
        for inst in &code.kernel {
            st.commit_stores(cycle)?;
            for slot in &inst.ops {
                let iter = pass - slot.stage as i64;
                if iter < 0 || iter >= n {
                    continue; // Staging predicate squashes this instance.
                }
                st.exec(body, machine, slot, pass, cycle)?;
            }
            cycle += 1;
        }
    }
    st.finish(cycle as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compare::compare_memory;
    use crate::sequential::run_sequential;
    use ims_codegen::{generate_mve, generate_rotating, lifetimes};
    use ims_core::{modulo_schedule, SchedConfig};
    use ims_deps::{build_problem, BuildOptions};
    use ims_ir::{ArrayId, LoopBuilder, MemRef};
    use ims_machine::cydra_simple;

    fn saxpy(n: u32) -> LoopBody {
        let mut b = LoopBuilder::new("saxpy", n);
        let x = b.array("x", n as usize);
        let y = b.array("y", n as usize);
        let px = b.ptr("px", x, 0);
        let py = b.ptr("py", y, 0);
        let vx = b.load("vx", px, Some(MemRef::new(x, 0, 1)));
        let vy = b.load("vy", py, Some(MemRef::new(y, 0, 1)));
        let ax = b.mul("ax", vx, 2.5f64);
        let s = b.add("s", ax, vy);
        b.store(py, s, Some(MemRef::new(y, 0, 1)));
        b.addr_add(px, px, 1);
        b.addr_add(py, py, 1);
        b.finish().unwrap()
    }

    fn seeded_image(body: &LoopBody, n: usize) -> MemoryImage {
        let mut img = MemoryImage::for_body(body);
        for i in 0..n {
            img.set(ArrayId(0), i, Value::Float(1.0 + i as f64));
            img.set(ArrayId(1), i, Value::Float(100.0 - i as f64));
        }
        img
    }

    #[test]
    fn mve_code_matches_sequential() {
        let n = 40;
        let body = saxpy(n);
        let m = cydra_simple();
        let p = build_problem(&body, &m, &BuildOptions::default());
        let out = modulo_schedule(&p, &SchedConfig::default()).unwrap();
        let lt = lifetimes(&body, &p, &out.schedule);
        let code = generate_mve(&body, &p, &out.schedule, &lt);
        let img = seeded_image(&body, n as usize);
        let seq = run_sequential(&body, img.clone()).unwrap();
        let mve = run_mve(&code, &body, &m, img).unwrap();
        assert_eq!(compare_memory(&seq.memory, &mve.memory), None);
        assert!(code.kernel_reps > 0, "steady state should be reached");
    }

    #[test]
    fn rotating_code_matches_sequential() {
        let n = 40;
        let body = saxpy(n);
        let m = cydra_simple();
        let p = build_problem(&body, &m, &BuildOptions::default());
        let out = modulo_schedule(&p, &SchedConfig::default()).unwrap();
        let lt = lifetimes(&body, &p, &out.schedule);
        let code = generate_rotating(&body, &p, &out.schedule, &lt).unwrap();
        let img = seeded_image(&body, n as usize);
        let seq = run_sequential(&body, img.clone()).unwrap();
        let rot = run_rotating(&code, &body, &m, img).unwrap();
        assert_eq!(compare_memory(&seq.memory, &rot.memory), None);
    }

    #[test]
    fn mve_short_trip_count_flat_path() {
        let n = 2;
        let body = saxpy(n);
        let m = cydra_simple();
        let p = build_problem(&body, &m, &BuildOptions::default());
        let out = modulo_schedule(&p, &SchedConfig::default()).unwrap();
        let lt = lifetimes(&body, &p, &out.schedule);
        let code = generate_mve(&body, &p, &out.schedule, &lt);
        assert_eq!(code.kernel_reps, 0);
        let img = seeded_image(&body, n as usize);
        let seq = run_sequential(&body, img.clone()).unwrap();
        let mve = run_mve(&code, &body, &m, img).unwrap();
        assert_eq!(compare_memory(&seq.memory, &mve.memory), None);
    }

    #[test]
    fn rotating_accumulator_loop() {
        // Reduction with a loop-carried accumulator, stored at the end of
        // each iteration so memory captures it.
        let n = 24;
        let mut b = LoopBuilder::new("acc", n);
        let a = b.array("a", n as usize);
        let out = b.array("out", n as usize);
        let pa = b.ptr("pa", a, 0);
        let po = b.ptr("po", out, 0);
        let s = b.fresh("s");
        b.bind_live_in(s, Value::Float(0.0));
        let v = b.load("v", pa, Some(MemRef::new(a, 0, 1)));
        b.rebind_add(s, s, v);
        b.store(po, s, Some(MemRef::new(out, 0, 1)));
        b.addr_add(pa, pa, 1);
        b.addr_add(po, po, 1);
        let body = b.finish().unwrap();
        let m = cydra_simple();
        let p = build_problem(&body, &m, &BuildOptions::default());
        let out_s = modulo_schedule(&p, &SchedConfig::default()).unwrap();
        let lt = lifetimes(&body, &p, &out_s.schedule);
        let img = seeded_image(&body, n as usize);
        let seq = run_sequential(&body, img.clone()).unwrap();

        let rot = generate_rotating(&body, &p, &out_s.schedule, &lt).unwrap();
        let rr = run_rotating(&rot, &body, &m, img.clone()).unwrap();
        assert_eq!(compare_memory(&seq.memory, &rr.memory), None);

        let mve = generate_mve(&body, &p, &out_s.schedule, &lt);
        let mr = run_mve(&mve, &body, &m, img).unwrap();
        assert_eq!(compare_memory(&seq.memory, &mr.memory), None);
    }

    #[test]
    fn mve_cycle_count_is_pipelined() {
        let n = 64;
        let body = saxpy(n);
        let m = cydra_simple();
        let p = build_problem(&body, &m, &BuildOptions::default());
        let out = modulo_schedule(&p, &SchedConfig::default()).unwrap();
        let lt = lifetimes(&body, &p, &out.schedule);
        let code = generate_mve(&body, &p, &out.schedule, &lt);
        let total = code.total_cycles();
        // Roughly (n + SC - 1) * II.
        let expected = (n as u64 + code.stage_count as u64) * code.ii as u64;
        assert!(total <= expected + code.ii as u64, "{total} vs {expected}");
    }
}
