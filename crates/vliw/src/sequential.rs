//! The sequential reference interpreter.

use ims_deps::resolve_use;
use ims_ir::{eval, LoopBody, OpId, Opcode, Operand, Value};

use crate::error::SimError;
use crate::memory::MemoryImage;
use crate::ExecResult;

/// Resolves a lag-aware live-in against a memory layout snapshot.
fn memory_live_in(
    body: &LoopBody,
    layout: &MemoryImage,
    reg: ims_ir::VReg,
    lag: u32,
) -> Option<Value> {
    layout.live_in_lag(body, reg, lag)
}

/// Runs `body` for its trip count, one iteration at a time, with no timing
/// model. This is the semantic ground truth the pipelined executions are
/// compared against.
///
/// Expanded-virtual-register semantics: every `(iteration, register)` pair
/// is a distinct storage location, so loop-carried reads reference exactly
/// the iteration the dependence analyzer resolves them to. A read of an
/// instance whose definition was predicated off falls back to the most
/// recent earlier instance (registers keep their value when a predicated
/// write is squashed), then to the live-in value.
///
/// # Errors
///
/// See [`SimError`]; this mode cannot produce
/// [`SimError::ReadBeforeReady`].
pub fn run_sequential(body: &LoopBody, memory: MemoryImage) -> Result<ExecResult, SimError> {
    let n = body.trip_count() as usize;
    let nv = body.num_vregs();
    let live_in = memory.live_in_values(body);
    let live_in_seed = memory.clone();
    // history[iter][vreg]: the value written by that iteration's instance.
    let mut history: Vec<Vec<Option<Value>>> = vec![vec![None; nv]; n];
    let mut memory = memory;

    let read = |history: &[Vec<Option<Value>>],
                at: OpId,
                u: ims_ir::RegUse,
                iter: usize|
     -> Result<Value, SimError> {
        match resolve_use(body, at, u) {
            None => memory_live_in(body, &live_in_seed, u.reg, 1 + u.prev)
                .ok_or(SimError::UnwrittenRead { op: at }),
            Some((_, d)) => {
                let target = iter as i64 - d as i64;
                if target < 0 {
                    // A pre-loop instance: the per-lag live-in seed.
                    return memory_live_in(body, &live_in_seed, u.reg, (-target) as u32)
                        .ok_or(SimError::UnwrittenRead { op: at });
                }
                // Walk back over squashed (predicated-off) instances.
                let mut j = target;
                while j >= 0 {
                    if let Some(v) = history[j as usize][u.reg.index()] {
                        return Ok(v);
                    }
                    j -= 1;
                }
                memory_live_in(body, &live_in_seed, u.reg, 1)
                    .ok_or(SimError::UnwrittenRead { op: at })
            }
        }
    };

    for iter in 0..n {
        for (id, op) in body.iter() {
            // Guarding predicate.
            if let Some(p) = op.pred {
                let pv = read(&history, id, p, iter)?;
                if !pv.truthy() {
                    continue;
                }
            }
            let mut srcs = Vec::with_capacity(op.srcs.len());
            for s in &op.srcs {
                srcs.push(match s {
                    Operand::ImmInt(v) => Value::Int(*v),
                    Operand::ImmFloat(v) => Value::Float(*v),
                    Operand::Reg(u) => read(&history, id, *u, iter)?,
                });
            }
            match op.opcode {
                Opcode::Load => {
                    let addr = srcs[0]
                        .as_int()
                        .ok_or(SimError::BadAddressType { op: id })?;
                    let v = memory.read(id, addr)?;
                    history[iter][op.dest.expect("loads have destinations").index()] = Some(v);
                }
                Opcode::Store => {
                    let addr = srcs[0]
                        .as_int()
                        .ok_or(SimError::BadAddressType { op: id })?;
                    memory.write(id, addr, srcs[1])?;
                }
                Opcode::Branch => {
                    // DO-loop semantics: the trip count drives execution.
                }
                _ => {
                    let v = eval::apply(op.opcode, op.cmp, &srcs)?;
                    history[iter][op.dest.expect("value ops have destinations").index()] =
                        Some(v);
                }
            }
        }
    }

    // Final register values: most recent executed definition, else live-in.
    let mut final_regs = vec![None; nv];
    for r in 0..nv {
        for iter in (0..n).rev() {
            if history[iter][r].is_some() {
                final_regs[r] = history[iter][r];
                break;
            }
        }
        if final_regs[r].is_none() {
            final_regs[r] = live_in[r];
        }
    }

    Ok(ExecResult {
        memory,
        final_regs,
        cycles: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ims_ir::{ArrayId, CmpKind, LoopBuilder, MemRef};

    #[test]
    fn accumulator_sums() {
        let mut b = LoopBuilder::new("sum", 5);
        let s = b.fresh("s");
        b.bind_live_in(s, Value::Float(0.0));
        b.rebind_add(s, s, 2.0f64);
        let body = b.finish().unwrap();
        let r = run_sequential(&body, MemoryImage::for_body(&body)).unwrap();
        assert_eq!(r.final_regs[s.index()], Some(Value::Float(10.0)));
    }

    #[test]
    fn array_scale_writes_memory() {
        let mut b = LoopBuilder::new("scale", 4);
        let a = b.array("a", 4);
        let pa = b.ptr("pa", a, 0);
        let v = b.load("v", pa, Some(MemRef::new(a, 0, 1)));
        let w = b.mul("w", v, 3.0f64);
        b.store(pa, w, Some(MemRef::new(a, 0, 1)));
        b.addr_add(pa, pa, 1);
        let body = b.finish().unwrap();
        let mut img = MemoryImage::for_body(&body);
        for i in 0..4 {
            img.set(a, i, Value::Float((i + 1) as f64));
        }
        let r = run_sequential(&body, img).unwrap();
        for i in 0..4 {
            assert_eq!(r.memory.get(a, i), Value::Float(3.0 * (i + 1) as f64));
        }
    }

    #[test]
    fn second_order_recurrence() {
        // fib-ish: x = x[-1] + x[-2], both lags seeded with 1.
        let mut b = LoopBuilder::new("fib", 5);
        let x = b.fresh("x");
        b.bind_live_in(x, Value::Int(1));
        let two_back = b.back(x, 1);
        b.rebind(x, Opcode::Add, vec![x.into(), two_back]);
        let body = b.finish().unwrap();
        let r = run_sequential(&body, MemoryImage::for_body(&body)).unwrap();
        // 1,1 -> 2, 3, 5, 8, 13.
        assert_eq!(r.final_regs[x.index()], Some(Value::Int(13)));
    }

    #[test]
    fn predicated_store_skips() {
        // Store only when the loaded value is positive.
        let mut b = LoopBuilder::new("pred", 4);
        let a = b.array("a", 4);
        let out = b.array("o", 4);
        let pa = b.ptr("pa", a, 0);
        let po = b.ptr("po", out, 0);
        let v = b.load("v", pa, Some(MemRef::new(a, 0, 1)));
        let p = b.pred_set("p", CmpKind::Gt, v, 0.0f64);
        let st = b.store(po, v, Some(MemRef::new(out, 0, 1)));
        b.guard(st, p);
        b.addr_add(pa, pa, 1);
        b.addr_add(po, po, 1);
        let body = b.finish().unwrap();
        let mut img = MemoryImage::for_body(&body);
        let vals = [1.0, -2.0, 3.0, -4.0];
        for (i, &v) in vals.iter().enumerate() {
            img.set(a, i, Value::Float(v));
        }
        let r = run_sequential(&body, img).unwrap();
        assert_eq!(r.memory.get(out, 0), Value::Float(1.0));
        assert_eq!(r.memory.get(out, 1), Value::Float(0.0)); // squashed
        assert_eq!(r.memory.get(out, 2), Value::Float(3.0));
        assert_eq!(r.memory.get(out, 3), Value::Float(0.0)); // squashed
    }

    #[test]
    fn pointer_walk_reads_right_elements() {
        let mut b = LoopBuilder::new("copy", 3);
        let a = b.array("a", 3);
        let c = b.array("c", 3);
        let pa = b.ptr("pa", a, 0);
        let pc = b.ptr("pc", c, 0);
        let v = b.load("v", pa, Some(MemRef::new(a, 0, 1)));
        b.store(pc, v, Some(MemRef::new(c, 0, 1)));
        b.addr_add(pa, pa, 1);
        b.addr_add(pc, pc, 1);
        let body = b.finish().unwrap();
        let mut img = MemoryImage::for_body(&body);
        for i in 0..3 {
            img.set(ArrayId(0), i, Value::Int(10 + i as i64));
        }
        let r = run_sequential(&body, img).unwrap();
        for i in 0..3 {
            assert_eq!(r.memory.get(ArrayId(1), i), Value::Int(10 + i as i64));
        }
    }

    #[test]
    fn unwritten_read_is_an_error() {
        let mut b = LoopBuilder::new("bad", 2);
        // A register that is defined later in the body (distance 1 use)
        // with no live-in: iteration 0 reads nothing.
        let x = b.fresh("x");
        let _y = b.copy("y", x);
        b.rebind(x, Opcode::Copy, vec![Operand::ImmInt(1)]);
        let body = b.finish().unwrap();
        let err = run_sequential(&body, MemoryImage::for_body(&body)).unwrap_err();
        assert!(matches!(err, SimError::UnwrittenRead { .. }));
    }

    #[test]
    fn out_of_bounds_load_is_an_error() {
        let mut b = LoopBuilder::new("oob", 4);
        let a = b.array("a", 2); // too small for 4 iterations
        let pa = b.ptr("pa", a, 0);
        let _v = b.load("v", pa, Some(MemRef::new(a, 0, 1)));
        b.addr_add(pa, pa, 1);
        let body = b.finish().unwrap();
        let err = run_sequential(&body, MemoryImage::for_body(&body)).unwrap_err();
        assert!(matches!(err, SimError::BadAddress { .. }));
    }
}
