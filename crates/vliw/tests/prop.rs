//! The strongest property in the repository: for *random* executable
//! loops, all four execution modes (sequential reference, overlapped
//! modulo schedule, MVE code, rotating code) compute identical memory.
//! On the in-repo [`ims_testkit::prop`] harness.

use ims_codegen::{generate_mve, generate_rotating, lifetimes};
use ims_core::{modulo_schedule, SchedConfig};
use ims_deps::{back_substitute, build_problem, unroll, BuildOptions};
use ims_loopgen::{generate_loop, SynthConfig};
use ims_machine::{cydra, cydra_simple};
use ims_testkit::{check, prop_assert, Gen, PropConfig, Xoshiro256};
use ims_vliw::{
    compare_memory, compare_results, run_mve, run_overlapped, run_rotating, run_sequential,
    MemoryImage,
};

/// A generator seed plus a synthetic-loop shape.
fn gen_synth(g: &mut Gen) -> (u64, SynthConfig) {
    let seed = g.u64();
    let cfg = SynthConfig {
        ops_target: g.usize_in(4, 40),
        recurrences: g.vec_with(2, |g| g.usize_in(2, 5)),
        with_branch: g.bool(),
    };
    (seed, cfg)
}

#[test]
fn four_execution_modes_agree() {
    check(
        "four_execution_modes_agree",
        &PropConfig::with_cases(48),
        &[],
        gen_synth,
        |(seed, cfg)| {
            for machine in [cydra(), cydra_simple()] {
                let raw = generate_loop(&mut Xoshiro256::seed_from_u64(*seed), cfg);
                let body = back_substitute(&raw, &machine);
                let problem = build_problem(&body, &machine, &BuildOptions::default());
                let out = modulo_schedule(&problem, &SchedConfig::with_budget_ratio(6.0))
                    .expect("schedules");

                let image = MemoryImage::for_body(&body);
                let seq = run_sequential(&body, image.clone()).expect("reference runs");
                let pipe = run_overlapped(&body, &problem, &out.schedule, image.clone())
                    .expect("overlapped runs");
                prop_assert!(compare_results(&seq, &pipe).is_none());

                let lt = lifetimes(&body, &problem, &out.schedule);
                let mve = generate_mve(&body, &problem, &out.schedule, &lt);
                let mve_run = run_mve(&mve, &body, &machine, image.clone()).expect("MVE runs");
                prop_assert!(compare_memory(&seq.memory, &mve_run.memory).is_none());

                if let Ok(rot) = generate_rotating(&body, &problem, &out.schedule, &lt) {
                    let rot_run =
                        run_rotating(&rot, &body, &machine, image).expect("rotating runs");
                    prop_assert!(compare_memory(&seq.memory, &rot_run.memory).is_none());
                }
            }
            Ok(())
        },
    );
}

#[test]
fn unrolling_preserves_semantics() {
    check(
        "unrolling_preserves_semantics",
        &PropConfig::with_cases(48),
        &[],
        gen_synth,
        |(seed, cfg)| {
            let raw = generate_loop(&mut Xoshiro256::seed_from_u64(*seed), cfg);
            // Synthetic loops have trip count 16; factors dividing it keep
            // the iteration totals equal.
            for u in [2u32, 4] {
                let unrolled = unroll(&raw, u);
                let a = run_sequential(&raw, MemoryImage::for_body(&raw)).expect("runs");
                let b =
                    run_sequential(&unrolled, MemoryImage::for_body(&unrolled)).expect("runs");
                prop_assert!(compare_memory(&a.memory, &b.memory).is_none(), "factor {u}");
            }
            Ok(())
        },
    );
}
