//! Prints the golden-test loop's trace to stdout. To regenerate the
//! pinned file after an intentional schema or scheduler change:
//!
//! ```text
//! cargo run -p ims-trace --example regen_golden \
//!     > crates/trace/tests/golden/figure1_loop.jsonl
//! ```

use ims_core::{ProblemBuilder, SchedConfig, Scheduler};
use ims_graph::DepKind;
use ims_ir::{OpId, Opcode};
use ims_machine::figure1_machine;
use ims_trace::TraceWriter;

fn main() {
    // Keep in sync with crates/trace/tests/golden.rs.
    let machine = figure1_machine();
    let mut pb = ProblemBuilder::new(&machine);
    let mul = pb.add_op(Opcode::Mul, OpId(0));
    let add = pb.add_op(Opcode::Add, OpId(1));
    pb.add_dep(mul, add, 5, 0, DepKind::Flow, false);
    pb.add_dep(add, mul, 4, 2, DepKind::Flow, false);
    let problem = pb.finish();

    let mut tracer = TraceWriter::in_memory();
    Scheduler::new(&problem)
        .config(SchedConfig::new().budget_ratio(8.0))
        .observer(&mut tracer)
        .run()
        .expect("the fixed loop schedules at II 6");
    print!("{}", tracer.into_string());
}
