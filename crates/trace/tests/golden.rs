//! Golden-trace test: the JSON-lines trace of a small fixed loop is
//! byte-compared against a pinned file, so any change to the event
//! schema, the emission order, or the scheduler's decisions on this loop
//! is a deliberate, review-visible diff of `golden/figure1_loop.jsonl`.

use ims_core::{ProblemBuilder, SchedConfig, Scheduler};
use ims_graph::DepKind;
use ims_ir::{OpId, Opcode};
use ims_machine::figure1_machine;
use ims_trace::{parse_trace, replay, TraceSummary, TraceWriter};

const GOLDEN: &str = include_str!("golden/figure1_loop.jsonl");

/// The §2 example of a structurally unachievable MII: on the literal
/// Figure 1 machine, a mul feeding an add around a distance-2 recurrence
/// has MII 5, but the shared source/result buses force II 6 — so the
/// trace contains a failed attempt (with a budget_exhausted event and
/// forced placements) before the successful one.
fn trace_the_fixed_loop() -> String {
    let machine = figure1_machine();
    let mut pb = ProblemBuilder::new(&machine);
    let mul = pb.add_op(Opcode::Mul, OpId(0));
    let add = pb.add_op(Opcode::Add, OpId(1));
    pb.add_dep(mul, add, 5, 0, DepKind::Flow, false);
    pb.add_dep(add, mul, 4, 2, DepKind::Flow, false);
    let problem = pb.finish();

    let mut tracer = TraceWriter::in_memory();
    let out = Scheduler::new(&problem)
        .config(SchedConfig::new().budget_ratio(8.0))
        .observer(&mut tracer)
        .run()
        .expect("the fixed loop schedules at II 6");
    assert_eq!(out.schedule.ii, 6);
    tracer.into_string()
}

#[test]
fn trace_bytes_match_the_pinned_golden_file() {
    let trace = trace_the_fixed_loop();
    assert_eq!(
        trace, GOLDEN,
        "trace schema or scheduler behaviour changed; if intentional, \
         regenerate crates/trace/tests/golden/figure1_loop.jsonl"
    );
}

#[test]
fn golden_trace_parses_and_summarizes() {
    let events = parse_trace(GOLDEN).expect("every golden line parses");
    let summary = TraceSummary::from_events(&events);
    assert_eq!(summary.final_ii(), Some(6));
    assert!(
        summary.attempts.iter().any(|a| !a.ok),
        "the MII-5 attempt fails"
    );
    assert!(summary.wasted_steps() > 0);
    // Replaying the golden trace reconstructs a complete schedule.
    let times = replay(&events).final_times().expect("all nodes placed");
    assert!(!times.is_empty());
}
