//! Schedule reconstruction from a trace.
//!
//! `op_scheduled` / `op_evicted` events carry enough information to
//! rebuild the scheduler's placement state move by move: set the node's
//! time (and alternative) on a placement, clear it on an eviction, and
//! reset everything when a new candidate-II attempt starts. After the
//! last event of a successful run, the reconstructed state *is* the
//! final schedule — the workspace's property tests pin this equivalence
//! against `Schedule.time`.

use crate::event::SchedEvent;

/// Placement state reconstructed by [`replay`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplayedSchedule {
    /// Issue time per node index; `None` for nodes unscheduled at the end
    /// of the trace (all `Some` after a successful run).
    pub time: Vec<Option<i64>>,
    /// Chosen alternative per node index (0 unless a placement said
    /// otherwise).
    pub alternative: Vec<usize>,
}

impl ReplayedSchedule {
    fn ensure(&mut self, node: u32) {
        let need = node as usize + 1;
        if self.time.len() < need {
            self.time.resize(need, None);
            self.alternative.resize(need, 0);
        }
    }

    /// The reconstructed times, unwrapped; `None` if any node is still
    /// unscheduled (the trace ended in a failed attempt).
    pub fn final_times(&self) -> Option<Vec<i64>> {
        self.time.iter().copied().collect()
    }
}

/// Replays a trace's placement events into the final schedule state.
pub fn replay(events: &[SchedEvent]) -> ReplayedSchedule {
    let mut state = ReplayedSchedule::default();
    for ev in events {
        match *ev {
            SchedEvent::AttemptStart { .. } => {
                // Each candidate-II attempt starts from scratch.
                state.time.fill(None);
                state.alternative.fill(0);
            }
            SchedEvent::OpScheduled {
                node, time, alt, ..
            } => {
                state.ensure(node);
                state.time[node as usize] = Some(time);
                state.alternative[node as usize] = alt;
            }
            SchedEvent::OpEvicted { node, .. } => {
                state.ensure(node);
                state.time[node as usize] = None;
            }
            SchedEvent::SlotSearch { .. }
            | SchedEvent::BudgetExhausted { .. }
            | SchedEvent::AttemptDone { .. } => {}
        }
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use ims_core::BackendKind;

    #[test]
    fn replay_applies_placements_and_evictions_in_order() {
        let events = [
            SchedEvent::AttemptStart {
                ii: 2,
                budget: 4,
                backend: BackendKind::Ims,
            },
            SchedEvent::OpScheduled {
                node: 0,
                time: 0,
                alt: 0,
                forced: false,
            },
            SchedEvent::OpScheduled {
                node: 1,
                time: 1,
                alt: 1,
                forced: false,
            },
            SchedEvent::OpEvicted {
                node: 1,
                evictor: 2,
            },
            SchedEvent::OpScheduled {
                node: 2,
                time: 1,
                alt: 0,
                forced: true,
            },
            SchedEvent::OpScheduled {
                node: 1,
                time: 3,
                alt: 0,
                forced: false,
            },
        ];
        let s = replay(&events);
        assert_eq!(s.final_times(), Some(vec![0, 3, 1]));
        assert_eq!(s.alternative, vec![0, 0, 0]);
    }

    #[test]
    fn attempt_start_resets_state() {
        let events = [
            SchedEvent::AttemptStart {
                ii: 2,
                budget: 1,
                backend: BackendKind::Ims,
            },
            SchedEvent::OpScheduled {
                node: 0,
                time: 5,
                alt: 0,
                forced: false,
            },
            SchedEvent::AttemptDone { ii: 2, ok: false },
            SchedEvent::AttemptStart {
                ii: 3,
                budget: 1,
                backend: BackendKind::Ims,
            },
        ];
        let s = replay(&events);
        assert_eq!(s.time, vec![None]);
        assert_eq!(s.final_times(), None);
    }
}
