//! An observer that aggregates scheduler events into `ims-stats`
//! histograms.

use std::collections::BTreeMap;

use ims_core::SchedObserver;
use ims_graph::NodeId;
use ims_stats::Histogram;

/// Aggregates a run's events into the distributions §4 reasons about:
/// how often each operation is displaced, how much budget each candidate
/// II consumes, and how long the slot searches are.
///
/// One `MetricsObserver` can aggregate any number of runs — attach the
/// same instance to several [`Scheduler`](ims_core::Scheduler) runs, or
/// [`merge`](MetricsObserver::merge) per-loop instances collected across
/// a corpus.
#[derive(Debug, Clone, Default)]
pub struct MetricsObserver {
    /// Eviction count per node index.
    evict_counts: BTreeMap<u32, u64>,
    /// Real-operation scheduling steps spent per candidate II, summed
    /// over attempts at that II.
    spent_by_ii: BTreeMap<i64, u64>,
    /// Distribution of `FindTimeSlot` iteration counts, one observation
    /// per slot search.
    slot_iters: Histogram,
    /// Candidate-II attempts seen (`attempt_start` events).
    attempts: u64,
    /// Failed attempts (`budget_exhausted` events).
    exhausted: u64,
    /// The candidate II currently being attempted.
    current_ii: Option<i64>,
}

impl MetricsObserver {
    /// An empty aggregate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total number of evictions observed.
    pub fn total_evictions(&self) -> u64 {
        self.evict_counts.values().sum()
    }

    /// Number of candidate-II attempts observed.
    pub fn attempts(&self) -> u64 {
        self.attempts
    }

    /// Number of attempts that ran out of budget.
    pub fn exhausted_attempts(&self) -> u64 {
        self.exhausted
    }

    /// The distribution of per-node eviction counts, over nodes that
    /// were evicted at least once.
    pub fn evictions_histogram(&self) -> Histogram {
        self.evict_counts
            .values()
            .map(|&c| i64::try_from(c).unwrap_or(i64::MAX))
            .collect()
    }

    /// The most-evicted nodes, as `(node, evictions)` sorted by
    /// descending count (ties to the smaller node index), truncated to
    /// `limit` entries.
    pub fn top_evicted(&self, limit: usize) -> Vec<(u32, u64)> {
        let mut v: Vec<(u32, u64)> = self.evict_counts.iter().map(|(&n, &c)| (n, c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(limit);
        v
    }

    /// Real-operation scheduling steps spent per candidate II, in
    /// ascending II order.
    pub fn spent_by_ii(&self) -> Vec<(i64, u64)> {
        self.spent_by_ii.iter().map(|(&ii, &s)| (ii, s)).collect()
    }

    /// The distribution of budget spent per candidate II (one
    /// observation per II, value = steps spent at that II).
    pub fn budget_histogram(&self) -> Histogram {
        self.spent_by_ii
            .values()
            .map(|&s| i64::try_from(s).unwrap_or(i64::MAX))
            .collect()
    }

    /// The distribution of `FindTimeSlot` iteration counts.
    pub fn slot_iters_histogram(&self) -> &Histogram {
        &self.slot_iters
    }

    /// Folds another aggregate into this one (per-node counts and per-II
    /// budgets add; histograms merge).
    pub fn merge(&mut self, other: &MetricsObserver) {
        for (&n, &c) in &other.evict_counts {
            *self.evict_counts.entry(n).or_insert(0) += c;
        }
        for (&ii, &s) in &other.spent_by_ii {
            *self.spent_by_ii.entry(ii).or_insert(0) += s;
        }
        self.slot_iters.merge(&other.slot_iters);
        self.attempts += other.attempts;
        self.exhausted += other.exhausted;
    }
}

impl SchedObserver for MetricsObserver {
    fn attempt_start(&mut self, ii: i64, _budget: i64) {
        self.attempts += 1;
        self.current_ii = Some(ii);
        self.spent_by_ii.entry(ii).or_insert(0);
    }
    fn op_evicted(&mut self, node: NodeId, _evictor: NodeId) {
        *self.evict_counts.entry(node.0).or_insert(0) += 1;
    }
    fn slot_search(&mut self, _node: NodeId, _estart: i64, iters: u32) {
        // One slot search per real-operation scheduling step: the search
        // count doubles as the attempt's budget consumption.
        self.slot_iters.add(iters as i64);
        if let Some(ii) = self.current_ii {
            *self.spent_by_ii.entry(ii).or_insert(0) += 1;
        }
    }
    fn budget_exhausted(&mut self, _ii: i64, _spent: u64) {
        self.exhausted += 1;
    }
    fn attempt_done(&mut self, _ii: i64, _ok: bool) {
        self.current_ii = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregation_tracks_attempts_evictions_and_budget() {
        let mut m = MetricsObserver::new();
        m.attempt_start(3, 8);
        m.slot_search(NodeId(1), 0, 3);
        m.slot_search(NodeId(2), 1, 1);
        m.op_evicted(NodeId(2), NodeId(1));
        m.op_evicted(NodeId(2), NodeId(1));
        m.budget_exhausted(3, 2);
        m.attempt_done(3, false);
        m.attempt_start(4, 8);
        m.slot_search(NodeId(1), 0, 1);
        m.attempt_done(4, true);

        assert_eq!(m.attempts(), 2);
        assert_eq!(m.exhausted_attempts(), 1);
        assert_eq!(m.total_evictions(), 2);
        assert_eq!(m.spent_by_ii(), vec![(3, 2), (4, 1)]);
        assert_eq!(m.top_evicted(4), vec![(2, 2)]);
        assert_eq!(m.evictions_histogram().count_of(2), 1);
        assert_eq!(m.slot_iters_histogram().total(), 3);
    }

    #[test]
    fn merge_is_elementwise() {
        let mut a = MetricsObserver::new();
        a.attempt_start(2, 4);
        a.slot_search(NodeId(1), 0, 2);
        a.op_evicted(NodeId(1), NodeId(2));
        a.attempt_done(2, true);
        let mut b = MetricsObserver::new();
        b.attempt_start(2, 4);
        b.slot_search(NodeId(1), 0, 5);
        b.op_evicted(NodeId(1), NodeId(2));
        b.attempt_done(2, true);

        let mut all = MetricsObserver::new();
        all.merge(&a);
        all.merge(&b);
        assert_eq!(all.attempts(), 2);
        assert_eq!(all.total_evictions(), 2);
        assert_eq!(all.spent_by_ii(), vec![(2, 2)]);
        assert_eq!(all.slot_iters_histogram().total(), 2);
        assert_eq!(all.top_evicted(1), vec![(1, 2)]);
    }
}
