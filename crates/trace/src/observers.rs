//! Concrete observers: an in-memory [`Recorder`] and a JSON-lines
//! [`TraceWriter`].

use std::io::Write;

use ims_core::{BackendKind, SchedObserver};
use ims_graph::NodeId;

use crate::event::SchedEvent;

/// An observer that buffers every event in memory, for replay and
/// in-process analysis.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    /// Every event observed, in emission order.
    pub events: Vec<SchedEvent>,
    /// The backend that announced itself via the `backend` hook
    /// ([`BackendKind::Ims`] until one does); stamped onto every
    /// subsequent `AttemptStart`.
    kind: BackendKind,
}

impl Recorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SchedObserver for Recorder {
    fn backend(&mut self, kind: BackendKind) {
        self.kind = kind;
    }
    fn attempt_start(&mut self, ii: i64, budget: i64) {
        self.events.push(SchedEvent::AttemptStart {
            ii,
            budget,
            backend: self.kind,
        });
    }
    fn op_scheduled(&mut self, node: NodeId, time: i64, alt: usize, forced: bool) {
        self.events.push(SchedEvent::OpScheduled {
            node: node.0,
            time,
            alt,
            forced,
        });
    }
    fn op_evicted(&mut self, node: NodeId, evictor: NodeId) {
        self.events.push(SchedEvent::OpEvicted {
            node: node.0,
            evictor: evictor.0,
        });
    }
    fn slot_search(&mut self, node: NodeId, estart: i64, iters: u32) {
        self.events.push(SchedEvent::SlotSearch {
            node: node.0,
            estart,
            iters,
        });
    }
    fn budget_exhausted(&mut self, ii: i64, spent: u64) {
        self.events.push(SchedEvent::BudgetExhausted { ii, spent });
    }
    fn attempt_done(&mut self, ii: i64, ok: bool) {
        self.events.push(SchedEvent::AttemptDone { ii, ok });
    }
}

/// An observer that renders every event as one JSON line into a
/// [`Write`] sink (a `Vec<u8>` buffer, a file, a socket...).
///
/// The encoding contains nothing non-deterministic — no timestamps, no
/// thread identity — so for a given problem and configuration the trace
/// bytes are identical on every run and at every `--threads` value of
/// the corpus drivers.
///
/// Write errors are not surfaced mid-run (the scheduler's hot loop has
/// no error channel); the first error stops further writing and is
/// returned by [`finish`](TraceWriter::finish).
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    sink: W,
    error: Option<std::io::Error>,
    kind: BackendKind,
}

impl<W: Write> TraceWriter<W> {
    /// Wraps a sink.
    pub fn new(sink: W) -> Self {
        TraceWriter {
            sink,
            error: None,
            kind: BackendKind::default(),
        }
    }

    /// Appends one event line.
    pub fn write_event(&mut self, event: &SchedEvent) {
        if self.error.is_some() {
            return;
        }
        let mut line = event.to_json_line();
        line.push('\n');
        if let Err(e) = self.sink.write_all(line.as_bytes()) {
            self.error = Some(e);
        }
    }

    /// Flushes and returns the sink, or the first write error.
    pub fn finish(mut self) -> std::io::Result<W> {
        match self.error.take() {
            Some(e) => Err(e),
            None => {
                self.sink.flush()?;
                Ok(self.sink)
            }
        }
    }
}

impl TraceWriter<Vec<u8>> {
    /// A writer into a fresh in-memory buffer — the deterministic
    /// per-loop sink the corpus drivers collect before writing files.
    pub fn in_memory() -> Self {
        TraceWriter::new(Vec::new())
    }

    /// The buffered trace as UTF-8 (infallible: the writer only ever
    /// emits ASCII JSON).
    pub fn into_string(self) -> String {
        let bytes = self.finish().expect("in-memory writes cannot fail");
        String::from_utf8(bytes).expect("trace lines are ASCII")
    }
}

impl<W: Write> SchedObserver for TraceWriter<W> {
    fn backend(&mut self, kind: BackendKind) {
        self.kind = kind;
    }
    fn attempt_start(&mut self, ii: i64, budget: i64) {
        self.write_event(&SchedEvent::AttemptStart {
            ii,
            budget,
            backend: self.kind,
        });
    }
    fn op_scheduled(&mut self, node: NodeId, time: i64, alt: usize, forced: bool) {
        self.write_event(&SchedEvent::OpScheduled {
            node: node.0,
            time,
            alt,
            forced,
        });
    }
    fn op_evicted(&mut self, node: NodeId, evictor: NodeId) {
        self.write_event(&SchedEvent::OpEvicted {
            node: node.0,
            evictor: evictor.0,
        });
    }
    fn slot_search(&mut self, node: NodeId, estart: i64, iters: u32) {
        self.write_event(&SchedEvent::SlotSearch {
            node: node.0,
            estart,
            iters,
        });
    }
    fn budget_exhausted(&mut self, ii: i64, spent: u64) {
        self.write_event(&SchedEvent::BudgetExhausted { ii, spent });
    }
    fn attempt_done(&mut self, ii: i64, ok: bool) {
        self.write_event(&SchedEvent::AttemptDone { ii, ok });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::parse_trace;

    fn fire_all<O: SchedObserver>(obs: &mut O) {
        obs.backend(BackendKind::Exact);
        obs.attempt_start(2, 10);
        obs.slot_search(NodeId(1), 0, 2);
        obs.op_evicted(NodeId(3), NodeId(1));
        obs.op_scheduled(NodeId(1), 0, 0, true);
        obs.budget_exhausted(2, 10);
        obs.attempt_done(2, false);
    }

    #[test]
    fn recorder_and_writer_agree() {
        let mut rec = Recorder::new();
        let mut wr = TraceWriter::in_memory();
        fire_all(&mut rec);
        fire_all(&mut wr);
        let text = wr.into_string();
        assert_eq!(parse_trace(&text).unwrap(), rec.events);
        assert_eq!(text.lines().count(), 6);
        assert_eq!(
            rec.events[0],
            SchedEvent::AttemptStart {
                ii: 2,
                budget: 10,
                backend: BackendKind::Exact,
            },
            "the backend hook stamps subsequent attempts"
        );
    }

    #[test]
    fn write_errors_surface_in_finish() {
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("sink broke"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut wr = TraceWriter::new(Broken);
        wr.attempt_start(2, 10);
        wr.attempt_done(2, true); // silently dropped after the error
        assert!(wr.finish().is_err());
    }
}
