//! Per-loop convergence summaries derived from a trace.

use ims_core::BackendKind;

use crate::event::SchedEvent;

/// One candidate-II attempt as reconstructed from a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttemptSummary {
    /// The candidate initiation interval.
    pub ii: i64,
    /// The step budget the attempt started with.
    pub budget: i64,
    /// Real-operation scheduling steps spent (slot searches performed).
    pub steps: u64,
    /// Operations displaced during this attempt.
    pub evictions: u64,
    /// `FindTimeSlot` slots examined during this attempt.
    pub slot_iters: u64,
    /// Whether the attempt produced a schedule.
    pub ok: bool,
}

/// Everything a convergence report needs about one scheduled loop.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// The backend that produced the trace (from the `AttemptStart`
    /// events; [`BackendKind::Ims`] for traces predating the field).
    pub backend: BackendKind,
    /// Every candidate-II attempt, in order.
    pub attempts: Vec<AttemptSummary>,
    /// Total operations displaced across all attempts.
    pub evictions: u64,
    /// Eviction count per node, descending (ties to the smaller index).
    pub evicted_by_node: Vec<(u32, u64)>,
    /// Total `FindTimeSlot` slots examined across all attempts.
    pub slots_examined: u64,
    /// Whether the trace ended inside an attempt (an `attempt_start`
    /// without its `attempt_done`) — the signature of a truncated trace.
    /// The partial attempt's counts are still summarized; it is simply
    /// not a *failed* attempt, so [`TraceSummary::wasted_steps`] excludes
    /// it.
    pub mid_attempt: bool,
}

impl TraceSummary {
    /// Builds the summary by scanning a trace once.
    pub fn from_events(events: &[SchedEvent]) -> TraceSummary {
        let mut s = TraceSummary::default();
        let mut evict_counts: std::collections::BTreeMap<u32, u64> = Default::default();
        for ev in events {
            match *ev {
                SchedEvent::AttemptStart { ii, budget, backend } => {
                    s.backend = backend;
                    s.mid_attempt = true;
                    s.attempts.push(AttemptSummary {
                        ii,
                        budget,
                        steps: 0,
                        evictions: 0,
                        slot_iters: 0,
                        ok: false,
                    });
                }
                SchedEvent::SlotSearch { iters, .. } => {
                    s.slots_examined += iters as u64;
                    if let Some(a) = s.attempts.last_mut() {
                        a.steps += 1;
                        a.slot_iters += iters as u64;
                    }
                }
                SchedEvent::OpEvicted { node, .. } => {
                    s.evictions += 1;
                    *evict_counts.entry(node).or_insert(0) += 1;
                    if let Some(a) = s.attempts.last_mut() {
                        a.evictions += 1;
                    }
                }
                SchedEvent::AttemptDone { ii, ok } => {
                    s.mid_attempt = false;
                    if let Some(a) = s.attempts.last_mut() {
                        debug_assert_eq!(a.ii, ii);
                        a.ok = ok;
                    }
                }
                SchedEvent::OpScheduled { .. } | SchedEvent::BudgetExhausted { .. } => {}
            }
        }
        s.evicted_by_node = evict_counts.into_iter().collect();
        s.evicted_by_node
            .sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        s
    }

    /// The II the run converged to, if the last attempt succeeded.
    pub fn final_ii(&self) -> Option<i64> {
        self.attempts.last().filter(|a| a.ok).map(|a| a.ii)
    }

    /// Steps spent on attempts that did **not** produce the final
    /// schedule — the budget "wasted" before convergence. An attempt a
    /// truncated trace ended inside is *unresolved*, not failed, so it is
    /// excluded.
    pub fn wasted_steps(&self) -> u64 {
        let resolved = self.attempts.len() - usize::from(self.mid_attempt);
        self.attempts[..resolved]
            .iter()
            .filter(|a| !a.ok)
            .map(|a| a.steps)
            .sum()
    }

    /// Total steps across all attempts.
    pub fn total_steps(&self) -> u64 {
        self.attempts.iter().map(|a| a.steps).sum()
    }

    /// A compact one-loop convergence line:
    /// `IIs tried, final II, steps (wasted), evictions, top-evicted ops`.
    pub fn render_line(&self, label: &str) -> String {
        let last = self.attempts.len().wrapping_sub(1);
        let iis: Vec<String> = self
            .attempts
            .iter()
            .enumerate()
            .map(|(i, a)| {
                if a.ok {
                    format!("{}✓", a.ii)
                } else if self.mid_attempt && i == last {
                    // The trace ended inside this attempt: outcome unknown.
                    format!("{}…", a.ii)
                } else {
                    format!("{}✗", a.ii)
                }
            })
            .collect();
        let top: Vec<String> = self
            .evicted_by_node
            .iter()
            .take(3)
            .map(|(n, c)| format!("n{n}×{c}"))
            .collect();
        format!(
            "{label}: [{}] IIs [{}] steps {} (wasted {}) evictions {}{}{}",
            self.backend,
            iis.join(" "),
            self.total_steps(),
            self.wasted_steps(),
            self.evictions,
            if top.is_empty() {
                String::new()
            } else {
                format!(" top [{}]", top.join(" "))
            },
            if self.mid_attempt { " (truncated)" } else { "" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<SchedEvent> {
        vec![
            SchedEvent::AttemptStart {
                ii: 4,
                budget: 4,
                backend: BackendKind::Ims,
            },
            SchedEvent::SlotSearch {
                node: 1,
                estart: 0,
                iters: 4,
            },
            SchedEvent::OpScheduled {
                node: 1,
                time: 0,
                alt: 0,
                forced: true,
            },
            SchedEvent::OpEvicted {
                node: 2,
                evictor: 1,
            },
            SchedEvent::BudgetExhausted { ii: 4, spent: 1 },
            SchedEvent::AttemptDone { ii: 4, ok: false },
            SchedEvent::AttemptStart {
                ii: 5,
                budget: 4,
                backend: BackendKind::Ims,
            },
            SchedEvent::SlotSearch {
                node: 1,
                estart: 0,
                iters: 1,
            },
            SchedEvent::SlotSearch {
                node: 2,
                estart: 0,
                iters: 2,
            },
            SchedEvent::AttemptDone { ii: 5, ok: true },
        ]
    }

    #[test]
    fn summary_reconstructs_attempts_and_evictions() {
        let s = TraceSummary::from_events(&sample());
        assert_eq!(s.attempts.len(), 2);
        assert_eq!(s.attempts[0].steps, 1);
        assert!(!s.attempts[0].ok);
        assert_eq!(s.attempts[1].steps, 2);
        assert!(s.attempts[1].ok);
        assert_eq!(s.final_ii(), Some(5));
        assert_eq!(s.wasted_steps(), 1);
        assert_eq!(s.total_steps(), 3);
        assert_eq!(s.evictions, 1);
        assert_eq!(s.evicted_by_node, vec![(2, 1)]);
        assert_eq!(s.slots_examined, 7);
        assert!(!s.mid_attempt);
        // Per-attempt accounting splits the totals exactly.
        assert_eq!(s.attempts[0].evictions, 1);
        assert_eq!(s.attempts[1].evictions, 0);
        assert_eq!(s.attempts[0].slot_iters, 4);
        assert_eq!(s.attempts[1].slot_iters, 3);
        assert_eq!(
            s.attempts.iter().map(|a| a.evictions).sum::<u64>(),
            s.evictions
        );
        assert_eq!(
            s.attempts.iter().map(|a| a.slot_iters).sum::<u64>(),
            s.slots_examined
        );
    }

    #[test]
    fn empty_trace_yields_an_empty_summary() {
        let s = TraceSummary::from_events(&[]);
        assert_eq!(s, TraceSummary::default());
        assert_eq!(s.final_ii(), None);
        assert_eq!(s.wasted_steps(), 0);
        assert_eq!(s.total_steps(), 0);
        assert!(!s.mid_attempt);
        // Rendering an empty summary must not panic either.
        let line = s.render_line("empty");
        assert!(line.contains("steps 0"), "{line}");
    }

    #[test]
    fn budget_exhausted_only_run_counts_every_attempt_as_wasted() {
        // Every attempt exhausts its budget and fails; no convergence.
        let events = vec![
            SchedEvent::AttemptStart {
                ii: 3,
                budget: 2,
                backend: BackendKind::Ims,
            },
            SchedEvent::SlotSearch {
                node: 1,
                estart: 0,
                iters: 3,
            },
            SchedEvent::SlotSearch {
                node: 2,
                estart: 1,
                iters: 2,
            },
            SchedEvent::BudgetExhausted { ii: 3, spent: 2 },
            SchedEvent::AttemptDone { ii: 3, ok: false },
            SchedEvent::AttemptStart {
                ii: 4,
                budget: 2,
                backend: BackendKind::Ims,
            },
            SchedEvent::SlotSearch {
                node: 1,
                estart: 0,
                iters: 1,
            },
            SchedEvent::BudgetExhausted { ii: 4, spent: 1 },
            SchedEvent::AttemptDone { ii: 4, ok: false },
        ];
        let s = TraceSummary::from_events(&events);
        assert_eq!(s.final_ii(), None);
        assert_eq!(s.total_steps(), 3);
        assert_eq!(s.wasted_steps(), 3, "all attempts failed, all wasted");
        assert!(!s.mid_attempt, "both attempts resolved");
        assert_eq!(s.attempts[0].slot_iters, 5);
        assert_eq!(s.attempts[1].slot_iters, 1);
    }

    #[test]
    fn truncated_trace_summarizes_the_open_attempt_without_calling_it_wasted() {
        // The trace ends mid-attempt: attempt 5's outcome is unknown.
        let mut events = sample();
        events.truncate(8); // drop attempt 5's final SlotSearch + AttemptDone
        events.push(SchedEvent::OpEvicted {
            node: 3,
            evictor: 1,
        });
        let s = TraceSummary::from_events(&events);
        assert!(s.mid_attempt);
        assert_eq!(s.final_ii(), None, "no bogus convergence claim");
        assert_eq!(s.attempts.len(), 2);
        assert_eq!(s.attempts[1].steps, 1, "partial attempt still counted");
        assert_eq!(s.attempts[1].evictions, 1);
        assert_eq!(s.wasted_steps(), 1, "only the resolved failed attempt");
        assert_eq!(s.evictions, 2);
        let line = s.render_line("cut");
        assert!(line.contains("5…"), "unresolved attempt marked: {line}");
        assert!(line.contains("(truncated)"), "{line}");
    }

    #[test]
    fn render_line_mentions_the_key_quantities() {
        let line = TraceSummary::from_events(&sample()).render_line("loop 7");
        assert!(line.contains("loop 7"), "{line}");
        assert!(line.contains("[ims]"), "{line}");
        assert!(line.contains("4✗ 5✓"), "{line}");
        assert!(line.contains("wasted 1"), "{line}");
        assert!(line.contains("n2×1"), "{line}");
    }

    #[test]
    fn failed_run_has_no_final_ii() {
        let s = TraceSummary::from_events(&[
            SchedEvent::AttemptStart {
                ii: 2,
                budget: 1,
                backend: BackendKind::Exact,
            },
            SchedEvent::AttemptDone { ii: 2, ok: false },
        ]);
        assert_eq!(s.final_ii(), None);
        assert_eq!(s.backend, BackendKind::Exact);
    }
}
