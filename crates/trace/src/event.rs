//! The trace event type and its JSON-lines encoding.
//!
//! One [`SchedEvent`] corresponds to one [`SchedObserver`] hook firing.
//! The wire format is one JSON object per line, with a fixed `"ev"`
//! discriminant and integer/boolean payload fields — no floats, no
//! timestamps, no thread identity — so a trace is byte-deterministic for
//! a given problem and configuration regardless of how many worker
//! threads scheduled the corpus around it.
//!
//! [`SchedObserver`]: ims_core::SchedObserver

use ims_core::BackendKind;
use ims_testkit::bench::{json_object, JsonValue};

/// One scheduler event, mirroring the hooks of
/// [`SchedObserver`](ims_core::SchedObserver). Node identities are raw
/// graph indices (`NodeId::index()`), which include the START/STOP
/// pseudo-operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedEvent {
    /// An attempt at candidate II began with the given step budget.
    AttemptStart {
        /// The candidate initiation interval.
        ii: i64,
        /// Operation-scheduling steps (iterative backend) or remaining
        /// branch-and-bound nodes (exact backend) available.
        budget: i64,
        /// Which backend is attempting. Serialized as a `"backend"`
        /// string field; absent in pre-backend traces, which parse as
        /// [`BackendKind::Ims`].
        backend: BackendKind,
    },
    /// An operation was placed.
    OpScheduled {
        /// Graph index of the operation.
        node: u32,
        /// Issue time assigned.
        time: i64,
        /// Reservation-table alternative chosen.
        alt: usize,
        /// Whether the placement was forced (§3.4 displacement).
        forced: bool,
    },
    /// An operation was displaced by another's placement.
    OpEvicted {
        /// Graph index of the displaced operation.
        node: u32,
        /// Graph index of the operation whose placement displaced it.
        evictor: u32,
    },
    /// `FindTimeSlot` examined candidate slots for an operation.
    SlotSearch {
        /// Graph index of the operation.
        node: u32,
        /// The Estart the search began at.
        estart: i64,
        /// Number of slots examined.
        iters: u32,
    },
    /// The attempt at `ii` ran out of budget.
    BudgetExhausted {
        /// The candidate initiation interval.
        ii: i64,
        /// Steps spent before giving up.
        spent: u64,
    },
    /// The attempt at `ii` finished.
    AttemptDone {
        /// The candidate initiation interval.
        ii: i64,
        /// Whether every operation was scheduled.
        ok: bool,
    },
}

impl SchedEvent {
    /// The `"ev"` discriminant this event serializes under.
    pub fn name(&self) -> &'static str {
        match self {
            SchedEvent::AttemptStart { .. } => "attempt_start",
            SchedEvent::OpScheduled { .. } => "op_scheduled",
            SchedEvent::OpEvicted { .. } => "op_evicted",
            SchedEvent::SlotSearch { .. } => "slot_search",
            SchedEvent::BudgetExhausted { .. } => "budget_exhausted",
            SchedEvent::AttemptDone { .. } => "attempt_done",
        }
    }

    /// Renders the event as one JSON object (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let ev = ("ev", JsonValue::Str(self.name().into()));
        match *self {
            SchedEvent::AttemptStart { ii, budget, backend } => json_object(&[
                ev,
                ("ii", JsonValue::I64(ii)),
                ("budget", JsonValue::I64(budget)),
                ("backend", JsonValue::Str(backend.name().into())),
            ]),
            SchedEvent::OpScheduled {
                node,
                time,
                alt,
                forced,
            } => json_object(&[
                ev,
                ("node", JsonValue::U64(node as u64)),
                ("time", JsonValue::I64(time)),
                ("alt", JsonValue::U64(alt as u64)),
                ("forced", JsonValue::Bool(forced)),
            ]),
            SchedEvent::OpEvicted { node, evictor } => json_object(&[
                ev,
                ("node", JsonValue::U64(node as u64)),
                ("evictor", JsonValue::U64(evictor as u64)),
            ]),
            SchedEvent::SlotSearch {
                node,
                estart,
                iters,
            } => json_object(&[
                ev,
                ("node", JsonValue::U64(node as u64)),
                ("estart", JsonValue::I64(estart)),
                ("iters", JsonValue::U64(iters as u64)),
            ]),
            SchedEvent::BudgetExhausted { ii, spent } => json_object(&[
                ev,
                ("ii", JsonValue::I64(ii)),
                ("spent", JsonValue::U64(spent)),
            ]),
            SchedEvent::AttemptDone { ii, ok } => {
                json_object(&[ev, ("ii", JsonValue::I64(ii)), ("ok", JsonValue::Bool(ok))])
            }
        }
    }

    /// Parses one JSON trace line back into an event. Returns `None` for
    /// anything that is not a well-formed event line (unknown `"ev"`,
    /// missing fields, non-numeric payloads).
    pub fn parse(line: &str) -> Option<SchedEvent> {
        let line = line.trim();
        let ev = str_field(line, "ev")?;
        Some(match ev {
            "attempt_start" => SchedEvent::AttemptStart {
                ii: i64_field(line, "ii")?,
                budget: i64_field(line, "budget")?,
                // Traces predating the backend field are iterative ones.
                backend: match str_field(line, "backend") {
                    Some(name) => BackendKind::from_name(name)?,
                    None => BackendKind::Ims,
                },
            },
            "op_scheduled" => SchedEvent::OpScheduled {
                node: i64_field(line, "node")?.try_into().ok()?,
                time: i64_field(line, "time")?,
                alt: i64_field(line, "alt")?.try_into().ok()?,
                forced: bool_field(line, "forced")?,
            },
            "op_evicted" => SchedEvent::OpEvicted {
                node: i64_field(line, "node")?.try_into().ok()?,
                evictor: i64_field(line, "evictor")?.try_into().ok()?,
            },
            "slot_search" => SchedEvent::SlotSearch {
                node: i64_field(line, "node")?.try_into().ok()?,
                estart: i64_field(line, "estart")?,
                iters: i64_field(line, "iters")?.try_into().ok()?,
            },
            "budget_exhausted" => SchedEvent::BudgetExhausted {
                ii: i64_field(line, "ii")?,
                spent: i64_field(line, "spent")?.try_into().ok()?,
            },
            "attempt_done" => SchedEvent::AttemptDone {
                ii: i64_field(line, "ii")?,
                ok: bool_field(line, "ok")?,
            },
            _ => return None,
        })
    }
}

/// Parses every line of a trace, skipping lines that are not events
/// (blank lines); returns `None` if any non-blank line fails to parse.
pub fn parse_trace(text: &str) -> Option<Vec<SchedEvent>> {
    let (events, complete) = parse_trace_prefix(text);
    complete.then_some(events)
}

/// Lenient trace parsing for truncated or damaged traces (a crashed or
/// killed run, a partially flushed file): parses the longest well-formed
/// prefix and stops at the first malformed non-blank line. The boolean is
/// `true` when the whole trace parsed (equivalent to [`parse_trace`]
/// succeeding), `false` when the returned events are a proper prefix.
///
/// A line truncated mid-object (the common tail of a killed writer) is
/// malformed, so the prefix never contains a half-written event.
pub fn parse_trace_prefix(text: &str) -> (Vec<SchedEvent>, bool) {
    let mut events = Vec::new();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match SchedEvent::parse(line) {
            Some(ev) => events.push(ev),
            None => return (events, false),
        }
    }
    (events, true)
}

/// The raw text of `key`'s value in a single-level JSON object line.
/// Sufficient for the trace schema: values are integers, booleans, or
/// strings without embedded commas/braces.
fn raw_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}'])?;
    Some(rest[..end].trim())
}

fn i64_field(line: &str, key: &str) -> Option<i64> {
    raw_field(line, key)?.parse().ok()
}

fn bool_field(line: &str, key: &str) -> Option<bool> {
    match raw_field(line, key)? {
        "true" => Some(true),
        "false" => Some(false),
        _ => None,
    }
}

fn str_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    raw_field(line, key)?
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_variants() -> Vec<SchedEvent> {
        vec![
            SchedEvent::AttemptStart {
                ii: 4,
                budget: 12,
                backend: BackendKind::Exact,
            },
            SchedEvent::OpScheduled {
                node: 3,
                time: -2,
                alt: 1,
                forced: true,
            },
            SchedEvent::OpEvicted {
                node: 5,
                evictor: 3,
            },
            SchedEvent::SlotSearch {
                node: 3,
                estart: 7,
                iters: 4,
            },
            SchedEvent::BudgetExhausted { ii: 4, spent: 12 },
            SchedEvent::AttemptDone { ii: 5, ok: true },
        ]
    }

    #[test]
    fn json_roundtrip_every_variant() {
        for ev in all_variants() {
            let line = ev.to_json_line();
            assert_eq!(SchedEvent::parse(&line), Some(ev), "{line}");
        }
    }

    #[test]
    fn lines_are_flat_json_objects() {
        for ev in all_variants() {
            let line = ev.to_json_line();
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(!line.contains('\n'));
            assert!(line.contains(&format!("\"ev\":\"{}\"", ev.name())));
        }
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert_eq!(SchedEvent::parse(""), None);
        assert_eq!(SchedEvent::parse("{}"), None);
        assert_eq!(SchedEvent::parse(r#"{"ev":"unknown","ii":1}"#), None);
        assert_eq!(SchedEvent::parse(r#"{"ev":"attempt_start","ii":1}"#), None);
        assert_eq!(
            SchedEvent::parse(r#"{"ev":"attempt_start","ii":1,"budget":2,"backend":"sa"}"#),
            None,
            "an unknown backend name is malformed, not defaulted"
        );
        assert_eq!(
            SchedEvent::parse(r#"{"ev":"attempt_done","ii":2,"ok":maybe}"#),
            None
        );
    }

    #[test]
    fn legacy_attempt_start_defaults_to_ims_backend() {
        let ev = SchedEvent::parse(r#"{"ev":"attempt_start","ii":5,"budget":16}"#).unwrap();
        assert_eq!(
            ev,
            SchedEvent::AttemptStart {
                ii: 5,
                budget: 16,
                backend: BackendKind::Ims,
            }
        );
    }

    #[test]
    fn parse_trace_collects_lines_and_skips_blanks() {
        let text = "{\"ev\":\"attempt_start\",\"ii\":2,\"budget\":4}\n\n\
                    {\"ev\":\"attempt_done\",\"ii\":2,\"ok\":true}\n";
        let events = parse_trace(text).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(parse_trace("not json\n"), None);
    }

    #[test]
    fn parse_trace_prefix_recovers_the_wellformed_prefix() {
        let good = "{\"ev\":\"attempt_start\",\"ii\":2,\"budget\":4}\n\
                    {\"ev\":\"attempt_done\",\"ii\":2,\"ok\":true}\n";
        let (events, complete) = parse_trace_prefix(good);
        assert_eq!(events.len(), 2);
        assert!(complete);

        // A writer killed mid-line leaves a truncated object; everything
        // before it survives, the tail is dropped.
        let truncated = format!("{good}{{\"ev\":\"attempt_start\",\"ii\":3,\"bud");
        let (events, complete) = parse_trace_prefix(&truncated);
        assert_eq!(events.len(), 2);
        assert!(!complete);
        assert_eq!(parse_trace(&truncated), None, "strict parsing still rejects");

        // Garbage from the first line: empty prefix, not a panic.
        let (events, complete) = parse_trace_prefix("not json\n");
        assert!(events.is_empty());
        assert!(!complete);
    }
}
