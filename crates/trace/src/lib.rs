#![deny(missing_docs)]

//! Event-level observability for the iterative modulo scheduler.
//!
//! `ims-core`'s scheduler reports every decision it makes — candidate-II
//! attempts, placements, displacements, slot searches, budget exhaustion
//! — to a monomorphized [`SchedObserver`](ims_core::SchedObserver). This
//! crate supplies the concrete observers and everything needed to work
//! with the traces they produce:
//!
//! * [`SchedEvent`] — the event type, with a deterministic JSON-lines
//!   encoding ([`SchedEvent::to_json_line`]) and parser
//!   ([`SchedEvent::parse`], [`parse_trace`]);
//! * [`TraceWriter`] — an observer that streams events as JSON lines
//!   into any [`Write`](std::io::Write) sink (byte-identical for a given
//!   problem regardless of corpus thread count);
//! * [`Recorder`] — an observer that buffers events in memory;
//! * [`MetricsObserver`] — an observer that aggregates events into
//!   `ims-stats` histograms (evictions per node, budget per candidate
//!   II, slot-search lengths), mergeable across a corpus;
//! * [`replay`] — reconstructs the final schedule from a trace's
//!   placement events (property-tested against `Schedule.time`);
//! * [`TraceSummary`] — the per-loop convergence summary behind the
//!   `trace_report` binary.
//!
//! # Example
//!
//! ```
//! use ims_core::{ProblemBuilder, Scheduler};
//! use ims_ir::{OpId, Opcode};
//! use ims_machine::minimal;
//! use ims_trace::{parse_trace, replay, TraceWriter};
//!
//! let machine = minimal();
//! let mut pb = ProblemBuilder::new(&machine);
//! let _ = pb.add_op(Opcode::Add, OpId(0));
//! let problem = pb.finish();
//!
//! let mut tracer = TraceWriter::in_memory();
//! let out = Scheduler::new(&problem).observer(&mut tracer).run().unwrap();
//!
//! let events = parse_trace(&tracer.into_string()).unwrap();
//! let times = replay(&events).final_times().unwrap();
//! assert_eq!(times, out.schedule.time);
//! ```

mod event;
mod metrics;
mod observers;
mod replay;
mod report;

pub use event::{parse_trace, parse_trace_prefix, SchedEvent};
pub use metrics::MetricsObserver;
pub use observers::{Recorder, TraceWriter};
pub use replay::{replay, ReplayedSchedule};
pub use report::{AttemptSummary, TraceSummary};
