//! Modulo variable expansion with kernel unrolling (Lam), plus the flat
//! prologue and coda for DO-loops.

use ims_core::{Problem, Schedule};
use ims_deps::{node_of, resolve_use};
use ims_ir::{LoopBody, OpId, Operand, VReg};
#[cfg(test)]
use ims_ir::LiveInValue;

use crate::code::{CodeOperand, CodeReg, Inst, MveCode, Seed, SlotOp};
use crate::lifetime::Lifetime;

/// The MVE register map: every defined register gets `k` names (cycled by
/// iteration index), every pure live-in gets one.
struct MveRegs {
    /// First name of each defined register's group.
    base: Vec<Option<usize>>,
    /// The single name of each pure live-in register.
    static_of: Vec<Option<usize>>,
    /// Names per defined register (the uniform unroll factor `K`).
    k: u32,
    /// Total names allocated.
    total: usize,
}

impl MveRegs {
    fn build(body: &LoopBody, k: u32) -> Self {
        let nv = body.num_vregs();
        let mut base = vec![None; nv];
        let mut static_of = vec![None; nv];
        let mut next = 0usize;
        for (_, op) in body.iter() {
            if let Some(d) = op.dest {
                if base[d.index()].is_none() {
                    base[d.index()] = Some(next);
                    next += k as usize;
                }
            }
        }
        for li in body.live_ins() {
            if base[li.reg.index()].is_none() && static_of[li.reg.index()].is_none() {
                static_of[li.reg.index()] = Some(next);
                next += 1;
            }
        }
        MveRegs {
            base,
            static_of,
            k,
            total: next,
        }
    }

    /// The name holding `reg`'s value from iteration `iter` (negative
    /// iterations wrap onto the seeded names).
    fn name(&self, reg: VReg, iter: i64) -> CodeReg {
        if let Some(b) = self.base[reg.index()] {
            CodeReg::Static(b + iter.rem_euclid(self.k as i64) as usize)
        } else {
            CodeReg::Static(
                self.static_of[reg.index()]
                    .expect("validated bodies only use defined or live-in registers"),
            )
        }
    }
}

/// Generates modulo-variable-expanded code for the body's trip count.
///
/// The kernel is the steady-state window `[(SC−1)·II, (SC−1+K)·II)` of the
/// flat schedule, which repeats exactly every `K·II` cycles because all
/// register names cycle with period `K`. Trip counts too short for a full
/// kernel repetition (`n < SC + K − 1`) are emitted entirely flat
/// (prologue only), which is what a compiler's short-trip-count fallback
/// does.
///
/// # Panics
///
/// Panics if `lifetimes` was computed for a different schedule (detected
/// via inconsistent unroll factors).
pub fn generate_mve(
    body: &LoopBody,
    problem: &Problem<'_>,
    schedule: &Schedule,
    lifetimes: &[Lifetime],
) -> MveCode {
    let _ = problem; // latencies are already folded into `lifetimes`
    let ii = schedule.ii;
    let n = body.trip_count() as i64;
    let max_t = body
        .iter()
        .map(|(id, _)| schedule.time_of(node_of(id)))
        .max()
        .unwrap_or(0);
    let stage_count = (max_t / ii + 1) as u32;
    // The unroll factor covers both value lifetimes and the deepest
    // loop-carried lag (pre-loop seeds of lag j live in name (-j mod K) and
    // must survive until their last read, about `maxlag` iterations in).
    let max_lag = body
        .iter()
        .flat_map(|(id, op)| {
            op.reg_uses()
                .filter_map(move |u| resolve_use(body, id, u).map(|(_, d)| d))
        })
        .max()
        .unwrap_or(0);
    let k = lifetimes
        .iter()
        .map(|l| l.names)
        .max()
        .unwrap_or(1)
        .max(max_lag + 1)
        .max(1);
    let regs = MveRegs::build(body, k);

    let flat_end = if body.num_ops() == 0 {
        0
    } else {
        (n - 1) * ii + max_t + 1
    };
    let prologue_end = (stage_count as i64 - 1) * ii;

    let emit = |c: i64| -> Inst {
        let mut ops = Vec::new();
        for (id, op) in body.iter() {
            let t = schedule.time_of(node_of(id));
            if (c - t) % ii != 0 {
                continue;
            }
            let i = (c - t) / ii;
            if i < 0 || i >= n {
                continue;
            }
            ops.push(rename(body, regs_ref(&regs), id, op, i, t, ii));
        }
        Inst { ops }
    };

    let (prologue, kernel, kernel_reps, coda);
    if body.num_ops() > 0 && n >= stage_count as i64 + k as i64 - 1 {
        prologue = (0..prologue_end).map(emit).collect();
        kernel = (prologue_end..prologue_end + k as i64 * ii)
            .map(emit)
            .collect();
        let steady_iters = n - stage_count as i64 + 1;
        let reps = (steady_iters / k as i64) as u64;
        kernel_reps = reps;
        let coda_start = prologue_end + reps as i64 * k as i64 * ii;
        coda = (coda_start..flat_end).map(emit).collect();
    } else {
        prologue = (0..flat_end).map(emit).collect();
        kernel = Vec::new();
        kernel_reps = 0;
        coda = Vec::new();
    }

    // Seeds. Defined live-ins preload all K names: the name holding the
    // pre-loop instance of lag j is name(reg, -j), seeded with the
    // register's lag-j live-in value (explicit per-lag bindings come from
    // recurrence back-substitution; other lags fall back to the lag-1
    // value). Pure live-ins preload their single name.
    let mut seeds = Vec::new();
    let mut seeded: Vec<bool> = vec![false; body.num_vregs()];
    for li in body.live_ins() {
        if seeded[li.reg.index()] {
            continue;
        }
        seeded[li.reg.index()] = true;
        if regs.base[li.reg.index()].is_some() {
            for j in 1..=k {
                if let Some(value) = body.live_in_value(li.reg, j) {
                    if let CodeReg::Static(name) = regs.name(li.reg, -(j as i64)) {
                        seeds.push(Seed {
                            reg: CodeReg::Static(name),
                            value,
                        });
                    }
                }
            }
        } else if let Some(s) = regs.static_of[li.reg.index()] {
            seeds.push(Seed {
                reg: CodeReg::Static(s),
                value: body.live_in_value(li.reg, 1).unwrap_or(li.value),
            });
        }
    }

    MveCode {
        ii,
        stage_count,
        unroll: k,
        prologue,
        kernel,
        kernel_reps,
        coda,
        num_static_regs: regs.total,
        seeds,
    }
}

// Helper to appease the closure borrow (the emit closure only needs a
// shared reference to the register map).
fn regs_ref(r: &MveRegs) -> &MveRegs {
    r
}

fn rename(
    body: &LoopBody,
    regs: &MveRegs,
    id: OpId,
    op: &ims_ir::Operation,
    iter: i64,
    issue: i64,
    ii: i64,
) -> SlotOp {
    let mut srcs = Vec::with_capacity(op.srcs.len());
    for s in &op.srcs {
        srcs.push(match s {
            Operand::ImmInt(v) => CodeOperand::ImmInt(*v),
            Operand::ImmFloat(v) => CodeOperand::ImmFloat(*v),
            Operand::Reg(u) => {
                let d = resolve_use(body, id, *u).map(|(_, d)| d).unwrap_or(0);
                CodeOperand::Reg(regs.name(u.reg, iter - d as i64))
            }
        });
    }
    let pred = op.pred.map(|u| {
        let d = resolve_use(body, id, u).map(|(_, d)| d).unwrap_or(0);
        regs.name(u.reg, iter - d as i64)
    });
    SlotOp {
        op: id,
        stage: (issue / ii) as u32,
        dest: op.dest.map(|d| regs.name(d, iter)),
        srcs,
        pred,
    }
}

/// Resolves a seed's live-in value kind for display/tests.
#[cfg(test)]
pub(crate) fn seed_is_array_base(s: &Seed) -> bool {
    matches!(s.value, LiveInValue::ArrayBase { .. })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifetime::lifetimes;
    use ims_core::{modulo_schedule, SchedConfig};
    use ims_deps::{build_problem, BuildOptions};
    use ims_ir::{LoopBuilder, MemRef, Value};
    use ims_machine::{cydra_simple, minimal};

    fn saxpy_ish(n: u32) -> ims_ir::LoopBody {
        let mut b = LoopBuilder::new("scale", n);
        let a = b.array("a", n as usize);
        let pa = b.ptr("pa", a, 0);
        let v = b.load("v", pa, Some(MemRef::new(a, 0, 1)));
        let w = b.mul("w", v, 3.0f64);
        b.store(pa, w, Some(MemRef::new(a, 0, 1)));
        b.addr_add(pa, pa, 1);
        b.finish().unwrap()
    }

    #[test]
    fn structure_accounts_for_every_instance() {
        let body = saxpy_ish(32);
        let m = cydra_simple();
        let p = build_problem(&body, &m, &BuildOptions::default());
        let out = modulo_schedule(&p, &SchedConfig::default()).unwrap();
        let lt = lifetimes(&body, &p, &out.schedule);
        let code = generate_mve(&body, &p, &out.schedule, &lt);

        // Count op instances across all sections: must equal n * num_ops.
        let count = |insts: &[Inst]| -> u64 { insts.iter().map(|i| i.ops.len() as u64).sum() };
        let total = count(&code.prologue)
            + code.kernel_reps * count(&code.kernel)
            + count(&code.coda);
        assert_eq!(total, 32 * body.num_ops() as u64);
    }

    #[test]
    fn kernel_has_k_times_ii_instructions() {
        let body = saxpy_ish(32);
        let m = cydra_simple();
        let p = build_problem(&body, &m, &BuildOptions::default());
        let out = modulo_schedule(&p, &SchedConfig::default()).unwrap();
        let lt = lifetimes(&body, &p, &out.schedule);
        let code = generate_mve(&body, &p, &out.schedule, &lt);
        assert_eq!(
            code.kernel.len() as i64,
            code.unroll as i64 * code.ii
        );
        // The load's 20-cycle latency at a small II forces unrolling.
        assert!(code.unroll > 1, "unroll = {}", code.unroll);
    }

    #[test]
    fn each_kernel_copy_contains_every_op() {
        let body = saxpy_ish(64);
        let m = cydra_simple();
        let p = build_problem(&body, &m, &BuildOptions::default());
        let out = modulo_schedule(&p, &SchedConfig::default()).unwrap();
        let lt = lifetimes(&body, &p, &out.schedule);
        let code = generate_mve(&body, &p, &out.schedule, &lt);
        let per_kernel: u64 = code.kernel.iter().map(|i| i.ops.len() as u64).sum();
        assert_eq!(per_kernel, code.unroll as u64 * body.num_ops() as u64);
    }

    #[test]
    fn short_trip_count_is_fully_flat() {
        let body = saxpy_ish(2);
        let m = cydra_simple();
        let p = build_problem(&body, &m, &BuildOptions::default());
        let out = modulo_schedule(&p, &SchedConfig::default()).unwrap();
        let lt = lifetimes(&body, &p, &out.schedule);
        let code = generate_mve(&body, &p, &out.schedule, &lt);
        assert_eq!(code.kernel_reps, 0);
        assert!(code.kernel.is_empty());
        let total: u64 = code.prologue.iter().map(|i| i.ops.len() as u64).sum();
        assert_eq!(total, 2 * body.num_ops() as u64);
    }

    #[test]
    fn renamed_registers_cycle_with_period_k() {
        let body = saxpy_ish(64);
        let m = cydra_simple();
        let p = build_problem(&body, &m, &BuildOptions::default());
        let out = modulo_schedule(&p, &SchedConfig::default()).unwrap();
        let lt = lifetimes(&body, &p, &out.schedule);
        let code = generate_mve(&body, &p, &out.schedule, &lt);
        // The same op in consecutive kernel copies uses different dest
        // names (when K > 1).
        if code.unroll > 1 {
            let ii = code.ii as usize;
            let first_copy: Vec<_> = code.kernel[..ii]
                .iter()
                .flat_map(|i| i.ops.iter())
                .filter(|o| o.dest.is_some())
                .collect();
            let second_copy: Vec<_> = code.kernel[ii..2 * ii]
                .iter()
                .flat_map(|i| i.ops.iter())
                .filter(|o| o.dest.is_some())
                .collect();
            let mut differs = false;
            for a in &first_copy {
                for b in &second_copy {
                    if a.op == b.op && a.dest != b.dest {
                        differs = true;
                    }
                }
            }
            assert!(differs, "expected register renaming across copies");
        }
    }

    #[test]
    fn seeds_cover_live_ins() {
        let body = saxpy_ish(32);
        let m = cydra_simple();
        let p = build_problem(&body, &m, &BuildOptions::default());
        let out = modulo_schedule(&p, &SchedConfig::default()).unwrap();
        let lt = lifetimes(&body, &p, &out.schedule);
        let code = generate_mve(&body, &p, &out.schedule, &lt);
        // The pointer register is a defined live-in: K seeded names, all
        // array bases.
        assert!(code.seeds.len() >= code.unroll as usize);
        assert!(code.seeds.iter().any(seed_is_array_base));
    }

    #[test]
    fn empty_body_produces_empty_code() {
        let mut b = LoopBuilder::new("empty", 4);
        let _x = b.live_in("x", Value::Int(0));
        let body = b.finish().unwrap();
        let m = minimal();
        let p = build_problem(&body, &m, &BuildOptions::default());
        let out = modulo_schedule(&p, &SchedConfig::default()).unwrap();
        let lt = lifetimes(&body, &p, &out.schedule);
        let code = generate_mve(&body, &p, &out.schedule, &lt);
        assert_eq!(code.total_cycles(), 0);
    }
}
