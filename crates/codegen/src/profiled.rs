//! [`ProfSink`] wrappers around the code-generation entry points.
//!
//! Code generation has no hot inner loop worth metering; what the profiler
//! wants is the *shape* of the emitted code — instruction counts, unroll
//! factors, stage counts — as deterministic counters. These wrappers run
//! the plain entry points and file those totals under the `codegen.*`
//! phase names; with a `NullSink` they are exactly the plain calls.

use ims_core::{Problem, Schedule};
use ims_ir::LoopBody;
use ims_prof::{phase, ProfSink};

use crate::code::MveCode;
use crate::lifetime::{lifetimes, Lifetime};
use crate::mve::generate_mve;

/// [`lifetimes`] + a [`phase::CODEGEN_LIFETIME_NAMES`] count of the static
/// names modulo variable expansion will need (the summed per-value name
/// counts).
pub fn lifetimes_profiled<P: ProfSink>(
    body: &LoopBody,
    problem: &Problem<'_>,
    schedule: &Schedule,
    prof: &mut P,
) -> Vec<Lifetime> {
    let out = lifetimes(body, problem, schedule);
    prof.count(
        phase::CODEGEN_LIFETIME_NAMES,
        out.iter().map(|l| l.names as u64).sum(),
    );
    out
}

/// [`generate_mve`] + `codegen.*` counters describing the emitted code:
/// instructions (prologue + unrolled kernel + coda), the unroll factor,
/// the stage count, and the number of preloaded seed registers.
pub fn generate_mve_profiled<P: ProfSink>(
    body: &LoopBody,
    problem: &Problem<'_>,
    schedule: &Schedule,
    lifetimes: &[Lifetime],
    prof: &mut P,
) -> MveCode {
    let code = generate_mve(body, problem, schedule, lifetimes);
    prof.count(
        phase::CODEGEN_INSTS,
        (code.prologue.len() + code.kernel.len() + code.coda.len()) as u64,
    );
    prof.count(phase::CODEGEN_UNROLL, code.unroll as u64);
    prof.count(phase::CODEGEN_STAGES, code.stage_count as u64);
    prof.count(phase::CODEGEN_SEEDS, code.seeds.len() as u64);
    code
}
