#![warn(missing_docs)]

//! Post-scheduling code generation for modulo-scheduled loops.
//!
//! §1 of the paper lists the steps that follow the actual modulo
//! scheduling; this crate implements them:
//!
//! * **Register lifetimes** ([`lifetimes`]): how long each value produced in
//!   the kernel must survive, measured against the II.
//! * **Modulo variable expansion** ([`generate_mve`], after Lam): when the
//!   hardware has no rotating register files, *"the kernel is unrolled to
//!   enable modulo variable expansion"* — values with lifetimes longer than
//!   the II get several register names, cycled across kernel copies, plus
//!   explicit **prologue** and **epilogue/coda** code sequences for DO-loops.
//! * **Rotating register allocation** ([`generate_rotating`], after Rau et
//!   al.): with rotating register files the kernel needs no unrolling at
//!   all; each value is addressed relative to a rotating register base that
//!   advances every II, and a *kernel-only* code schema (staging by
//!   iteration index) replaces explicit prologue/epilogue code.
//!
//! Both lowerings produce executable [`code`] that the `ims-vliw` simulator
//! runs and compares against the sequential semantics of the original loop.
//!
//! # Examples
//!
//! ```
//! use ims_codegen::{generate_mve, lifetimes};
//! use ims_core::{modulo_schedule, SchedConfig};
//! use ims_deps::{build_problem, BuildOptions};
//! use ims_ir::{LoopBuilder, MemRef, Value};
//! use ims_machine::cydra_simple;
//!
//! let mut b = LoopBuilder::new("scale", 32);
//! let a = b.array("a", 32);
//! let pa = b.ptr("pa", a, 0);
//! let v = b.load("v", pa, Some(MemRef::new(a, 0, 1)));
//! let w = b.mul("w", v, 3.0f64);
//! b.store(pa, w, Some(MemRef::new(a, 0, 1)));
//! b.addr_add(pa, pa, 1);
//! let body = b.finish().expect("valid body");
//!
//! let m = cydra_simple();
//! let problem = build_problem(&body, &m, &BuildOptions::default());
//! let out = modulo_schedule(&problem, &SchedConfig::default()).expect("schedulable");
//! let lt = lifetimes(&body, &problem, &out.schedule);
//! let code = generate_mve(&body, &problem, &out.schedule, &lt);
//! assert!(code.unroll >= 1);
//! ```

pub mod code;
mod lifetime;
mod mve;
mod profiled;
mod rotating;

pub use code::{CodeOperand, CodeReg, Inst, MveCode, RotatingCode, SlotOp};
pub use lifetime::{lifetimes, unroll_factor, Lifetime};
pub use mve::generate_mve;
pub use profiled::{generate_mve_profiled, lifetimes_profiled};
pub use rotating::{allocate_rotating, generate_rotating, RotatingAllocation, RotatingError};
