//! Executable pipelined-code representations.
//!
//! Both lowerings express code as VLIW instructions ([`Inst`]): the set of
//! operation instances issued on one cycle, with register operands already
//! renamed. Register names are either **static** (a conventional register)
//! or **rotating** (an offset into the rotating file; the physical register
//! is `(offset + pass) mod size`, where `pass` advances every II — the
//! rotating-register-base mechanism of the Cydra 5).

use ims_ir::{LiveInValue, OpId};

/// A renamed register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CodeReg {
    /// A conventional register, by index.
    Static(usize),
    /// An offset into the rotating register file; resolved against the
    /// current rotating register base at execution time.
    Rotating(usize),
}

/// A renamed operand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CodeOperand {
    /// A register.
    Reg(CodeReg),
    /// An integer immediate.
    ImmInt(i64),
    /// A floating-point immediate.
    ImmFloat(f64),
}

/// One operation instance inside an instruction.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotOp {
    /// The originating IR operation (for opcode, comparison kind, and
    /// diagnostics).
    pub op: OpId,
    /// The operation's stage in the schedule: `⌊issue_time / II⌋`. Used by
    /// kernel-only code to decide which loop iteration an instance belongs
    /// to (`iteration = pass − stage`).
    pub stage: u32,
    /// Renamed destination.
    pub dest: Option<CodeReg>,
    /// Renamed sources.
    pub srcs: Vec<CodeOperand>,
    /// Renamed guarding predicate.
    pub pred: Option<CodeReg>,
}

/// A VLIW instruction: every operation instance issued on one cycle.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Inst {
    /// The instances issued this cycle.
    pub ops: Vec<SlotOp>,
}

/// A register seed: the value a register must hold before the loop starts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Seed {
    /// The register to preload.
    pub reg: CodeReg,
    /// Its initial value (resolved against the memory layout at simulation
    /// time).
    pub value: LiveInValue,
}

/// Modulo-variable-expanded code for machines without rotating registers:
/// flat prologue, a kernel unrolled [`MveCode::unroll`] times, and a flat
/// coda (the epilogue plus any steady-state cycles that did not fill a whole
/// kernel repetition for this trip count).
#[derive(Debug, Clone, PartialEq)]
pub struct MveCode {
    /// The initiation interval.
    pub ii: i64,
    /// Kernel stages (`⌈schedule length / II⌉`).
    pub stage_count: u32,
    /// The kernel unroll factor `K` (Lam's `kmax`: the largest per-value
    /// `⌈lifetime / II⌉`).
    pub unroll: u32,
    /// Flat start-up code, one instruction per cycle.
    pub prologue: Vec<Inst>,
    /// The unrolled kernel: `unroll · II` instructions, executed
    /// [`MveCode::kernel_reps`] times.
    pub kernel: Vec<Inst>,
    /// How many times the kernel body executes for this trip count.
    pub kernel_reps: u64,
    /// Flat drain code, one instruction per cycle.
    pub coda: Vec<Inst>,
    /// Total static registers (all names created by the expansion).
    pub num_static_regs: usize,
    /// Registers that must be preloaded before the first instruction.
    pub seeds: Vec<Seed>,
}

impl MveCode {
    /// Total cycles this code executes for its trip count.
    pub fn total_cycles(&self) -> u64 {
        self.prologue.len() as u64
            + self.kernel_reps * self.kernel.len() as u64
            + self.coda.len() as u64
    }
}

/// Kernel-only code for machines with rotating register files and
/// predicated execution: just `II` instructions, executed
/// `trip_count + stage_count − 1` times, with each instance staged by
/// iteration index (the code schema of Rau/Schlansker/Tirumalai).
#[derive(Debug, Clone, PartialEq)]
pub struct RotatingCode {
    /// The initiation interval.
    pub ii: i64,
    /// Kernel stages.
    pub stage_count: u32,
    /// The kernel: exactly `II` instructions — no unrolling.
    pub kernel: Vec<Inst>,
    /// Number of passes over the kernel: `trip_count + stage_count − 1`.
    pub passes: u64,
    /// Size of the rotating register file.
    pub rotating_size: usize,
    /// Number of static registers (loop invariants).
    pub num_static_regs: usize,
    /// Registers preloaded before the first pass (rotating seeds use
    /// *physical* indices, valid at pass 0).
    pub seeds: Vec<Seed>,
}

impl RotatingCode {
    /// Total cycles this code executes for its trip count.
    pub fn total_cycles(&self) -> u64 {
        self.passes * self.kernel.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mve_cycle_count() {
        let code = MveCode {
            ii: 2,
            stage_count: 3,
            unroll: 2,
            prologue: vec![Inst::default(); 4],
            kernel: vec![Inst::default(); 4],
            kernel_reps: 5,
            coda: vec![Inst::default(); 6],
            num_static_regs: 0,
            seeds: vec![],
        };
        assert_eq!(code.total_cycles(), 4 + 20 + 6);
    }

    #[test]
    fn rotating_cycle_count() {
        let code = RotatingCode {
            ii: 3,
            stage_count: 4,
            kernel: vec![Inst::default(); 3],
            passes: 10,
            rotating_size: 8,
            num_static_regs: 1,
            seeds: vec![],
        };
        assert_eq!(code.total_cycles(), 30);
    }
}
