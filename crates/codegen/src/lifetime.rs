//! Register lifetime analysis over a modulo schedule.

use ims_core::{Problem, Schedule};
use ims_deps::{node_of, resolve_use};
use ims_ir::{LoopBody, VReg};

/// The live range of the value a virtual register carries, measured on the
/// flat (per-iteration-offset) time line of the modulo schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lifetime {
    /// The register.
    pub reg: VReg,
    /// Issue time of the defining operation.
    pub def_issue: i64,
    /// Cycle the value becomes available (`def_issue + latency`).
    pub birth: i64,
    /// Last cycle any consumer reads the value, projected onto the defining
    /// iteration's time line (`use_issue + II · distance`), or `birth` when
    /// the value is never read (a dead definition still occupies its
    /// register for one cycle).
    pub death: i64,
    /// How many register names this value needs under modulo variable
    /// expansion or rotation: see [`unroll_factor`].
    pub names: u32,
}

/// The number of register names a value needs so that the instance produced
/// `names` iterations later does not clobber it before its last read:
/// `⌊(death − birth) / II⌋ + 1`.
///
/// The overwriting instance *commits* at `birth + names·II`, so the value
/// survives through cycle `birth + names·II − 1 ≥ death`.
///
/// # Panics
///
/// Panics if `death < birth` or `ii < 1`.
pub fn unroll_factor(birth: i64, death: i64, ii: i64) -> u32 {
    assert!(ii >= 1, "II must be positive");
    assert!(death >= birth, "value dies before it is born");
    ((death - birth) / ii + 1) as u32
}

/// Computes the lifetime of every register defined in the body, under the
/// given schedule. Registers with no defining operation (pure live-ins) get
/// no entry.
pub fn lifetimes(body: &LoopBody, problem: &Problem<'_>, schedule: &Schedule) -> Vec<Lifetime> {
    let mut out = Vec::new();
    for (def_id, def_op) in body.iter() {
        let Some(reg) = def_op.dest else { continue };
        let def_issue = schedule.time_of(node_of(def_id));
        let birth = def_issue + problem.latency(node_of(def_id));
        let mut death = birth;
        for (use_id, use_op) in body.iter() {
            for u in use_op.reg_uses() {
                if u.reg != reg {
                    continue;
                }
                if let Some((d, distance)) = resolve_use(body, use_id, u) {
                    debug_assert_eq!(d, def_id, "single assignment: one def per register");
                    let read = schedule.time_of(node_of(use_id)) + schedule.ii * distance as i64;
                    death = death.max(read);
                }
            }
        }
        out.push(Lifetime {
            reg,
            def_issue,
            birth,
            death,
            names: unroll_factor(birth, death, schedule.ii),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ims_core::{modulo_schedule, SchedConfig};
    use ims_deps::{build_problem, BuildOptions};
    use ims_ir::{LoopBuilder, Value};
    use ims_machine::cydra_simple;

    #[test]
    fn unroll_factor_boundaries() {
        // Value born and dying in the same cycle: one name.
        assert_eq!(unroll_factor(5, 5, 4), 1);
        // Lives exactly through one II: still one name (overwrite commits
        // at birth + II, after the last read at birth + II - 1).
        assert_eq!(unroll_factor(0, 3, 4), 1);
        // One cycle longer: needs a second name.
        assert_eq!(unroll_factor(0, 4, 4), 2);
        assert_eq!(unroll_factor(0, 20, 4), 6);
    }

    #[test]
    #[should_panic(expected = "dies before")]
    fn negative_lifetime_panics() {
        let _ = unroll_factor(5, 4, 1);
    }

    #[test]
    fn lifetimes_cover_loop_carried_reads() {
        // acc = acc + x: the accumulator is read one iteration later, so
        // its death is at least def_issue(use) + II.
        let m = cydra_simple();
        let mut b = LoopBuilder::new("acc", 16);
        let x = b.live_in("x", Value::Float(1.0));
        let acc = b.fresh("acc");
        b.bind_live_in(acc, Value::Float(0.0));
        b.rebind_add(acc, acc, x);
        let body = b.finish().unwrap();
        let p = build_problem(&body, &m, &BuildOptions::default());
        let out = modulo_schedule(&p, &SchedConfig::default()).unwrap();
        let lts = lifetimes(&body, &p, &out.schedule);
        assert_eq!(lts.len(), 1);
        let lt = &lts[0];
        assert_eq!(lt.reg, acc);
        // Read by itself one iteration later.
        assert_eq!(lt.death, lt.def_issue + out.schedule.ii);
        assert!(lt.names >= 1);
    }

    #[test]
    fn dead_definition_gets_one_name() {
        let m = cydra_simple();
        let mut b = LoopBuilder::new("dead", 4);
        let x = b.live_in("x", Value::Float(1.0));
        let _unused = b.add("u", x, x);
        let body = b.finish().unwrap();
        let p = build_problem(&body, &m, &BuildOptions::default());
        let out = modulo_schedule(&p, &SchedConfig::default()).unwrap();
        let lts = lifetimes(&body, &p, &out.schedule);
        assert_eq!(lts.len(), 1);
        assert_eq!(lts[0].names, 1);
        assert_eq!(lts[0].death, lts[0].birth);
    }

    #[test]
    fn long_latency_producer_stretches_lifetime() {
        // A load (latency 20) feeding an add: if the add is scheduled 20+
        // cycles later and II is small, the load's value needs many names.
        let m = cydra_simple();
        let mut b = LoopBuilder::new("ld", 16);
        let addr = b.live_in("p", Value::Int(0));
        let arr = b.array("a", 64);
        let _ = arr;
        let v = b.load("v", addr, None);
        let w = b.add("w", v, 1.0f64);
        // Keep the add's result alive via a store through an unknown
        // address so nothing is dead code.
        b.store(addr, w, None);
        let body = b.finish().unwrap();
        let p = build_problem(&body, &m, &BuildOptions::default());
        let out = modulo_schedule(&p, &SchedConfig::default()).unwrap();
        let lts = lifetimes(&body, &p, &out.schedule);
        let v_lt = lts.iter().find(|l| l.reg == v).unwrap();
        assert!(v_lt.birth >= v_lt.def_issue + 20);
        assert!(v_lt.death >= v_lt.birth);
    }
}
