//! Rotating register allocation and kernel-only code generation.
//!
//! With rotating register files (the Cydra 5 mechanism) the kernel needs no
//! unrolling: the hardware renames registers by adding a rotating register
//! base that advances once per II, so the *same* kernel instruction
//! addresses a fresh register every pass. Combined with staged execution
//! (an instance of stage `s` on pass `p` belongs to iteration `p − s`, and
//! only executes when that iteration is in `[0, n)` — the staging-predicate
//! schema of Rau/Schlansker/Tirumalai), prologue and epilogue code
//! disappear entirely: the kernel simply runs `n + SC − 1` passes.
//!
//! Allocation uses a phase-ordered placement: defined registers are laid
//! out so that, on any physical register, consecutive writers are separated
//! by enough iterations for the earlier writer's value to survive until its
//! last read, accounting for the writers' actual birth cycles within the
//! schedule. This yields a provably clobber-free allocation (see the
//! brute-force verification in the tests).

use std::collections::HashMap;

use ims_core::{Problem, Schedule};
use ims_deps::{node_of, resolve_use};
use ims_ir::{LoopBody, Operand, VReg};

use crate::code::{CodeOperand, CodeReg, Inst, RotatingCode, Seed, SlotOp};
use crate::lifetime::Lifetime;

/// A rotating-file allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RotatingAllocation {
    /// Size of the rotating file: the sum of the inter-writer gaps.
    pub size: usize,
    /// Rotating base of each defined register (`None` for pure live-ins).
    pub base: Vec<Option<usize>>,
    /// Static register of each pure live-in.
    pub static_of: Vec<Option<usize>>,
    /// Number of static registers.
    pub num_static: usize,
}

impl RotatingAllocation {
    /// The physical rotating register holding `reg`'s value from iteration
    /// `iter` (may be negative for pre-loop seeds).
    ///
    /// # Panics
    ///
    /// Panics if `reg` is not a defined register.
    pub fn physical(&self, reg: VReg, iter: i64) -> usize {
        let b = self.base[reg.index()].expect("physical() requires a defined register");
        (b as i64 + iter).rem_euclid(self.size as i64) as usize
    }
}

/// Failures of rotating code generation.
#[derive(Debug, Clone, PartialEq)]
pub enum RotatingError {
    /// Two different initial values would need to be seeded into the same
    /// physical rotating register (possible when several multi-iteration
    /// lags fold onto one register). Fall back to modulo variable
    /// expansion.
    SeedConflict {
        /// The contended physical register.
        phys: usize,
    },
}

impl std::fmt::Display for RotatingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RotatingError::SeedConflict { phys } => {
                write!(f, "conflicting seeds for rotating register {phys}")
            }
        }
    }
}

impl std::error::Error for RotatingError {}

/// Allocates rotating bases with a phase-ordered rule. With registers
/// `v₁ … vₘ` (in definition order), on any physical register the writers
/// occur in that cyclic order, `gapⱼ` iterations apart. Because values are
/// born at different cycles *within* an iteration, the gap between
/// consecutive writers must account for actual birth times:
///
/// ```text
/// gapⱼ = max(1, ⌊(death(vⱼ) − birth(vⱼ₊₁)) / II⌋ + 1)
/// ```
///
/// so that `vⱼ₊₁`'s write, `gapⱼ` iterations later, commits strictly after
/// `vⱼ`'s last read. Non-adjacent pairs are then safe by induction (the
/// sub-additivity of `⌊·⌋` — see the brute-force check in the tests). The
/// file size is `Σ gapⱼ`, and `base(vⱼ) = (S − Σ_{u<j} gapᵤ) mod S`.
pub fn allocate_rotating(
    body: &LoopBody,
    lifetimes: &[Lifetime],
    ii: i64,
) -> RotatingAllocation {
    assert!(ii >= 1, "II must be positive");
    let nv = body.num_vregs();
    let life: HashMap<VReg, &Lifetime> = lifetimes.iter().map(|l| (l.reg, l)).collect();
    let mut base = vec![None; nv];
    let mut static_of = vec![None; nv];

    let defined: Vec<VReg> = body.iter().filter_map(|(_, op)| op.dest).collect();
    let gaps: Vec<usize> = defined
        .iter()
        .enumerate()
        .map(|(j, v)| {
            let next = defined[(j + 1) % defined.len()];
            let base = match (life.get(v), life.get(&next)) {
                (Some(lv), Some(ln)) => {
                    ((lv.death - ln.birth).div_euclid(ii) + 1).max(1) as usize
                }
                _ => 1,
            };
            // Seeded registers need their pre-loop instances (physical
            // base − 1 … base − maxlag) to survive until read in the first
            // iterations; widen the gap to cover the deepest lag.
            let lag_floor = if body.is_live_in(*v) {
                max_lag_of(body, *v) as usize + 1
            } else {
                0
            };
            base.max(lag_floor)
        })
        .collect();
    let size: usize = gaps.iter().sum::<usize>().max(1);
    let mut prefix = 0usize;
    for (j, v) in defined.iter().enumerate() {
        base[v.index()] = Some((size - prefix % size) % size);
        prefix += gaps[j];
    }

    let mut num_static = 0usize;
    for li in body.live_ins() {
        if base[li.reg.index()].is_none() && static_of[li.reg.index()].is_none() {
            static_of[li.reg.index()] = Some(num_static);
            num_static += 1;
        }
    }

    RotatingAllocation {
        size,
        base,
        static_of,
        num_static,
    }
}

/// Generates kernel-only rotating code for the body's trip count.
///
/// # Errors
///
/// Returns [`RotatingError::SeedConflict`] when pre-loop seeding of
/// loop-carried initial values is ambiguous; callers should fall back to
/// [`crate::generate_mve`].
pub fn generate_rotating(
    body: &LoopBody,
    problem: &Problem<'_>,
    schedule: &Schedule,
    lifetimes: &[Lifetime],
) -> Result<RotatingCode, RotatingError> {
    let _ = problem; // reserved for future latency-aware seeding
    let ii = schedule.ii;
    let alloc = allocate_rotating(body, lifetimes, schedule.ii);
    let n = body.trip_count() as i64;
    let max_t = body
        .iter()
        .map(|(id, _)| schedule.time_of(node_of(id)))
        .max()
        .unwrap_or(0);
    let stage_count = (max_t / ii + 1) as u32;

    // Encode each operation once. An instance on pass p belongs to
    // iteration i = p − stage; the rotating base advances by one per pass,
    // so the offset that yields physical (base(v) + i) mod S is
    // (base(v) − stage − lag) mod S.
    let offset = |reg: VReg, stage: i64, lag: i64| -> CodeReg {
        match alloc.base[reg.index()] {
            Some(b) => CodeReg::Rotating(
                (b as i64 - stage - lag).rem_euclid(alloc.size as i64) as usize,
            ),
            None => CodeReg::Static(
                alloc.static_of[reg.index()]
                    .expect("validated bodies only use defined or live-in registers"),
            ),
        }
    };

    let mut kernel: Vec<Inst> = (0..ii).map(|_| Inst::default()).collect();
    for (id, op) in body.iter() {
        let t = schedule.time_of(node_of(id));
        let stage = t / ii;
        let slot = (t % ii) as usize;
        let mut srcs = Vec::with_capacity(op.srcs.len());
        for s in &op.srcs {
            srcs.push(match s {
                Operand::ImmInt(v) => CodeOperand::ImmInt(*v),
                Operand::ImmFloat(v) => CodeOperand::ImmFloat(*v),
                Operand::Reg(u) => {
                    let d = resolve_use(body, id, *u).map(|(_, d)| d).unwrap_or(0);
                    CodeOperand::Reg(offset(u.reg, stage, d as i64))
                }
            });
        }
        let pred = op.pred.map(|u| {
            let d = resolve_use(body, id, u).map(|(_, d)| d).unwrap_or(0);
            offset(u.reg, stage, d as i64)
        });
        kernel[slot].ops.push(SlotOp {
            op: id,
            stage: stage as u32,
            dest: op.dest.map(|dreg| offset(dreg, stage, 0)),
            srcs,
            pred,
        });
    }

    // Seeds. Loop-carried reads of iterations before 0 land on physical
    // registers (base(v) + negative) mod S at pass 0; preload each with the
    // register's lag-specific live-in value (explicit per-lag bindings come
    // from recurrence back-substitution; other lags fall back to lag 1).
    let mut rot_seeds: HashMap<usize, ims_ir::LiveInValue> = HashMap::new();
    let mut seeded: Vec<bool> = vec![false; body.num_vregs()];
    for li in body.live_ins() {
        if alloc.base[li.reg.index()].is_none() || seeded[li.reg.index()] {
            continue;
        }
        seeded[li.reg.index()] = true;
        let max_lag = max_lag_of(body, li.reg);
        for lag in 1..=max_lag {
            let value = body
                .live_in_value(li.reg, lag)
                .expect("live-in registers always have a lag-1 binding");
            let phys = alloc.physical(li.reg, -(lag as i64));
            match rot_seeds.get(&phys) {
                Some(existing) if *existing != value => {
                    return Err(RotatingError::SeedConflict { phys });
                }
                _ => {
                    rot_seeds.insert(phys, value);
                }
            }
        }
    }
    let mut seeds: Vec<Seed> = rot_seeds
        .into_iter()
        .map(|(phys, value)| Seed {
            reg: CodeReg::Rotating(phys),
            value,
        })
        .collect();
    let mut static_seeded: Vec<bool> = vec![false; body.num_vregs()];
    for li in body.live_ins() {
        if let Some(st) = alloc.static_of[li.reg.index()] {
            if !static_seeded[li.reg.index()] {
                static_seeded[li.reg.index()] = true;
                seeds.push(Seed {
                    reg: CodeReg::Static(st),
                    value: body.live_in_value(li.reg, 1).unwrap_or(li.value),
                });
            }
        }
    }
    seeds.sort_by_key(|s| match s.reg {
        CodeReg::Static(i) => (0, i),
        CodeReg::Rotating(i) => (1, i),
    });

    Ok(RotatingCode {
        ii,
        stage_count,
        kernel,
        passes: (n + stage_count as i64 - 1) as u64,
        rotating_size: alloc.size,
        num_static_regs: alloc.num_static,
        seeds,
    })
}

/// The largest iteration lag at which `reg` is read.
fn max_lag_of(body: &LoopBody, reg: VReg) -> u32 {
    let mut max_lag = 0;
    for (use_id, op) in body.iter() {
        for u in op.reg_uses() {
            if u.reg == reg {
                if let Some((_, d)) = resolve_use(body, use_id, u) {
                    max_lag = max_lag.max(d);
                }
            }
        }
    }
    max_lag
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifetime::lifetimes;
    use ims_core::{modulo_schedule, SchedConfig};
    use ims_deps::{build_problem, BuildOptions};
    use ims_ir::{LoopBuilder, MemRef, Value};
    use ims_machine::cydra_simple;

    fn dot(n: u32) -> ims_ir::LoopBody {
        let mut b = LoopBuilder::new("dot", n);
        let a = b.array("a", n as usize);
        let bb = b.array("b", n as usize);
        let pa = b.ptr("pa", a, 0);
        let pb = b.ptr("pb", bb, 0);
        let s = b.fresh("s");
        b.bind_live_in(s, Value::Float(0.0));
        let va = b.load("va", pa, Some(MemRef::new(a, 0, 1)));
        let vb = b.load("vb", pb, Some(MemRef::new(bb, 0, 1)));
        let prod = b.mul("prod", va, vb);
        b.rebind_add(s, s, prod);
        b.addr_add(pa, pa, 1);
        b.addr_add(pb, pb, 1);
        b.finish().unwrap()
    }

    /// Brute-force check of the allocation invariant against actual
    /// schedule timing: for every value instance (v, i), no other write to
    /// the same physical register commits at or before the instance's last
    /// read.
    fn check_allocation(alloc: &RotatingAllocation, lifetimes: &[Lifetime], ii: i64) {
        let window = 4 * alloc.size as i64 + 8;
        for lv in lifetimes {
            for i in 0..window {
                let phys = alloc.physical(lv.reg, i);
                let last_read = i * ii + lv.death;
                let commit_ok = |lu: &Lifetime, j: i64| -> bool {
                    // Another write to `phys` commits at j*ii + birth(u);
                    // it must commit strictly after `last_read`.
                    j * ii + lu.birth > last_read
                };
                for lu in lifetimes {
                    // Iterations j > i (same or other register) that write
                    // the same physical register.
                    for j in i + 1..i + 2 * alloc.size as i64 + 2 {
                        if (lu.reg, j) == (lv.reg, i) {
                            continue;
                        }
                        if alloc.physical(lu.reg, j) == phys {
                            assert!(
                                commit_ok(lu, j),
                                "{} (iter {j}) clobbers {} (iter {i}) on phys {phys}",
                                lu.reg,
                                lv.reg
                            );
                            break; // only the first subsequent writer matters
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn allocation_is_clobber_free() {
        let body = dot(64);
        let m = cydra_simple();
        let p = build_problem(&body, &m, &BuildOptions::default());
        let out = modulo_schedule(&p, &SchedConfig::default()).unwrap();
        let lt = lifetimes(&body, &p, &out.schedule);
        let alloc = allocate_rotating(&body, &lt, out.schedule.ii);
        check_allocation(&alloc, &lt, out.schedule.ii);
    }

    #[test]
    fn allocation_with_skewed_lifetimes() {
        // Hand-built lifetimes with very different birth cycles and name
        // counts; the invariant must still hold.
        let mut b = LoopBuilder::new("skew", 8);
        let x = b.live_in("x", Value::Float(1.0));
        let a1 = b.add("a1", x, x);
        let a2 = b.add("a2", a1, x);
        let a3 = b.add("a3", a2, x);
        let body = b.finish().unwrap();
        let ii = 2;
        let lts = vec![
            Lifetime { reg: a1, def_issue: 0, birth: 4, death: 13, names: 5 },
            Lifetime { reg: a2, def_issue: 1, birth: 1, death: 1, names: 1 },
            Lifetime { reg: a3, def_issue: 1, birth: 9, death: 12, names: 2 },
        ];
        let alloc = allocate_rotating(&body, &lts, ii);
        check_allocation(&alloc, &lts, ii);
    }

    #[test]
    fn kernel_is_exactly_ii_instructions() {
        let body = dot(64);
        let m = cydra_simple();
        let p = build_problem(&body, &m, &BuildOptions::default());
        let out = modulo_schedule(&p, &SchedConfig::default()).unwrap();
        let lt = lifetimes(&body, &p, &out.schedule);
        let code = generate_rotating(&body, &p, &out.schedule, &lt).unwrap();
        assert_eq!(code.kernel.len() as i64, code.ii);
        let total_ops: usize = code.kernel.iter().map(|i| i.ops.len()).sum();
        assert_eq!(total_ops, body.num_ops());
        assert_eq!(code.passes, 64 + code.stage_count as u64 - 1);
    }

    #[test]
    fn accumulator_seed_present() {
        let body = dot(64);
        let m = cydra_simple();
        let p = build_problem(&body, &m, &BuildOptions::default());
        let out = modulo_schedule(&p, &SchedConfig::default()).unwrap();
        let lt = lifetimes(&body, &p, &out.schedule);
        let code = generate_rotating(&body, &p, &out.schedule, &lt).unwrap();
        // The accumulator (lag 1) and both pointers need rotating seeds.
        let rotating_seeds = code
            .seeds
            .iter()
            .filter(|s| matches!(s.reg, CodeReg::Rotating(_)))
            .count();
        assert!(rotating_seeds >= 3, "got {rotating_seeds}");
    }

    #[test]
    fn physical_mapping_advances_with_iteration() {
        let body = dot(16);
        let m = cydra_simple();
        let p = build_problem(&body, &m, &BuildOptions::default());
        let out = modulo_schedule(&p, &SchedConfig::default()).unwrap();
        let lt = lifetimes(&body, &p, &out.schedule);
        let alloc = allocate_rotating(&body, &lt, out.schedule.ii);
        let v = lt[0].reg;
        let p0 = alloc.physical(v, 0);
        let p1 = alloc.physical(v, 1);
        assert_eq!((p0 + 1) % alloc.size, p1);
    }
}
