//! Property tests for code generation: the rotating allocation is
//! clobber-free under arbitrary lifetimes, and MVE structure accounting is
//! exact under random schedules. On the in-repo [`ims_testkit::prop`]
//! harness.

use ims_codegen::{allocate_rotating, generate_mve, lifetimes, unroll_factor, Lifetime};
use ims_core::{modulo_schedule, SchedConfig};
use ims_deps::{build_problem, BuildOptions};
use ims_ir::{LoopBuilder, Value, VReg};
use ims_loopgen::{generate_loop, SynthConfig};
use ims_machine::cydra_simple;
use ims_testkit::{check, prop_assert, prop_assert_eq, PropConfig, Xoshiro256};

#[test]
fn rotating_allocation_is_clobber_free() {
    check(
        "rotating_allocation_is_clobber_free",
        &PropConfig::with_cases(128),
        &[],
        // Random (birth, extent) lifetimes over a small II.
        |g| {
            let ii = g.i64_in(1, 8);
            let len = g.usize_in(1, 8);
            let raw: Vec<(i64, i64)> = (0..len)
                .map(|_| (g.i64_in(0, 30), g.i64_in(0, 40)))
                .collect();
            (ii, raw)
        },
        |(ii, raw)| {
            let ii = *ii;
            // Build a body with one defined register per lifetime.
            let mut b = LoopBuilder::new("lt", 8);
            let x = b.live_in("x", Value::Float(1.0));
            let regs: Vec<VReg> = (0..raw.len()).map(|i| b.add(&format!("r{i}"), x, x)).collect();
            let body = b.finish().expect("valid");
            let lts: Vec<Lifetime> = raw
                .iter()
                .zip(&regs)
                .map(|(&(birth, extent), &reg)| Lifetime {
                    reg,
                    def_issue: birth.max(1) - 1,
                    birth,
                    death: birth + extent,
                    names: unroll_factor(birth, birth + extent, ii),
                })
                .collect();
            let alloc = allocate_rotating(&body, &lts, ii);

            // Brute-force invariant: no later write to the same physical
            // register commits at or before an instance's last read.
            let window = 3 * alloc.size as i64 + 6;
            for lv in &lts {
                for i in 0..window {
                    let phys = alloc.physical(lv.reg, i);
                    let last_read = i * ii + lv.death;
                    'writers: for lu in &lts {
                        for j in i + 1..i + 2 * alloc.size as i64 + 2 {
                            if (lu.reg, j) == (lv.reg, i) {
                                continue;
                            }
                            if alloc.physical(lu.reg, j) == phys {
                                prop_assert!(
                                    j * ii + lu.birth > last_read,
                                    "{} iter {j} clobbers {} iter {i} (phys {phys})",
                                    lu.reg,
                                    lv.reg
                                );
                                continue 'writers; // only the first later writer
                            }
                        }
                    }
                }
            }
            Ok(())
        },
    );
}

#[test]
fn mve_accounts_for_every_instance() {
    check(
        "mve_accounts_for_every_instance",
        &PropConfig::with_cases(128),
        &[],
        |g| (g.u64(), g.usize_in(4, 30)),
        |&(seed, ops)| {
            let cfg = SynthConfig {
                ops_target: ops,
                recurrences: vec![],
                with_branch: true,
            };
            let body = generate_loop(&mut Xoshiro256::seed_from_u64(seed), &cfg);
            let machine = cydra_simple();
            let problem = build_problem(&body, &machine, &BuildOptions::default());
            let out = modulo_schedule(&problem, &SchedConfig::default()).expect("schedules");
            let lt = lifetimes(&body, &problem, &out.schedule);
            let code = generate_mve(&body, &problem, &out.schedule, &lt);
            let count = |insts: &[ims_codegen::Inst]| -> u64 {
                insts.iter().map(|i| i.ops.len() as u64).sum()
            };
            let total = count(&code.prologue)
                + code.kernel_reps * count(&code.kernel)
                + count(&code.coda);
            prop_assert_eq!(total, body.trip_count() as u64 * body.num_ops() as u64);
            Ok(())
        },
    );
}

#[test]
fn unroll_factor_is_minimal() {
    check(
        "unroll_factor_is_minimal",
        &PropConfig::with_cases(128),
        &[],
        |g| (g.i64_in(0, 50), g.i64_in(0, 80), g.i64_in(1, 10)),
        |&(birth, extent, ii)| {
            let death = birth + extent;
            let k = unroll_factor(birth, death, ii) as i64;
            // k names suffice: the overwrite commits after the last read...
            prop_assert!(birth + k * ii > death);
            // ...and k-1 names would not.
            if k > 1 {
                prop_assert!(birth + (k - 1) * ii <= death);
            }
            Ok(())
        },
    );
}
