//! Property tests for code generation: the rotating allocation is
//! clobber-free under arbitrary lifetimes, and MVE structure accounting is
//! exact under random schedules.

use ims_codegen::{allocate_rotating, generate_mve, lifetimes, unroll_factor, Lifetime};
use ims_core::{modulo_schedule, SchedConfig};
use ims_deps::{build_problem, BuildOptions};
use ims_ir::{LoopBuilder, Value, VReg};
use ims_loopgen::{generate_loop, SynthConfig};
use ims_machine::cydra_simple;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Random (birth, extent) lifetimes over a fixed II.
fn lifetimes_strategy() -> impl Strategy<Value = (i64, Vec<(i64, i64)>)> {
    (1i64..8).prop_flat_map(|ii| {
        (
            Just(ii),
            proptest::collection::vec((0i64..30, 0i64..40), 1..8),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn rotating_allocation_is_clobber_free((ii, raw) in lifetimes_strategy()) {
        // Build a body with one defined register per lifetime.
        let mut b = LoopBuilder::new("lt", 8);
        let x = b.live_in("x", Value::Float(1.0));
        let regs: Vec<VReg> = (0..raw.len()).map(|i| b.add(&format!("r{i}"), x, x)).collect();
        let body = b.finish().expect("valid");
        let lts: Vec<Lifetime> = raw
            .iter()
            .zip(&regs)
            .map(|(&(birth, extent), &reg)| Lifetime {
                reg,
                def_issue: birth.max(1) - 1,
                birth,
                death: birth + extent,
                names: unroll_factor(birth, birth + extent, ii),
            })
            .collect();
        let alloc = allocate_rotating(&body, &lts, ii);

        // Brute-force invariant: no later write to the same physical
        // register commits at or before an instance's last read.
        let window = 3 * alloc.size as i64 + 6;
        for lv in &lts {
            for i in 0..window {
                let phys = alloc.physical(lv.reg, i);
                let last_read = i * ii + lv.death;
                'writers: for lu in &lts {
                    for j in i + 1..i + 2 * alloc.size as i64 + 2 {
                        if (lu.reg, j) == (lv.reg, i) {
                            continue;
                        }
                        if alloc.physical(lu.reg, j) == phys {
                            prop_assert!(
                                j * ii + lu.birth > last_read,
                                "{} iter {j} clobbers {} iter {i} (phys {phys})",
                                lu.reg,
                                lv.reg
                            );
                            continue 'writers; // only the first later writer
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn mve_accounts_for_every_instance(seed in any::<u64>(), ops in 4usize..30) {
        let cfg = SynthConfig {
            ops_target: ops,
            recurrences: vec![],
            with_branch: true,
        };
        let body = generate_loop(&mut StdRng::seed_from_u64(seed), &cfg);
        let machine = cydra_simple();
        let problem = build_problem(&body, &machine, &BuildOptions::default());
        let out = modulo_schedule(&problem, &SchedConfig::default()).expect("schedules");
        let lt = lifetimes(&body, &problem, &out.schedule);
        let code = generate_mve(&body, &problem, &out.schedule, &lt);
        let count = |insts: &[ims_codegen::Inst]| -> u64 {
            insts.iter().map(|i| i.ops.len() as u64).sum()
        };
        let total = count(&code.prologue)
            + code.kernel_reps * count(&code.kernel)
            + count(&code.coda);
        prop_assert_eq!(total, body.trip_count() as u64 * body.num_ops() as u64);
    }

    #[test]
    fn unroll_factor_is_minimal(birth in 0i64..50, extent in 0i64..80, ii in 1i64..10) {
        let death = birth + extent;
        let k = unroll_factor(birth, death, ii) as i64;
        // k names suffice: the overwrite commits after the last read...
        prop_assert!(birth + k * ii > death);
        // ...and k-1 names would not.
        if k > 1 {
            prop_assert!(birth + (k - 1) * ii <= death);
        }
    }
}
