#![deny(missing_docs)]

//! Exact modulo scheduling by branch-and-bound.
//!
//! The paper's iterative scheduler is a heuristic: when it achieves the
//! MII it is provably optimal, but when it settles for a larger II nothing
//! says a smaller one was impossible — maybe the budget just ran out. This
//! crate answers that question exactly. [`schedule_exact`] first runs the
//! iterative scheduler (with a generous budget) to obtain an upper bound
//! and a fallback schedule, then walks candidate IIs upward from the MII,
//! deciding each one *exhaustively* with the branch-and-bound search in
//! [`mod@self`] (see the `search` module docs for the pruning rules:
//! MinDist windows over an SCC-topological scheduling order, modulo
//! reservation conflicts, and failed-state memoization). The first
//! feasible II is optimal by construction.
//!
//! Exhaustive search is exponential in the worst case, so the search is
//! metered: a node budget ([`ExactConfig::node_limit`]) and an optional
//! wall-clock deadline ([`ExactConfig::deadline`]). When either runs out
//! the scheduler degrades gracefully — it returns the iterative schedule
//! plus explicit [`IiBounds`] recording exactly which IIs were proven
//! infeasible (`proved_lb`) and the best schedule in hand (`best_ub`),
//! never a hang and never a silent claim of optimality.
//!
//! The crate plugs into the workspace through the
//! [`SchedulerBackend`] seam: [`ExactBackend`] produces the same
//! [`Schedule`] type as the iterative backend, so the validator, kernel
//! code generation, and the VLIW simulator consume its output unchanged.
//!
//! ```
//! use ims_core::{ProblemBuilder, validate_schedule};
//! use ims_exact::{schedule_exact, ExactConfig};
//! use ims_graph::DepKind;
//! use ims_ir::{OpId, Opcode};
//! use ims_machine::minimal;
//!
//! let m = minimal();
//! let mut pb = ProblemBuilder::new(&m);
//! let a = pb.add_op(Opcode::Add, OpId(0));
//! let b = pb.add_op(Opcode::Mul, OpId(1));
//! pb.add_dep(a, b, 1, 0, DepKind::Flow, false);
//! pb.add_dep(b, a, 1, 1, DepKind::Flow, false); // loop-carried
//! let problem = pb.finish();
//!
//! let out = schedule_exact(&problem, &ExactConfig::default())?;
//! assert!(out.optimal());
//! assert_eq!(out.schedule.ii, out.bounds.proved_lb);
//! assert!(validate_schedule(&problem, &out.schedule).is_ok());
//! # Ok::<(), ims_core::ScheduleError>(())
//! ```

use std::time::{Duration, Instant};

use ims_core::{
    modulo_schedule, BackendKind, BackendOutcome, BackendParams, BackendRegistry, IiBounds,
    MiiInfo, NullObserver, Problem, SchedConfig, SchedObserver, Schedule, ScheduleError,
    SchedulerBackend,
};
use ims_prof::{phase, NullSink, ProfSink};

mod search;

use search::{search_ii, SearchResult};

/// Configuration for the exact scheduler.
#[derive(Debug, Clone)]
pub struct ExactConfig {
    /// Configuration for the internal iterative-scheduler run that
    /// supplies the upper bound and the fallback schedule. Defaults to
    /// BudgetRatio 6 (the paper's quality setting) so the search window
    /// between MII and the heuristic II is as small as possible.
    pub heuristic: SchedConfig,
    /// Wall-clock deadline for the whole branch-and-bound phase (the
    /// heuristic run is not counted). `None` — the default — leaves the
    /// search bounded only by `node_limit`. Deadlines trade determinism
    /// for latency control: two runs under the same deadline may abort at
    /// different points, so deterministic harnesses should meter with
    /// `node_limit` instead.
    pub deadline: Option<Duration>,
    /// Budget of branch-and-bound nodes (placements tried) across all
    /// candidate IIs. `None` is unlimited. The default (`2^22`) decides
    /// every corpus loop in well under a second.
    pub node_limit: Option<u64>,
}

impl Default for ExactConfig {
    fn default() -> Self {
        ExactConfig {
            heuristic: SchedConfig::with_budget_ratio(6.0),
            deadline: None,
            node_limit: Some(1 << 22),
        }
    }
}

impl ExactConfig {
    /// The default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the internal iterative-scheduler configuration.
    pub fn heuristic(mut self, heuristic: SchedConfig) -> Self {
        self.heuristic = heuristic;
        self
    }

    /// Sets the wall-clock deadline for the branch-and-bound phase.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the branch-and-bound node budget (`None` for unlimited).
    pub fn node_limit(mut self, node_limit: Option<u64>) -> Self {
        self.node_limit = node_limit;
        self
    }
}

/// The result of [`schedule_exact`].
#[derive(Debug, Clone, PartialEq)]
pub struct ExactOutcome {
    /// The best legal schedule in hand: II-optimal when
    /// [`optimal`](ExactOutcome::optimal), otherwise the iterative
    /// scheduler's fallback at `ims_ii`.
    pub schedule: Schedule,
    /// The MII bounds computed by the internal iterative run.
    pub mii: MiiInfo,
    /// What was proven about the true minimum II: exact when the search
    /// completed, a `[proved_lb, best_ub]` interval when a limit hit.
    pub bounds: IiBounds,
    /// Branch-and-bound nodes spent (0 when the heuristic already
    /// achieved the MII and no search was needed).
    pub nodes: u64,
    /// Whether the node budget or deadline aborted the search before it
    /// could decide every II below `ims_ii`.
    pub limit_hit: bool,
    /// The II the internal iterative scheduler achieved — the yardstick
    /// for the optimality gap `ims_ii − bounds.best_ub`.
    pub ims_ii: i64,
}

impl ExactOutcome {
    /// Whether `schedule` is proven II-optimal.
    pub fn optimal(&self) -> bool {
        self.bounds.is_exact()
    }
}

/// Schedules `problem` exactly: the returned schedule's II is proven
/// minimal unless a limit hit, in which case `bounds` says how much is
/// still open. See the crate docs for the algorithm.
///
/// # Errors
///
/// Forwards the internal iterative run's [`ScheduleError`]; the
/// branch-and-bound phase itself cannot fail (it degrades to the
/// iterative schedule).
pub fn schedule_exact(
    problem: &Problem<'_>,
    config: &ExactConfig,
) -> Result<ExactOutcome, ScheduleError> {
    schedule_exact_observed(problem, config, &mut NullObserver)
}

/// [`schedule_exact`] with scheduler events reported to `observer`.
///
/// The observer sees `backend(Exact)`, then one `attempt_start` /
/// `attempt_done` bracket per candidate II searched (the `budget` is the
/// remaining node budget, saturated to `i64::MAX`), with the final
/// schedule's placements emitted as `op_scheduled` events inside its
/// attempt — so trace replay reconstructs the exact schedule just as it
/// does for the iterative scheduler. The internal heuristic run is not
/// observed.
///
/// # Errors
///
/// As [`schedule_exact`].
pub fn schedule_exact_observed<O: SchedObserver>(
    problem: &Problem<'_>,
    config: &ExactConfig,
    observer: &mut O,
) -> Result<ExactOutcome, ScheduleError> {
    schedule_exact_profiled(problem, config, observer, &mut NullSink)
}

/// [`schedule_exact_observed`] with deterministic search statistics
/// additionally reported to `prof`: branch-and-bound nodes, memoization
/// hits/inserts, prune reasons, candidate-II outcomes, and the
/// MinDist/SCC/MRT work the search performs, all keyed by the profiler's
/// phase names (`exact.*`, `graph.*`, `machine.mrt.probes`). Passing
/// `&mut NullSink` makes this exactly [`schedule_exact_observed`].
///
/// # Errors
///
/// As [`schedule_exact`].
pub fn schedule_exact_profiled<O: SchedObserver, P: ProfSink>(
    problem: &Problem<'_>,
    config: &ExactConfig,
    observer: &mut O,
    prof: &mut P,
) -> Result<ExactOutcome, ScheduleError> {
    observer.backend(BackendKind::Exact);
    let ims = modulo_schedule(problem, &config.heuristic)?;
    let ims_ii = ims.schedule.ii;
    let mii = ims.mii;

    if ims_ii == mii.mii {
        // The heuristic achieved the MII: already proven optimal.
        emit_final(observer, problem, &ims.schedule);
        return Ok(ExactOutcome {
            schedule: ims.schedule,
            mii,
            bounds: IiBounds::exact(ims_ii),
            nodes: 0,
            limit_hit: false,
            ims_ii,
        });
    }

    let deadline = config.deadline.map(|d| Instant::now() + d);
    let node_limit = config.node_limit.unwrap_or(u64::MAX);
    let mut spent = 0u64;
    for ii in mii.mii..ims_ii {
        let remaining = node_limit.saturating_sub(spent);
        observer.attempt_start(ii, remaining.min(i64::MAX as u64) as i64);
        prof.count(phase::EXACT_IIS_SEARCHED, 1);
        let (result, nodes) = search_ii(problem, ii, remaining, deadline, &mut *prof);
        spent += nodes;
        match result {
            SearchResult::Found(schedule) => {
                emit_ops(observer, &schedule);
                observer.attempt_done(ii, true);
                return Ok(ExactOutcome {
                    schedule,
                    mii,
                    bounds: IiBounds::exact(ii),
                    nodes: spent,
                    limit_hit: false,
                    ims_ii,
                });
            }
            SearchResult::Infeasible => {
                prof.count(phase::EXACT_IIS_INFEASIBLE, 1);
                observer.attempt_done(ii, false);
            }
            SearchResult::LimitHit => {
                prof.count(phase::EXACT_LIMIT_HITS, 1);
                observer.attempt_done(ii, false);
                emit_final(observer, problem, &ims.schedule);
                return Ok(ExactOutcome {
                    schedule: ims.schedule,
                    mii,
                    bounds: IiBounds {
                        proved_lb: ii,
                        best_ub: ims_ii,
                    },
                    nodes: spent,
                    limit_hit: true,
                    ims_ii,
                });
            }
        }
    }

    // Every II below the heuristic's is proven infeasible: the iterative
    // schedule was optimal all along.
    emit_final(observer, problem, &ims.schedule);
    Ok(ExactOutcome {
        schedule: ims.schedule,
        mii,
        bounds: IiBounds::exact(ims_ii),
        nodes: spent,
        limit_hit: false,
        ims_ii,
    })
}

/// Emits a full attempt bracket for an already-final schedule (used for
/// the MII short-circuit and the fallback paths, where no live search
/// attempt is open for the schedule being returned).
fn emit_final<O: SchedObserver>(observer: &mut O, problem: &Problem<'_>, schedule: &Schedule) {
    let _ = problem;
    observer.attempt_start(schedule.ii, 0);
    emit_ops(observer, schedule);
    observer.attempt_done(schedule.ii, true);
}

/// Emits `op_scheduled` for every node of `schedule`, in node order.
fn emit_ops<O: SchedObserver>(observer: &mut O, schedule: &Schedule) {
    for idx in 0..schedule.time.len() {
        observer.op_scheduled(
            ims_graph::NodeId(idx as u32),
            schedule.time[idx],
            schedule.alternative[idx],
            false,
        );
    }
}

/// The exact scheduler as a [`SchedulerBackend`].
///
/// `steps` in the returned [`BackendOutcome`] counts branch-and-bound
/// nodes; `bounds` is exact unless the configured limits aborted the
/// search.
#[derive(Debug, Clone, Default)]
pub struct ExactBackend {
    config: ExactConfig,
}

impl ExactBackend {
    /// A backend running with the given configuration.
    pub fn new(config: ExactConfig) -> Self {
        ExactBackend { config }
    }

    /// The configuration this backend schedules with.
    pub fn config(&self) -> &ExactConfig {
        &self.config
    }

    /// [`SchedulerBackend::schedule`] with scheduler events reported to
    /// `observer`.
    ///
    /// # Errors
    ///
    /// As [`schedule_exact`].
    pub fn schedule_observed<O: SchedObserver>(
        &self,
        problem: &Problem<'_>,
        observer: &mut O,
    ) -> Result<BackendOutcome, ScheduleError> {
        let out = schedule_exact_observed(problem, &self.config, observer)?;
        Ok(BackendOutcome {
            schedule: out.schedule,
            mii: out.mii,
            bounds: out.bounds,
            steps: out.nodes,
        })
    }
}

impl SchedulerBackend for ExactBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Exact
    }

    fn schedule(&self, problem: &Problem<'_>) -> Result<BackendOutcome, ScheduleError> {
        self.schedule_observed(problem, &mut NullObserver)
    }

    fn schedule_observed_dyn(
        &self,
        problem: &Problem<'_>,
        observer: &mut dyn SchedObserver,
    ) -> Result<BackendOutcome, ScheduleError> {
        let mut observer = observer;
        self.schedule_observed(problem, &mut observer)
    }
}

/// Registers the branch-and-bound backend under [`BackendKind::Exact`].
/// The factory maps [`BackendParams::sched`] to the heuristic
/// configuration and [`BackendParams::node_limit`] (when set) to the
/// node budget.
pub fn register(reg: &mut BackendRegistry) {
    reg.register(BackendKind::Exact, |params: &BackendParams| {
        let mut config = ExactConfig::new().heuristic(params.sched.clone());
        if params.node_limit.is_some() {
            config = config.node_limit(params.node_limit);
        }
        Box::new(ExactBackend::new(config))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use ims_core::{validate_schedule, ProblemBuilder};
    use ims_graph::DepKind;
    use ims_ir::{OpId, Opcode};
    use ims_machine::{figure1_machine, minimal};

    /// The Figure 1 loop of the paper: a mul/add recurrence of delay 9 at
    /// distance 2 (RecMII 5), which the iterative scheduler schedules at
    /// II 6 after a failed attempt at 5.
    fn figure1_problem(machine: &ims_machine::MachineModel) -> Problem<'_> {
        let mut pb = ProblemBuilder::new(machine);
        let mul = pb.add_op(Opcode::Mul, OpId(0));
        let add = pb.add_op(Opcode::Add, OpId(1));
        pb.add_dep(mul, add, 5, 0, DepKind::Flow, false);
        pb.add_dep(add, mul, 4, 2, DepKind::Flow, false);
        pb.finish()
    }

    #[test]
    fn figure1_is_decided_exactly() {
        let m = figure1_machine();
        let p = figure1_problem(&m);
        let out = schedule_exact(&p, &ExactConfig::default()).unwrap();
        assert_eq!(out.mii.mii, 5);
        assert!(!out.limit_hit);
        assert!(out.optimal(), "search must decide every II: {:?}", out.bounds);
        assert!(out.nodes > 0, "IMS misses the MII here, so a search ran");
        assert_eq!(out.schedule.ii, out.bounds.best_ub);
        assert!(validate_schedule(&p, &out.schedule).is_ok());
        assert!(out.schedule.ii <= out.ims_ii);
        assert!(out.schedule.ii >= out.mii.mii);
    }

    #[test]
    fn mii_short_circuit_spends_no_nodes() {
        let m = minimal();
        let mut pb = ProblemBuilder::new(&m);
        let a = pb.add_op(Opcode::Add, OpId(0));
        let b = pb.add_op(Opcode::Mul, OpId(1));
        pb.add_dep(a, b, 1, 0, DepKind::Flow, false);
        pb.add_dep(b, a, 1, 1, DepKind::Flow, false);
        let p = pb.finish();
        let out = schedule_exact(&p, &ExactConfig::default()).unwrap();
        assert!(out.optimal());
        assert_eq!(out.nodes, 0, "heuristic hit the MII; no search needed");
        assert_eq!(out.schedule.ii, out.mii.mii);
        assert_eq!(out.ims_ii, out.mii.mii);
    }

    #[test]
    fn node_limit_degrades_to_bounds_and_ims_schedule() {
        let m = figure1_machine();
        let p = figure1_problem(&m);
        let out = schedule_exact(&p, &ExactConfig::new().node_limit(Some(1))).unwrap();
        assert!(out.limit_hit);
        assert!(!out.optimal());
        assert_eq!(out.bounds.proved_lb, out.mii.mii, "nothing decided yet");
        assert_eq!(out.bounds.best_ub, out.ims_ii);
        assert_eq!(out.schedule.ii, out.ims_ii, "fell back to the IMS schedule");
        assert!(validate_schedule(&p, &out.schedule).is_ok());
    }

    #[test]
    fn expired_deadline_degrades_deterministically() {
        let m = figure1_machine();
        let p = figure1_problem(&m);
        let out =
            schedule_exact(&p, &ExactConfig::new().deadline(Duration::ZERO)).unwrap();
        assert!(out.limit_hit, "an already-expired deadline aborts at entry");
        assert_eq!(out.nodes, 0);
        assert_eq!(out.bounds.proved_lb, out.mii.mii);
        assert_eq!(out.bounds.best_ub, out.ims_ii);
        assert!(validate_schedule(&p, &out.schedule).is_ok());
    }

    #[test]
    fn profiled_search_reports_deterministic_statistics() {
        let m = figure1_machine();
        let p = figure1_problem(&m);
        let mut reg = ims_prof::MetricsRegistry::new();
        let out =
            schedule_exact_profiled(&p, &ExactConfig::default(), &mut NullObserver, &mut reg)
                .unwrap();
        assert_eq!(reg.counter(phase::EXACT_NODES), out.nodes);
        assert!(reg.counter(phase::EXACT_IIS_SEARCHED) >= 1);
        assert!(reg.counter(phase::GRAPH_MINDIST_WORK) > 0);
        assert!(reg.counter(phase::MACHINE_MRT_PROBES) > 0);
        // Identical runs produce identical registries: every statistic the
        // search reports is deterministic.
        let mut again = ims_prof::MetricsRegistry::new();
        let _ = schedule_exact_profiled(&p, &ExactConfig::default(), &mut NullObserver, &mut again)
            .unwrap();
        assert_eq!(reg, again);
        // The unprofiled entry point is unchanged by profiling.
        let plain = schedule_exact(&p, &ExactConfig::default()).unwrap();
        assert_eq!(plain.schedule, out.schedule);
        assert_eq!(plain.nodes, out.nodes);
    }

    #[test]
    fn exact_backend_reports_kind_and_matches_schedule_exact() {
        let m = figure1_machine();
        let p = figure1_problem(&m);
        let backend: Box<dyn SchedulerBackend> = Box::new(ExactBackend::default());
        assert_eq!(backend.kind(), BackendKind::Exact);
        let out = backend.schedule(&p).unwrap();
        let reference = schedule_exact(&p, &ExactConfig::default()).unwrap();
        assert_eq!(out.schedule, reference.schedule);
        assert_eq!(out.bounds, reference.bounds);
        assert_eq!(out.steps, reference.nodes);
    }

    #[test]
    fn observer_sees_exact_backend_and_replayable_placements() {
        #[derive(Default)]
        struct Spy {
            backend: Option<BackendKind>,
            attempts: Vec<(i64, bool)>,
            placed: Vec<(u32, i64)>,
        }
        impl SchedObserver for Spy {
            fn backend(&mut self, kind: BackendKind) {
                self.backend = Some(kind);
            }
            fn attempt_start(&mut self, ii: i64, _budget: i64) {
                self.attempts.push((ii, false));
            }
            fn attempt_done(&mut self, ii: i64, ok: bool) {
                let last = self.attempts.last_mut().unwrap();
                assert_eq!(last.0, ii, "attempt brackets nest properly");
                last.1 = ok;
            }
            fn op_scheduled(&mut self, node: ims_graph::NodeId, time: i64, _: usize, _: bool) {
                self.placed.push((node.0, time));
            }
        }

        let m = figure1_machine();
        let p = figure1_problem(&m);
        let mut spy = Spy::default();
        let out = schedule_exact_observed(&p, &ExactConfig::default(), &mut spy).unwrap();
        assert_eq!(spy.backend, Some(BackendKind::Exact));
        let last = spy.attempts.last().unwrap();
        assert_eq!(*last, (out.schedule.ii, true), "final attempt succeeded");
        // The trailing placement burst reconstructs the final schedule.
        let n = out.schedule.time.len();
        let tail = &spy.placed[spy.placed.len() - n..];
        for (idx, &(node, time)) in tail.iter().enumerate() {
            assert_eq!(node as usize, idx);
            assert_eq!(time, out.schedule.time[idx]);
        }
    }
}
