//! The per-candidate-II branch-and-bound search.
//!
//! One call to [`search_ii`] answers, exhaustively, the question "does a
//! legal modulo schedule exist at this II?" — the primitive the exact
//! scheduler walks upward from the MII. The search is organised so that
//! every pruning rule is *sound* (never discards a feasible completion):
//!
//! * **Recurrence bounding.** The full-graph MinDist matrix at the
//!   candidate II (the same max-plus machinery RecMII uses) turns every
//!   dependence chain into a two-sided time window: a scheduled operation
//!   `u` at time `t_u` forces `t_u + MinDist[u,v] ≤ t_v ≤ t_u −
//!   MinDist[v,u]` for every other operation `v`. A positive diagonal
//!   proves the II infeasible before any search.
//! * **SCC-block ordering.** Operations are scheduled one strongly
//!   connected component at a time, components in topological order of the
//!   condensation, within a component by MinDist-to-STOP height. Every
//!   cross-component edge therefore runs from a scheduled to an
//!   unscheduled operation, which makes the windows below *complete*.
//! * **Finite windows.** A non-first member of a component has a
//!   scheduled component-mate on a cycle with it, so its window is finite
//!   in both directions. For the first member `v` of a component, any
//!   feasible completion can be shifted down by whole multiples of the II
//!   (cross-component constraints are lower bounds only, and the modulo
//!   reservation rows are invariant under ±II shifts) until some member
//!   `m` is within II−1 of its own dependence lower bound `lb(m)`; hence
//!   `t_v ≤ max_m (lb(m) + II − 1 − MinDist[v,m])` and the window is
//!   finite — exactly II slots for a singleton component.
//! * **MRT conflict pruning.** A slot/alternative pair is branched on
//!   only if the modulo reservation table admits it ([`Mrt::conflicts`]).
//! * **Failed-state memoization.** When a subtree is exhausted without a
//!   schedule, the state is recorded under an *exact* key — depth, the
//!   times of every scheduled operation still related (via MinDist, in
//!   either direction) to some unscheduled one, and the MRT occupancy
//!   bitmask. Equal keys have identical remaining subproblems, so a hit
//!   is a sound infeasibility proof; no hash-collision pruning is
//!   performed, and when the table reaches its capacity it simply stops
//!   growing (still sound, just fewer hits).
//!
//! Search effort is metered in **nodes** (placements tried). The caller
//! supplies a node budget and an optional wall-clock deadline; exceeding
//! either aborts the search with [`SearchResult::LimitHit`], in which case
//! infeasibility has *not* been proven.

use std::collections::HashSet;
use std::time::Instant;

use ims_core::{Mrt, Problem, Schedule};
use ims_graph::{sccs, MinDist, MinDistSolver, NodeId, NEG_INF};
use ims_prof::{phase, ProfSink};

/// Outcome of one exhaustive (or aborted) search at a fixed II.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum SearchResult {
    /// A legal schedule exists at this II; here is one.
    Found(Schedule),
    /// No legal schedule exists at this II (proven exhaustively).
    Infeasible,
    /// The node budget or deadline ran out; feasibility is unknown.
    LimitHit,
}

/// Memoization key for a failed partial schedule. Exact equality only —
/// two states with equal keys have identical sets of feasible
/// completions, so membership is a sound infeasibility proof.
#[derive(PartialEq, Eq, Hash)]
struct MemoKey {
    depth: u32,
    /// Times of the scheduled operations still MinDist-related to some
    /// unscheduled operation, in scheduling order.
    times: Box<[i64]>,
    /// MRT occupancy bitset (a copy of [`Mrt::occupancy_words`]).
    occ: Box<[u64]>,
}

/// Cap on memo entries; beyond this the table stops growing (sound).
const MEMO_CAP: usize = 1 << 20;

/// How often (in nodes) the wall-clock deadline is polled.
const DEADLINE_STRIDE: u64 = 0xFF;

struct Dfs<'a, 'm> {
    problem: &'a Problem<'m>,
    md: &'a MinDist,
    order: &'a [NodeId],
    /// For the first-scheduled member of each SCC: the component's real
    /// operations (including itself); `None` for later members.
    first_members: &'a [Option<Vec<NodeId>>],
    /// Per depth: positions (into `order`) of scheduled operations still
    /// related to an unscheduled one — the memo key's time vector.
    relevant: &'a [Vec<usize>],
    ii: i64,
    start: NodeId,
    /// The MRT maintains its own occupancy bitset; memo keys copy it via
    /// [`Mrt::occupancy_words`], and probes AND the machine's precompiled
    /// conflict masks against it.
    mrt: Mrt,
    time: Vec<i64>,
    alt: Vec<usize>,
    nodes: u64,
    node_budget: u64,
    deadline: Option<Instant>,
    memo: HashSet<MemoKey>,
    /// Deterministic search statistics, flushed to the caller's
    /// [`ProfSink`] when the search returns.
    memo_hits: u64,
    memo_inserts: u64,
    prune_window: u64,
    prune_mrt: u64,
}

impl Dfs<'_, '_> {
    /// The feasible issue window for the operation at `depth`, or `None`
    /// when the dependence constraints alone rule every slot out.
    fn window(&self, depth: usize) -> Option<(i64, i64)> {
        let v = self.order[depth];
        let mut lo = 0i64;
        let mut hi = i64::MAX / 4;
        let d_sv = self.md.get(self.start, v); // START issues at 0
        if d_sv > lo {
            lo = d_sv;
        }
        for p in 0..depth {
            let u = self.order[p];
            let tu = self.time[u.index()];
            let duv = self.md.get(u, v);
            if duv != NEG_INF && tu + duv > lo {
                lo = tu + duv;
            }
            let dvu = self.md.get(v, u);
            if dvu != NEG_INF && tu - dvu < hi {
                hi = tu - dvu;
            }
        }
        if let Some(members) = &self.first_members[depth] {
            // Shift-by-II completeness cap (see module docs): a feasible
            // completion can be slid down until some member m sits within
            // II−1 of its dependence lower bound.
            let mut cap = i64::MIN;
            for &m in members {
                let mut lbm = 0i64;
                let dsm = self.md.get(self.start, m);
                if dsm > lbm {
                    lbm = dsm;
                }
                for p in 0..depth {
                    let u = self.order[p];
                    let dum = self.md.get(u, m);
                    if dum != NEG_INF && self.time[u.index()] + dum > lbm {
                        lbm = self.time[u.index()] + dum;
                    }
                }
                let t = if m == v {
                    lbm + self.ii - 1
                } else {
                    lbm + self.ii - 1 - self.md.get(v, m)
                };
                if t > cap {
                    cap = t;
                }
            }
            if cap < hi {
                hi = cap;
            }
        }
        debug_assert!(hi < i64::MAX / 8, "window never left unbounded");
        if lo > hi {
            None
        } else {
            Some((lo, hi))
        }
    }

    fn memo_key(&self, depth: usize) -> MemoKey {
        MemoKey {
            depth: depth as u32,
            times: self.relevant[depth]
                .iter()
                .map(|&p| self.time[self.order[p].index()])
                .collect(),
            occ: self.mrt.occupancy_words().into(),
        }
    }

    fn note_failed(&mut self, depth: usize) {
        if depth > 0 && self.memo.len() < MEMO_CAP {
            let key = self.memo_key(depth);
            if self.memo.insert(key) {
                self.memo_inserts += 1;
            }
        }
    }

    fn place(&mut self, v: NodeId, ai: usize, t: i64) {
        let problem = self.problem;
        let mask = problem.info(v).expect("order holds real operations").alternatives[ai].mask();
        self.mrt.place(v, mask, t);
        self.time[v.index()] = t;
        self.alt[v.index()] = ai;
    }

    fn unplace(&mut self, v: NodeId, ai: usize, t: i64) {
        let problem = self.problem;
        let mask = problem.info(v).expect("order holds real operations").alternatives[ai].mask();
        self.mrt.remove(v, mask, t);
    }

    /// `Some(true)`: schedule found (placements left in `time`/`alt`).
    /// `Some(false)`: subtree exhausted, no schedule. `None`: limit hit.
    fn dfs(&mut self, depth: usize) -> Option<bool> {
        if depth == self.order.len() {
            return Some(true);
        }
        if depth > 0 && self.memo.contains(&self.memo_key(depth)) {
            self.memo_hits += 1;
            return Some(false);
        }
        let Some((lo, hi)) = self.window(depth) else {
            self.prune_window += 1;
            self.note_failed(depth);
            return Some(false);
        };
        let v = self.order[depth];
        let n_alts = self
            .problem
            .info(v)
            .expect("order holds real operations")
            .alternatives
            .len();
        for t in lo..=hi {
            for ai in 0..n_alts {
                let mask =
                    self.problem.info(v).expect("real operation").alternatives[ai].mask();
                if self.mrt.conflicts(mask, t) {
                    self.prune_mrt += 1;
                    continue;
                }
                self.nodes += 1;
                if self.nodes > self.node_budget
                    || (self.nodes & DEADLINE_STRIDE) == 0 && self.deadline_passed()
                {
                    return None;
                }
                self.place(v, ai, t);
                let sub = self.dfs(depth + 1);
                match sub {
                    Some(true) => return Some(true),
                    Some(false) => self.unplace(v, ai, t),
                    None => {
                        self.unplace(v, ai, t);
                        return None;
                    }
                }
            }
        }
        self.note_failed(depth);
        Some(false)
    }

    fn deadline_passed(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

/// Exhaustively decides feasibility of `problem` at candidate `ii`,
/// spending at most `node_budget` placement attempts (and respecting
/// `deadline`, polled every few hundred nodes and once on entry).
/// Returns the result plus the nodes actually spent.
///
/// Deterministic search statistics — nodes, memoization hits/inserts,
/// prune reasons, MinDist/SCC/MRT work — flow into `prof` under their
/// [`phase`] names; pass `&mut NullSink` to discard them.
pub(crate) fn search_ii<P: ProfSink>(
    problem: &Problem<'_>,
    ii: i64,
    node_budget: u64,
    deadline: Option<Instant>,
    prof: &mut P,
) -> (SearchResult, u64) {
    if deadline.is_some_and(|d| Instant::now() >= d) {
        return (SearchResult::LimitHit, 0);
    }
    let graph = problem.graph();
    let all: Vec<NodeId> = graph.nodes().collect();
    let md = MinDistSolver::new(graph, &all).solve(ii, &mut *prof);
    if !md.feasible() {
        // A positive MinDist diagonal is already a proof: no schedule
        // exists at this II regardless of resources.
        return (SearchResult::Infeasible, 0);
    }

    let start = problem.start();
    let stop = problem.stop();
    let info = sccs(graph, &mut *prof);

    // Scheduling order: SCC blocks in topological (sources-first) order
    // of the condensation; within a block by MinDist-to-STOP height
    // descending, ties to the smaller node id.
    let mut order: Vec<NodeId> = Vec::new();
    let mut first_members: Vec<Option<Vec<NodeId>>> = Vec::new();
    for comp in info.topological() {
        let mut ops: Vec<NodeId> = comp
            .iter()
            .copied()
            .filter(|&v| v != start && v != stop)
            .collect();
        if ops.is_empty() {
            continue;
        }
        ops.sort_by(|&a, &b| md.get(b, stop).cmp(&md.get(a, stop)).then(a.cmp(&b)));
        for (k, &v) in ops.iter().enumerate() {
            first_members.push(if k == 0 { Some(ops.clone()) } else { None });
            order.push(v);
        }
    }
    let n = order.len();

    // Memo relevance: at depth d, a scheduled position p matters iff it
    // is still MinDist-related (either direction) to some operation not
    // yet scheduled.
    let related = |a: NodeId, b: NodeId| md.get(a, b) != NEG_INF || md.get(b, a) != NEG_INF;
    let mut relevant: Vec<Vec<usize>> = Vec::with_capacity(n + 1);
    for d in 0..=n {
        let mut rel = Vec::new();
        for p in 0..d {
            if (d..n).any(|q| related(order[p], order[q])) {
                rel.push(p);
            }
        }
        relevant.push(rel);
    }

    let nres = problem.machine().num_resources();
    let mut dfs = Dfs {
        problem,
        md: &md,
        order: &order,
        first_members: &first_members,
        relevant: &relevant,
        ii,
        start,
        mrt: Mrt::new(ii, nres),
        time: vec![0i64; graph.num_nodes()],
        alt: vec![0usize; graph.num_nodes()],
        nodes: 0,
        node_budget,
        deadline,
        memo: HashSet::new(),
        memo_hits: 0,
        memo_inserts: 0,
        prune_window: 0,
        prune_mrt: 0,
    };

    let outcome = dfs.dfs(0);

    prof.count(phase::EXACT_NODES, dfs.nodes);
    prof.count(phase::EXACT_MEMO_HITS, dfs.memo_hits);
    prof.count(phase::EXACT_MEMO_INSERTS, dfs.memo_inserts);
    prof.count(phase::EXACT_PRUNE_WINDOW, dfs.prune_window);
    prof.count(phase::EXACT_PRUNE_MRT, dfs.prune_mrt);
    prof.count(phase::MACHINE_MRT_PROBES, dfs.mrt.probes());

    match outcome {
        Some(true) => {
            let mut time = dfs.time;
            let alternative = dfs.alt;
            time[start.index()] = 0;
            // STOP is resource-free: place it at the earliest slot every
            // incoming dependence admits (clamped at 0).
            let mut t_stop = 0i64;
            for e in graph.preds(stop) {
                if e.from == stop {
                    continue;
                }
                let tf = time[e.from.index()];
                let term = tf + e.delay - ii * e.distance as i64;
                if term > t_stop {
                    t_stop = term;
                }
            }
            time[stop.index()] = t_stop;
            (
                SearchResult::Found(Schedule {
                    ii,
                    time,
                    alternative,
                    length: t_stop,
                }),
                dfs.nodes,
            )
        }
        Some(false) => (SearchResult::Infeasible, dfs.nodes),
        None => (SearchResult::LimitHit, dfs.nodes),
    }
}
