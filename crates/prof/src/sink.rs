//! The zero-cost instrumentation seam.
//!
//! Hot loops (MinDist relaxation, the branch-and-bound search, …) are
//! generic over a [`ProfSink`] and monomorphized per sink type, exactly
//! like the scheduler's `SchedObserver` seam: a real sink (the
//! [`MetricsRegistry`](crate::MetricsRegistry)) aggregates phase-keyed
//! metrics, while the `u64` impl reduces `sink.count(PHASE, n)` to the
//! `*work += n` the code performed before the seam existed — the phase
//! name is a compile-time constant the optimizer drops. Instrumentation
//! therefore costs nothing unless a profile was requested.

/// Receiver for deterministic work metrics, keyed by the `'static` phase
/// names in [`phase`](crate::phase).
pub trait ProfSink {
    /// Adds `n` to the counter for `phase`.
    fn count(&mut self, phase: &'static str, n: u64);

    /// Records one observation of `value` in the histogram for `phase`.
    /// Counter-only sinks (e.g. `u64`) ignore this.
    fn record(&mut self, phase: &'static str, value: i64) {
        let _ = (phase, value);
    }
}

/// A sink that discards everything (the profiling analogue of the
/// scheduler's `NullObserver`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl ProfSink for NullSink {
    #[inline(always)]
    fn count(&mut self, _phase: &'static str, _n: u64) {}
}

/// A plain work counter is a sink that ignores the phase key. This is
/// what lets `sccs(graph, &mut counters.scc_work)` keep compiling — the
/// pre-existing `&mut u64` threading *is* the null-cost hook.
impl ProfSink for u64 {
    #[inline(always)]
    fn count(&mut self, _phase: &'static str, n: u64) {
        *self += n;
    }
}

/// Forwarding impl so a borrowed sink can be handed down call chains.
impl<P: ProfSink + ?Sized> ProfSink for &mut P {
    #[inline(always)]
    fn count(&mut self, phase: &'static str, n: u64) {
        (**self).count(phase, n);
    }
    #[inline(always)]
    fn record(&mut self, phase: &'static str, value: i64) {
        (**self).record(phase, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_sink_sums_and_ignores_records() {
        let mut w = 0u64;
        w.count("any.phase", 3);
        w.count("other.phase", 4);
        w.record("any.phase", 99);
        assert_eq!(w, 7);
    }

    #[test]
    fn null_sink_discards() {
        let mut s = NullSink;
        s.count("x", 1);
        s.record("x", 1);
    }

    #[test]
    fn forwarding_reaches_the_inner_sink() {
        fn generic<P: ProfSink>(mut p: P) {
            p.count("a", 2);
        }
        let mut w = 0u64;
        generic(&mut w);
        generic(&mut &mut w);
        assert_eq!(w, 4);
    }
}
