//! The phase-name registry.
//!
//! Every metric the pipeline emits is keyed by one of these `'static`
//! names, namespaced `<crate>.<activity>[.<detail>]`. Keeping the names
//! here (rather than scattered string literals) gives snapshots a stable,
//! documented schema: `profile_report` and `benchdiff` can describe any
//! phase they encounter, and DESIGN.md §5c documents the same list.

/// What kind of metric a phase name keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseKind {
    /// A deterministic work counter (monotonic sum).
    Counter,
    /// A deterministic per-event distribution ([`ims_stats::Histogram`]).
    Hist,
    /// A wall-clock span distribution (non-deterministic; kept in the
    /// snapshot's separate `wall` section).
    Wall,
}

/// One documented phase name.
#[derive(Debug, Clone, Copy)]
pub struct PhaseDesc {
    /// The registry key.
    pub name: &'static str,
    /// The metric kind.
    pub kind: PhaseKind,
    /// One-line description, shown by `profile_report`.
    pub what: &'static str,
}

// ---- graph ----
/// SCC identification work: nodes visited + edges examined.
pub const GRAPH_SCC_WORK: &str = "graph.scc.work";
/// MinDist relaxations: innermost-loop executions of `ComputeMinDist`.
pub const GRAPH_MINDIST_WORK: &str = "graph.mindist.work";
/// Elementary-circuit enumeration: path-extension steps in Tiernan's
/// search.
pub const GRAPH_CIRCUITS_WORK: &str = "graph.circuits.work";

// ---- machine / MRT ----
/// Reservation-table cells examined by modulo-reservation-table queries
/// (each conflict probe costs the probing table's full footprint,
/// independent of early exit, so the count is deterministic).
pub const MACHINE_MRT_PROBES: &str = "machine.mrt.probes";

// ---- iterative scheduler (ims-core) ----
/// ResMII bin-packing: resource usages inspected.
pub const SCHED_RESMII_WORK: &str = "sched.resmii.work";
/// HeightR priority computation: edge relaxations.
pub const SCHED_HEIGHTR_WORK: &str = "sched.heightr.work";
/// Estart computation: immediate predecessors examined.
pub const SCHED_ESTART_PREDS: &str = "sched.estart.preds";
/// FindTimeSlot: candidate time slots examined.
pub const SCHED_FINDSLOT_ITERS: &str = "sched.findslot.iters";
/// Operations displaced by the §3.4 eviction policy.
pub const SCHED_EVICTIONS: &str = "sched.evictions";
/// Real-operation scheduling steps across all II attempts.
pub const SCHED_STEPS: &str = "sched.steps";
/// Candidate-II attempts started.
pub const SCHED_ATTEMPTS: &str = "sched.attempts";
/// Candidate-II attempts that ran out of budget.
pub const SCHED_ATTEMPTS_FAILED: &str = "sched.attempts.failed";

// ---- exact branch-and-bound (ims-exact) ----
/// Branch-and-bound nodes expanded (placements tried).
pub const EXACT_NODES: &str = "exact.bnb.nodes";
/// Failed-state memoization hits (subtrees skipped).
pub const EXACT_MEMO_HITS: &str = "exact.memo.hits";
/// Failed-state memoization entries inserted.
pub const EXACT_MEMO_INSERTS: &str = "exact.memo.inserts";
/// Subtrees pruned because the MinDist window was empty.
pub const EXACT_PRUNE_WINDOW: &str = "exact.prune.window";
/// Slot/alternative pairs skipped on MRT conflicts.
pub const EXACT_PRUNE_MRT: &str = "exact.prune.mrt";
/// Candidate IIs searched exhaustively.
pub const EXACT_IIS_SEARCHED: &str = "exact.iis.searched";
/// Candidate IIs proven infeasible (before resources, by a positive
/// MinDist diagonal, or exhaustively).
pub const EXACT_IIS_INFEASIBLE: &str = "exact.iis.infeasible";
/// Searches aborted by the node budget or deadline.
pub const EXACT_LIMIT_HITS: &str = "exact.limit.hits";

// ---- exact SAT backend (ims-sat) ----
/// CNF variables allocated across all per-II encodings.
pub const SAT_VARS: &str = "sat.vars";
/// CNF clauses added across all per-II encodings (original, not learned).
pub const SAT_CLAUSES: &str = "sat.clauses";
/// CDCL conflicts analyzed.
pub const SAT_CONFLICTS: &str = "sat.conflicts";
/// CDCL decisions made.
pub const SAT_DECISIONS: &str = "sat.decisions";
/// Unit propagations performed.
pub const SAT_PROPAGATIONS: &str = "sat.propagations";
/// Solver restarts (Luby schedule).
pub const SAT_RESTARTS: &str = "sat.restarts";
/// Candidate IIs decided by the SAT backend.
pub const SAT_IIS_SEARCHED: &str = "sat.iis.searched";
/// Candidate IIs the SAT backend proved infeasible.
pub const SAT_IIS_INFEASIBLE: &str = "sat.iis.infeasible";
/// Decisions aborted by the conflict/clause/slot caps.
pub const SAT_LIMIT_HITS: &str = "sat.limit.hits";

// ---- backend portfolio (ims-core) ----
/// Portfolio races run (one per scheduled problem).
pub const PORTFOLIO_RUNS: &str = "portfolio.runs";
/// Races won by the iterative backend (lowest II, ties by member order).
pub const PORTFOLIO_WINS_IMS: &str = "portfolio.wins.ims";
/// Races won by the branch-and-bound backend.
pub const PORTFOLIO_WINS_EXACT: &str = "portfolio.wins.exact";
/// Races won by the SAT backend.
pub const PORTFOLIO_WINS_SAT: &str = "portfolio.wins.sat";

// ---- register pressure (ims-press) ----
/// Lifetime-interval applications/removals by the incremental MaxLive
/// tracker (each costs O(lifetime length) row updates).
pub const PRESS_MAXLIVE_UPDATES: &str = "press.maxlive.updates";
/// Placements vetoed for exceeding the pressure limit (`FindTimeSlot`
/// treats the slot as a resource conflict and keeps searching).
pub const PRESS_REJECTS: &str = "press.rejects";
/// Completed attempts rejected for pressure (MaxLive or rotating fit),
/// each bumping the candidate II.
pub const PRESS_II_BUMPS: &str = "press.ii_bumps";

// ---- code generation (ims-codegen) ----
/// Instructions emitted (prologue + unrolled kernel + coda).
pub const CODEGEN_INSTS: &str = "codegen.insts";
/// Kernel unroll factors (summed over loops).
pub const CODEGEN_UNROLL: &str = "codegen.unroll";
/// Kernel stage counts (summed over loops).
pub const CODEGEN_STAGES: &str = "codegen.stages";
/// Registers preloaded before the first instruction.
pub const CODEGEN_SEEDS: &str = "codegen.seeds";
/// Static register names created by modulo variable expansion.
pub const CODEGEN_LIFETIME_NAMES: &str = "codegen.lifetime.names";

// ---- VLIW simulation (ims-vliw) ----
/// Simulated machine cycles executed.
pub const VLIW_SIM_CYCLES: &str = "vliw.sim.cycles";
/// Loops simulated to completion.
pub const VLIW_SIM_LOOPS: &str = "vliw.sim.loops";
/// Simulations that returned a `SimError`.
pub const VLIW_SIM_ERRORS: &str = "vliw.sim.errors";

// ---- harness ----
/// Corpus loops measured.
pub const CORPUS_LOOPS: &str = "corpus.loops";
/// Real operations across all measured loops.
pub const CORPUS_OPS: &str = "corpus.ops";

// ---- scheduling service (ims-serve) ----
/// Requests answered by the scheduling service (one per input line).
pub const SERVE_REQUESTS: &str = "serve.requests";
/// Responses served from a pre-existing content-addressed cache entry.
pub const SERVE_CACHE_HITS: &str = "serve.cache.hits";
/// Responses that required scheduling a new canonical problem.
pub const SERVE_CACHE_MISSES: &str = "serve.cache.misses";
/// Responses with `ok:false` (parse rejections, scheduling errors,
/// contained worker panics).
pub const SERVE_FAILED: &str = "serve.requests.failed";

// ---- II-attribution diagnostics (ims-explain) ----
/// Loops explained (MII attributed, trace mined when available).
pub const EXPLAIN_LOOPS: &str = "explain.loops";
/// Loops whose MII is purely resource-bound (ResMII > RecMII).
pub const EXPLAIN_BOUND_RES: &str = "explain.bound.res";
/// Loops whose MII is purely recurrence-bound (RecMII > ResMII).
pub const EXPLAIN_BOUND_REC: &str = "explain.bound.rec";
/// Loops where both bounds tie (ResMII == RecMII == MII).
pub const EXPLAIN_BOUND_BOTH: &str = "explain.bound.both";
/// Loops that converged strictly above their MII (an attributable gap).
pub const EXPLAIN_GAP_LOOPS: &str = "explain.gap.loops";
/// Scheduling steps spent on failed II attempts, summed over explained
/// loops (the "wasted budget" the concentration report ranks by).
pub const EXPLAIN_WASTED_STEPS: &str = "explain.wasted.steps";
/// Recurrence-bound loops whose circuit enumeration hit its cap, falling
/// back to the MinDist critical-node set for attribution.
pub const EXPLAIN_CIRCUITS_TRUNCATED: &str = "explain.circuits.truncated";

// ---- deterministic distributions ----
/// Slots examined per `FindTimeSlot` call (per real operation placement).
pub const HIST_SLOT_SEARCH: &str = "sched.slot_search.iters";
/// Predecessor edges examined per Estart computation.
pub const HIST_ESTART_PREDS: &str = "sched.estart.preds_per_op";

// ---- wall-clock spans (non-deterministic section) ----
/// Back-substitution + dependence-graph construction, per loop.
pub const WALL_BUILD: &str = "build";
/// Iterative (or internal heuristic) scheduling, per loop.
pub const WALL_SCHED: &str = "sched";
/// Exact branch-and-bound scheduling, per loop.
pub const WALL_EXACT: &str = "exact";
/// Exact SAT scheduling, per loop.
pub const WALL_SAT: &str = "sat";
/// Lifetime analysis + MVE code generation, per loop.
pub const WALL_CODEGEN: &str = "codegen";
/// Overlapped VLIW simulation, per loop.
pub const WALL_VLIW: &str = "vliw.sim";
/// Whole per-loop pipeline (all of the above).
pub const WALL_LOOP: &str = "loop.total";

/// Every documented phase, in rendering order.
pub const REGISTRY: &[PhaseDesc] = &[
    PhaseDesc { name: GRAPH_SCC_WORK, kind: PhaseKind::Counter, what: "SCC identification: nodes visited + edges examined" },
    PhaseDesc { name: GRAPH_MINDIST_WORK, kind: PhaseKind::Counter, what: "MinDist relaxations (ComputeMinDist innermost loop)" },
    PhaseDesc { name: GRAPH_CIRCUITS_WORK, kind: PhaseKind::Counter, what: "elementary-circuit enumeration steps (Tiernan)" },
    PhaseDesc { name: MACHINE_MRT_PROBES, kind: PhaseKind::Counter, what: "reservation-table cells examined by MRT queries" },
    PhaseDesc { name: SCHED_RESMII_WORK, kind: PhaseKind::Counter, what: "ResMII bin-packing: resource usages inspected" },
    PhaseDesc { name: SCHED_HEIGHTR_WORK, kind: PhaseKind::Counter, what: "HeightR priority: edge relaxations" },
    PhaseDesc { name: SCHED_ESTART_PREDS, kind: PhaseKind::Counter, what: "Estart: immediate predecessors examined" },
    PhaseDesc { name: SCHED_FINDSLOT_ITERS, kind: PhaseKind::Counter, what: "FindTimeSlot: candidate slots examined" },
    PhaseDesc { name: SCHED_EVICTIONS, kind: PhaseKind::Counter, what: "operations displaced (§3.4 eviction policy)" },
    PhaseDesc { name: SCHED_STEPS, kind: PhaseKind::Counter, what: "operation-scheduling steps, all II attempts" },
    PhaseDesc { name: SCHED_ATTEMPTS, kind: PhaseKind::Counter, what: "candidate-II attempts started" },
    PhaseDesc { name: SCHED_ATTEMPTS_FAILED, kind: PhaseKind::Counter, what: "candidate-II attempts that exhausted their budget" },
    PhaseDesc { name: EXACT_NODES, kind: PhaseKind::Counter, what: "branch-and-bound nodes expanded" },
    PhaseDesc { name: EXACT_MEMO_HITS, kind: PhaseKind::Counter, what: "failed-state memo hits" },
    PhaseDesc { name: EXACT_MEMO_INSERTS, kind: PhaseKind::Counter, what: "failed-state memo inserts" },
    PhaseDesc { name: EXACT_PRUNE_WINDOW, kind: PhaseKind::Counter, what: "subtrees pruned on an empty MinDist window" },
    PhaseDesc { name: EXACT_PRUNE_MRT, kind: PhaseKind::Counter, what: "slot/alternative pairs skipped on MRT conflicts" },
    PhaseDesc { name: EXACT_IIS_SEARCHED, kind: PhaseKind::Counter, what: "candidate IIs searched exhaustively" },
    PhaseDesc { name: EXACT_IIS_INFEASIBLE, kind: PhaseKind::Counter, what: "candidate IIs proven infeasible" },
    PhaseDesc { name: EXACT_LIMIT_HITS, kind: PhaseKind::Counter, what: "searches aborted by budget or deadline" },
    PhaseDesc { name: SAT_VARS, kind: PhaseKind::Counter, what: "CNF variables allocated (all per-II encodings)" },
    PhaseDesc { name: SAT_CLAUSES, kind: PhaseKind::Counter, what: "CNF clauses added (original, not learned)" },
    PhaseDesc { name: SAT_CONFLICTS, kind: PhaseKind::Counter, what: "CDCL conflicts analyzed" },
    PhaseDesc { name: SAT_DECISIONS, kind: PhaseKind::Counter, what: "CDCL decisions made" },
    PhaseDesc { name: SAT_PROPAGATIONS, kind: PhaseKind::Counter, what: "unit propagations performed" },
    PhaseDesc { name: SAT_RESTARTS, kind: PhaseKind::Counter, what: "solver restarts (Luby schedule)" },
    PhaseDesc { name: SAT_IIS_SEARCHED, kind: PhaseKind::Counter, what: "candidate IIs decided by SAT" },
    PhaseDesc { name: SAT_IIS_INFEASIBLE, kind: PhaseKind::Counter, what: "candidate IIs proven infeasible by SAT" },
    PhaseDesc { name: SAT_LIMIT_HITS, kind: PhaseKind::Counter, what: "SAT decisions aborted by conflict/clause/slot caps" },
    PhaseDesc { name: PORTFOLIO_RUNS, kind: PhaseKind::Counter, what: "portfolio races run" },
    PhaseDesc { name: PORTFOLIO_WINS_IMS, kind: PhaseKind::Counter, what: "portfolio races won by the iterative backend" },
    PhaseDesc { name: PORTFOLIO_WINS_EXACT, kind: PhaseKind::Counter, what: "portfolio races won by branch-and-bound" },
    PhaseDesc { name: PORTFOLIO_WINS_SAT, kind: PhaseKind::Counter, what: "portfolio races won by the SAT backend" },
    PhaseDesc { name: PRESS_MAXLIVE_UPDATES, kind: PhaseKind::Counter, what: "lifetime-interval updates by the MaxLive tracker" },
    PhaseDesc { name: PRESS_REJECTS, kind: PhaseKind::Counter, what: "placements vetoed for exceeding the pressure limit" },
    PhaseDesc { name: PRESS_II_BUMPS, kind: PhaseKind::Counter, what: "attempts rejected for pressure, bumping the II" },
    PhaseDesc { name: CODEGEN_INSTS, kind: PhaseKind::Counter, what: "instructions emitted (prologue+kernel+coda)" },
    PhaseDesc { name: CODEGEN_UNROLL, kind: PhaseKind::Counter, what: "kernel unroll factors (summed)" },
    PhaseDesc { name: CODEGEN_STAGES, kind: PhaseKind::Counter, what: "kernel stage counts (summed)" },
    PhaseDesc { name: CODEGEN_SEEDS, kind: PhaseKind::Counter, what: "preloaded registers" },
    PhaseDesc { name: CODEGEN_LIFETIME_NAMES, kind: PhaseKind::Counter, what: "static names created by MVE" },
    PhaseDesc { name: VLIW_SIM_CYCLES, kind: PhaseKind::Counter, what: "simulated machine cycles" },
    PhaseDesc { name: VLIW_SIM_LOOPS, kind: PhaseKind::Counter, what: "loops simulated to completion" },
    PhaseDesc { name: VLIW_SIM_ERRORS, kind: PhaseKind::Counter, what: "simulations returning SimError" },
    PhaseDesc { name: SERVE_REQUESTS, kind: PhaseKind::Counter, what: "service requests answered" },
    PhaseDesc { name: SERVE_CACHE_HITS, kind: PhaseKind::Counter, what: "responses served from the content-addressed cache" },
    PhaseDesc { name: SERVE_CACHE_MISSES, kind: PhaseKind::Counter, what: "responses that scheduled a new canonical problem" },
    PhaseDesc { name: SERVE_FAILED, kind: PhaseKind::Counter, what: "ok:false responses (parse/schedule/panic failures)" },
    PhaseDesc { name: CORPUS_LOOPS, kind: PhaseKind::Counter, what: "corpus loops measured" },
    PhaseDesc { name: CORPUS_OPS, kind: PhaseKind::Counter, what: "real operations across measured loops" },
    PhaseDesc { name: EXPLAIN_LOOPS, kind: PhaseKind::Counter, what: "loops explained (MII attributed, trace mined)" },
    PhaseDesc { name: EXPLAIN_BOUND_RES, kind: PhaseKind::Counter, what: "loops purely resource-bound (ResMII > RecMII)" },
    PhaseDesc { name: EXPLAIN_BOUND_REC, kind: PhaseKind::Counter, what: "loops purely recurrence-bound (RecMII > ResMII)" },
    PhaseDesc { name: EXPLAIN_BOUND_BOTH, kind: PhaseKind::Counter, what: "loops where ResMII and RecMII tie" },
    PhaseDesc { name: EXPLAIN_GAP_LOOPS, kind: PhaseKind::Counter, what: "loops converging strictly above their MII" },
    PhaseDesc { name: EXPLAIN_WASTED_STEPS, kind: PhaseKind::Counter, what: "steps spent on failed II attempts (explained loops)" },
    PhaseDesc { name: EXPLAIN_CIRCUITS_TRUNCATED, kind: PhaseKind::Counter, what: "circuit enumerations truncated (MinDist fallback)" },
    PhaseDesc { name: HIST_SLOT_SEARCH, kind: PhaseKind::Hist, what: "slots examined per FindTimeSlot call" },
    PhaseDesc { name: HIST_ESTART_PREDS, kind: PhaseKind::Hist, what: "predecessors examined per Estart computation" },
    PhaseDesc { name: WALL_BUILD, kind: PhaseKind::Wall, what: "back-substitution + graph construction" },
    PhaseDesc { name: WALL_SCHED, kind: PhaseKind::Wall, what: "iterative scheduling" },
    PhaseDesc { name: WALL_EXACT, kind: PhaseKind::Wall, what: "exact branch-and-bound scheduling" },
    PhaseDesc { name: WALL_SAT, kind: PhaseKind::Wall, what: "exact SAT scheduling" },
    PhaseDesc { name: WALL_CODEGEN, kind: PhaseKind::Wall, what: "lifetimes + MVE code generation" },
    PhaseDesc { name: WALL_VLIW, kind: PhaseKind::Wall, what: "overlapped VLIW simulation" },
    PhaseDesc { name: WALL_LOOP, kind: PhaseKind::Wall, what: "whole per-loop pipeline" },
];

/// Looks up the description of a phase name, if documented.
pub fn describe(name: &str) -> Option<&'static PhaseDesc> {
    REGISTRY.iter().find(|d| d.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_describable() {
        for (i, d) in REGISTRY.iter().enumerate() {
            assert!(
                REGISTRY[i + 1..].iter().all(|o| o.name != d.name),
                "duplicate phase name {}",
                d.name
            );
            assert_eq!(describe(d.name).unwrap().name, d.name);
            assert!(!d.what.is_empty());
        }
        assert!(describe("no.such.phase").is_none());
    }
}
