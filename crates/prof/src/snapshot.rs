//! Versioned `BENCH_<name>.json` profile snapshots.
//!
//! A snapshot is a small, stable JSON document with the **deterministic
//! sections first** (counters, gauges, histogram summaries — byte-
//! identical for any `--threads` value) and the **wall section last**
//! (span counts and p50/p90/p99 percentiles in nanoseconds — machine- and
//! run-dependent). The split is load-bearing: determinism tests and
//! `scripts/verify.sh` byte-compare [`deterministic_section`] across
//! thread counts, while `benchdiff` applies generous thresholds to the
//! wall section only.
//!
//! Parsing is done by a ~100-line recursive-descent JSON reader so the
//! workspace stays dependency-free; it accepts any well-formed JSON
//! object of the snapshot shape (unknown keys are ignored, so the schema
//! can grow).

use std::collections::BTreeMap;

use crate::registry::MetricsRegistry;

/// Current snapshot schema version, rendered as `bench_schema`.
pub const SCHEMA_VERSION: u64 = 1;

/// Percentile summary of a deterministic histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: i128,
    /// 50th/90th/99th percentiles (nearest rank) and the maximum.
    pub p50: i64,
    /// 90th percentile.
    pub p90: i64,
    /// 99th percentile.
    pub p99: i64,
    /// Largest observation.
    pub max: i64,
}

/// Percentile summary of a wall-clock span histogram (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WallSummary {
    /// Number of spans recorded.
    pub spans: u64,
    /// Total nanoseconds across all spans.
    pub total_ns: i128,
    /// 50th percentile span, ns.
    pub p50_ns: i64,
    /// 90th percentile span, ns.
    pub p90_ns: i64,
    /// 99th percentile span, ns.
    pub p99_ns: i64,
    /// Longest span, ns.
    pub max_ns: i64,
}

/// A parsed (or freshly built) profile snapshot.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Schema version (`bench_schema`).
    pub schema: u64,
    /// Snapshot name (`BENCH_<name>.json`).
    pub name: String,
    /// Deterministic work counters by phase.
    pub counters: BTreeMap<String, u64>,
    /// Deterministic gauges by phase.
    pub gauges: BTreeMap<String, i64>,
    /// Deterministic histogram summaries by phase.
    pub histograms: BTreeMap<String, HistSummary>,
    /// Wall-clock span summaries by phase (non-deterministic).
    pub wall: BTreeMap<String, WallSummary>,
}

impl Snapshot {
    /// Summarizes a registry into a snapshot named `name`.
    pub fn from_registry(name: &str, reg: &MetricsRegistry) -> Snapshot {
        let mut s = Snapshot {
            schema: SCHEMA_VERSION,
            name: name.to_string(),
            ..Snapshot::default()
        };
        for (k, v) in reg.counters() {
            s.counters.insert(k.to_string(), v);
        }
        for (k, v) in reg.gauges() {
            s.gauges.insert(k.to_string(), v);
        }
        for (k, h) in reg.hists() {
            s.histograms.insert(
                k.to_string(),
                HistSummary {
                    count: h.total(),
                    sum: h.sum(),
                    p50: h.p50().unwrap_or(0),
                    p90: h.p90().unwrap_or(0),
                    p99: h.p99().unwrap_or(0),
                    max: h.max().unwrap_or(0),
                },
            );
        }
        for (k, h) in reg.walls() {
            s.wall.insert(
                k.to_string(),
                WallSummary {
                    spans: h.total(),
                    total_ns: h.sum(),
                    p50_ns: h.p50().unwrap_or(0),
                    p90_ns: h.p90().unwrap_or(0),
                    p99_ns: h.p99().unwrap_or(0),
                    max_ns: h.max().unwrap_or(0),
                },
            );
        }
        s
    }

    /// Renders the snapshot as pretty-printed JSON, deterministic
    /// sections first, keys in sorted order.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        out.push_str(&format!("  \"bench_schema\": {},\n", self.schema));
        out.push_str(&format!("  \"name\": \"{}\",\n", escape(&self.name)));
        out.push_str("  \"deterministic\": {\n");
        render_map(&mut out, "counters", &self.counters, 4, |v| v.to_string());
        out.push_str(",\n");
        render_map(&mut out, "gauges", &self.gauges, 4, |v| v.to_string());
        out.push_str(",\n");
        render_map(&mut out, "histograms", &self.histograms, 4, |h| {
            format!(
                "{{ \"count\": {}, \"sum\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {} }}",
                h.count, h.sum, h.p50, h.p90, h.p99, h.max
            )
        });
        out.push_str("\n  },\n");
        render_map(&mut out, "wall", &self.wall, 2, |w| {
            format!(
                "{{ \"spans\": {}, \"total_ns\": {}, \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}, \"max_ns\": {} }}",
                w.spans, w.total_ns, w.p50_ns, w.p90_ns, w.p99_ns, w.max_ns
            )
        });
        out.push_str("\n}\n");
        out
    }

    /// Parses a rendered snapshot.
    ///
    /// # Errors
    ///
    /// A human-readable message on malformed JSON or a missing/mistyped
    /// required field.
    pub fn parse(text: &str) -> Result<Snapshot, String> {
        let v = Json::parse(text)?;
        let top = v.as_obj().ok_or("snapshot is not a JSON object")?;
        let schema = get_num(top, "bench_schema")? as u64;
        let name = match top.get("name") {
            Some(Json::Str(s)) => s.clone(),
            _ => return Err("missing string field \"name\"".into()),
        };
        let det = top
            .get("deterministic")
            .and_then(Json::as_obj)
            .ok_or("missing object field \"deterministic\"")?;

        let mut s = Snapshot {
            schema,
            name,
            ..Snapshot::default()
        };
        if let Some(c) = det.get("counters").and_then(Json::as_obj) {
            for (k, v) in c {
                s.counters
                    .insert(k.clone(), v.as_num().ok_or("counter is not a number")? as u64);
            }
        }
        if let Some(g) = det.get("gauges").and_then(Json::as_obj) {
            for (k, v) in g {
                s.gauges
                    .insert(k.clone(), v.as_num().ok_or("gauge is not a number")? as i64);
            }
        }
        if let Some(hs) = det.get("histograms").and_then(Json::as_obj) {
            for (k, v) in hs {
                let o = v.as_obj().ok_or("histogram summary is not an object")?;
                s.histograms.insert(
                    k.clone(),
                    HistSummary {
                        count: get_num(o, "count")? as u64,
                        sum: get_num(o, "sum")?,
                        p50: get_num(o, "p50")? as i64,
                        p90: get_num(o, "p90")? as i64,
                        p99: get_num(o, "p99")? as i64,
                        max: get_num(o, "max")? as i64,
                    },
                );
            }
        }
        if let Some(ws) = top.get("wall").and_then(Json::as_obj) {
            for (k, v) in ws {
                let o = v.as_obj().ok_or("wall summary is not an object")?;
                s.wall.insert(
                    k.clone(),
                    WallSummary {
                        spans: get_num(o, "spans")? as u64,
                        total_ns: get_num(o, "total_ns")?,
                        p50_ns: get_num(o, "p50_ns")? as i64,
                        p90_ns: get_num(o, "p90_ns")? as i64,
                        p99_ns: get_num(o, "p99_ns")? as i64,
                        max_ns: get_num(o, "max_ns")? as i64,
                    },
                );
            }
        }
        Ok(s)
    }
}

/// Renders `name`'s registry as a snapshot document (the string written
/// to `BENCH_<name>.json`).
pub fn render_snapshot(name: &str, reg: &MetricsRegistry) -> String {
    Snapshot::from_registry(name, reg).render()
}

/// The deterministic slice of a rendered snapshot: everything from the
/// `"deterministic"` key up to (but excluding) the `"wall"` key. Two
/// profiled runs of the same work at different `--threads` values must
/// agree byte-for-byte on this slice; tests and `scripts/verify.sh`
/// compare exactly this.
pub fn deterministic_section(text: &str) -> Option<&str> {
    let start = text.find("\"deterministic\"")?;
    let end = text[start..].find("\"wall\"")? + start;
    Some(&text[start..end])
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn render_map<V>(
    out: &mut String,
    key: &str,
    map: &BTreeMap<String, V>,
    indent: usize,
    mut f: impl FnMut(&V) -> String,
) {
    let pad = " ".repeat(indent);
    if map.is_empty() {
        out.push_str(&format!("{pad}\"{key}\": {{}}"));
        return;
    }
    out.push_str(&format!("{pad}\"{key}\": {{\n"));
    let inner = " ".repeat(indent + 2);
    let mut first = true;
    for (k, v) in map {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&format!("{inner}\"{}\": {}", escape(k), f(v)));
    }
    out.push_str(&format!("\n{pad}}}"));
}

fn get_num(obj: &BTreeMap<String, Json>, key: &str) -> Result<i128, String> {
    obj.get(key)
        .and_then(Json::as_num)
        .ok_or_else(|| format!("missing numeric field \"{key}\""))
}

/// A minimal JSON value: integers only (the snapshot schema emits no
/// floats), objects as sorted maps.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(i128),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<i128> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(v)
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_num(b, pos),
        _ => Err(format!("unexpected byte at {}", *pos)),
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let val = parse_value(b, pos)?;
        map.insert(key, val);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut arr = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(arr));
    }
    loop {
        arr.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(arr));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {}", *pos))?;
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            c => {
                // Copy the full UTF-8 sequence starting here.
                let len = match c {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let chunk = b
                    .get(*pos..*pos + len)
                    .and_then(|s| std::str::from_utf8(s).ok())
                    .ok_or_else(|| format!("bad UTF-8 at byte {}", *pos))?;
                out.push_str(chunk);
                *pos += len;
            }
        }
    }
    Err("unterminated string".into())
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && b[*pos].is_ascii_digit() {
        *pos += 1;
    }
    // Reject float syntax explicitly: the schema is integer-only.
    if matches!(b.get(*pos), Some(b'.') | Some(b'e') | Some(b'E')) {
        return Err(format!("non-integer number at byte {start}"));
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<i128>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase;

    fn sample_registry() -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        reg.add(phase::GRAPH_MINDIST_WORK, 1234);
        reg.add(phase::SCHED_EVICTIONS, 5);
        reg.set_gauge(phase::CORPUS_LOOPS, 60);
        for v in [1, 1, 2, 3, 10] {
            reg.observe(phase::HIST_SLOT_SEARCH, v);
        }
        reg.record_wall_ns(phase::WALL_SCHED, 1_000);
        reg.record_wall_ns(phase::WALL_SCHED, 3_000);
        reg
    }

    #[test]
    fn render_parse_round_trips() {
        let reg = sample_registry();
        let text = render_snapshot("corpus", &reg);
        let snap = Snapshot::parse(&text).expect("parses");
        assert_eq!(snap.schema, SCHEMA_VERSION);
        assert_eq!(snap.name, "corpus");
        assert_eq!(snap.counters[phase::GRAPH_MINDIST_WORK], 1234);
        assert_eq!(snap.gauges[phase::CORPUS_LOOPS], 60);
        let h = snap.histograms[phase::HIST_SLOT_SEARCH];
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 17);
        assert_eq!(h.p50, 2);
        assert_eq!(h.max, 10);
        let w = snap.wall[phase::WALL_SCHED];
        assert_eq!(w.spans, 2);
        assert_eq!(w.total_ns, 4_000);
        // Rendering the parsed snapshot reproduces the bytes exactly.
        assert_eq!(snap.render(), text);
    }

    #[test]
    fn deterministic_section_excludes_wall() {
        let text = render_snapshot("x", &sample_registry());
        let det = deterministic_section(&text).expect("section present");
        assert!(det.contains(phase::GRAPH_MINDIST_WORK));
        assert!(det.contains("histograms"));
        assert!(!det.contains("total_ns"));
        assert!(!det.contains("spans"));
    }

    #[test]
    fn wall_differences_leave_the_deterministic_section_identical() {
        let mut a = sample_registry();
        let mut b = sample_registry();
        a.record_wall_ns(phase::WALL_BUILD, 7);
        b.record_wall_ns(phase::WALL_BUILD, 999_999);
        let ta = render_snapshot("n", &a);
        let tb = render_snapshot("n", &b);
        assert_ne!(ta, tb);
        assert_eq!(deterministic_section(&ta), deterministic_section(&tb));
    }

    #[test]
    fn empty_registry_renders_and_parses() {
        let text = render_snapshot("empty", &MetricsRegistry::new());
        let snap = Snapshot::parse(&text).unwrap();
        assert!(snap.counters.is_empty());
        assert!(snap.wall.is_empty());
        assert_eq!(snap.render(), text);
    }

    #[test]
    fn malformed_snapshots_are_rejected_with_messages() {
        for bad in [
            "",
            "{",
            "[1,2]",
            "{\"bench_schema\": 1}",
            "{\"bench_schema\": 1.5, \"name\": \"x\", \"deterministic\": {}}",
            "{\"bench_schema\": 1, \"name\": \"x\"}",
            "not json at all",
        ] {
            let err = Snapshot::parse(bad).unwrap_err();
            assert!(!err.is_empty(), "{bad:?}");
        }
    }

    #[test]
    fn parser_handles_escapes_and_nesting() {
        let v = Json::parse(r#"{"a\n\"bA": [1, -2, {"c": true}, null, false]}"#).unwrap();
        let obj = v.as_obj().unwrap();
        let arr = match obj.get("a\n\"bA").unwrap() {
            Json::Arr(a) => a,
            other => panic!("{other:?}"),
        };
        assert_eq!(arr[0], Json::Num(1));
        assert_eq!(arr[1], Json::Num(-2));
        assert_eq!(arr[3], Json::Null);
        assert_eq!(arr[4], Json::Bool(false));
    }
}
