//! Span-style wall-clock timing, kept apart from deterministic counters.

use std::time::Instant;

use crate::registry::MetricsRegistry;

/// An open wall-clock span for one phase. Create with
/// [`PhaseTimer::start`], close with [`PhaseTimer::finish`] — the elapsed
/// nanoseconds land in the registry's **wall** section only, so the
/// deterministic sections of a snapshot stay byte-comparable across
/// `--threads` values no matter how timing jitters.
///
/// The timer is deliberately detached from the registry (no borrow held),
/// so the timed region is free to mutate the registry:
///
/// ```
/// use ims_prof::{MetricsRegistry, PhaseTimer};
///
/// let mut reg = MetricsRegistry::new();
/// let t = PhaseTimer::start("sched");
/// reg.add("graph.mindist.work", 10); // timed work may record counters
/// t.finish(&mut reg);
/// assert_eq!(reg.wall("sched").unwrap().total(), 1);
/// ```
#[derive(Debug)]
#[must_use = "an unfinished PhaseTimer records nothing"]
pub struct PhaseTimer {
    phase: &'static str,
    t0: Instant,
}

impl PhaseTimer {
    /// Starts timing `phase` now.
    pub fn start(phase: &'static str) -> Self {
        PhaseTimer {
            phase,
            t0: Instant::now(),
        }
    }

    /// The phase this timer is measuring.
    pub fn phase(&self) -> &'static str {
        self.phase
    }

    /// Stops the span and records it in `reg`'s wall section. Returns the
    /// elapsed nanoseconds (saturated to `u64`).
    pub fn finish(self, reg: &mut MetricsRegistry) -> u64 {
        let ns = self.t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        reg.record_wall_ns(self.phase, ns);
        ns
    }

    /// Drops the span without recording (e.g. an error path the caller
    /// accounts separately).
    pub fn cancel(self) {}
}

/// Times `f` as one `phase` span of `reg`. Use when the timed region does
/// not need the registry; otherwise use [`PhaseTimer`] directly.
pub fn timed<R>(reg: &mut MetricsRegistry, phase: &'static str, f: impl FnOnce() -> R) -> R {
    let t = PhaseTimer::start(phase);
    let out = f();
    t.finish(reg);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_land_in_the_wall_section_only() {
        let mut reg = MetricsRegistry::new();
        let t = PhaseTimer::start("p");
        assert_eq!(t.phase(), "p");
        t.finish(&mut reg);
        let _ = timed(&mut reg, "p", || 7);
        let h = reg.wall("p").unwrap();
        assert_eq!(h.total(), 2);
        assert!(h.max().unwrap() >= 0);
        assert_eq!(reg.counter("p"), 0, "wall never leaks into counters");
        assert!(reg.hist("p").is_none());
    }

    #[test]
    fn cancel_records_nothing() {
        let reg = MetricsRegistry::new();
        PhaseTimer::start("p").cancel();
        assert!(reg.wall("p").is_none());
        let _ = reg;
    }
}
