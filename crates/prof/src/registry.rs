//! The deterministic metrics registry.

use std::collections::BTreeMap;

use ims_stats::Histogram;

use crate::sink::ProfSink;

/// Phase-keyed metrics for one profiled run (or one loop of it).
///
/// Three deterministic sections — counters, gauges, histograms — plus a
/// wall-clock section fed by [`PhaseTimer`](crate::PhaseTimer) spans that
/// is kept strictly apart: merging registries, rendering snapshots, and
/// diffing all treat the deterministic sections as byte-comparable across
/// thread counts and the wall section as advisory.
///
/// All maps are `BTreeMap`s keyed by `'static` phase names, so iteration
/// (and therefore snapshot rendering) is deterministically ordered.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, i64>,
    hists: BTreeMap<&'static str, Histogram>,
    wall: BTreeMap<&'static str, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the counter for `phase`.
    pub fn add(&mut self, phase: &'static str, n: u64) {
        *self.counters.entry(phase).or_insert(0) += n;
    }

    /// Sets the gauge for `phase` (last write wins; merging keeps the
    /// *maximum* so gauges stay order-independent across merges).
    pub fn set_gauge(&mut self, phase: &'static str, value: i64) {
        self.gauges.insert(phase, value);
    }

    /// Records one observation in the deterministic histogram for `phase`.
    pub fn observe(&mut self, phase: &'static str, value: i64) {
        self.hists.entry(phase).or_default().add(value);
    }

    /// Records one wall-clock span of `ns` nanoseconds for `phase`
    /// (usually via [`PhaseTimer`](crate::PhaseTimer)).
    pub fn record_wall_ns(&mut self, phase: &'static str, ns: u64) {
        self.wall
            .entry(phase)
            .or_default()
            .add(ns.min(i64::MAX as u64) as i64);
    }

    /// Merges `other` into `self`: counters sum, gauges keep the maximum,
    /// histograms (deterministic and wall) merge. Summing and histogram
    /// merging are commutative and associative, so any merge order over
    /// per-loop registries yields the same totals; the harness still
    /// merges in corpus order for good measure.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            let e = self.gauges.entry(k).or_insert(*v);
            *e = (*e).max(*v);
        }
        for (k, h) in &other.hists {
            self.hists.entry(k).or_default().merge(h);
        }
        for (k, h) in &other.wall {
            self.wall.entry(k).or_default().merge(h);
        }
    }

    /// The counter for `phase` (0 if never touched).
    pub fn counter(&self, phase: &str) -> u64 {
        self.counters.get(phase).copied().unwrap_or(0)
    }

    /// The gauge for `phase`, if set.
    pub fn gauge(&self, phase: &str) -> Option<i64> {
        self.gauges.get(phase).copied()
    }

    /// The deterministic histogram for `phase`, if any observation was
    /// recorded.
    pub fn hist(&self, phase: &str) -> Option<&Histogram> {
        self.hists.get(phase)
    }

    /// The wall-span histogram (nanoseconds) for `phase`, if any span was
    /// recorded.
    pub fn wall(&self, phase: &str) -> Option<&Histogram> {
        self.wall.get(phase)
    }

    /// Iterates `(phase, value)` over the counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// Iterates `(phase, value)` over the gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, i64)> + '_ {
        self.gauges.iter().map(|(k, v)| (*k, *v))
    }

    /// Iterates `(phase, histogram)` over the deterministic histograms in
    /// name order.
    pub fn hists(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.hists.iter().map(|(k, h)| (*k, h))
    }

    /// Iterates `(phase, span histogram)` over the wall section in name
    /// order.
    pub fn walls(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.wall.iter().map(|(k, h)| (*k, h))
    }

    /// Whether nothing at all was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.hists.is_empty()
            && self.wall.is_empty()
    }
}

impl ProfSink for MetricsRegistry {
    fn count(&mut self, phase: &'static str, n: u64) {
        self.add(phase, n);
    }
    fn record(&mut self, phase: &'static str, value: i64) {
        self.observe(phase, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_and_hists_round_trip() {
        let mut r = MetricsRegistry::new();
        assert!(r.is_empty());
        r.add("a", 2);
        r.add("a", 3);
        r.set_gauge("g", 7);
        r.observe("h", 1);
        r.observe("h", 9);
        r.record_wall_ns("w", 100);
        assert_eq!(r.counter("a"), 5);
        assert_eq!(r.counter("missing"), 0);
        assert_eq!(r.gauge("g"), Some(7));
        assert_eq!(r.hist("h").unwrap().total(), 2);
        assert_eq!(r.wall("w").unwrap().total(), 1);
        assert!(!r.is_empty());
    }

    #[test]
    fn merge_is_order_independent_on_the_deterministic_sections() {
        let mk = |c: u64, h: i64| {
            let mut r = MetricsRegistry::new();
            r.add("c", c);
            r.observe("h", h);
            r.set_gauge("g", h);
            r
        };
        let (a, b, c) = (mk(1, 10), mk(2, 20), mk(3, 30));
        let mut ab = MetricsRegistry::new();
        for r in [&a, &b, &c] {
            ab.merge(r);
        }
        let mut ba = MetricsRegistry::new();
        for r in [&c, &a, &b] {
            ba.merge(r);
        }
        assert_eq!(ab, ba);
        assert_eq!(ab.counter("c"), 6);
        assert_eq!(ab.gauge("g"), Some(30), "gauges merge by max");
        assert_eq!(ab.hist("h").unwrap().total(), 3);
    }

    #[test]
    fn registry_is_a_sink() {
        fn drive<P: ProfSink>(p: &mut P) {
            p.count("work", 4);
            p.record("dist", 2);
        }
        let mut r = MetricsRegistry::new();
        drive(&mut r);
        assert_eq!(r.counter("work"), 4);
        assert_eq!(r.hist("dist").unwrap().count_of(2), 1);
    }
}
