//! Snapshot comparison — the engine behind the `benchdiff` binary.
//!
//! Deterministic counters (and histogram sums, which are counters in
//! disguise) regress when the new value exceeds `base × counter_threshold`;
//! the default threshold of 1.0 means *any* increase in deterministic work
//! fails. `--strict-counters` tightens that to exact equality in both
//! directions, which is what CI uses against the committed baseline. Wall
//! times are noisy, so they only regress past a generous ratio
//! (`wall_threshold`, default 2.0) and only for phases whose baseline is
//! large enough to measure (`min_wall_ns`). Improvements are reported but
//! never fail.

use std::fmt::Write as _;

use crate::snapshot::Snapshot;

/// Thresholds and switches for [`diff_snapshots`].
#[derive(Debug, Clone, PartialEq)]
pub struct DiffOptions {
    /// A counter (or histogram sum) regresses when
    /// `new > base * counter_threshold`. 1.0 = any increase fails.
    pub counter_threshold: f64,
    /// A wall phase regresses when `new_total > base_total * wall_threshold`.
    pub wall_threshold: f64,
    /// Wall phases with a baseline total below this many nanoseconds are
    /// too small to compare meaningfully and are skipped.
    pub min_wall_ns: u64,
    /// Fail on *any* deterministic difference (either direction), the way
    /// CI compares against the committed baseline.
    pub strict_counters: bool,
    /// Compare the wall section at all (`--no-wall` clears this).
    pub compare_wall: bool,
}

impl Default for DiffOptions {
    fn default() -> Self {
        DiffOptions {
            counter_threshold: 1.0,
            wall_threshold: 2.0,
            min_wall_ns: 1_000_000,
            strict_counters: false,
            compare_wall: true,
        }
    }
}

/// One compared phase that crossed a threshold (or is worth reporting).
#[derive(Debug, Clone, PartialEq)]
pub struct DiffLine {
    /// Which section the phase came from: `"counter"`, `"gauge"`,
    /// `"hist"`, `"wall"`, or `"schema"`.
    pub section: &'static str,
    /// Phase name.
    pub phase: String,
    /// Baseline value (counter value, histogram sum, or wall total ns).
    pub base: i128,
    /// New value on the same scale as `base`.
    pub new: i128,
    /// Human-readable explanation rendered in the report.
    pub note: String,
}

impl DiffLine {
    fn new(section: &'static str, phase: &str, base: i128, new: i128, note: String) -> Self {
        DiffLine {
            section,
            phase: phase.to_string(),
            base,
            new,
            note,
        }
    }
}

/// Outcome of comparing two snapshots.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiffReport {
    /// Threshold-crossing changes: the comparison **fails** if non-empty.
    pub regressions: Vec<DiffLine>,
    /// Changes in the good direction; informational only.
    pub improvements: Vec<DiffLine>,
    /// Phases compared in total (for the summary line).
    pub compared: usize,
}

impl DiffReport {
    /// True when nothing regressed.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }

    /// Renders the report as the text `benchdiff` prints.
    pub fn render(&self, base_name: &str, new_name: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "benchdiff: {base_name} -> {new_name}");
        for l in &self.regressions {
            let _ = writeln!(
                out,
                "REGRESSION [{}] {}: {} -> {} ({})",
                l.section, l.phase, l.base, l.new, l.note
            );
        }
        for l in &self.improvements {
            let _ = writeln!(
                out,
                "improved   [{}] {}: {} -> {} ({})",
                l.section, l.phase, l.base, l.new, l.note
            );
        }
        let _ = writeln!(
            out,
            "{} phases compared, {} regressions, {} improvements: {}",
            self.compared,
            self.regressions.len(),
            self.improvements.len(),
            if self.passed() { "PASS" } else { "FAIL" }
        );
        out
    }
}

fn ratio(base: i128, new: i128) -> String {
    if base == 0 {
        return format!("{new} from zero baseline");
    }
    format!("{:.2}x", new as f64 / base as f64)
}

/// Compares `new` against `base` under `opts`.
pub fn diff_snapshots(base: &Snapshot, new: &Snapshot, opts: &DiffOptions) -> DiffReport {
    let mut rep = DiffReport::default();

    if base.schema != new.schema {
        rep.regressions.push(DiffLine::new(
            "schema",
            "bench_schema",
            base.schema as i128,
            new.schema as i128,
            "snapshot schema versions differ; regenerate the baseline".into(),
        ));
    }

    // Counters and histogram sums share regression semantics.
    let mut counterlike: Vec<(&'static str, String, i128, i128)> = Vec::new();
    for name in keys(base.counters.keys(), new.counters.keys()) {
        let b = base.counters.get(&name).copied().unwrap_or(0) as i128;
        let n = new.counters.get(&name).copied().unwrap_or(0) as i128;
        counterlike.push(("counter", name, b, n));
    }
    for name in keys(base.histograms.keys(), new.histograms.keys()) {
        let b = base.histograms.get(&name).map(|h| h.sum).unwrap_or(0);
        let n = new.histograms.get(&name).map(|h| h.sum).unwrap_or(0);
        counterlike.push(("hist", name, b, n));
    }
    for (section, name, b, n) in counterlike {
        rep.compared += 1;
        if b == n {
            continue;
        }
        let worse = if opts.strict_counters {
            true // any deterministic difference fails in strict mode
        } else {
            (n as f64) > (b as f64) * opts.counter_threshold
        };
        let note = if opts.strict_counters {
            format!("{} (strict: must match exactly)", ratio(b, n))
        } else {
            format!("{} vs threshold {:.2}x", ratio(b, n), opts.counter_threshold)
        };
        if worse {
            rep.regressions.push(DiffLine::new(section, &name, b, n, note));
        } else if n < b {
            rep.improvements.push(DiffLine::new(section, &name, b, n, note));
        }
    }

    // Gauges describe the workload (loop counts, configuration); if they
    // disagree the runs are not comparable, which is always a failure.
    for name in keys(base.gauges.keys(), new.gauges.keys()) {
        rep.compared += 1;
        let b = base.gauges.get(&name).copied();
        let n = new.gauges.get(&name).copied();
        if b != n {
            rep.regressions.push(DiffLine::new(
                "gauge",
                &name,
                b.unwrap_or(0) as i128,
                n.unwrap_or(0) as i128,
                "workload gauges differ; snapshots are not comparable".into(),
            ));
        }
    }

    if opts.compare_wall {
        for name in keys(base.wall.keys(), new.wall.keys()) {
            let (Some(b), Some(n)) = (base.wall.get(&name), new.wall.get(&name)) else {
                continue; // a phase timed on only one side carries no signal
            };
            if b.total_ns < opts.min_wall_ns as i128 {
                continue;
            }
            rep.compared += 1;
            let limit = b.total_ns as f64 * opts.wall_threshold;
            if n.total_ns as f64 > limit {
                rep.regressions.push(DiffLine::new(
                    "wall",
                    &name,
                    b.total_ns,
                    n.total_ns,
                    format!(
                        "{} vs threshold {:.2}x",
                        ratio(b.total_ns, n.total_ns),
                        opts.wall_threshold
                    ),
                ));
            } else if (n.total_ns as f64) * opts.wall_threshold < b.total_ns as f64 {
                rep.improvements.push(DiffLine::new(
                    "wall",
                    &name,
                    b.total_ns,
                    n.total_ns,
                    ratio(b.total_ns, n.total_ns),
                ));
            }
        }
    }

    rep
}

fn keys<'a>(
    a: impl Iterator<Item = &'a String>,
    b: impl Iterator<Item = &'a String>,
) -> Vec<String> {
    let mut v: Vec<String> = a.chain(b).cloned().collect();
    v.sort();
    v.dedup();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;
    use crate::snapshot::render_snapshot;

    fn snap(mindist: u64, wall_ns: u64) -> Snapshot {
        let mut reg = MetricsRegistry::new();
        reg.add("graph.mindist.work", mindist);
        reg.set_gauge("corpus.loops", 60);
        reg.observe("sched.slot_search.iters", 3);
        reg.record_wall_ns("sched", wall_ns);
        Snapshot::parse(&render_snapshot("t", &reg)).unwrap()
    }

    #[test]
    fn self_compare_passes() {
        let s = snap(100, 5_000_000);
        let rep = diff_snapshots(&s, &s, &DiffOptions::default());
        assert!(rep.passed(), "{}", rep.render("a", "b"));
        assert!(rep.improvements.is_empty());
        assert!(rep.compared > 0);
    }

    #[test]
    fn counter_increase_regresses_at_default_threshold() {
        let rep = diff_snapshots(&snap(100, 0), &snap(101, 0), &DiffOptions::default());
        assert!(!rep.passed());
        assert_eq!(rep.regressions[0].section, "counter");
        assert_eq!(rep.regressions[0].phase, "graph.mindist.work");
        assert!(rep.render("a", "b").contains("FAIL"));
    }

    #[test]
    fn counter_increase_under_a_loose_threshold_passes() {
        let opts = DiffOptions {
            counter_threshold: 3.0,
            ..DiffOptions::default()
        };
        assert!(diff_snapshots(&snap(100, 0), &snap(299, 0), &opts).passed());
        assert!(!diff_snapshots(&snap(100, 0), &snap(301, 0), &opts).passed());
    }

    #[test]
    fn counter_decrease_is_an_improvement_not_a_failure() {
        let rep = diff_snapshots(&snap(100, 0), &snap(50, 0), &DiffOptions::default());
        assert!(rep.passed());
        assert_eq!(rep.improvements.len(), 1);
    }

    #[test]
    fn strict_counters_fail_in_both_directions() {
        let opts = DiffOptions {
            strict_counters: true,
            ..DiffOptions::default()
        };
        assert!(!diff_snapshots(&snap(100, 0), &snap(50, 0), &opts).passed());
        assert!(!diff_snapshots(&snap(100, 0), &snap(150, 0), &opts).passed());
        assert!(diff_snapshots(&snap(100, 0), &snap(100, 0), &opts).passed());
    }

    #[test]
    fn wall_regression_needs_ratio_and_floor() {
        let opts = DiffOptions::default(); // 2.0x over a 1ms floor
        // 3x slower on a measurable phase: fail.
        let rep = diff_snapshots(&snap(1, 5_000_000), &snap(1, 15_000_000), &opts);
        assert!(!rep.passed());
        assert_eq!(rep.regressions[0].section, "wall");
        // 3x slower but under the floor: skipped.
        assert!(diff_snapshots(&snap(1, 500), &snap(1, 1_500), &opts).passed());
        // 1.5x slower on a measurable phase: within threshold.
        assert!(diff_snapshots(&snap(1, 5_000_000), &snap(1, 7_500_000), &opts).passed());
        // --no-wall ignores even a huge slowdown.
        let nowall = DiffOptions {
            compare_wall: false,
            ..opts
        };
        assert!(diff_snapshots(&snap(1, 5_000_000), &snap(1, 500_000_000), &nowall).passed());
    }

    #[test]
    fn wall_improvement_is_reported() {
        let rep = diff_snapshots(
            &snap(1, 50_000_000),
            &snap(1, 5_000_000),
            &DiffOptions::default(),
        );
        assert!(rep.passed());
        assert!(rep.improvements.iter().any(|l| l.section == "wall"));
    }

    #[test]
    fn gauge_mismatch_always_fails() {
        let a = snap(1, 0);
        let mut reg = MetricsRegistry::new();
        reg.add("graph.mindist.work", 1);
        reg.set_gauge("corpus.loops", 120);
        reg.observe("sched.slot_search.iters", 3);
        let b = Snapshot::parse(&render_snapshot("t", &reg)).unwrap();
        let rep = diff_snapshots(&a, &b, &DiffOptions::default());
        assert!(rep.regressions.iter().any(|l| l.section == "gauge"));
    }

    #[test]
    fn schema_mismatch_fails() {
        let a = snap(1, 0);
        let mut b = snap(1, 0);
        b.schema += 1;
        let rep = diff_snapshots(&a, &b, &DiffOptions::default());
        assert!(rep.regressions.iter().any(|l| l.section == "schema"));
    }
}
