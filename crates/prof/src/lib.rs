#![deny(missing_docs)]

//! Deterministic pipeline profiling for the IMS reproduction.
//!
//! The paper's evaluation (§4.4, Table 4) is entirely about *where the
//! work goes*: per-phase inner-loop trip counts fitted against N. This
//! crate generalizes that discipline to the whole pipeline — graph
//! analysis, MII bounds, iterative scheduling, exact branch-and-bound,
//! code generation, and VLIW simulation — with one hard rule:
//! **deterministic work counters and wall-clock timings never mix.**
//!
//! * [`MetricsRegistry`] holds counters, gauges, and [`Histogram`]s keyed
//!   by the `'static` phase names in [`phase`], plus a separate wall-time
//!   section fed by [`PhaseTimer`] spans. Registries merge
//!   deterministically (plain sums / histogram merges), so per-loop
//!   registries collected on worker threads and merged in corpus order
//!   produce byte-identical deterministic sections at any `--threads`.
//! * [`ProfSink`] is the zero-cost instrumentation seam: hot loops are
//!   generic over a sink, and the blanket `impl ProfSink for u64` lets the
//!   existing `&mut u64` work-counter threading double as the null
//!   implementation — monomorphized to the exact `*work += n` the code
//!   had before. [`NullSink`] discards everything.
//! * [`snapshot`] renders a registry as a versioned `BENCH_<name>.json`
//!   snapshot (deterministic section first, wall percentiles last) and
//!   parses one back without any external dependency.
//! * [`diff`] compares two snapshots under per-phase thresholds — the
//!   engine behind the `benchdiff` regression gate in `scripts/verify.sh`
//!   and CI.
//!
//! ```
//! use ims_prof::{phase, snapshot, MetricsRegistry, PhaseTimer, ProfSink};
//!
//! let mut reg = MetricsRegistry::new();
//! let timer = PhaseTimer::start(phase::WALL_SCHED);
//! reg.count(phase::GRAPH_MINDIST_WORK, 128); // deterministic work
//! reg.record(phase::HIST_SLOT_SEARCH, 3);    // per-op distribution
//! timer.finish(&mut reg);                    // wall time, kept apart
//!
//! let text = snapshot::render_snapshot("demo", &reg);
//! let parsed = snapshot::Snapshot::parse(&text).unwrap();
//! assert_eq!(parsed.counters[phase::GRAPH_MINDIST_WORK], 128);
//! ```

pub mod diff;
pub mod phase;
mod registry;
mod sink;
pub mod snapshot;
mod timer;

pub use ims_stats::Histogram;
pub use registry::MetricsRegistry;
pub use sink::{NullSink, ProfSink};
pub use timer::{timed, PhaseTimer};
