//! Corpus-wide properties of the attribution and mining layers.
//!
//! Two contracts the `explain` driver relies on, checked here over the
//! full 300-loop optgap corpus (seed `0xC4D5`, the corpus every
//! cross-backend experiment shares):
//!
//! * **exact-match accounting** — what the mined trace says happened is
//!   what the scheduler's own deterministic counters say happened, loop
//!   by loop, with no tolerance; and the JSONL trace encoding is
//!   lossless, so a report mined from a written-then-parsed trace file
//!   is byte-identical to one mined from the in-process observer;
//! * **no anonymous loops** — every loop's MII comes back with a named
//!   binding constraint: saturated resources when resource-bound, a
//!   non-empty binding SCC (with a representative circuit or the
//!   truncation fallback) when recurrence-bound.

use ims_core::{Counters, SchedConfig, Scheduler};
use ims_deps::{back_substitute, build_problem, BuildOptions};
use ims_explain::{attribute_mii, LoopReport, MiiBound, TraceMine};
use ims_loopgen::corpus_of_size;
use ims_machine::cydra;
use ims_trace::{parse_trace_prefix, Recorder};

#[test]
fn mined_totals_match_scheduler_counters_across_the_corpus() {
    let corpus = corpus_of_size(0xC4D5, 300);
    let machine = cydra();
    let config = SchedConfig::with_budget_ratio(6.0);
    for (index, l) in corpus.loops.iter().enumerate() {
        let body = back_substitute(&l.body, &machine);
        let problem = build_problem(&body, &machine, &BuildOptions::default());
        let mut rec = Recorder::new();
        let out = Scheduler::new(&problem)
            .config(config.clone())
            .observer(&mut rec)
            .run()
            .expect("corpus loops schedule under the automatic II cap");

        let mined = TraceMine::from_events(&rec.events);
        assert_eq!(
            mined.summary.evictions, out.stats.counters.evictions,
            "loop {index}: mined evictions"
        );
        assert_eq!(
            mined.summary.slots_examined, out.stats.counters.findslot_iters,
            "loop {index}: mined slot-search iterations"
        );
        assert_eq!(
            mined.summary.total_steps(),
            out.stats.total_steps(),
            "loop {index}: mined scheduling steps"
        );
        assert_eq!(
            mined.summary.final_ii(),
            Some(out.schedule.ii),
            "loop {index}: mined final II"
        );

        // The JSONL trace encoding round-trips losslessly, so the
        // file-fed analysis path sees the exact event stream the
        // observer saw...
        let mut text = String::new();
        for ev in &rec.events {
            text.push_str(&ev.to_json_line());
            text.push('\n');
        }
        let (parsed, complete) = parse_trace_prefix(&text);
        assert!(complete, "loop {index}: rewritten trace parses completely");
        assert_eq!(parsed, rec.events, "loop {index}: events round-trip");

        // ...and the rendered reports are byte-identical.
        let report = |mine: TraceMine| LoopReport {
            label: format!("loop_{index:05}"),
            ops: problem.num_ops(),
            attribution: attribute_mii(&problem, 10_000, &mut Counters::new()),
            mine,
            bounds: None,
        };
        let live = report(mined);
        let from_file = report(TraceMine::from_events(&parsed));
        assert_eq!(
            live.to_json_line(&machine),
            from_file.to_json_line(&machine),
            "loop {index}: observer-fed vs trace-file-fed JSON"
        );
        assert_eq!(
            live.render_text(&machine),
            from_file.render_text(&machine),
            "loop {index}: observer-fed vs trace-file-fed digest"
        );
    }
}

#[test]
fn every_corpus_loop_gets_a_named_binding_constraint() {
    let corpus = corpus_of_size(0xC4D5, 300);
    let machine = cydra();
    for (index, l) in corpus.loops.iter().enumerate() {
        let body = back_substitute(&l.body, &machine);
        let problem = build_problem(&body, &machine, &BuildOptions::default());
        let att = attribute_mii(&problem, 10_000, &mut Counters::new());
        assert!(att.mii >= 1, "loop {index}");
        match att.bound {
            MiiBound::Resource | MiiBound::Tie => {
                assert!(
                    !att.res.binding.is_empty(),
                    "loop {index}: resource-bound MII must name saturated resources"
                );
                assert!(
                    !att.res.binding_names(&machine).is_empty(),
                    "loop {index}: binding resources resolve to names"
                );
            }
            MiiBound::Recurrence => {}
        }
        if matches!(att.bound, MiiBound::Recurrence | MiiBound::Tie) {
            assert!(
                !att.rec.scc.is_empty(),
                "loop {index}: recurrence-bound MII must name its binding SCC"
            );
            assert!(
                att.rec.circuit.is_some() || att.rec.circuits_truncated,
                "loop {index}: a representative circuit unless enumeration truncated"
            );
            if let Some(c) = &att.rec.circuit {
                assert_eq!(c.min_ii(), att.rec.rec_mii, "loop {index}: circuit proves the RecMII");
            }
        }
    }
}
