#![deny(missing_docs)]

//! II-attribution and trace-mining diagnostics: *why* is the II what it is?
//!
//! The paper reports `MII = max(ResMII, RecMII)` and, in Table 4, how much
//! work the iterative scheduler spent — but neither number says *which*
//! constraint pinned a given loop, nor *where* a pathological loop's budget
//! went. This crate answers both questions with evidence:
//!
//! * [`attribute_mii`] recomputes both §2 bounds **with provenance**: the
//!   ResMII comes back with the greedy bin-packing's per-resource usage
//!   vector and the saturated (*binding*) resources named
//!   ([`ResAttribution`]); the RecMII comes back with the binding SCC, a
//!   representative critical circuit (node list, delay and distance sums —
//!   so `⌈delay/distance⌉` is checkable by eye) and the MinDist
//!   critical-node fallback for SCCs whose circuit count exceeds the
//!   enumeration cap ([`RecAttribution`]);
//! * [`TraceMine`] mines a scheduler trace in one pass — works identically
//!   on in-process [`Recorder`](ims_trace::Recorder) events and on parsed
//!   `ims-trace` JSONL files — producing the eviction graph
//!   (who-evicted-whom, longest displacement chain), per-node slot-search
//!   effort, and per-attempt waste; [`attribute_to_sccs`] charges that
//!   effort to the recurrence SCCs, and [`mrt_heat`] replays the final
//!   schedule into a modulo-reservation-table heat map naming the
//!   saturated rows;
//! * [`LoopReport`] and [`CorpusStats`] render both layers as
//!   deterministic JSON lines and a readable top-K digest, optionally
//!   joined against proved II bounds from an `optgap` run
//!   ([`parse_optgap_bounds`]).
//!
//! Everything here is deterministic: no wall-clock, no thread identity —
//! the `explain` driver's stdout is byte-identical at any `--threads`
//! value, and observer-fed and trace-file-fed analyses agree byte-for-byte
//! (the JSONL encoding is lossless).
//!
//! # Example
//!
//! ```
//! use ims_core::{Counters, ProblemBuilder};
//! use ims_explain::{attribute_mii, MiiBound};
//! use ims_graph::DepKind;
//! use ims_ir::{OpId, Opcode};
//! use ims_machine::minimal;
//!
//! // a -> b -> a with total delay 4 over distance 1: RecMII 4 > ResMII 2.
//! let machine = minimal();
//! let mut pb = ProblemBuilder::new(&machine);
//! let a = pb.add_op(Opcode::Add, OpId(0));
//! let b = pb.add_op(Opcode::Mul, OpId(1));
//! pb.add_dep(a, b, 2, 0, DepKind::Flow, false);
//! pb.add_dep(b, a, 2, 1, DepKind::Flow, false);
//! let problem = pb.finish();
//!
//! let att = attribute_mii(&problem, 1000, &mut Counters::new());
//! assert_eq!(att.mii, 4);
//! assert_eq!(att.bound, MiiBound::Recurrence);
//! let circuit = att.rec.circuit.unwrap();
//! assert_eq!((circuit.delay, circuit.distance), (4, 1));
//! ```

mod mii;
mod mine;
mod report;

pub use mii::{attribute_mii, MiiAttribution, MiiBound, RecAttribution, ResAttribution};
pub use mine::{attribute_to_sccs, mrt_heat, EvictionEdge, MrtHeat, SccAttribution, TraceMine};
pub use report::{parse_optgap_bounds, CorpusStats, LoopReport};
