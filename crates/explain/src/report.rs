//! Per-loop and corpus-level reports: JSON lines plus a readable digest.
//!
//! One [`LoopReport`] joins the three evidence sources for a loop — the
//! MII attribution, the mined trace, and (optionally) proved II bounds
//! from an `optgap` run — and renders them as a flat JSON line (for
//! machine consumption, byte-deterministic) and as text (for the top-K
//! pathological-loop digest). [`CorpusStats`] folds loop reports into the
//! aggregate the `explain` driver prints: how many loops each bound
//! explains, where the wasted budget concentrates, and which resources
//! and circuits bind most often.

use std::collections::BTreeMap;

use ims_graph::NodeId;
use ims_machine::MachineModel;

use crate::mii::{MiiAttribution, MiiBound};
use crate::mine::TraceMine;

/// Everything the `explain` driver reports about one loop.
#[derive(Debug, Clone)]
pub struct LoopReport {
    /// Stable loop label (`loop_00042`).
    pub label: String,
    /// Real-operation count.
    pub ops: usize,
    /// Why the MII is what it is.
    pub attribution: MiiAttribution,
    /// Where the scheduling budget went.
    pub mine: TraceMine,
    /// Proved `(lower, upper)` II bounds from an `optgap` run, when one
    /// was supplied.
    pub bounds: Option<(i64, i64)>,
}

fn ids(nodes: &[NodeId]) -> String {
    let inner: Vec<String> = nodes.iter().map(|n| n.index().to_string()).collect();
    format!("[{}]", inner.join(","))
}

fn strs(names: &[&str]) -> String {
    let inner: Vec<String> = names.iter().map(|n| format!("\"{n}\"")).collect();
    format!("[{}]", inner.join(","))
}

impl LoopReport {
    /// The II the scheduler converged to, if it did.
    pub fn final_ii(&self) -> Option<i64> {
        self.mine.summary.final_ii()
    }

    /// `II − MII`: how far above the lower bound the schedule landed.
    pub fn mii_gap(&self) -> Option<i64> {
        self.final_ii().map(|ii| ii - self.attribution.mii)
    }

    /// `II − proved upper bound`: the true optimality gap, when an
    /// `optgap` run proved the bounds (`lb == ub`).
    pub fn proved_gap(&self) -> Option<i64> {
        let (lb, ub) = self.bounds?;
        if lb != ub {
            return None;
        }
        Some(self.final_ii()? - ub)
    }

    /// One flat JSON object (no trailing newline), deterministic for a
    /// given loop regardless of thread count.
    pub fn to_json_line(&self, machine: &MachineModel) -> String {
        let att = &self.attribution;
        let summary = &self.mine.summary;
        let mut out = format!(
            "{{\"loop\":\"{}\",\"ops\":{},\"mii\":{},\"res_mii\":{},\"rec_mii\":{},\
             \"bound\":\"{}\",\"binding_res\":{}",
            self.label,
            self.ops,
            att.mii,
            att.res.res_mii,
            att.rec.rec_mii,
            att.bound.name(),
            strs(&att.res.binding_names(machine)),
        );
        out.push_str(&format!(",\"scc\":{}", ids(&att.rec.scc)));
        if let Some(c) = &att.rec.circuit {
            out.push_str(&format!(
                ",\"circuit\":{},\"circuit_delay\":{},\"circuit_distance\":{}",
                ids(&c.nodes),
                c.delay,
                c.distance,
            ));
        }
        out.push_str(&format!(
            ",\"critical\":{},\"circuits_truncated\":{}",
            ids(&att.rec.critical),
            att.rec.circuits_truncated,
        ));
        match self.final_ii() {
            Some(ii) => out.push_str(&format!(
                ",\"ii\":{ii},\"gap\":{}",
                ii - att.mii
            )),
            None => out.push_str(",\"ii\":null,\"gap\":null"),
        }
        out.push_str(&format!(
            ",\"steps\":{},\"wasted\":{},\"evictions\":{},\"slots\":{},\"max_chain\":{}",
            summary.total_steps(),
            summary.wasted_steps(),
            summary.evictions,
            summary.slots_examined,
            self.mine.max_chain,
        ));
        if let Some((lb, ub)) = self.bounds {
            out.push_str(&format!(",\"exact_lb\":{lb},\"exact_ub\":{ub}"));
        }
        out.push('}');
        out
    }

    /// A multi-line human-readable explanation, used for the top-K digest.
    pub fn render_text(&self, machine: &MachineModel) -> String {
        let att = &self.attribution;
        let mut out = format!(
            "{}: {} ops, MII {} (res {}, rec {})\n",
            self.label, self.ops, att.mii, att.res.res_mii, att.rec.rec_mii
        );
        match att.bound {
            MiiBound::Resource | MiiBound::Tie => {
                out.push_str(&format!(
                    "  binding resource{}: {}\n",
                    if att.res.binding.len() == 1 { "" } else { "s" },
                    att.res.binding_names(machine).join(", "),
                ));
            }
            MiiBound::Recurrence => {}
        }
        if matches!(att.bound, MiiBound::Recurrence | MiiBound::Tie) && !att.rec.scc.is_empty() {
            match &att.rec.circuit {
                Some(c) => out.push_str(&format!(
                    "  critical circuit: {} (delay {}, distance {}, ceil = {})\n",
                    ids(&c.nodes),
                    c.delay,
                    c.distance,
                    c.min_ii(),
                )),
                None => out.push_str(&format!(
                    "  critical SCC (circuits truncated): {} critical nodes {}\n",
                    ids(&att.rec.scc),
                    ids(&att.rec.critical),
                )),
            }
        }
        out.push_str(&self.mine.summary.render_line("  convergence"));
        out.push('\n');
        if let Some(e) = self.mine.eviction_edges.first() {
            out.push_str(&format!(
                "  hottest eviction: n{} evicted n{} ×{} (longest chain {})\n",
                e.evictor, e.victim, e.count, self.mine.max_chain,
            ));
        }
        if let Some((lb, ub)) = self.bounds {
            let proved = if lb == ub {
                format!("II* = {ub} proved")
            } else {
                format!("II* in [{lb}, {ub}]")
            };
            out.push_str(&format!("  exact bounds: {proved}\n"));
        }
        out
    }
}

/// Corpus-level aggregation of [`LoopReport`]s.
#[derive(Debug, Clone, Default)]
pub struct CorpusStats {
    /// Loops folded in.
    pub loops: u64,
    /// Loops whose MII is resource-bound (`ResMII > RecMII`).
    pub res_bound: u64,
    /// Loops whose MII is recurrence-bound (`RecMII > ResMII`).
    pub rec_bound: u64,
    /// Loops where both bounds agree.
    pub tie_bound: u64,
    /// Loops that converged above their MII.
    pub gap_loops: u64,
    /// Summed `II − MII` over converged loops.
    pub gap_sum: i64,
    /// Total scheduling steps across the corpus.
    pub steps: u64,
    /// Total wasted (failed-attempt) steps.
    pub wasted: u64,
    /// Total evictions.
    pub evictions: u64,
    /// Total `FindTimeSlot` iterations.
    pub slots: u64,
    /// Loops whose circuit enumeration was truncated.
    pub circuits_truncated: u64,
    /// Wasted steps per loop label (insertion order), for concentration
    /// analysis.
    pub wasted_by_loop: Vec<(String, u64)>,
    /// How often each resource appears in a binding set, over loops
    /// whose MII is resource-bound or tied.
    pub binding_res_counts: BTreeMap<String, u64>,
}

impl CorpusStats {
    /// Folds one loop in.
    pub fn add(&mut self, report: &LoopReport, machine: &MachineModel) {
        self.loops += 1;
        match report.attribution.bound {
            MiiBound::Resource => self.res_bound += 1,
            MiiBound::Recurrence => self.rec_bound += 1,
            MiiBound::Tie => self.tie_bound += 1,
        }
        if let Some(gap) = report.mii_gap() {
            if gap > 0 {
                self.gap_loops += 1;
            }
            self.gap_sum += gap;
        }
        let s = &report.mine.summary;
        self.steps += s.total_steps();
        self.wasted += s.wasted_steps();
        self.evictions += s.evictions;
        self.slots += s.slots_examined;
        if report.attribution.rec.circuits_truncated {
            self.circuits_truncated += 1;
        }
        self.wasted_by_loop
            .push((report.label.clone(), s.wasted_steps()));
        if matches!(
            report.attribution.bound,
            MiiBound::Resource | MiiBound::Tie
        ) {
            for name in report.attribution.res.binding_names(machine) {
                *self.binding_res_counts.entry(name.to_string()).or_insert(0) += 1;
            }
        }
    }

    /// The `k` loops with the most wasted steps, descending (ties to the
    /// lexicographically smaller label). Zero-waste loops are omitted.
    pub fn top_wasted(&self, k: usize) -> Vec<(String, u64)> {
        let mut v: Vec<(String, u64)> = self
            .wasted_by_loop
            .iter()
            .filter(|(_, w)| *w > 0)
            .cloned()
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }

    /// `(top-k wasted steps, total wasted steps)` — the waste
    /// concentration the paper's reproduction keeps rediscovering by
    /// hand: a handful of pathological loops account for almost all
    /// wasted budget.
    pub fn concentration(&self, k: usize) -> (u64, u64) {
        let top: u64 = self.top_wasted(k).iter().map(|(_, w)| w).sum();
        (top, self.wasted)
    }

    /// The aggregate JSON line (no trailing newline).
    pub fn to_json_line(&self, top_k: usize) -> String {
        let (top, total) = self.concentration(top_k);
        let mut out = format!(
            "{{\"loops\":{},\"bound_res\":{},\"bound_rec\":{},\"bound_tie\":{},\
             \"gap_loops\":{},\"gap_sum\":{},\"steps\":{},\"wasted\":{},\
             \"evictions\":{},\"slots\":{},\"circuits_truncated\":{},\
             \"top_k\":{},\"top_wasted\":{},\"wasted_total\":{}",
            self.loops,
            self.res_bound,
            self.rec_bound,
            self.tie_bound,
            self.gap_loops,
            self.gap_sum,
            self.steps,
            self.wasted,
            self.evictions,
            self.slots,
            self.circuits_truncated,
            top_k,
            top,
            total,
        );
        let binding: Vec<String> = self
            .binding_res_counts
            .iter()
            .map(|(name, count)| format!("\"{name}\":{count}"))
            .collect();
        out.push_str(&format!(",\"binding_res\":{{{}}}}}", binding.join(",")));
        out
    }
}

/// Extracts the per-loop proved bounds from an `optgap` run's stdout:
/// loop index → `(exact_lb, exact_ub)`. The aggregate line (which has no
/// `"loop"` field) and anything unparsable is skipped.
pub fn parse_optgap_bounds(text: &str) -> BTreeMap<usize, (i64, i64)> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let Some(idx) = int_field(line, "loop") else {
            continue;
        };
        let (Some(lb), Some(ub)) = (int_field(line, "exact_lb"), int_field(line, "exact_ub"))
        else {
            continue;
        };
        out.insert(idx as usize, (lb, ub));
    }
    out
}

/// The integer value of `key` in a flat JSON object line.
fn int_field(line: &str, key: &str) -> Option<i64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}'])?;
    rest[..end].trim().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mii::attribute_mii;
    use ims_core::{Counters, ProblemBuilder, Scheduler};
    use ims_graph::DepKind;
    use ims_ir::{OpId, Opcode};
    use ims_machine::minimal;
    use ims_trace::Recorder;

    fn sample_report(bounds: Option<(i64, i64)>) -> (LoopReport, MachineModel) {
        let m = minimal();
        let mut pb = ProblemBuilder::new(&m);
        let a = pb.add_op(Opcode::Add, OpId(0));
        let b = pb.add_op(Opcode::Add, OpId(1));
        pb.add_dep(a, b, 1, 0, DepKind::Flow, false);
        pb.add_dep(b, a, 1, 1, DepKind::Flow, false);
        let p = pb.finish();
        let mut rec = Recorder::new();
        Scheduler::new(&p).observer(&mut rec).run().unwrap();
        let report = LoopReport {
            label: "loop_00000".into(),
            ops: p.num_ops(),
            attribution: attribute_mii(&p, 1000, &mut Counters::new()),
            mine: TraceMine::from_events(&rec.events),
            bounds,
        };
        (report, m)
    }

    #[test]
    fn json_line_carries_the_attribution() {
        let (r, m) = sample_report(Some((2, 2)));
        let line = r.to_json_line(&m);
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(line.contains("\"loop\":\"loop_00000\""), "{line}");
        assert!(line.contains("\"bound\":\"tie\""), "{line}");
        assert!(line.contains("\"circuit\":[1,2]"), "{line}");
        assert!(line.contains("\"circuit_delay\":2"), "{line}");
        assert!(line.contains("\"exact_lb\":2,\"exact_ub\":2"), "{line}");
        assert!(line.contains("\"binding_res\":[\"unit\""), "{line}");
        assert!(!line.contains('\n'));
    }

    #[test]
    fn gaps_are_computed_against_both_references() {
        let (r, _) = sample_report(Some((2, 2)));
        assert_eq!(r.final_ii(), Some(2));
        assert_eq!(r.mii_gap(), Some(0));
        assert_eq!(r.proved_gap(), Some(0));
        let (r, _) = sample_report(Some((2, 3)));
        assert_eq!(r.proved_gap(), None, "unproved bounds give no gap");
        let (r, _) = sample_report(None);
        assert_eq!(r.proved_gap(), None);
    }

    #[test]
    fn text_report_names_the_evidence() {
        let (r, m) = sample_report(Some((2, 2)));
        let text = r.render_text(&m);
        assert!(text.contains("MII 2 (res 2, rec 2)"), "{text}");
        assert!(text.contains("critical circuit: [1,2]"), "{text}");
        assert!(text.contains("binding resource"), "{text}");
        assert!(text.contains("II* = 2 proved"), "{text}");
    }

    #[test]
    fn corpus_stats_fold_and_concentrate() {
        let (r, m) = sample_report(None);
        let mut stats = CorpusStats::default();
        stats.add(&r, &m);
        stats.add(&r, &m);
        assert_eq!(stats.loops, 2);
        assert_eq!(stats.tie_bound, 2);
        assert_eq!(stats.steps, 2 * r.mine.summary.total_steps());
        let json = stats.to_json_line(10);
        assert!(json.contains("\"loops\":2"), "{json}");
        assert!(json.contains("\"bound_tie\":2"), "{json}");
        assert!(json.contains("\"binding_res\":{\"unit\":2}"), "{json}");
        // This loop schedules at its MII first try: nothing is wasted, so
        // nothing concentrates.
        assert_eq!(stats.concentration(1), (0, 0));
        assert!(stats.top_wasted(5).is_empty());
    }

    #[test]
    fn top_wasted_orders_and_truncates() {
        let mut stats = CorpusStats::default();
        stats.wasted_by_loop = vec![
            ("loop_b".into(), 5),
            ("loop_a".into(), 9),
            ("loop_c".into(), 0),
            ("loop_d".into(), 5),
        ];
        stats.wasted = 19;
        assert_eq!(
            stats.top_wasted(2),
            vec![("loop_a".to_string(), 9), ("loop_b".to_string(), 5)]
        );
        assert_eq!(stats.concentration(2), (14, 19));
    }

    #[test]
    fn optgap_bounds_parse_per_loop_lines_only() {
        let text = "\
{\"loop\":0,\"ops\":3,\"mii\":2,\"exact_lb\":2,\"exact_ub\":2,\"limit_hit\":false,\"nodes\":10,\"ii_b1\":2}\n\
{\"loop\":1,\"ops\":9,\"mii\":4,\"exact_lb\":4,\"exact_ub\":5,\"limit_hit\":true,\"nodes\":99,\"ii_b1\":5}\n\
{\"loops\":2,\"decided\":1,\"limit_hits\":1,\"gap_b1\":0,\"opt_b1\":1}\n";
        let bounds = parse_optgap_bounds(text);
        assert_eq!(bounds.len(), 2);
        assert_eq!(bounds[&0], (2, 2));
        assert_eq!(bounds[&1], (4, 5));
        assert!(parse_optgap_bounds("garbage\n").is_empty());
    }
}
