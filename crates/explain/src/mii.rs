//! MII attribution: *which* constraint pins the lower bound, with proof.
//!
//! §2 of the paper gives `MII = max(ResMII, RecMII)` but reports only the
//! numbers. This module recomputes both bounds *with provenance*: the
//! ResMII comes back with the greedy bin-packing's final per-resource
//! usage vector (so the saturated — *binding* — resource classes can be
//! named), and the RecMII comes back with the strongly connected component
//! that forces it, a representative critical circuit through that SCC
//! (delay and distance sums included, so `⌈delay/distance⌉` can be checked
//! by eye), and the MinDist critical-node set as a circuit-free fallback
//! when circuit enumeration is truncated.

use ims_core::{res_mii_with_usage, Counters, Problem};
use ims_graph::{elementary_circuits, sccs, Circuit, DepGraph, MinDistSolver, NodeId};
use ims_machine::MachineModel;

/// The ResMII (§2.1) with the evidence behind it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResAttribution {
    /// The resource-constrained lower bound (never below 1).
    pub res_mii: i64,
    /// The greedy bin-packing's final usage count per resource, indexed by
    /// [`ResourceId::index`](ims_machine::ResourceId).
    pub usage: Vec<u64>,
    /// Indices of the **binding** resources: those whose usage equals the
    /// peak. These are the saturated resource classes — lowering the ResMII
    /// requires relieving one of them.
    pub binding: Vec<usize>,
}

impl ResAttribution {
    /// The binding resources by name, in index order.
    pub fn binding_names<'m>(&self, machine: &'m MachineModel) -> Vec<&'m str> {
        self.binding
            .iter()
            .map(|&i| machine.resources()[i].name.as_str())
            .collect()
    }
}

/// The RecMII (§2.2) with the evidence behind it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecAttribution {
    /// The pure recurrence-constrained lower bound (seeded at 1, never
    /// below 1; 1 for an acyclic graph).
    pub rec_mii: i64,
    /// The nodes of the binding SCC — the component whose per-SCC RecMII
    /// achieves [`rec_mii`](RecAttribution::rec_mii). Empty when the graph
    /// has no recurrence.
    pub scc: Vec<NodeId>,
    /// A representative **critical circuit** through the binding SCC: an
    /// elementary circuit with `⌈delay/distance⌉ == rec_mii`, chosen
    /// deterministically (fewest nodes, then lexicographically smallest
    /// node list). `None` when there is no recurrence or when enumeration
    /// was truncated.
    pub circuit: Option<Circuit>,
    /// The MinDist critical nodes of the binding SCC at `rec_mii` — the
    /// nodes with a zero diagonal entry, i.e. exactly the nodes on some
    /// critical recurrence path. This is the attribution used when
    /// [`circuits_truncated`](RecAttribution::circuits_truncated) is set.
    pub critical: Vec<NodeId>,
    /// Whether elementary-circuit enumeration hit its cap, leaving
    /// [`circuit`](RecAttribution::circuit) empty.
    pub circuits_truncated: bool,
}

/// Which of the two §2 bounds pins the MII.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MiiBound {
    /// `ResMII > RecMII`: a saturated resource is binding.
    Resource,
    /// `RecMII > ResMII`: a critical recurrence circuit is binding.
    Recurrence,
    /// `ResMII == RecMII`: both constraints bind simultaneously.
    Tie,
}

impl MiiBound {
    /// Short stable name used in JSON output: `res`, `rec` or `tie`.
    pub fn name(self) -> &'static str {
        match self {
            MiiBound::Resource => "res",
            MiiBound::Recurrence => "rec",
            MiiBound::Tie => "tie",
        }
    }
}

/// The full answer to "why is the MII what it is?".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MiiAttribution {
    /// `max(res_mii, rec_mii)`, never below 1 — agrees with
    /// [`compute_mii`](ims_core::compute_mii).
    pub mii: i64,
    /// The resource bound and its saturated resources.
    pub res: ResAttribution,
    /// The recurrence bound and its critical circuit.
    pub rec: RecAttribution,
    /// Which bound pins the MII.
    pub bound: MiiBound,
}

/// Pure RecMII of one SCC: the doubling probe plus binary search of §2.2,
/// seeded at 1 so the result is the SCC's own bound rather than a running
/// candidate.
fn scc_rec_mii(solver: &mut MinDistSolver, work: &mut u64) -> i64 {
    if solver.probe(1, work) {
        return 1;
    }
    let mut last_bad = 1i64;
    let mut inc = 1i64;
    let mut good;
    loop {
        good = last_bad + inc;
        if solver.probe(good, work) {
            break;
        }
        last_bad = good;
        inc *= 2;
    }
    while last_bad + 1 < good {
        let mid = last_bad + (good - last_bad) / 2;
        if solver.probe(mid, work) {
            good = mid;
        } else {
            last_bad = mid;
        }
    }
    good
}

/// Enumerates elementary circuits of the subgraph induced by `scc` and
/// returns the representative critical circuit (nodes mapped back to the
/// full graph), or `(None, true)` when enumeration hit `max_circuits`.
///
/// The subgraph restriction matters: enumerating on the whole graph would
/// spend the cap on circuits of *other* SCCs and could truncate before the
/// binding SCC's circuits are even visited.
fn representative_circuit(
    graph: &DepGraph,
    scc: &[NodeId],
    max_circuits: usize,
) -> (Option<Circuit>, bool) {
    let mut position = vec![usize::MAX; graph.num_nodes()];
    let mut sub = DepGraph::new();
    for (p, n) in scc.iter().enumerate() {
        position[n.index()] = p;
        let added = sub.add_node();
        debug_assert_eq!(added.index(), p);
    }
    for &n in scc {
        for e in graph.succs(n) {
            let pj = position[e.to.index()];
            if pj == usize::MAX {
                continue;
            }
            sub.add_edge(
                NodeId(position[n.index()] as u32),
                NodeId(pj as u32),
                e.delay,
                e.distance,
                e.kind,
                e.is_mem,
            );
        }
    }
    let (circuits, complete) = elementary_circuits(&sub, max_circuits, &mut 0u64);
    if !complete {
        return (None, true);
    }
    let Some(best_ii) = circuits.iter().map(Circuit::min_ii).max() else {
        return (None, false);
    };
    let mut best: Option<Circuit> = None;
    for c in circuits {
        if c.min_ii() != best_ii {
            continue;
        }
        let mapped = Circuit {
            nodes: c.nodes.iter().map(|n| scc[n.index()]).collect(),
            delay: c.delay,
            distance: c.distance,
        };
        let better = match &best {
            None => true,
            Some(b) => (mapped.nodes.len(), &mapped.nodes) < (b.nodes.len(), &b.nodes),
        };
        if better {
            best = Some(mapped);
        }
    }
    (best, false)
}

/// Computes the MII with full provenance.
///
/// The numbers agree exactly with [`compute_mii`](ims_core::compute_mii)
/// (`mii` and `res.res_mii` are identical; `compute_mii`'s `rec_mii` is
/// seeded with the ResMII, so it equals `max(res.res_mii, rec.rec_mii)`).
/// `max_circuits` caps elementary-circuit enumeration per binding SCC;
/// when the cap is hit the attribution falls back to the SCC node list
/// plus the MinDist critical-node set and sets
/// [`circuits_truncated`](RecAttribution::circuits_truncated).
///
/// Work is charged to the same [`Counters`] fields as the production
/// pipeline: `resmii_work`, `scc_work` and `mindist_work`.
pub fn attribute_mii(
    problem: &Problem<'_>,
    max_circuits: usize,
    counters: &mut Counters,
) -> MiiAttribution {
    let (res_mii, usage) = res_mii_with_usage(problem, counters);
    let peak = usage.iter().copied().max().unwrap_or(0);
    let binding = if peak == 0 {
        Vec::new()
    } else {
        usage
            .iter()
            .enumerate()
            .filter(|&(_, &u)| u == peak)
            .map(|(i, _)| i)
            .collect()
    };
    let res = ResAttribution {
        res_mii,
        usage,
        binding,
    };

    let scc_info = sccs(problem.graph(), &mut counters.scc_work);
    let mut rec_mii = 1i64;
    let mut binding_scc: Option<usize> = None;
    for c in 0..scc_info.components.len() {
        if !scc_info.is_recurrence(c, problem.graph()) {
            continue;
        }
        let mut solver = MinDistSolver::new(problem.graph(), &scc_info.components[c]);
        let r = scc_rec_mii(&mut solver, &mut counters.mindist_work);
        // Strictly-greater wins; the first SCC to reach the running
        // maximum keeps it, so the choice is deterministic.
        if r > rec_mii || binding_scc.is_none() {
            rec_mii = r;
            binding_scc = Some(c);
        }
    }

    let rec = match binding_scc {
        None => RecAttribution {
            rec_mii: 1,
            scc: Vec::new(),
            circuit: None,
            critical: Vec::new(),
            circuits_truncated: false,
        },
        Some(c) => {
            let nodes = &scc_info.components[c];
            let mut solver = MinDistSolver::new(problem.graph(), nodes);
            let critical = solver
                .solve(rec_mii, &mut counters.mindist_work)
                .critical_nodes();
            let (circuit, circuits_truncated) =
                representative_circuit(problem.graph(), nodes, max_circuits);
            RecAttribution {
                rec_mii,
                scc: nodes.clone(),
                circuit,
                critical,
                circuits_truncated,
            }
        }
    };

    let mii = res.res_mii.max(rec.rec_mii).max(1);
    let bound = match res.res_mii.cmp(&rec.rec_mii) {
        std::cmp::Ordering::Greater => MiiBound::Resource,
        std::cmp::Ordering::Less => MiiBound::Recurrence,
        std::cmp::Ordering::Equal => MiiBound::Tie,
    };
    MiiAttribution {
        mii,
        res,
        rec,
        bound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ims_core::{compute_mii, ProblemBuilder};
    use ims_graph::DepKind;
    use ims_ir::{OpId, Opcode};
    use ims_machine::{cydra, minimal};

    fn recurrence_problem(machine: &MachineModel) -> Problem<'_> {
        // a -> b (delay 4) -> a (delay 3, distance 2): RecMII = ceil(7/2)=4.
        let mut pb = ProblemBuilder::new(machine);
        let a = pb.add_op(Opcode::Add, OpId(0));
        let b = pb.add_op(Opcode::Add, OpId(1));
        pb.add_dep(a, b, 4, 0, DepKind::Flow, false);
        pb.add_dep(b, a, 3, 2, DepKind::Flow, false);
        pb.finish()
    }

    #[test]
    fn recurrence_bound_names_the_critical_circuit() {
        let m = minimal();
        let p = recurrence_problem(&m);
        let mut c = Counters::new();
        let att = attribute_mii(&p, 1000, &mut c);
        assert_eq!(att.rec.rec_mii, 4);
        assert_eq!(att.res.res_mii, 2);
        assert_eq!(att.mii, 4);
        assert_eq!(att.bound, MiiBound::Recurrence);
        assert_eq!(att.rec.scc, vec![NodeId(1), NodeId(2)]);
        let circuit = att.rec.circuit.expect("two-node circuit enumerable");
        assert_eq!(circuit.delay, 7);
        assert_eq!(circuit.distance, 2);
        assert_eq!(circuit.min_ii(), 4);
        assert_eq!(circuit.nodes, vec![NodeId(1), NodeId(2)]);
        assert!(!att.rec.circuits_truncated);
        // At the tight II both circuit nodes sit on the critical path.
        assert_eq!(att.rec.critical, vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn resource_bound_names_the_saturated_resource() {
        // Five adds on cydra: the adder pipeline saturates at 5.
        let m = cydra();
        let mut pb = ProblemBuilder::new(&m);
        for i in 0..5 {
            pb.add_op(Opcode::Add, OpId(i));
        }
        let p = pb.finish();
        let mut c = Counters::new();
        let att = attribute_mii(&p, 1000, &mut c);
        assert_eq!(att.res.res_mii, 5);
        assert_eq!(att.rec.rec_mii, 1, "no recurrence");
        assert_eq!(att.bound, MiiBound::Resource);
        assert!(att.rec.scc.is_empty());
        assert!(att.rec.circuit.is_none());
        let names = att.res.binding_names(&m);
        assert!(
            names.iter().any(|n| n.starts_with("add_")),
            "adder saturates: {names:?}"
        );
        for &i in &att.res.binding {
            assert_eq!(att.res.usage[i], 5);
        }
    }

    #[test]
    fn tie_when_both_bounds_agree() {
        // Two ops on one unit (ResMII 2) + a delay-2/distance-1 recurrence
        // (RecMII 2).
        let m = minimal();
        let mut pb = ProblemBuilder::new(&m);
        let a = pb.add_op(Opcode::Add, OpId(0));
        let b = pb.add_op(Opcode::Add, OpId(1));
        pb.add_dep(a, b, 1, 0, DepKind::Flow, false);
        pb.add_dep(b, a, 1, 1, DepKind::Flow, false);
        let p = pb.finish();
        let mut c = Counters::new();
        let att = attribute_mii(&p, 1000, &mut c);
        assert_eq!(att.res.res_mii, 2);
        assert_eq!(att.rec.rec_mii, 2);
        assert_eq!(att.bound, MiiBound::Tie);
        assert_eq!(att.mii, 2);
    }

    #[test]
    fn binding_scc_is_the_worst_one() {
        // Two self-recurrences: delay 3 and delay 7 — the latter binds.
        let m = minimal();
        let mut pb = ProblemBuilder::new(&m);
        let a = pb.add_op(Opcode::Add, OpId(0));
        let b = pb.add_op(Opcode::Add, OpId(1));
        pb.add_dep(a, a, 3, 1, DepKind::Flow, false);
        pb.add_dep(b, b, 7, 1, DepKind::Flow, false);
        let p = pb.finish();
        let mut c = Counters::new();
        let att = attribute_mii(&p, 1000, &mut c);
        assert_eq!(att.rec.rec_mii, 7);
        assert_eq!(att.rec.scc, vec![b]);
        let circuit = att.rec.circuit.unwrap();
        assert_eq!(circuit.nodes, vec![b]);
        assert_eq!(circuit.min_ii(), 7);
    }

    #[test]
    fn truncated_enumeration_falls_back_to_critical_nodes() {
        // A 4-node recurrence clique has more circuits than the cap of 2,
        // but the MinDist critical set still names the SCC's tight nodes.
        let m = minimal();
        let mut pb = ProblemBuilder::new(&m);
        let ns: Vec<NodeId> = (0..4).map(|i| pb.add_op(Opcode::Add, OpId(i))).collect();
        for &x in &ns {
            for &y in &ns {
                if x != y {
                    pb.add_dep(x, y, 2, 1, DepKind::Flow, false);
                }
            }
        }
        let p = pb.finish();
        let mut c = Counters::new();
        let att = attribute_mii(&p, 2, &mut c);
        assert!(att.rec.circuits_truncated);
        assert!(att.rec.circuit.is_none());
        assert_eq!(att.rec.scc, ns);
        assert!(!att.rec.critical.is_empty());
        assert!(att.rec.critical.iter().all(|n| ns.contains(n)));
    }

    #[test]
    fn attribution_agrees_with_compute_mii() {
        for p in [
            recurrence_problem(&minimal()),
            ProblemBuilder::new(&minimal()).finish(),
        ] {
            let mut c1 = Counters::new();
            let mut c2 = Counters::new();
            let att = attribute_mii(&p, 1000, &mut c1);
            let mii = compute_mii(&p, &mut c2);
            assert_eq!(att.mii, mii.mii);
            assert_eq!(att.res.res_mii, mii.res_mii);
            assert_eq!(att.res.res_mii.max(att.rec.rec_mii), mii.rec_mii);
        }
    }

    #[test]
    fn empty_problem_attributes_to_a_tie_at_one() {
        let m = minimal();
        let p = ProblemBuilder::new(&m).finish();
        let mut c = Counters::new();
        let att = attribute_mii(&p, 1000, &mut c);
        assert_eq!(att.mii, 1);
        assert_eq!(att.res.res_mii, 1);
        assert_eq!(att.rec.rec_mii, 1);
        assert!(att.res.binding.is_empty(), "nothing is saturated");
        assert!(att.rec.scc.is_empty());
    }
}
