//! Trace mining: attributing spent budget to operations, SCCs and MRT rows.
//!
//! A scheduler trace records *what* happened; this module answers *where
//! the budget went*. One pass over the events (in memory from a
//! [`Recorder`](ims_trace::Recorder), or parsed from an `ims-trace` JSONL
//! file — the two paths see identical event sequences) produces:
//!
//! * the **eviction graph**: who evicted whom, how often, and the longest
//!   displacement chain within one attempt (§3.4's displacement policy can
//!   cascade: an op forced into place displaces another, which displaces
//!   another…);
//! * per-node **slot-search effort**, the `FindTimeSlot` iterations each
//!   operation consumed;
//! * per-**SCC** attribution of evictions and slot effort, connecting the
//!   waste back to the recurrences of the dependence graph;
//! * the **MRT heat map** of the final schedule: how many reservations
//!   each `(resource, row)` cell of the modulo reservation table carries,
//!   exposing the saturated rows that made slot searches long.

use std::collections::BTreeMap;

use ims_core::Problem;
use ims_graph::{sccs, NodeId};
use ims_trace::{SchedEvent, TraceSummary};

/// One edge of the eviction graph: `evictor` displaced `victim` `count`
/// times across the whole trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictionEdge {
    /// Graph index of the operation whose placement displaced the victim.
    pub evictor: u32,
    /// Graph index of the displaced operation.
    pub victim: u32,
    /// Number of times this displacement happened.
    pub count: u64,
}

/// Everything mined from one loop's trace in a single pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceMine {
    /// The per-attempt convergence summary (shared with `trace_report`).
    pub summary: TraceSummary,
    /// The eviction graph, heaviest edge first (ties broken by the
    /// smaller `(evictor, victim)` pair).
    pub eviction_edges: Vec<EvictionEdge>,
    /// The deepest who-evicted-whom chain observed within one attempt: a
    /// placement whose victim's later forced placement displaced another,
    /// and so on. 0 when nothing was evicted.
    pub max_chain: u64,
    /// `FindTimeSlot` iterations per node, descending (ties to the
    /// smaller index).
    pub slot_iters_by_node: Vec<(u32, u64)>,
}

impl TraceMine {
    /// Mines a trace in one pass. Works on complete traces and on
    /// well-formed prefixes of truncated ones alike (see
    /// [`parse_trace_prefix`](ims_trace::parse_trace_prefix)).
    pub fn from_events(events: &[SchedEvent]) -> TraceMine {
        let summary = TraceSummary::from_events(events);
        let mut edges: BTreeMap<(u32, u32), u64> = BTreeMap::new();
        let mut depth: BTreeMap<u32, u64> = BTreeMap::new();
        let mut iters: BTreeMap<u32, u64> = BTreeMap::new();
        let mut max_chain = 0u64;
        for ev in events {
            match *ev {
                SchedEvent::AttemptStart { .. } => depth.clear(),
                SchedEvent::OpEvicted { node, evictor } => {
                    *edges.entry((evictor, node)).or_insert(0) += 1;
                    let d = depth.get(&evictor).copied().unwrap_or(0) + 1;
                    max_chain = max_chain.max(d);
                    depth.insert(node, d);
                }
                SchedEvent::SlotSearch { node, iters: n, .. } => {
                    *iters.entry(node).or_insert(0) += n as u64;
                }
                _ => {}
            }
        }
        let mut eviction_edges: Vec<EvictionEdge> = edges
            .into_iter()
            .map(|((evictor, victim), count)| EvictionEdge {
                evictor,
                victim,
                count,
            })
            .collect();
        eviction_edges.sort_by(|a, b| {
            b.count
                .cmp(&a.count)
                .then(a.evictor.cmp(&b.evictor))
                .then(a.victim.cmp(&b.victim))
        });
        let mut slot_iters_by_node: Vec<(u32, u64)> = iters.into_iter().collect();
        slot_iters_by_node.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        TraceMine {
            summary,
            eviction_edges,
            max_chain,
            slot_iters_by_node,
        }
    }
}

/// Evictions and slot effort attributed to one recurrence SCC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SccAttribution {
    /// The SCC's nodes (ascending graph indices).
    pub nodes: Vec<NodeId>,
    /// Evictions whose *victim* lies in this SCC.
    pub evictions: u64,
    /// `FindTimeSlot` iterations spent on this SCC's nodes.
    pub slot_iters: u64,
}

/// Attributes mined eviction and slot-search effort to the recurrence
/// SCCs of the problem's dependence graph, heaviest first (by evictions,
/// then slot iterations, then the smallest member node).
///
/// Only recurrence SCCs are listed — effort on acyclic nodes is visible
/// per-node in [`TraceMine::slot_iters_by_node`] but has no recurrence to
/// blame.
pub fn attribute_to_sccs(problem: &Problem<'_>, mine: &TraceMine) -> Vec<SccAttribution> {
    let info = sccs(problem.graph(), &mut 0u64);
    let mut out = Vec::new();
    for c in 0..info.components.len() {
        if !info.is_recurrence(c, problem.graph()) {
            continue;
        }
        let nodes = &info.components[c];
        let in_scc = |raw: u32| {
            (raw as usize) < info.component_of.len() && info.component_of[raw as usize] == c
        };
        let evictions = mine
            .summary
            .evicted_by_node
            .iter()
            .filter(|&&(n, _)| in_scc(n))
            .map(|&(_, count)| count)
            .sum();
        let slot_iters = mine
            .slot_iters_by_node
            .iter()
            .filter(|&&(n, _)| in_scc(n))
            .map(|&(_, count)| count)
            .sum();
        out.push(SccAttribution {
            nodes: nodes.clone(),
            evictions,
            slot_iters,
        });
    }
    out.sort_by(|a, b| {
        b.evictions
            .cmp(&a.evictions)
            .then(b.slot_iters.cmp(&a.slot_iters))
            .then(a.nodes.cmp(&b.nodes))
    });
    out
}

/// Reservation pressure on the final schedule's modulo reservation table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MrtHeat {
    /// The II of the final (successful) attempt.
    pub ii: i64,
    /// `rows[resource][row]`: reservations of `resource` at modulo cycle
    /// `row` across the whole schedule.
    pub rows: Vec<Vec<u64>>,
}

impl MrtHeat {
    /// Total reservations of one resource across all rows.
    pub fn resource_total(&self, resource: usize) -> u64 {
        self.rows[resource].iter().sum()
    }

    /// The `k` hottest `(resource, row, count)` cells, hottest first
    /// (ties to the smaller resource, then the smaller row). Cells with a
    /// zero count are never reported.
    pub fn hottest(&self, k: usize) -> Vec<(usize, usize, u64)> {
        let mut cells: Vec<(usize, usize, u64)> = self
            .rows
            .iter()
            .enumerate()
            .flat_map(|(r, rows)| {
                rows.iter()
                    .enumerate()
                    .filter(|&(_, &c)| c > 0)
                    .map(move |(row, &c)| (r, row, c))
            })
            .collect();
        cells.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)).then(a.1.cmp(&b.1)));
        cells.truncate(k);
        cells
    }
}

/// Replays a trace's placement events and builds the MRT heat map of the
/// final schedule. Returns `None` when the trace does not end in a
/// successful attempt (failed run or truncated trace).
///
/// The replay honours evictions: a displaced operation's old reservation
/// disappears, exactly as the scheduler's own MRT does, so the heat map
/// reflects the schedule that was actually returned.
pub fn mrt_heat(problem: &Problem<'_>, events: &[SchedEvent]) -> Option<MrtHeat> {
    let mut ii = 0i64;
    let mut ok = false;
    let mut placed: BTreeMap<u32, (i64, usize)> = BTreeMap::new();
    for ev in events {
        match *ev {
            SchedEvent::AttemptStart { ii: cand, .. } => {
                ii = cand;
                ok = false;
                placed.clear();
            }
            SchedEvent::OpScheduled {
                node, time, alt, ..
            } => {
                placed.insert(node, (time, alt));
            }
            SchedEvent::OpEvicted { node, .. } => {
                placed.remove(&node);
            }
            SchedEvent::AttemptDone { ok: done_ok, .. } => ok = done_ok,
            _ => {}
        }
    }
    if !ok || ii < 1 {
        return None;
    }
    let machine = problem.machine();
    let mut rows = vec![vec![0u64; ii as usize]; machine.num_resources()];
    for (&node, &(time, alt)) in &placed {
        let Some(info) = problem.info(NodeId(node)) else {
            continue; // pseudo-op placements reserve nothing
        };
        let Some(alternative) = info.alternatives.get(alt) else {
            continue;
        };
        for &(r, off) in alternative.table.uses() {
            let row = (time + off as i64).rem_euclid(ii) as usize;
            rows[r.index()][row] += 1;
        }
    }
    Some(MrtHeat { ii, rows })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ims_core::{BackendKind, ProblemBuilder, Scheduler};
    use ims_graph::DepKind;
    use ims_ir::{OpId, Opcode};
    use ims_machine::minimal;
    use ims_trace::Recorder;

    fn events() -> Vec<SchedEvent> {
        vec![
            SchedEvent::AttemptStart {
                ii: 2,
                budget: 8,
                backend: BackendKind::Ims,
            },
            SchedEvent::SlotSearch {
                node: 1,
                estart: 0,
                iters: 3,
            },
            SchedEvent::OpScheduled {
                node: 1,
                time: 0,
                alt: 0,
                forced: true,
            },
            SchedEvent::OpEvicted {
                node: 2,
                evictor: 1,
            },
            SchedEvent::SlotSearch {
                node: 2,
                estart: 0,
                iters: 2,
            },
            SchedEvent::OpScheduled {
                node: 2,
                time: 1,
                alt: 0,
                forced: true,
            },
            SchedEvent::OpEvicted {
                node: 3,
                evictor: 2,
            },
            SchedEvent::AttemptDone { ii: 2, ok: false },
            SchedEvent::AttemptStart {
                ii: 3,
                budget: 8,
                backend: BackendKind::Ims,
            },
            SchedEvent::OpEvicted {
                node: 2,
                evictor: 1,
            },
            SchedEvent::AttemptDone { ii: 3, ok: true },
        ]
    }

    #[test]
    fn eviction_graph_counts_and_orders_edges() {
        let mine = TraceMine::from_events(&events());
        assert_eq!(
            mine.eviction_edges,
            vec![
                EvictionEdge {
                    evictor: 1,
                    victim: 2,
                    count: 2
                },
                EvictionEdge {
                    evictor: 2,
                    victim: 3,
                    count: 1
                },
            ]
        );
        let total: u64 = mine.eviction_edges.iter().map(|e| e.count).sum();
        assert_eq!(total, mine.summary.evictions);
    }

    #[test]
    fn chains_reset_between_attempts() {
        // Attempt 1: 1 evicts 2 (depth 1), then 2 evicts 3 (depth 2).
        // Attempt 2: 1 evicts 2 again — but the chain restarts at 1.
        let mine = TraceMine::from_events(&events());
        assert_eq!(mine.max_chain, 2);
    }

    #[test]
    fn slot_effort_is_per_node() {
        let mine = TraceMine::from_events(&events());
        assert_eq!(mine.slot_iters_by_node, vec![(1, 3), (2, 2)]);
    }

    #[test]
    fn empty_trace_mines_to_nothing() {
        let mine = TraceMine::from_events(&[]);
        assert_eq!(mine, TraceMine::default());
        assert_eq!(mine.max_chain, 0);
    }

    #[test]
    fn scc_attribution_blames_the_recurrence() {
        // Nodes 1<->2 form the only recurrence; node 3 is acyclic.
        let m = minimal();
        let mut pb = ProblemBuilder::new(&m);
        let a = pb.add_op(Opcode::Add, OpId(0));
        let b = pb.add_op(Opcode::Add, OpId(1));
        let _c = pb.add_op(Opcode::Add, OpId(2));
        pb.add_dep(a, b, 1, 0, DepKind::Flow, false);
        pb.add_dep(b, a, 1, 1, DepKind::Flow, false);
        let p = pb.finish();
        let mine = TraceMine::from_events(&events());
        let sccs = attribute_to_sccs(&p, &mine);
        assert_eq!(sccs.len(), 1);
        assert_eq!(sccs[0].nodes, vec![a, b]);
        // Victim 2 (×2 evictions) lies in the SCC; victim 3 does not.
        assert_eq!(sccs[0].evictions, 2);
        assert_eq!(sccs[0].slot_iters, 5);
    }

    #[test]
    fn mrt_heat_reflects_the_final_schedule_only() {
        // minimal(): one unit, every op reserves it at offset 0.
        let m = minimal();
        let mut pb = ProblemBuilder::new(&m);
        let a = pb.add_op(Opcode::Add, OpId(0));
        let b = pb.add_op(Opcode::Add, OpId(1));
        pb.add_dep(a, b, 1, 0, DepKind::Flow, false);
        let p = pb.finish();
        let events = vec![
            SchedEvent::AttemptStart {
                ii: 2,
                budget: 8,
                backend: BackendKind::Ims,
            },
            SchedEvent::OpScheduled {
                node: 1,
                time: 0,
                alt: 0,
                forced: false,
            },
            // This placement is later evicted; it must not leak heat.
            SchedEvent::OpScheduled {
                node: 2,
                time: 2,
                alt: 0,
                forced: false,
            },
            SchedEvent::OpEvicted {
                node: 2,
                evictor: 1,
            },
            SchedEvent::OpScheduled {
                node: 2,
                time: 1,
                alt: 0,
                forced: true,
            },
            SchedEvent::AttemptDone { ii: 2, ok: true },
        ];
        let heat = mrt_heat(&p, &events).expect("final attempt succeeded");
        assert_eq!(heat.ii, 2);
        // One unit, rows 0 and 1 carry one reservation each.
        let unit: Vec<u64> = heat.rows.iter().map(|r| r.iter().sum()).collect();
        assert_eq!(unit.iter().sum::<u64>(), 2);
        assert_eq!(heat.hottest(10).len(), 2);
        assert_eq!(heat.resource_total(heat.hottest(1)[0].0), 2);
    }

    #[test]
    fn mrt_heat_declines_failed_and_truncated_traces() {
        let m = minimal();
        let p = ProblemBuilder::new(&m).finish();
        // Failed final attempt.
        let failed = vec![
            SchedEvent::AttemptStart {
                ii: 1,
                budget: 1,
                backend: BackendKind::Ims,
            },
            SchedEvent::AttemptDone { ii: 1, ok: false },
        ];
        assert!(mrt_heat(&p, &failed).is_none());
        // Truncated: attempt never resolved.
        let truncated = vec![SchedEvent::AttemptStart {
            ii: 1,
            budget: 1,
            backend: BackendKind::Ims,
        }];
        assert!(mrt_heat(&p, &truncated).is_none());
        assert!(mrt_heat(&p, &[]).is_none());
    }

    #[test]
    fn mined_totals_match_a_real_run() {
        // Record a genuine scheduler run and check the mined quantities
        // against the scheduler's own counters.
        let m = minimal();
        let mut pb = ProblemBuilder::new(&m);
        let mut prev = None;
        for i in 0..4 {
            let n = pb.add_op(Opcode::Add, OpId(i));
            if let Some(p) = prev {
                pb.add_dep(p, n, 1, 0, DepKind::Flow, false);
            }
            prev = Some(n);
        }
        let p = pb.finish();
        let mut rec = Recorder::new();
        let out = Scheduler::new(&p).observer(&mut rec).run().unwrap();
        let mine = TraceMine::from_events(&rec.events);
        assert_eq!(mine.summary.evictions, out.stats.counters.evictions);
        assert_eq!(mine.summary.slots_examined, out.stats.counters.findslot_iters);
        let heat = mrt_heat(&p, &rec.events).expect("run succeeded");
        assert_eq!(heat.ii, out.schedule.ii);
        // Every real op reserves the single unit exactly once.
        let total: u64 = (0..heat.rows.len()).map(|r| heat.resource_total(r)).sum();
        assert_eq!(total, 4);
    }
}
