//! A minimal seeded property-testing harness.
//!
//! A property test here is a pair of closures: a **generator** that builds
//! an arbitrary input from a [`Gen`] (a seeded PRNG plus a *size* budget),
//! and a **property** that checks the input and reports failure as an
//! `Err(String)`. [`check`] drives them:
//!
//! 1. persisted **regression cases** (explicit `(seed, size)` pairs checked
//!    into the test source) are re-run first, so past failures can never
//!    silently return;
//! 2. fresh cases are generated from per-case seeds derived off the
//!    config's base seed, with the size budget ramping up across the run;
//! 3. on failure, the case is **shrunk by halving**: the same seed is
//!    re-generated at size/2, size/4, … for as long as the property keeps
//!    failing, and the smallest still-failing `(seed, size)` is reported.
//!
//! Because every [`Gen`] draw scales its span by `size`, regenerating at a
//! halved size yields a structurally smaller input (fewer nodes, shorter
//! vectors, smaller magnitudes) — not a sub-structure of the original
//! failure, but a fresh small counterexample from the same seed, which in
//! practice is what one debugs.
//!
//! The panic message prints the minimal failing pair and the environment
//! override (`IMS_PROP_SEED` / `IMS_PROP_SIZE`) that replays exactly that
//! case; `IMS_PROP_CASES` globally overrides the iteration budget.

use std::fmt::Debug;

use crate::rng::{Rng, SampleRange, SplitMix64, Xoshiro256};

/// Default size budget for the largest generated cases.
pub const MAX_SIZE: u32 = 100;

/// A case generator: a seeded PRNG plus a size budget in `[1, 100]`.
///
/// The sized helpers (`usize_in`, `i64_in`, `vec_with`, …) scale the
/// *span* of their range by `size/100`, so a small budget produces inputs
/// near the lower bounds — the shrinking knob of the harness. Draws that
/// must not shrink (e.g. an independent stream seed) use [`Gen::rng`]
/// directly.
#[derive(Debug)]
pub struct Gen {
    rng: Xoshiro256,
    size: u32,
}

impl Gen {
    /// A generator for the given case seed and size budget (clamped to
    /// `[1, MAX_SIZE]`).
    pub fn new(seed: u64, size: u32) -> Self {
        Gen {
            rng: Xoshiro256::seed_from_u64(seed),
            size: size.clamp(1, MAX_SIZE),
        }
    }

    /// The underlying PRNG, for unscaled draws.
    pub fn rng(&mut self) -> &mut Xoshiro256 {
        &mut self.rng
    }

    /// The current size budget.
    pub fn size(&self) -> u32 {
        self.size
    }

    fn scaled_span(&self, span: u64) -> u64 {
        ((span as u128 * self.size as u128 + (MAX_SIZE as u128 - 1)) / MAX_SIZE as u128).max(1)
            as u64
    }

    /// A `usize` in `[lo, hi)`, span scaled by the size budget.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        let span = self.scaled_span((hi - lo) as u64);
        lo + self.rng.gen_range(0..span) as usize
    }

    /// An `i64` in `[lo, hi)`, span scaled by the size budget.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range");
        let span = self.scaled_span((hi - lo) as u64);
        lo + self.rng.gen_range(0..span) as i64
    }

    /// A `u32` in `[lo, hi)`, span scaled by the size budget.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn u32_in(&mut self, lo: u32, hi: u32) -> u32 {
        self.usize_in(lo as usize, hi as usize) as u32
    }

    /// An unscaled draw from `range` (uniform at every size).
    pub fn unscaled<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        self.rng.gen_range(range)
    }

    /// A full-range `u64` (unscaled; used for derived stream seeds).
    pub fn u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// An unbiased `bool` (unscaled).
    pub fn bool(&mut self) -> bool {
        self.rng.gen_bool(0.5)
    }

    /// A vector of `0..=max_len` elements (length scaled by the size
    /// budget) built by `f`.
    pub fn vec_with<T>(&mut self, max_len: usize, mut f: impl FnMut(&mut Gen) -> T) -> Vec<T> {
        let len = self.usize_in(0, max_len + 1);
        (0..len).map(|_| f(self)).collect()
    }
}

/// A persisted regression case: a `(seed, size)` pair that once failed.
///
/// Keep these in an array next to the test (the moral equivalent of a
/// `proptest-regressions` file, but in plain source so nothing is lost in
/// refactors); [`check`] re-runs them before generating new cases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Regression {
    /// The case seed.
    pub seed: u64,
    /// The size budget the failure was minimal at.
    pub size: u32,
}

impl Regression {
    /// A regression case from its printed `seed` and `size`.
    pub const fn new(seed: u64, size: u32) -> Self {
        Regression { seed, size }
    }
}

/// Configuration for one [`check`] run.
#[derive(Debug, Clone)]
pub struct PropConfig {
    /// Number of fresh cases to generate (after regressions). Overridden
    /// by the `IMS_PROP_CASES` environment variable.
    pub cases: u32,
    /// Base seed from which per-case seeds are derived.
    pub seed: u64,
}

impl PropConfig {
    /// `cases` fresh cases from the default base seed.
    pub fn with_cases(cases: u32) -> Self {
        PropConfig {
            cases,
            seed: DEFAULT_SEED,
        }
    }
}

/// The default base seed (any fixed constant works; changing it changes
/// which cases a run explores, not whether regressions are re-run).
pub const DEFAULT_SEED: u64 = 0x1A5_0DD_5EED;

/// Runs `property` over `config.cases` generated inputs, after re-running
/// every persisted `regression` case.
///
/// # Panics
///
/// Panics on the first failing case, after shrinking, with a message that
/// includes the minimal failing `(seed, size)` pair, the `Debug` form of
/// the regenerated input, and the environment override that replays it.
pub fn check<T: Debug>(
    name: &str,
    config: &PropConfig,
    regressions: &[Regression],
    generator: impl Fn(&mut Gen) -> T,
    property: impl Fn(&T) -> Result<(), String>,
) {
    let run_case = |seed: u64, size: u32| -> Result<(), (T, String)> {
        let mut g = Gen::new(seed, size);
        let value = generator(&mut g);
        property(&value).map_err(|msg| (value, msg))
    };

    // Environment override: replay exactly one case.
    if let Ok(seed_str) = std::env::var("IMS_PROP_SEED") {
        let seed = parse_u64(&seed_str)
            .unwrap_or_else(|| panic!("IMS_PROP_SEED {seed_str:?} is not a u64"));
        let size = std::env::var("IMS_PROP_SIZE")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(MAX_SIZE);
        if let Err((value, msg)) = run_case(seed, size) {
            panic!(
                "property '{name}' failed on replayed case seed={seed:#x} size={size}\n\
                 input: {value:?}\n{msg}"
            );
        }
        return;
    }

    for r in regressions {
        if let Err((value, msg)) = run_case(r.seed, r.size) {
            panic!(
                "property '{name}' failed on persisted regression seed={:#x} size={}\n\
                 input: {value:?}\n{msg}",
                r.seed, r.size
            );
        }
    }

    let cases = std::env::var("IMS_PROP_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(config.cases)
        .max(1);
    let mut seeds = SplitMix64::new(config.seed);
    for i in 0..cases {
        let seed = seeds.next_u64();
        // Ramp the size budget: small quick cases first, full-size by the
        // second half of the run.
        let size = (MAX_SIZE * (2 * i + 2) / (cases + 1)).clamp(4, MAX_SIZE);
        if let Err((value, msg)) = run_case(seed, size) {
            // Shrink by halving the size budget while the failure persists.
            let (mut best_size, mut best_value, mut best_msg) = (size, value, msg);
            let mut s = size / 2;
            while s >= 1 {
                match run_case(seed, s) {
                    Err((v, m)) => {
                        best_size = s;
                        best_value = v;
                        best_msg = m;
                        s /= 2;
                    }
                    Ok(()) => break,
                }
            }
            panic!(
                "property '{name}' failed (case {i} of {cases})\n\
                 minimal failing case: seed={seed:#x} size={best_size}\n\
                 input: {best_value:?}\n\
                 {best_msg}\n\
                 reproduce with: IMS_PROP_SEED={seed:#x} IMS_PROP_SIZE={best_size} cargo test {name}\n\
                 to pin it, add Regression::new({seed:#x}, {best_size}) to this test's regression list"
            );
        }
    }
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// Asserts a condition inside a property closure, returning a formatted
/// `Err` (not panicking) so the harness can shrink the case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+)
            ));
        }
    };
}

/// Asserts equality inside a property closure (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {a:?}\n right: {b:?}",
                stringify!($a),
                stringify!($b)
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return Err(format!(
                "assertion failed: {} == {}: {}\n  left: {a:?}\n right: {b:?}",
                stringify!($a),
                stringify!($b),
                format!($($fmt)+)
            ));
        }
    }};
}

/// Skips a generated case that does not satisfy a precondition. The case
/// counts as passed; use sparingly (prefer generators that construct valid
/// inputs directly).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_completes() {
        check(
            "always_true",
            &PropConfig::with_cases(50),
            &[],
            |g| g.usize_in(0, 100),
            |&x| {
                prop_assert!(x < 100);
                Ok(())
            },
        );
    }

    #[test]
    fn generation_is_deterministic_per_seed_and_size() {
        let draw = |seed, size| {
            let mut g = Gen::new(seed, size);
            (g.usize_in(0, 1000), g.i64_in(-50, 50), g.u64())
        };
        assert_eq!(draw(42, 100), draw(42, 100));
        assert_ne!(draw(42, 100), draw(43, 100));
    }

    #[test]
    fn size_budget_bounds_magnitudes() {
        // At size 1 the scaled helpers draw from the bottom ~1% of their
        // ranges.
        let mut g = Gen::new(77, 1);
        for _ in 0..100 {
            assert!(g.usize_in(5, 1000) <= 15);
            assert!(g.i64_in(-3, 1000) <= 8);
            assert!(g.vec_with(50, |g| g.bool()).is_empty());
        }
        // At full size the whole range is reachable.
        let mut g = Gen::new(77, MAX_SIZE);
        assert!((0..200).map(|_| g.usize_in(0, 10)).any(|x| x >= 8));
    }

    #[test]
    fn failing_property_shrinks_and_reports_seed() {
        let result = std::panic::catch_unwind(|| {
            check(
                "fails_when_large",
                &PropConfig::with_cases(200),
                &[],
                |g| g.usize_in(0, 1000),
                |&x| {
                    prop_assert!(x < 10, "x was {x}");
                    Ok(())
                },
            );
        });
        let msg = *result.expect_err("must fail").downcast::<String>().unwrap();
        assert!(msg.contains("minimal failing case"), "{msg}");
        assert!(msg.contains("IMS_PROP_SEED="), "{msg}");
        // Shrinking by halving must have pulled the size well below max.
        let size: u32 = msg
            .split("size=")
            .nth(1)
            .unwrap()
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(size < MAX_SIZE, "no shrinking happened: {msg}");
    }

    #[test]
    fn regressions_run_first() {
        let result = std::panic::catch_unwind(|| {
            check(
                "regression_guard",
                &PropConfig::with_cases(1),
                &[Regression::new(0xDEAD, 13)],
                |g| g.usize_in(0, 10),
                |_| Err("always fails".into()),
            );
        });
        let msg = *result.expect_err("must fail").downcast::<String>().unwrap();
        assert!(msg.contains("persisted regression"), "{msg}");
        assert!(msg.contains("0xdead"), "{msg}");
    }

    #[test]
    fn prop_assume_skips() {
        check(
            "assume_skips",
            &PropConfig::with_cases(30),
            &[],
            |g| g.usize_in(0, 100),
            |&x| {
                prop_assume!(x % 2 == 0);
                prop_assert!(x % 2 == 0);
                Ok(())
            },
        );
    }

    #[test]
    fn parse_u64_accepts_hex_and_decimal() {
        assert_eq!(parse_u64("0x10"), Some(16));
        assert_eq!(parse_u64("16"), Some(16));
        assert_eq!(parse_u64("zzz"), None);
    }
}
