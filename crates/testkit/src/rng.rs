//! Deterministic pseudo-random number generation.
//!
//! Two classic generators, both tiny and fully deterministic:
//!
//! * [`SplitMix64`] (Steele, Lea & Flood's `splitmix64`) — a one-word
//!   generator used for seed expansion and for deriving per-case seeds in
//!   the property harness;
//! * [`Xoshiro256`] (Blackman & Vigna's `xoshiro256++`) — the workhorse
//!   generator behind corpus generation, property-test inputs, and
//!   benchmark setup. It is seeded from a single `u64` through SplitMix64,
//!   exactly as its authors recommend.
//!
//! The [`Rng`] trait carries the minimal sampling surface the workspace
//! uses: `gen_range` over integer and `f64` ranges, `gen_bool`, `shuffle`,
//! and `choose`. Integer sampling uses the widening-multiply bound
//! (Lemire's method without the rejection step); the residual bias is at
//! most 2⁻⁶⁴ per draw, far below anything the corpus statistics or
//! property tests can observe, and keeps every draw a fixed one-word cost.

use std::ops::{Range, RangeInclusive};

/// `splitmix64`: one 64-bit state word, one output per step.
///
/// Used to expand a user seed into the larger xoshiro state and to derive
/// independent per-case seeds in [`crate::prop`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator with the given state.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        SplitMix64::next_u64(self)
    }
}

/// `xoshiro256++`: four 64-bit state words, period 2²⁵⁶ − 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seeds the full 256-bit state from one `u64` via [`SplitMix64`].
    ///
    /// Every distinct seed yields an independent-looking stream; the same
    /// seed always yields the same stream (the determinism every corpus
    /// and property test in this repository relies on).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256 {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// The next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = (self.s[0].wrapping_add(self.s[3]))
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl Rng for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        Xoshiro256::next_u64(self)
    }
}

/// A 64-bit draw bounded to `[0, n)` by widening multiply.
fn bounded<R: Rng + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

/// The minimal random-sampling surface used across the workspace.
///
/// Implemented by [`SplitMix64`] and [`Xoshiro256`]; generic code (the
/// loop generator, the property harness) takes `R: Rng`.
pub trait Rng {
    /// The next raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)` with 53 random bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        self.next_f64() < p
    }

    /// A uniform sample from `range` (half-open or inclusive integer
    /// ranges, or a half-open `f64` range).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Fisher–Yates shuffle of `slice` in place.
    fn shuffle<T>(&mut self, slice: &mut [T])
    where
        Self: Sized,
    {
        for i in (1..slice.len()).rev() {
            let j = bounded(self, i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// A uniformly chosen element of `slice`, or `None` if it is empty.
    fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T>
    where
        Self: Sized,
    {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[bounded(self, slice.len() as u64) as usize])
        }
    }
}

/// A range that can be sampled uniformly; the `gen_range` argument.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = if span > u64::MAX as u128 {
                    rng.next_u64() as u128
                } else {
                    bounded(rng, span as u64) as u128
                };
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = if span > u64::MAX as u128 {
                    rng.next_u64() as u128
                } else {
                    bounded(rng, span as u64) as u128
                };
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i32, i64, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        let x = self.start + rng.next_f64() * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if x >= self.end {
            self.start
        } else {
            x
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_matches_reference_vectors() {
        // Reference outputs for seed 1234567 from the public-domain
        // splitmix64.c by Sebastiano Vigna.
        let mut sm = SplitMix64::new(1234567);
        assert_eq!(sm.next_u64(), 6457827717110365317);
        assert_eq!(sm.next_u64(), 3203168211198807973);
        assert_eq!(sm.next_u64(), 9817491932198370423);
    }

    #[test]
    fn xoshiro_is_deterministic_and_seed_sensitive() {
        let mut a = Xoshiro256::seed_from_u64(7);
        let mut b = Xoshiro256::seed_from_u64(7);
        let mut c = Xoshiro256::seed_from_u64(8);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Xoshiro256::seed_from_u64(11);
        for _ in 0..10_000 {
            let a: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&a));
            let b: i64 = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&b));
            let c: f64 = rng.gen_range(0.25..2.0);
            assert!((0.25..2.0).contains(&c));
            let d: i32 = rng.gen_range(0..100);
            assert!((0..100).contains(&d));
        }
    }

    #[test]
    fn gen_range_covers_every_value_of_a_small_range() {
        let mut rng = Xoshiro256::seed_from_u64(5);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Xoshiro256::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.77)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((0.75..=0.79).contains(&frac), "{frac}");
        assert!((0..1000).all(|_| !rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes_without_loss() {
        let mut rng = Xoshiro256::seed_from_u64(21);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // A 50-element shuffle leaving everything fixed has probability
        // 1/50!; treat that as "the shuffle did nothing".
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_hits_every_element_and_handles_empty() {
        let mut rng = Xoshiro256::seed_from_u64(2);
        let pool = [10, 20, 30];
        let mut seen = [false; 3];
        for _ in 0..200 {
            let x = *rng.choose(&pool).unwrap();
            seen[(x / 10 - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(rng.choose::<u8>(&[]), None);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = Xoshiro256::seed_from_u64(0);
        let _: usize = rng.gen_range(5..5);
    }
}
