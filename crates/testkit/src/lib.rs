#![deny(missing_docs)]

//! Std-only test infrastructure for the IMS reproduction.
//!
//! The evaluation and test suites of this repository need three things that
//! are usually imported from crates.io — a seeded random number generator,
//! a property-testing harness, and a micro-benchmark harness. To keep the
//! whole workspace hermetic (buildable with a bare Rust toolchain and no
//! network), this crate provides small in-repo substitutes:
//!
//! * [`rng`] — a deterministic SplitMix64-seeded xoshiro256++ generator
//!   with the minimal [`Rng`] surface the workspace uses (`gen_range`,
//!   `gen_bool`, `shuffle`, `choose`);
//! * [`prop`] — seeded property-based testing: case generation from a
//!   `(seed, size)` pair, an iteration budget, failure shrinking by
//!   halving the size, and explicit persisted regression seeds;
//! * [`bench`][mod@bench] — wall-clock micro-benchmarks (warmup + N timed
//!   iterations, median/p90 statistics) that print one machine-readable
//!   JSON line per benchmark.
//!
//! None of this aims to be a general-purpose replacement for `rand`,
//! `proptest`, or `criterion`; it implements exactly the surface the IMS
//! workspace needs, deterministically, in a few hundred lines of std-only
//! Rust.
//!
//! # Reproducing a failing property case
//!
//! When a [`prop::check`] property fails, the panic message prints the
//! minimal failing `(seed, size)` pair and a ready-to-paste environment
//! override:
//!
//! ```text
//! property 'mrt_roundtrip' failed (case 17 of 96)
//! minimal failing case: seed=0x9e3779b97f4a7c15 size=12
//! reproduce with: IMS_PROP_SEED=0x9e3779b97f4a7c15 IMS_PROP_SIZE=12 cargo test mrt_roundtrip
//! ```
//!
//! To pin the case forever, add `Regression::new(0x9e3779b97f4a7c15, 12)`
//! to the test's regression list — regressions are re-run before any new
//! cases are generated.

pub mod bench;
pub mod prop;
pub mod rng;

pub use prop::{check, Gen, PropConfig, Regression};
pub use rng::{Rng, SplitMix64, Xoshiro256};
