//! A std-only wall-clock micro-benchmark harness.
//!
//! [`run`] executes a closure for a configurable number of warmup and
//! timed iterations and summarizes the per-iteration wall-clock times
//! (min / median / p90 / mean / max). [`BenchResult::json_line`] renders
//! one machine-readable JSON object per benchmark — timings plus any
//! caller-supplied observability counters — so repeated runs can be
//! appended to a `BENCH_*.jsonl` file and tracked over time.
//!
//! This replaces the Criterion benches the workspace used to carry: no
//! statistical outlier rejection, no plotting — just deterministic
//! iteration counts and honest order statistics, with zero dependencies.

use std::time::Instant;

/// Re-export of [`std::hint::black_box`], the optimization barrier every
/// bench body should wrap its inputs and outputs in.
pub use std::hint::black_box;

/// Iteration counts for one benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchSpec {
    /// Untimed warmup iterations (cache/branch-predictor settling).
    pub warmup: u32,
    /// Timed iterations; each contributes one sample.
    pub iters: u32,
}

impl BenchSpec {
    /// `iters` timed iterations after `warmup` untimed ones.
    ///
    /// # Panics
    ///
    /// Panics if `iters` is zero.
    pub fn new(warmup: u32, iters: u32) -> Self {
        assert!(iters > 0, "at least one timed iteration is required");
        BenchSpec { warmup, iters }
    }

    /// The spec scaled down for smoke tests (1 warmup, 2 iters).
    pub fn smoke() -> Self {
        BenchSpec::new(1, 2)
    }
}

/// Summary statistics for one benchmark, in nanoseconds per iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Benchmark name (the JSON `bench` field).
    pub name: String,
    /// Timed iteration count.
    pub iters: u32,
    /// Fastest iteration.
    pub min_ns: u64,
    /// Median iteration (lower-median for even counts).
    pub median_ns: u64,
    /// 90th-percentile iteration.
    pub p90_ns: u64,
    /// Slowest iteration.
    pub max_ns: u64,
    /// Arithmetic mean.
    pub mean_ns: u64,
}

impl BenchResult {
    /// Renders the result as one JSON object line, appending the given
    /// `extra` counter fields after the timing fields.
    pub fn json_line(&self, extra: &[(&str, JsonValue)]) -> String {
        let mut out = String::with_capacity(160);
        out.push('{');
        push_field(&mut out, "bench", &JsonValue::Str(self.name.clone()));
        push_field(&mut out, "iters", &JsonValue::U64(self.iters as u64));
        push_field(&mut out, "min_ns", &JsonValue::U64(self.min_ns));
        push_field(&mut out, "median_ns", &JsonValue::U64(self.median_ns));
        push_field(&mut out, "p90_ns", &JsonValue::U64(self.p90_ns));
        push_field(&mut out, "max_ns", &JsonValue::U64(self.max_ns));
        push_field(&mut out, "mean_ns", &JsonValue::U64(self.mean_ns));
        for (key, value) in extra {
            push_field(&mut out, key, value);
        }
        out.pop(); // trailing comma
        out.push('}');
        out
    }
}

/// A JSON scalar for [`BenchResult::json_line`] extra fields.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float (rendered with up to 6 significant decimals; non-finite
    /// values render as `null`).
    F64(f64),
    /// A string (escaped).
    Str(String),
    /// A boolean.
    Bool(bool),
}

/// Renders a complete JSON object line from `(key, value)` pairs, in
/// order. This is the escaping/rendering core shared by
/// [`BenchResult::json_line`] and the `ims-trace` event writer, so every
/// JSON line the workspace emits goes through one escaper.
pub fn json_object(fields: &[(&str, JsonValue)]) -> String {
    let mut out = String::with_capacity(32 + fields.len() * 16);
    out.push('{');
    for (key, value) in fields {
        push_field(&mut out, key, value);
    }
    if fields.is_empty() {
        out.push('}');
    } else {
        out.pop(); // trailing comma
        out.push('}');
    }
    out
}

/// Appends `"key":value,` to `out`, escaping the key and any string value.
pub fn push_field(out: &mut String, key: &str, value: &JsonValue) {
    out.push('"');
    escape_into(out, key);
    out.push_str("\":");
    match value {
        JsonValue::U64(v) => out.push_str(&v.to_string()),
        JsonValue::I64(v) => out.push_str(&v.to_string()),
        JsonValue::F64(v) if v.is_finite() => out.push_str(&format!("{v}")),
        JsonValue::F64(_) => out.push_str("null"),
        JsonValue::Str(s) => {
            out.push('"');
            escape_into(out, s);
            out.push('"');
        }
        JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
    }
    out.push(',');
}

/// Appends `s` to `out` with JSON string escaping (quotes, backslashes,
/// and control characters).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Runs `body` for `spec.warmup` untimed and `spec.iters` timed
/// iterations and returns the timing summary.
pub fn run<F: FnMut()>(name: &str, spec: BenchSpec, mut body: F) -> BenchResult {
    for _ in 0..spec.warmup {
        body();
    }
    let mut samples: Vec<u64> = Vec::with_capacity(spec.iters as usize);
    for _ in 0..spec.iters {
        let t0 = Instant::now();
        body();
        samples.push(t0.elapsed().as_nanos() as u64);
    }
    samples.sort_unstable();
    let n = samples.len();
    BenchResult {
        name: name.to_string(),
        iters: spec.iters,
        min_ns: samples[0],
        median_ns: samples[(n - 1) / 2],
        p90_ns: samples[(n * 9 / 10).min(n - 1)],
        max_ns: samples[n - 1],
        mean_ns: (samples.iter().sum::<u64>() / n as u64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_collects_ordered_statistics() {
        let mut count = 0u64;
        let r = run("spin", BenchSpec::new(2, 9), || {
            count += 1;
            let mut acc = 0u64;
            for i in 0..(1000 * count % 5000) {
                acc = acc.wrapping_add(black_box(i));
            }
            black_box(acc);
        });
        assert_eq!(count, 11, "warmup + timed iterations all execute");
        assert_eq!(r.iters, 9);
        assert!(r.min_ns <= r.median_ns);
        assert!(r.median_ns <= r.p90_ns);
        assert!(r.p90_ns <= r.max_ns);
        assert!(r.mean_ns >= r.min_ns && r.mean_ns <= r.max_ns);
    }

    #[test]
    fn json_line_is_well_formed() {
        let r = BenchResult {
            name: "mii \"n=12\"".into(),
            iters: 3,
            min_ns: 10,
            median_ns: 20,
            p90_ns: 30,
            max_ns: 40,
            mean_ns: 23,
        };
        let line = r.json_line(&[
            ("evictions", JsonValue::U64(7)),
            ("ratio", JsonValue::F64(1.5)),
            ("ok", JsonValue::Bool(true)),
            ("tag", JsonValue::Str("a\\b".into())),
        ]);
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(line.contains(r#""bench":"mii \"n=12\""#), "{line}");
        assert!(line.contains(r#""median_ns":20"#), "{line}");
        assert!(line.contains(r#""evictions":7"#), "{line}");
        assert!(line.contains(r#""ratio":1.5"#), "{line}");
        assert!(line.contains(r#""ok":true"#), "{line}");
        assert!(line.contains(r#""tag":"a\\b""#), "{line}");
        assert!(!line.contains(",}"), "{line}");
    }

    #[test]
    fn json_object_renders_fields_in_order() {
        let line = json_object(&[
            ("ev", JsonValue::Str("op_scheduled".into())),
            ("node", JsonValue::U64(3)),
            ("forced", JsonValue::Bool(false)),
        ]);
        assert_eq!(line, r#"{"ev":"op_scheduled","node":3,"forced":false}"#);
        assert_eq!(json_object(&[]), "{}");
    }

    #[test]
    fn nonfinite_floats_render_as_null() {
        let r = run("noop", BenchSpec::smoke(), || {});
        let line = r.json_line(&[("bad", JsonValue::F64(f64::NAN))]);
        assert!(line.contains(r#""bad":null"#), "{line}");
    }

    #[test]
    #[should_panic(expected = "at least one timed iteration")]
    fn zero_iters_rejected() {
        let _ = BenchSpec::new(0, 0);
    }
}
