#![deny(missing_docs)]

//! Exact modulo scheduling by reduction to SAT.
//!
//! This crate is the branch-and-bound backend's twin with a different
//! proof engine: [`schedule_sat`] runs the iterative scheduler for an
//! upper bound and fallback, then walks candidate IIs upward from the
//! MII, deciding each one by encoding "∃ legal schedule at this II?"
//! into CNF (see the `encode` module docs for the variable layout and
//! clause families) and handing the formula to a small, deterministic,
//! std-only CDCL solver (`solver` module: two-watched literals, 1-UIP
//! conflict-clause learning, Luby restarts, activity-ordered decisions
//! tie-broken by variable id). The first satisfiable II is optimal by
//! construction, and an UNSAT answer is a *proof* of infeasibility —
//! the same contract branch-and-bound offers, which is what makes the
//! two backends cross-checkable loop by loop.
//!
//! SAT can blow up, so every per-II decision is metered three ways:
//! a conflict budget shared across the II walk
//! ([`SatConfig::conflict_limit`]), a cap on emitted clauses
//! ([`SatConfig::clause_limit`]), and a cap on the summed issue-window
//! width ([`SatConfig::slot_limit`]). When any cap hits, the scheduler
//! degrades exactly like the exact backend: the iterative schedule comes
//! back with explicit [`IiBounds`] recording which IIs were proven
//! infeasible. All budgets are deterministic — no deadlines — so output
//! is byte-reproducible at any thread count.
//!
//! The crate also assembles the workspace's *full* backend registry:
//! [`default_registry`] returns a [`BackendRegistry`] with `ims`,
//! `exact`, and `sat` registered, ready to resolve any
//! [`BackendSpec`](ims_core::BackendSpec) including
//! `portfolio(ims,exact,sat)`.
//!
//! ```
//! use ims_core::{ProblemBuilder, validate_schedule};
//! use ims_sat::{schedule_sat, SatConfig};
//! use ims_graph::DepKind;
//! use ims_ir::{OpId, Opcode};
//! use ims_machine::minimal;
//!
//! let m = minimal();
//! let mut pb = ProblemBuilder::new(&m);
//! let a = pb.add_op(Opcode::Add, OpId(0));
//! let b = pb.add_op(Opcode::Mul, OpId(1));
//! pb.add_dep(a, b, 1, 0, DepKind::Flow, false);
//! pb.add_dep(b, a, 1, 1, DepKind::Flow, false); // loop-carried
//! let problem = pb.finish();
//!
//! let out = schedule_sat(&problem, &SatConfig::default())?;
//! assert!(out.optimal());
//! assert!(validate_schedule(&problem, &out.schedule).is_ok());
//! # Ok::<(), ims_core::ScheduleError>(())
//! ```

use ims_core::{
    modulo_schedule, BackendKind, BackendOutcome, BackendParams, BackendRegistry, IiBounds,
    MiiInfo, NullObserver, Problem, SchedConfig, SchedObserver, Schedule, ScheduleError,
    SchedulerBackend,
};
use ims_prof::{phase, NullSink, ProfSink};

mod encode;
mod solver;

use encode::{decide_ii, IiDecision, SatLimits};

/// Configuration for the SAT scheduler.
#[derive(Debug, Clone)]
pub struct SatConfig {
    /// Configuration for the internal iterative-scheduler run that
    /// supplies the upper bound and the fallback schedule. Defaults to
    /// BudgetRatio 6, the paper's quality setting, to keep the window
    /// between MII and the heuristic II small.
    pub heuristic: SchedConfig,
    /// Budget of CDCL conflicts across all candidate IIs. `None` is
    /// unlimited. Conflicts are deterministic, so — unlike a wall-clock
    /// deadline — the same budget always aborts at the same point.
    pub conflict_limit: Option<u64>,
    /// Cap on clauses emitted for a single per-II encoding; exceeding it
    /// counts as a limit hit rather than an out-of-memory surprise.
    pub clause_limit: Option<u64>,
    /// Cap on the summed issue-window width of a single per-II encoding
    /// (the dominant term of the variable count).
    pub slot_limit: Option<u64>,
}

impl Default for SatConfig {
    fn default() -> Self {
        SatConfig {
            heuristic: SchedConfig::with_budget_ratio(6.0),
            conflict_limit: Some(1 << 18),
            clause_limit: Some(2_000_000),
            slot_limit: Some(65_536),
        }
    }
}

impl SatConfig {
    /// The default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the internal iterative-scheduler configuration.
    pub fn heuristic(mut self, heuristic: SchedConfig) -> Self {
        self.heuristic = heuristic;
        self
    }

    /// Sets the CDCL conflict budget (`None` for unlimited).
    pub fn conflict_limit(mut self, conflict_limit: Option<u64>) -> Self {
        self.conflict_limit = conflict_limit;
        self
    }

    /// Sets the per-II clause cap (`None` for unlimited).
    pub fn clause_limit(mut self, clause_limit: Option<u64>) -> Self {
        self.clause_limit = clause_limit;
        self
    }

    /// Sets the per-II summed-window cap (`None` for unlimited).
    pub fn slot_limit(mut self, slot_limit: Option<u64>) -> Self {
        self.slot_limit = slot_limit;
        self
    }
}

/// The result of [`schedule_sat`].
#[derive(Debug, Clone, PartialEq)]
pub struct SatOutcome {
    /// The best legal schedule in hand: II-optimal when
    /// [`optimal`](SatOutcome::optimal), otherwise the iterative
    /// scheduler's fallback at `ims_ii`.
    pub schedule: Schedule,
    /// The MII bounds computed by the internal iterative run.
    pub mii: MiiInfo,
    /// What was proven about the true minimum II: exact when every
    /// candidate was decided, a `[proved_lb, best_ub]` interval when a
    /// cap hit.
    pub bounds: IiBounds,
    /// CDCL conflicts spent (0 when the heuristic already achieved the
    /// MII and no formula was ever built).
    pub conflicts: u64,
    /// Whether a conflict/clause/slot cap aborted the walk before every
    /// II below `ims_ii` was decided.
    pub limit_hit: bool,
    /// The II the internal iterative scheduler achieved — the yardstick
    /// for the optimality gap `ims_ii − bounds.best_ub`.
    pub ims_ii: i64,
}

impl SatOutcome {
    /// Whether `schedule` is proven II-optimal.
    pub fn optimal(&self) -> bool {
        self.bounds.is_exact()
    }
}

/// Schedules `problem` exactly by SAT: the returned schedule's II is
/// proven minimal unless a cap hit, in which case `bounds` says how much
/// is still open. See the crate docs for the algorithm.
///
/// # Errors
///
/// Forwards the internal iterative run's [`ScheduleError`]; the SAT
/// phase itself cannot fail (it degrades to the iterative schedule).
pub fn schedule_sat(problem: &Problem<'_>, config: &SatConfig) -> Result<SatOutcome, ScheduleError> {
    schedule_sat_observed(problem, config, &mut NullObserver)
}

/// [`schedule_sat`] with scheduler events reported to `observer`.
///
/// The observer sees `backend(Sat)`, then one `attempt_start` /
/// `attempt_done` bracket per candidate II decided (the `budget` is the
/// remaining conflict budget, saturated to `i64::MAX`), with the final
/// schedule's placements emitted as `op_scheduled` events inside its
/// attempt — the same replayable shape the other backends emit. The
/// internal heuristic run is not observed.
///
/// # Errors
///
/// As [`schedule_sat`].
pub fn schedule_sat_observed<O: SchedObserver>(
    problem: &Problem<'_>,
    config: &SatConfig,
    observer: &mut O,
) -> Result<SatOutcome, ScheduleError> {
    schedule_sat_profiled(problem, config, observer, &mut NullSink)
}

/// [`schedule_sat_observed`] with deterministic solver statistics
/// additionally reported to `prof`: variables, clauses, conflicts,
/// decisions, propagations, restarts, and candidate-II outcomes, keyed
/// by the profiler's `sat.*` phase names (plus the `graph.*` work the
/// encoder performs). Passing `&mut NullSink` makes this exactly
/// [`schedule_sat_observed`].
///
/// # Errors
///
/// As [`schedule_sat`].
pub fn schedule_sat_profiled<O: SchedObserver, P: ProfSink>(
    problem: &Problem<'_>,
    config: &SatConfig,
    observer: &mut O,
    prof: &mut P,
) -> Result<SatOutcome, ScheduleError> {
    observer.backend(BackendKind::Sat);
    let ims = modulo_schedule(problem, &config.heuristic)?;
    let ims_ii = ims.schedule.ii;
    let mii = ims.mii;

    if ims_ii == mii.mii {
        // The heuristic achieved the MII: already proven optimal.
        emit_final(observer, &ims.schedule);
        return Ok(SatOutcome {
            schedule: ims.schedule,
            mii,
            bounds: IiBounds::exact(ims_ii),
            conflicts: 0,
            limit_hit: false,
            ims_ii,
        });
    }

    let conflict_limit = config.conflict_limit.unwrap_or(u64::MAX);
    let clause_limit = config.clause_limit.unwrap_or(u64::MAX);
    let slot_limit = config.slot_limit.unwrap_or(u64::MAX);
    let mut spent = 0u64;
    for ii in mii.mii..ims_ii {
        let remaining = conflict_limit.saturating_sub(spent);
        observer.attempt_start(ii, remaining.min(i64::MAX as u64) as i64);
        prof.count(phase::SAT_IIS_SEARCHED, 1);
        let limits = SatLimits {
            conflict_budget: remaining,
            clause_limit,
            slot_limit,
        };
        let (decision, conflicts) = decide_ii(problem, ii, &limits, &mut *prof);
        spent += conflicts;
        match decision {
            IiDecision::Feasible(schedule) => {
                emit_ops(observer, &schedule);
                observer.attempt_done(ii, true);
                return Ok(SatOutcome {
                    schedule,
                    mii,
                    bounds: IiBounds::exact(ii),
                    conflicts: spent,
                    limit_hit: false,
                    ims_ii,
                });
            }
            IiDecision::Infeasible => {
                prof.count(phase::SAT_IIS_INFEASIBLE, 1);
                observer.attempt_done(ii, false);
            }
            IiDecision::LimitHit => {
                prof.count(phase::SAT_LIMIT_HITS, 1);
                observer.attempt_done(ii, false);
                emit_final(observer, &ims.schedule);
                return Ok(SatOutcome {
                    schedule: ims.schedule,
                    mii,
                    bounds: IiBounds {
                        proved_lb: ii,
                        best_ub: ims_ii,
                    },
                    conflicts: spent,
                    limit_hit: true,
                    ims_ii,
                });
            }
        }
    }

    // Every II below the heuristic's is proven infeasible: the iterative
    // schedule was optimal all along.
    emit_final(observer, &ims.schedule);
    Ok(SatOutcome {
        schedule: ims.schedule,
        mii,
        bounds: IiBounds::exact(ims_ii),
        conflicts: spent,
        limit_hit: false,
        ims_ii,
    })
}

/// Emits a full attempt bracket for an already-final schedule (MII
/// short-circuit and fallback paths, where no live attempt is open for
/// the schedule being returned).
fn emit_final<O: SchedObserver>(observer: &mut O, schedule: &Schedule) {
    observer.attempt_start(schedule.ii, 0);
    emit_ops(observer, schedule);
    observer.attempt_done(schedule.ii, true);
}

/// Emits `op_scheduled` for every node of `schedule`, in node order.
fn emit_ops<O: SchedObserver>(observer: &mut O, schedule: &Schedule) {
    for idx in 0..schedule.time.len() {
        observer.op_scheduled(
            ims_graph::NodeId(idx as u32),
            schedule.time[idx],
            schedule.alternative[idx],
            false,
        );
    }
}

/// The SAT scheduler as a [`SchedulerBackend`].
///
/// `steps` in the returned [`BackendOutcome`] counts CDCL conflicts;
/// `bounds` is exact unless the configured caps aborted the walk.
#[derive(Debug, Clone, Default)]
pub struct SatBackend {
    config: SatConfig,
}

impl SatBackend {
    /// A backend running with the given configuration.
    pub fn new(config: SatConfig) -> Self {
        SatBackend { config }
    }

    /// The configuration this backend schedules with.
    pub fn config(&self) -> &SatConfig {
        &self.config
    }

    /// [`SchedulerBackend::schedule`] with scheduler events reported to
    /// `observer`.
    ///
    /// # Errors
    ///
    /// As [`schedule_sat`].
    pub fn schedule_observed<O: SchedObserver>(
        &self,
        problem: &Problem<'_>,
        observer: &mut O,
    ) -> Result<BackendOutcome, ScheduleError> {
        let out = schedule_sat_observed(problem, &self.config, observer)?;
        Ok(BackendOutcome {
            schedule: out.schedule,
            mii: out.mii,
            bounds: out.bounds,
            steps: out.conflicts,
        })
    }
}

impl SchedulerBackend for SatBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Sat
    }

    fn schedule(&self, problem: &Problem<'_>) -> Result<BackendOutcome, ScheduleError> {
        self.schedule_observed(problem, &mut NullObserver)
    }

    fn schedule_observed_dyn(
        &self,
        problem: &Problem<'_>,
        observer: &mut dyn SchedObserver,
    ) -> Result<BackendOutcome, ScheduleError> {
        let mut observer = observer;
        self.schedule_observed(problem, &mut observer)
    }
}

/// Registers the SAT backend under [`BackendKind::Sat`]. The factory
/// maps [`BackendParams::sched`] to the heuristic configuration and
/// [`BackendParams::conflict_limit`] (when set) to the conflict budget.
pub fn register(reg: &mut BackendRegistry) {
    reg.register(BackendKind::Sat, |params: &BackendParams| {
        let mut config = SatConfig::new().heuristic(params.sched.clone());
        if params.conflict_limit.is_some() {
            config = config.conflict_limit(params.conflict_limit);
        }
        Box::new(SatBackend::new(config))
    });
}

/// The workspace's full backend registry: `ims` (pre-registered by
/// [`BackendRegistry::new`]), `exact`, and `sat` — everything a
/// [`BackendSpec`](ims_core::BackendSpec), portfolio or leaf, can name.
pub fn default_registry() -> BackendRegistry {
    let mut reg = BackendRegistry::new();
    ims_exact::register(&mut reg);
    register(&mut reg);
    reg
}

#[cfg(test)]
mod tests {
    use super::*;
    use ims_core::{validate_schedule, BackendSpec, PortfolioBackend, ProblemBuilder};
    use ims_graph::DepKind;
    use ims_ir::{OpId, Opcode};
    use ims_machine::{figure1_machine, minimal};

    /// The Figure 1 loop of the paper: a mul/add recurrence of delay 9 at
    /// distance 2 (RecMII 5), which the iterative scheduler schedules at
    /// II 6 after a failed attempt at 5 — and 6 is in fact optimal (the
    /// recurrence loses the shared result bus at 5), so the walk must
    /// *prove* the infeasibility of 5, not merely give up on it.
    fn figure1_problem(machine: &ims_machine::MachineModel) -> Problem<'_> {
        let mut pb = ProblemBuilder::new(machine);
        let mul = pb.add_op(Opcode::Mul, OpId(0));
        let add = pb.add_op(Opcode::Add, OpId(1));
        pb.add_dep(mul, add, 5, 0, DepKind::Flow, false);
        pb.add_dep(add, mul, 4, 2, DepKind::Flow, false);
        pb.finish()
    }

    #[test]
    fn figure1_is_decided_exactly() {
        let m = figure1_machine();
        let p = figure1_problem(&m);
        let out = schedule_sat(&p, &SatConfig::default()).unwrap();
        assert_eq!(out.mii.mii, 5);
        assert!(!out.limit_hit);
        assert!(out.optimal(), "walk must decide every II: {:?}", out.bounds);
        assert_eq!(out.schedule.ii, 6, "5 is proven infeasible; 6 is optimal");
        assert_eq!(out.schedule.ii, out.bounds.best_ub);
        assert!(validate_schedule(&p, &out.schedule).is_ok());
        assert_eq!(out.schedule.ii, out.ims_ii, "IMS was optimal; SAT proves it");
    }

    #[test]
    fn mii_short_circuit_spends_no_conflicts() {
        let m = minimal();
        let mut pb = ProblemBuilder::new(&m);
        let a = pb.add_op(Opcode::Add, OpId(0));
        let b = pb.add_op(Opcode::Mul, OpId(1));
        pb.add_dep(a, b, 1, 0, DepKind::Flow, false);
        pb.add_dep(b, a, 1, 1, DepKind::Flow, false);
        let p = pb.finish();
        let out = schedule_sat(&p, &SatConfig::default()).unwrap();
        assert!(out.optimal());
        assert_eq!(out.conflicts, 0, "heuristic hit the MII; no formula built");
        assert_eq!(out.schedule.ii, out.mii.mii);
        assert_eq!(out.ims_ii, out.mii.mii);
    }

    #[test]
    fn starved_clause_cap_degrades_to_bounds_and_ims_schedule() {
        let m = figure1_machine();
        let p = figure1_problem(&m);
        let out = schedule_sat(&p, &SatConfig::new().clause_limit(Some(1))).unwrap();
        assert!(out.limit_hit);
        assert!(!out.optimal());
        assert_eq!(out.bounds.proved_lb, out.mii.mii, "nothing decided yet");
        assert_eq!(out.bounds.best_ub, out.ims_ii);
        assert_eq!(out.schedule.ii, out.ims_ii, "fell back to the IMS schedule");
        assert!(validate_schedule(&p, &out.schedule).is_ok());
    }

    #[test]
    fn sat_agrees_with_branch_and_bound_on_figure1() {
        let m = figure1_machine();
        let p = figure1_problem(&m);
        let sat = schedule_sat(&p, &SatConfig::default()).unwrap();
        let bnb = ims_exact::schedule_exact(&p, &ims_exact::ExactConfig::default()).unwrap();
        assert!(sat.optimal() && bnb.optimal());
        assert_eq!(sat.schedule.ii, bnb.schedule.ii, "two proofs, one optimum");
        assert_eq!(sat.bounds, bnb.bounds);
    }

    #[test]
    fn profiled_runs_report_deterministic_statistics() {
        let m = figure1_machine();
        let p = figure1_problem(&m);
        let mut reg = ims_prof::MetricsRegistry::new();
        let out =
            schedule_sat_profiled(&p, &SatConfig::default(), &mut NullObserver, &mut reg).unwrap();
        assert!(reg.counter(phase::SAT_VARS) > 0);
        assert!(reg.counter(phase::SAT_CLAUSES) > 0);
        assert!(reg.counter(phase::SAT_IIS_SEARCHED) >= 1);
        // Identical runs produce identical registries: every statistic
        // the solver reports is deterministic.
        let mut again = ims_prof::MetricsRegistry::new();
        let _ =
            schedule_sat_profiled(&p, &SatConfig::default(), &mut NullObserver, &mut again)
                .unwrap();
        assert_eq!(reg, again);
        // The unprofiled entry point is unchanged by profiling.
        let plain = schedule_sat(&p, &SatConfig::default()).unwrap();
        assert_eq!(plain.schedule, out.schedule);
        assert_eq!(plain.conflicts, out.conflicts);
    }

    #[test]
    fn observer_sees_sat_backend_and_replayable_placements() {
        #[derive(Default)]
        struct Spy {
            backend: Option<BackendKind>,
            attempts: Vec<(i64, bool)>,
            placed: Vec<(u32, i64)>,
        }
        impl SchedObserver for Spy {
            fn backend(&mut self, kind: BackendKind) {
                self.backend = Some(kind);
            }
            fn attempt_start(&mut self, ii: i64, _budget: i64) {
                self.attempts.push((ii, false));
            }
            fn attempt_done(&mut self, ii: i64, ok: bool) {
                let last = self.attempts.last_mut().unwrap();
                assert_eq!(last.0, ii, "attempt brackets nest properly");
                last.1 = ok;
            }
            fn op_scheduled(&mut self, node: ims_graph::NodeId, time: i64, _: usize, _: bool) {
                self.placed.push((node.0, time));
            }
        }

        let m = figure1_machine();
        let p = figure1_problem(&m);
        let mut spy = Spy::default();
        let out = schedule_sat_observed(&p, &SatConfig::default(), &mut spy).unwrap();
        assert_eq!(spy.backend, Some(BackendKind::Sat));
        let last = spy.attempts.last().unwrap();
        assert_eq!(*last, (out.schedule.ii, true), "final attempt succeeded");
        let n = out.schedule.time.len();
        let tail = &spy.placed[spy.placed.len() - n..];
        for (idx, &(node, time)) in tail.iter().enumerate() {
            assert_eq!(node as usize, idx);
            assert_eq!(time, out.schedule.time[idx]);
        }
    }

    #[test]
    fn default_registry_resolves_every_leaf_and_the_full_portfolio() {
        let reg = default_registry();
        for kind in BackendKind::ALL {
            assert!(reg.contains(kind), "{} must be registered", kind.name());
        }
        let spec: BackendSpec = "portfolio(ims,exact,sat)".parse().unwrap();
        let params = ims_core::BackendParams::new();
        let backend = reg.resolve(&spec, &params).unwrap();

        let m = figure1_machine();
        let p = figure1_problem(&m);
        let out = backend.schedule(&p).unwrap();
        // All three members land on the optimal II 6 (the exact members
        // prove it); the tie goes to the first member in spec order.
        assert_eq!(out.schedule.ii, 6);
        assert!(out.bounds.is_exact());
        assert!(validate_schedule(&p, &out.schedule).is_ok());
    }

    #[test]
    fn portfolio_race_is_thread_count_invariant() {
        let reg = default_registry();
        let params = ims_core::BackendParams::new();
        let members: Vec<_> = BackendKind::ALL
            .into_iter()
            .map(|k| (k, reg.make(k, &params).unwrap()))
            .collect();
        let m = figure1_machine();
        let p = figure1_problem(&m);

        let make = |threads: usize| {
            let members: Vec<_> = BackendKind::ALL
                .into_iter()
                .map(|k| (k, reg.make(k, &params).unwrap()))
                .collect();
            PortfolioBackend::new(members).threads(threads)
        };
        drop(members);
        let seq = make(1).schedule(&p).unwrap();
        let par = make(4).schedule(&p).unwrap();
        assert_eq!(seq.schedule, par.schedule);
        assert_eq!(seq.bounds, par.bounds);
        assert_eq!(seq.steps, par.steps);
    }
}
