//! A small, deterministic, std-only CDCL SAT solver.
//!
//! This is the MiniSat recipe at minimum viable size: two-watched-literal
//! unit propagation, first-UIP conflict analysis with backjumping, VSIDS
//! variable activities, Luby-series restarts, and phase saving. Three
//! deliberate omissions keep it small: no learned-clause deletion (the
//! conflict budget bounds growth instead), no clause minimization, and no
//! preprocessing.
//!
//! # Determinism contract
//!
//! Given the same clauses added in the same order, every run makes the
//! same decisions and returns the same model/stats, on any thread, at
//! any parallelism. The sources of nondeterminism in off-the-shelf
//! solvers are all pinned here: decision order is VSIDS activity with
//! ties broken by *smallest variable id* (a total order), the initial
//! phase is always negative, saved phases depend only on the search
//! itself, and restarts fire on exact conflict counts. No randomness,
//! no time-based heuristics.
//!
//! # Usage
//!
//! A [`Solver`] is single-shot: create, [`add_clause`](Solver::add_clause)
//! everything, [`solve`](Solver::solve) once.

/// A literal: variable `var` (0-based) either positive or negated.
///
/// Encoded as `2·var + neg` so literals index watch lists directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `var`.
    pub fn pos(var: u32) -> Lit {
        Lit(var << 1)
    }

    /// The negated literal of `var`.
    pub fn neg(var: u32) -> Lit {
        Lit(var << 1 | 1)
    }

    /// This literal's variable.
    pub fn var(self) -> u32 {
        self.0 >> 1
    }

    /// Whether this is the negated literal.
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

/// What [`Solver::solve`] decided.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveResult {
    /// Satisfiable; the model assigns every variable (`model[v]`).
    Sat(Vec<bool>),
    /// Proven unsatisfiable.
    Unsat,
    /// The conflict budget ran out before a decision was reached.
    Unknown,
}

/// Deterministic work/size counters for one solver run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Conflicts hit (equals learned clauses; the budget unit).
    pub conflicts: u64,
    /// Decisions made.
    pub decisions: u64,
    /// Literals propagated (trail pushes from clauses).
    pub propagations: u64,
    /// Restarts performed.
    pub restarts: u64,
}

const NO_REASON: u32 = u32::MAX;
const RESTART_BASE: u64 = 128;

/// `x`-th term of the Luby restart series (1,1,2,1,1,2,4,...): find the
/// finite subsequence containing index `x`, then recurse into it.
fn luby(mut x: u64) -> u64 {
    let (mut size, mut seq) = (1u64, 0u32);
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x {
        size = (size - 1) >> 1;
        seq -= 1;
        x %= size;
    }
    1u64 << seq
}

#[derive(Debug)]
struct Clause {
    lits: Box<[Lit]>,
}

/// Activity-ordered max-heap of unassigned variables, ties to the
/// smallest variable id (the determinism linchpin).
#[derive(Debug, Default)]
struct VarOrder {
    heap: Vec<u32>,
    /// `pos[v]` = index in `heap`, or `usize::MAX` when absent.
    pos: Vec<usize>,
}

const NOT_IN_HEAP: usize = usize::MAX;

impl VarOrder {
    fn better(a: u32, b: u32, activity: &[f64]) -> bool {
        let (aa, ab) = (activity[a as usize], activity[b as usize]);
        aa > ab || (aa == ab && a < b)
    }

    fn insert(&mut self, v: u32, activity: &[f64]) {
        if self.pos[v as usize] != NOT_IN_HEAP {
            return;
        }
        self.pos[v as usize] = self.heap.len();
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1, activity);
    }

    fn pop(&mut self, activity: &[f64]) -> Option<u32> {
        let top = *self.heap.first()?;
        self.pos[top as usize] = NOT_IN_HEAP;
        let last = self.heap.pop().expect("nonempty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last as usize] = 0;
            self.sift_down(0, activity);
        }
        Some(top)
    }

    fn bumped(&mut self, v: u32, activity: &[f64]) {
        let p = self.pos[v as usize];
        if p != NOT_IN_HEAP {
            self.sift_up(p, activity);
        }
    }

    fn sift_up(&mut self, mut i: usize, activity: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if Self::better(self.heap[i], self.heap[parent], activity) {
                self.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize, activity: &[f64]) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut best = i;
            if l < self.heap.len() && Self::better(self.heap[l], self.heap[best], activity) {
                best = l;
            }
            if r < self.heap.len() && Self::better(self.heap[r], self.heap[best], activity) {
                best = r;
            }
            if best == i {
                return;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.pos[self.heap[i] as usize] = i;
        self.pos[self.heap[j] as usize] = j;
    }
}

/// The CDCL solver. See the module docs for scope and determinism.
#[derive(Debug)]
pub struct Solver {
    clauses: Vec<Clause>,
    /// `watches[lit.index()]` = clauses currently watching `lit`.
    watches: Vec<Vec<u32>>,
    /// Per variable: `None` unassigned, `Some(value)` otherwise.
    assign: Vec<Option<bool>>,
    /// Saved phase per variable; initial phase is negative.
    phase: Vec<bool>,
    level: Vec<u32>,
    reason: Vec<u32>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    order: VarOrder,
    seen: Vec<bool>,
    ok: bool,
    stats: SolverStats,
}

impl Default for Solver {
    fn default() -> Self {
        Solver::new()
    }
}

impl Solver {
    /// An empty solver with no variables or clauses.
    pub fn new() -> Solver {
        Solver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            phase: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            order: VarOrder::default(),
            seen: Vec::new(),
            ok: true,
            stats: SolverStats::default(),
        }
    }

    /// Allocates a fresh variable and returns its id.
    pub fn new_var(&mut self) -> u32 {
        let v = self.assign.len() as u32;
        self.assign.push(None);
        self.phase.push(false);
        self.level.push(0);
        self.reason.push(NO_REASON);
        self.activity.push(0.0);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.pos.push(NOT_IN_HEAP);
        self.order.insert(v, &self.activity);
        v
    }

    /// Number of variables allocated.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Number of problem clauses added (units and tautologies excluded;
    /// learned clauses not counted).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Work/size counters of the last [`solve`](Solver::solve).
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    fn value(&self, l: Lit) -> Option<bool> {
        self.assign[l.var() as usize].map(|v| v != l.is_neg())
    }

    /// Adds a clause (must be called before [`solve`](Solver::solve)).
    /// Sorts and dedups literals; drops tautologies; an empty clause
    /// makes the instance trivially unsatisfiable.
    pub fn add_clause(&mut self, lits: &[Lit]) {
        if !self.ok {
            return;
        }
        let mut ls: Vec<Lit> = lits.to_vec();
        ls.sort();
        ls.dedup();
        // After sorting, x and ¬x are adjacent (indices 2v, 2v+1).
        if ls.windows(2).any(|w| w[0].var() == w[1].var()) {
            return; // tautology
        }
        match ls.len() {
            0 => self.ok = false,
            1 => {
                match self.value(ls[0]) {
                    Some(false) => self.ok = false,
                    Some(true) => {}
                    None => self.enqueue(ls[0], NO_REASON),
                }
            }
            _ => {
                let ci = self.clauses.len() as u32;
                self.watches[ls[0].index()].push(ci);
                self.watches[ls[1].index()].push(ci);
                self.clauses.push(Clause {
                    lits: ls.into_boxed_slice(),
                });
            }
        }
    }

    fn enqueue(&mut self, l: Lit, reason: u32) {
        let v = l.var() as usize;
        debug_assert!(self.assign[v].is_none());
        self.assign[v] = Some(!l.is_neg());
        self.phase[v] = !l.is_neg();
        self.level[v] = self.trail_lim.len() as u32;
        self.reason[v] = reason;
        self.trail.push(l);
    }

    /// Exhausts unit propagation; returns the conflicting clause index.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            let false_lit = !p;
            let mut watchers = std::mem::take(&mut self.watches[false_lit.index()]);
            let mut i = 0;
            while i < watchers.len() {
                let ci = watchers[i];
                // Normalize: the false literal sits at position 1.
                let lits = &mut self.clauses[ci as usize].lits;
                if lits[0] == false_lit {
                    lits.swap(0, 1);
                }
                let first = lits[0];
                if self.value(first) == Some(true) {
                    i += 1;
                    continue; // clause already satisfied
                }
                // Find a replacement watch among lits[2..].
                let lits = &self.clauses[ci as usize].lits;
                let replacement = (2..lits.len()).find(|&k| self.value(lits[k]) != Some(false));
                match replacement {
                    Some(k) => {
                        let lits = &mut self.clauses[ci as usize].lits;
                        lits.swap(1, k);
                        let new_watch = lits[1];
                        self.watches[new_watch.index()].push(ci);
                        watchers.swap_remove(i);
                        // swap_remove keeps `watchers` order-dependent
                        // only on clause content — deterministic.
                    }
                    None if self.value(first) == Some(false) => {
                        // Conflict: restore the remaining watchers.
                        self.watches[false_lit.index()] = watchers;
                        self.qhead = self.trail.len();
                        return Some(ci);
                    }
                    None => {
                        self.stats.propagations += 1;
                        self.enqueue(first, ci);
                        i += 1;
                    }
                }
            }
            self.watches[false_lit.index()] = watchers;
        }
        None
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// First-UIP conflict analysis. Returns the learned clause (asserting
    /// literal first) and the level to backjump to.
    fn analyze(&mut self, confl: u32) -> (Vec<Lit>, u32) {
        let mut learned: Vec<Lit> = vec![Lit::pos(0)]; // placeholder for the UIP
        let mut counter = 0u32;
        let mut p: Option<Lit> = None;
        let mut clause = confl;
        let mut trail_index = self.trail.len();

        loop {
            let lits = &self.clauses[clause as usize].lits;
            // Skip lits[0] when it is the literal being resolved on.
            let start = usize::from(p.is_some());
            let to_bump: Vec<u32> = lits[start..].iter().map(|q| q.var()).collect();
            for (k, &q) in lits.iter().enumerate() {
                if k < start {
                    continue;
                }
                let v = q.var() as usize;
                if self.seen[v] || self.level[v] == 0 {
                    continue;
                }
                self.seen[v] = true;
                if self.level[v] == self.decision_level() {
                    counter += 1;
                } else {
                    learned.push(q);
                }
            }
            for v in to_bump {
                self.bump(v);
            }

            // Walk the trail to the next marked literal.
            loop {
                trail_index -= 1;
                if self.seen[self.trail[trail_index].var() as usize] {
                    break;
                }
            }
            let q = self.trail[trail_index];
            let v = q.var() as usize;
            self.seen[v] = false;
            counter -= 1;
            if counter == 0 {
                learned[0] = !q; // the first UIP, asserted by the clause
                break;
            }
            clause = self.reason[v];
            debug_assert_ne!(clause, NO_REASON, "non-UIP marked lit has a reason");
            p = Some(q);
        }

        for l in &learned[1..] {
            self.seen[l.var() as usize] = false;
        }

        // Backjump level: the highest level among the non-asserting lits;
        // move that literal to index 1 so it is watched after attach.
        let mut back_level = 0;
        if learned.len() > 1 {
            let mut max_i = 1;
            for (i, l) in learned.iter().enumerate().skip(1) {
                if self.level[l.var() as usize] > self.level[learned[max_i].var() as usize] {
                    max_i = i;
                }
            }
            learned.swap(1, max_i);
            back_level = self.level[learned[1].var() as usize];
        }
        (learned, back_level)
    }

    fn bump(&mut self, v: u32) {
        self.activity[v as usize] += self.var_inc;
        if self.activity[v as usize] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.bumped(v, &self.activity);
    }

    fn backtrack(&mut self, level: u32) {
        while self.trail_lim.len() as u32 > level {
            let lim = self.trail_lim.pop().expect("level > 0");
            while self.trail.len() > lim {
                let l = self.trail.pop().expect("trail above limit");
                let v = l.var();
                self.assign[v as usize] = None;
                self.reason[v as usize] = NO_REASON;
                self.order.insert(v, &self.activity);
            }
        }
        self.qhead = self.trail.len();
    }

    /// Attaches a learned clause and enqueues its asserting literal.
    fn learn(&mut self, learned: Vec<Lit>) {
        if learned.len() == 1 {
            self.enqueue(learned[0], NO_REASON);
            return;
        }
        let ci = self.clauses.len() as u32;
        self.watches[learned[0].index()].push(ci);
        self.watches[learned[1].index()].push(ci);
        let first = learned[0];
        self.clauses.push(Clause {
            lits: learned.into_boxed_slice(),
        });
        self.enqueue(first, ci);
    }

    /// Decides satisfiability, giving up after `conflict_budget`
    /// conflicts. Single-shot: call once per solver.
    pub fn solve(&mut self, conflict_budget: u64) -> SolveResult {
        if !self.ok {
            return SolveResult::Unsat;
        }
        let mut restart_num = 0u64;
        let mut conflicts_since_restart = 0u64;
        let mut restart_limit = luby(restart_num) * RESTART_BASE;

        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_since_restart += 1;
                if self.decision_level() == 0 {
                    return SolveResult::Unsat;
                }
                let (learned, back_level) = self.analyze(confl);
                self.backtrack(back_level);
                self.learn(learned);
                self.var_inc /= 0.95;
                if self.stats.conflicts >= conflict_budget {
                    return SolveResult::Unknown;
                }
            } else {
                // Restart at the decision point, so the last conflict's
                // asserting literal has already propagated (the classic
                // progress guarantee: no conflict repeats immediately).
                if conflicts_since_restart >= restart_limit && self.decision_level() > 0 {
                    self.stats.restarts += 1;
                    restart_num += 1;
                    conflicts_since_restart = 0;
                    restart_limit = luby(restart_num) * RESTART_BASE;
                    self.backtrack(0);
                    continue;
                }
                // Pick the highest-activity unassigned variable.
                let v = loop {
                    match self.order.pop(&self.activity) {
                        Some(v) if self.assign[v as usize].is_none() => break Some(v),
                        Some(_) => continue,
                        None => break None,
                    }
                };
                let Some(v) = v else {
                    let model = self
                        .assign
                        .iter()
                        .map(|a| a.expect("all vars assigned at SAT"))
                        .collect();
                    return SolveResult::Sat(model);
                };
                self.stats.decisions += 1;
                self.trail_lim.push(self.trail.len());
                let lit = if self.phase[v as usize] {
                    Lit::pos(v)
                } else {
                    Lit::neg(v)
                };
                self.enqueue(lit, NO_REASON);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nvars(s: &mut Solver, n: u32) -> Vec<u32> {
        (0..n).map(|_| s.new_var()).collect()
    }

    #[test]
    fn luby_series_prefix() {
        let got: Vec<u64> = (0..15).map(luby).collect();
        assert_eq!(got, [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    #[test]
    fn trivial_instances() {
        // Empty formula: SAT with the empty model.
        assert_eq!(Solver::new().solve(u64::MAX), SolveResult::Sat(vec![]));

        // x ∧ ¬x: UNSAT via conflicting units.
        let mut s = Solver::new();
        let x = s.new_var();
        s.add_clause(&[Lit::pos(x)]);
        s.add_clause(&[Lit::neg(x)]);
        assert_eq!(s.solve(u64::MAX), SolveResult::Unsat);

        // (x ∨ y) ∧ ¬x forces y.
        let mut s = Solver::new();
        let v = nvars(&mut s, 2);
        s.add_clause(&[Lit::pos(v[0]), Lit::pos(v[1])]);
        s.add_clause(&[Lit::neg(v[0])]);
        match s.solve(u64::MAX) {
            SolveResult::Sat(m) => {
                assert!(!m[0] && m[1]);
            }
            other => panic!("expected SAT, got {other:?}"),
        }

        // A tautology is dropped, not misread as a constraint.
        let mut s = Solver::new();
        let x = s.new_var();
        s.add_clause(&[Lit::pos(x), Lit::neg(x)]);
        assert_eq!(s.num_clauses(), 0);
        assert!(matches!(s.solve(u64::MAX), SolveResult::Sat(_)));
    }

    /// `n+1` pigeons in `n` holes: the classic resolution-hard UNSAT
    /// family. n=5 forces real conflict-clause learning (36 variables,
    /// hundreds of conflicts) while staying fast.
    fn pigeonhole(n: usize) -> Solver {
        let mut s = Solver::new();
        let var = |p: usize, h: usize| (p * n + h) as u32;
        for _ in 0..(n + 1) * n {
            s.new_var();
        }
        for p in 0..=n {
            let lits: Vec<Lit> = (0..n).map(|h| Lit::pos(var(p, h))).collect();
            s.add_clause(&lits);
        }
        for h in 0..n {
            for p1 in 0..=n {
                for p2 in (p1 + 1)..=n {
                    s.add_clause(&[Lit::neg(var(p1, h)), Lit::neg(var(p2, h))]);
                }
            }
        }
        s
    }

    #[test]
    fn pigeonhole_is_unsat_and_deterministic() {
        let mut a = pigeonhole(5);
        assert_eq!(a.solve(1 << 20), SolveResult::Unsat);
        assert!(a.stats().conflicts > 50, "PHP(5) needs learning: {:?}", a.stats());

        // Bit-for-bit reproducible stats on a rerun.
        let mut b = pigeonhole(5);
        assert_eq!(b.solve(1 << 20), SolveResult::Unsat);
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn conflict_budget_yields_unknown() {
        let mut s = pigeonhole(7);
        assert_eq!(s.solve(10), SolveResult::Unknown);
        assert_eq!(s.stats().conflicts, 10);
    }

    /// Seed-replayed random 3-CNF, answer-checked against brute force.
    /// Small enough to enumerate (12 vars), dense enough (clause/var
    /// ratio swept through the ~4.26 phase transition) that both SAT and
    /// UNSAT instances occur and learning actually fires.
    #[test]
    fn random_cnf_agrees_with_brute_force() {
        const VARS: u32 = 12;
        let mut sat_seen = 0;
        let mut unsat_seen = 0;
        for seed in 0..120u64 {
            let mut rng = ims_testkit::Xoshiro256::seed_from_u64(0xC4F5_0000 + seed);
            let num_clauses = 36 + (seed % 30) as usize; // ratio 3.0 ..= 5.4
            let mut clauses: Vec<Vec<Lit>> = Vec::with_capacity(num_clauses);
            for _ in 0..num_clauses {
                let mut c = Vec::with_capacity(3);
                for _ in 0..3 {
                    let r = rng.next_u64();
                    let v = (r % VARS as u64) as u32;
                    c.push(if r & (1 << 32) == 0 { Lit::pos(v) } else { Lit::neg(v) });
                }
                clauses.push(c);
            }

            let brute = (0u32..1 << VARS).any(|m| {
                clauses.iter().all(|c| {
                    c.iter().any(|l| (m >> l.var()) & 1 == u32::from(!l.is_neg()))
                })
            });

            let mut s = Solver::new();
            nvars(&mut s, VARS);
            for c in &clauses {
                s.add_clause(c);
            }
            match s.solve(u64::MAX) {
                SolveResult::Sat(model) => {
                    assert!(brute, "seed {seed}: solver SAT but brute force says UNSAT");
                    for c in &clauses {
                        assert!(
                            c.iter().any(|l| model[l.var() as usize] != l.is_neg()),
                            "seed {seed}: model violates {c:?}"
                        );
                    }
                    sat_seen += 1;
                }
                SolveResult::Unsat => {
                    assert!(!brute, "seed {seed}: solver UNSAT but brute force found a model");
                    unsat_seen += 1;
                }
                SolveResult::Unknown => panic!("seed {seed}: unlimited budget hit"),
            }
        }
        assert!(sat_seen > 10 && unsat_seen > 10, "sweep must cover both answers ({sat_seen} SAT, {unsat_seen} UNSAT)");
    }

    /// Regression for 1-UIP learning: a chain where the learned clause
    /// must assert at a lower level, exercising backjumping past
    /// intermediate decision levels.
    #[test]
    fn learned_clause_backjumps() {
        let mut s = Solver::new();
        let v = nvars(&mut s, 6);
        // Decisions will go x0=F, x1=F, x2=F (phase-saving default).
        // These clauses make the x2 branch conflict in a way whose 1-UIP
        // clause involves only x0's level, forcing a long backjump.
        s.add_clause(&[Lit::pos(v[0]), Lit::pos(v[3])]); // ¬x0 → x3
        s.add_clause(&[Lit::neg(v[3]), Lit::pos(v[2]), Lit::pos(v[4])]); // x3∧¬x2 → x4
        s.add_clause(&[Lit::neg(v[3]), Lit::pos(v[2]), Lit::pos(v[5])]); // x3∧¬x2 → x5
        s.add_clause(&[Lit::neg(v[4]), Lit::neg(v[5])]); // ¬(x4∧x5)
        let SolveResult::Sat(m) = s.solve(u64::MAX) else {
            panic!("satisfiable chain");
        };
        assert!(s.stats().conflicts >= 1, "the x2 branch must conflict");
        // Model respects every clause.
        let val = |l: Lit| m[l.var() as usize] != l.is_neg();
        assert!(val(Lit::pos(v[0])) || val(Lit::pos(v[3])));
        assert!(!val(Lit::pos(v[4])) || !val(Lit::pos(v[5])));
        let _ = v[1];
    }
}
