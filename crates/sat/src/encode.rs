//! CNF encoding of "does a legal modulo schedule exist at this II?".
//!
//! One call to [`decide_ii`] plays the same role as the exact backend's
//! `search_ii`: an exhaustive decision procedure for a single candidate
//! II, here by reduction to SAT. The encoding (specified in DESIGN.md
//! §5f) has three variable families per real operation `v`:
//!
//! * **Time ladder** `g_{v,k}` ⟺ `t_v ≥ lo_v + k` (order encoding).
//!   The issue window `[lo_v, ub_v]` is *static*: `lo_v = MinDist[START,
//!   v]`, and `ub_v` comes from the same shift-by-II normalization
//!   argument the branch-and-bound search uses, applied per SCC of the
//!   condensation in topological order — any feasible schedule can be
//!   slid, one component at a time, into these boxes (see
//!   [`windows`]). A ladder-consistent assignment of the `g` bits *is* a
//!   time in the window; no at-most-one constraints are needed.
//! * **Alternative choice** `z_{v,a}`, exactly-one per operation (only
//!   materialized when the opcode has ≥ 2 reservation alternatives).
//! * **Modulo occupancy** `m_{v,s,a}` ⟺ "`v` issues at a time ≡ `s`
//!   (mod II) using alternative `a`", channeled one-directionally from
//!   the ladder: `(t_v = t) ∧ z_{v,a} → m_{v, t mod II, a}`. One
//!   direction suffices: in any model the `m` bits of the *decoded*
//!   placement are forced true, so the pairwise resource clauses below
//!   bind, and spuriously-true `m` bits only over-constrain.
//!
//! Clause families:
//!
//! * ladder coherence `g_{k+1} → g_k`;
//! * exactly-one alternative (pairwise at-most-one);
//! * channeling as above;
//! * **dependences**, one binary ladder implication per edge threshold:
//!   for `u →(delay,dist) v` and every `j` in `u`'s window, `t_u ≥ lo_u
//!   + j → t_v ≥ lo_u + j + delay − II·dist` — linear in window width,
//!   not quadratic;
//! * **resource conflicts**, pairwise over occupancy bits: alternatives
//!   `(u,a)` and `(v,b)` of distinct operations collide at slot distance
//!   `δ` iff some [`MaskEntry`] pair shares a row word with overlapping
//!   bits at `δ ≡ offset_u − offset_v (mod II)` — exactly the modulo
//!   reservation table's bitset semantics, so SAT and branch-and-bound
//!   agree on feasibility by construction.
//!
//! Determinism: variables are allocated in node-id order (ladders, then
//! alternatives, then occupancy slots ascending), clauses in the fixed
//! family order above, and the solver itself is deterministic — so the
//! whole decision, including every statistic, is byte-reproducible at
//! any thread count.

use ims_core::{Problem, Schedule};
use ims_graph::{sccs, MinDist, MinDistSolver, NodeId, NEG_INF};
use ims_prof::{phase, ProfSink};

use crate::solver::{Lit, SolveResult, Solver};

/// Size/effort caps for one per-II decision.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SatLimits {
    /// Solver conflict budget for this II.
    pub conflict_budget: u64,
    /// Abort encoding when the clause count passes this.
    pub clause_limit: u64,
    /// Abort encoding when the summed window width passes this.
    pub slot_limit: u64,
}

/// Outcome of one per-II decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum IiDecision {
    /// A legal schedule exists at this II; here is one.
    Feasible(Schedule),
    /// No legal schedule exists at this II (proven).
    Infeasible,
    /// A cap (conflicts, clauses, or slots) ran out; unknown.
    LimitHit,
}

/// A literal-or-constant, for window-clipped threshold lookups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TriLit {
    True,
    False,
    Is(Lit),
}

/// Per-operation encoding state.
struct OpEnc {
    node: NodeId,
    lo: i64,
    /// Window width `ub − lo + 1`.
    width: i64,
    /// `g[k-1]` ⟺ `t ≥ lo + k`, for `k = 1 .. width−1`.
    g: Vec<u32>,
    /// Alternative vars (empty when the op has one alternative).
    z: Vec<u32>,
    /// Per alternative: `(slot, var)` sorted by slot ascending.
    m: Vec<Vec<(i64, u32)>>,
}

impl OpEnc {
    /// The literal (or constant) for `t ≥ y`.
    fn ge(&self, y: i64) -> TriLit {
        if y <= self.lo {
            TriLit::True
        } else if y >= self.lo + self.width {
            TriLit::False
        } else {
            TriLit::Is(Lit::pos(self.g[(y - self.lo - 1) as usize]))
        }
    }

    /// The occupancy var for `(slot, alternative)`, if that slot is
    /// reachable from this op's window.
    fn m_var(&self, alt: usize, slot: i64) -> Option<u32> {
        let list = &self.m[alt];
        list.binary_search_by_key(&slot, |&(s, _)| s)
            .ok()
            .map(|i| list[i].1)
    }
}

/// Static issue windows per real operation, or `None` when some window
/// is empty (a proof of infeasibility at this II, given `md` feasible).
///
/// `lo_v = max(0, MinDist[START, v])`. For upper bounds, components of
/// the condensation are processed in topological order: with every
/// earlier operation `u` boxed into `[lo_u, ub_u]`, member `m` of the
/// current component has static lower bound `LB_m = max(lo_m, max_u
/// (ub_u + MinDist[u,m]))`, and the shift-by-II argument (exact
/// backend's `search` module docs) caps every member `v` at `ub_v =
/// max_m (LB_m + II − 1 − (v = m ? 0 : MinDist[v,m]))` — any feasible
/// schedule can be shifted component-by-component until it fits.
fn windows(problem: &Problem<'_>, md: &MinDist, ii: i64, prof: &mut impl ProfSink) -> Option<(Vec<i64>, Vec<i64>)> {
    let graph = problem.graph();
    let start = problem.start();
    let stop = problem.stop();
    let n = graph.num_nodes();
    let mut lo = vec![0i64; n];
    let mut ub = vec![0i64; n];

    for v in problem.op_nodes() {
        lo[v.index()] = md.get(start, v).max(0);
    }

    let info = sccs(graph, &mut *prof);
    let mut done: Vec<NodeId> = Vec::new();
    for comp in info.topological() {
        let ops: Vec<NodeId> = comp
            .iter()
            .copied()
            .filter(|&v| v != start && v != stop)
            .collect();
        if ops.is_empty() {
            continue;
        }
        let lb: Vec<i64> = ops
            .iter()
            .map(|&m| {
                let mut lbm = lo[m.index()];
                for &u in &done {
                    let dum = md.get(u, m);
                    if dum != NEG_INF && ub[u.index()] + dum > lbm {
                        lbm = ub[u.index()] + dum;
                    }
                }
                lbm
            })
            .collect();
        for &v in &ops {
            let mut cap = i64::MIN;
            for (&m, &lbm) in ops.iter().zip(&lb) {
                let t = if m == v {
                    lbm + ii - 1
                } else {
                    // Same component: strongly connected, so finite.
                    lbm + ii - 1 - md.get(v, m)
                };
                cap = cap.max(t);
            }
            ub[v.index()] = cap;
            if cap < lo[v.index()] {
                return None;
            }
        }
        done.extend_from_slice(&ops);
    }
    Some((lo, ub))
}

/// Decides feasibility of `problem` at candidate `ii` by CNF encoding +
/// CDCL, spending at most `limits.conflict_budget` conflicts. Returns
/// the decision plus the conflicts actually spent.
///
/// Deterministic statistics — variables, clauses, conflicts, decisions,
/// propagations, restarts, plus MinDist/SCC work — flow into `prof`
/// under their [`phase`] names.
pub(crate) fn decide_ii<P: ProfSink>(
    problem: &Problem<'_>,
    ii: i64,
    limits: &SatLimits,
    prof: &mut P,
) -> (IiDecision, u64) {
    let graph = problem.graph();
    let all: Vec<NodeId> = graph.nodes().collect();
    let md = MinDistSolver::new(graph, &all).solve(ii, &mut *prof);
    if !md.feasible() {
        return (IiDecision::Infeasible, 0);
    }
    let Some((lo, ub)) = windows(problem, &md, ii, &mut *prof) else {
        return (IiDecision::Infeasible, 0);
    };

    let total_slots: i64 = problem
        .op_nodes()
        .map(|v| ub[v.index()] - lo[v.index()] + 1)
        .sum();
    if total_slots as u64 > limits.slot_limit {
        return (IiDecision::LimitHit, 0);
    }

    // Variable allocation, in node-id order: ladder, alternatives,
    // occupancy (per alternative, slots ascending).
    let mut solver = Solver::new();
    let mut ops: Vec<OpEnc> = Vec::with_capacity(problem.num_ops());
    for v in problem.op_nodes() {
        let (lov, width) = (lo[v.index()], ub[v.index()] - lo[v.index()] + 1);
        let alts = &problem.info(v).expect("real operation").alternatives;
        let g: Vec<u32> = (1..width).map(|_| solver.new_var()).collect();
        let z: Vec<u32> = if alts.len() > 1 {
            (0..alts.len()).map(|_| solver.new_var()).collect()
        } else {
            Vec::new()
        };
        let mut m = Vec::with_capacity(alts.len());
        for _ in 0..alts.len() {
            let mut slots: Vec<i64> = if width >= ii {
                (0..ii).collect()
            } else {
                let mut s: Vec<i64> = (0..width).map(|j| (lov + j).rem_euclid(ii)).collect();
                s.sort_unstable();
                s
            };
            let vars: Vec<(i64, u32)> = slots.drain(..).map(|s| (s, solver.new_var())).collect();
            m.push(vars);
        }
        ops.push(OpEnc {
            node: v,
            lo: lov,
            width,
            g,
            z,
            m,
        });
    }

    // Clause emission, with the clause cap polled between families.
    let over_limit = |s: &Solver| s.num_clauses() as u64 > limits.clause_limit;

    // Family 1: ladder coherence g_{k+1} → g_k.
    for op in &ops {
        for k in 1..op.g.len() {
            solver.add_clause(&[Lit::neg(op.g[k]), Lit::pos(op.g[k - 1])]);
        }
    }

    // Family 2: exactly-one alternative.
    for op in &ops {
        if op.z.is_empty() {
            continue;
        }
        let alo: Vec<Lit> = op.z.iter().map(|&v| Lit::pos(v)).collect();
        solver.add_clause(&alo);
        for i in 0..op.z.len() {
            for j in (i + 1)..op.z.len() {
                solver.add_clause(&[Lit::neg(op.z[i]), Lit::neg(op.z[j])]);
            }
        }
    }

    // Family 3: channeling (t = lo+j) ∧ z_a → m_{(lo+j) mod II, a}.
    for op in &ops {
        for a in 0..op.m.len() {
            for j in 0..op.width {
                let slot = (op.lo + j).rem_euclid(ii);
                let mv = op.m_var(a, slot).expect("achievable slot has a var");
                let mut clause = Vec::with_capacity(4);
                if j > 0 {
                    clause.push(Lit::neg(op.g[(j - 1) as usize])); // ¬(t ≥ lo+j)
                }
                if j + 1 < op.width {
                    clause.push(Lit::pos(op.g[j as usize])); // t ≥ lo+j+1
                }
                if !op.z.is_empty() {
                    clause.push(Lit::neg(op.z[a]));
                }
                clause.push(Lit::pos(mv));
                solver.add_clause(&clause);
            }
        }
    }
    if over_limit(&solver) {
        return (IiDecision::LimitHit, 0);
    }

    // Family 4: dependences as ladder implications. Index OpEnc by node.
    let mut enc_of = vec![usize::MAX; graph.num_nodes()];
    for (i, op) in ops.iter().enumerate() {
        enc_of[op.node.index()] = i;
    }
    for op in &ops {
        for e in graph.preds(op.node) {
            let ui = enc_of[e.from.index()];
            if ui == usize::MAX || e.from == op.node {
                continue; // START/STOP edges are folded into lo; self-deps
                          // are subsumed by the MinDist diagonal check.
            }
            let u = &ops[ui];
            let d = e.delay - ii * e.distance as i64;
            for j in 0..u.width {
                let ante = if j == 0 {
                    TriLit::True
                } else {
                    TriLit::Is(Lit::pos(u.g[(j - 1) as usize]))
                };
                match op.ge(u.lo + j + d) {
                    TriLit::True => continue,
                    TriLit::False => {
                        match ante {
                            // lo_v ≥ lo_u + d always holds (MinDist
                            // transitivity), so j = 0 can't be False.
                            TriLit::True => unreachable!("window lower bounds respect edges"),
                            TriLit::Is(l) => solver.add_clause(&[!l]),
                            TriLit::False => {}
                        }
                        break; // larger j is implied via the ladder
                    }
                    TriLit::Is(b) => match ante {
                        TriLit::True => solver.add_clause(&[b]),
                        TriLit::Is(a) => solver.add_clause(&[!a, b]),
                        TriLit::False => {}
                    },
                }
            }
        }
    }
    if over_limit(&solver) {
        return (IiDecision::LimitHit, 0);
    }

    // Family 5: pairwise resource conflicts over occupancy bits.
    'pairs: for i in 0..ops.len() {
        for j in (i + 1)..ops.len() {
            let (u, v) = (&ops[i], &ops[j]);
            let u_alts = &problem.info(u.node).expect("real operation").alternatives;
            let v_alts = &problem.info(v.node).expect("real operation").alternatives;
            for (au, ua) in u_alts.iter().enumerate() {
                for (av, va) in v_alts.iter().enumerate() {
                    // δ values at which these two reservation shapes
                    // collide: s_v ≡ s_u + off_u − off_v (mod II).
                    let mut deltas: Vec<i64> = Vec::new();
                    for e1 in ua.mask().entries() {
                        for e2 in va.mask().entries() {
                            if e1.word == e2.word && e1.mask & e2.mask != 0 {
                                let d =
                                    (e1.offset as i64 - e2.offset as i64).rem_euclid(ii);
                                if !deltas.contains(&d) {
                                    deltas.push(d);
                                }
                            }
                        }
                    }
                    deltas.sort_unstable();
                    for &delta in &deltas {
                        for &(su, mu) in &u.m[au] {
                            let sv = (su + delta).rem_euclid(ii);
                            if let Some(mv) = v.m_var(av, sv) {
                                solver.add_clause(&[Lit::neg(mu), Lit::neg(mv)]);
                            }
                        }
                    }
                }
            }
            if over_limit(&solver) {
                break 'pairs;
            }
        }
    }
    if over_limit(&solver) {
        return (IiDecision::LimitHit, 0);
    }

    prof.count(phase::SAT_VARS, solver.num_vars() as u64);
    prof.count(phase::SAT_CLAUSES, solver.num_clauses() as u64);

    let result = solver.solve(limits.conflict_budget);
    let stats = solver.stats();
    prof.count(phase::SAT_CONFLICTS, stats.conflicts);
    prof.count(phase::SAT_DECISIONS, stats.decisions);
    prof.count(phase::SAT_PROPAGATIONS, stats.propagations);
    prof.count(phase::SAT_RESTARTS, stats.restarts);

    let decision = match result {
        SolveResult::Unsat => IiDecision::Infeasible,
        SolveResult::Unknown => IiDecision::LimitHit,
        SolveResult::Sat(model) => {
            let mut time = vec![0i64; graph.num_nodes()];
            let mut alternative = vec![0usize; graph.num_nodes()];
            for op in &ops {
                // Ladder-coherent bits: the time is lo + (true bits).
                let k: i64 = op.g.iter().filter(|&&g| model[g as usize]).count() as i64;
                time[op.node.index()] = op.lo + k;
                alternative[op.node.index()] = if op.z.is_empty() {
                    0
                } else {
                    op.z
                        .iter()
                        .position(|&z| model[z as usize])
                        .expect("exactly-one alternative")
                };
            }
            let stop = problem.stop();
            let mut t_stop = 0i64;
            for e in graph.preds(stop) {
                if e.from == stop {
                    continue;
                }
                let term = time[e.from.index()] + e.delay - ii * e.distance as i64;
                t_stop = t_stop.max(term);
            }
            time[stop.index()] = t_stop;
            IiDecision::Feasible(Schedule {
                ii,
                time,
                alternative,
                length: t_stop,
            })
        }
    };
    (decision, stats.conflicts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ims_core::{compute_mii, validate_schedule, Counters, ProblemBuilder};
    use ims_graph::DepKind;
    use ims_ir::{OpId, Opcode};
    use ims_machine::figure1_machine;
    use ims_prof::NullSink;

    const WIDE: SatLimits = SatLimits {
        conflict_budget: 1 << 20,
        clause_limit: 1 << 22,
        slot_limit: 1 << 16,
    };

    /// The paper's Figure 1 recurrence: RecMII 5, but the recurrence
    /// interacts with the shared result bus so the true optimum is 6
    /// (branch-and-bound proves the same).
    fn figure1(machine: &ims_machine::MachineModel) -> Problem<'_> {
        let mut pb = ProblemBuilder::new(machine);
        let mul = pb.add_op(Opcode::Mul, OpId(0));
        let add = pb.add_op(Opcode::Add, OpId(1));
        pb.add_dep(mul, add, 5, 0, DepKind::Flow, false);
        pb.add_dep(add, mul, 4, 2, DepKind::Flow, false);
        pb.finish()
    }

    #[test]
    fn figure1_flips_from_infeasible_to_feasible_at_six() {
        let m = figure1_machine();
        let p = figure1(&m);
        let mii = compute_mii(&p, &mut Counters::default()).mii;
        assert_eq!(mii, 5);
        let (at_mii, _) = decide_ii(&p, 5, &WIDE, &mut NullSink);
        assert_eq!(at_mii, IiDecision::Infeasible, "RecMII 5 loses to the bus");
        let (at_six, _) = decide_ii(&p, 6, &WIDE, &mut NullSink);
        let IiDecision::Feasible(s) = at_six else {
            panic!("figure 1 is feasible at 6, got {at_six:?}");
        };
        assert_eq!(s.ii, 6);
        assert!(validate_schedule(&p, &s).is_ok(), "decoded schedule is legal");
    }

    #[test]
    fn infeasible_below_recmii() {
        let m = figure1_machine();
        let p = figure1(&m);
        for ii in 1..5 {
            let (decision, _) = decide_ii(&p, ii, &WIDE, &mut NullSink);
            assert_eq!(decision, IiDecision::Infeasible, "II {ii} is below RecMII");
        }
    }

    #[test]
    fn resource_contention_needs_a_larger_ii() {
        // Four adds on a machine with a single-add pipeline: ResMII
        // dominates. Feasibility must flip exactly at the ResMII.
        let m = figure1_machine();
        let mut pb = ProblemBuilder::new(&m);
        for i in 0..4 {
            let _ = pb.add_op(Opcode::Add, OpId(i));
        }
        let p = pb.finish();
        let mii = compute_mii(&p, &mut Counters::default()).mii;
        assert!(mii > 1, "four adds cannot fit in a single II row");
        let (below, _) = decide_ii(&p, mii - 1, &WIDE, &mut NullSink);
        assert_eq!(below, IiDecision::Infeasible, "below ResMII");
        let (at, _) = decide_ii(&p, mii, &WIDE, &mut NullSink);
        let IiDecision::Feasible(s) = at else {
            panic!("feasible at ResMII, got {at:?}");
        };
        assert!(validate_schedule(&p, &s).is_ok());
    }

    #[test]
    fn tiny_limits_give_limit_hit_not_wrong_answers() {
        let m = figure1_machine();
        let p = figure1(&m);
        let starved = SatLimits {
            conflict_budget: 1 << 20,
            clause_limit: 1,
            slot_limit: 1 << 16,
        };
        let (decision, _) = decide_ii(&p, 5, &starved, &mut NullSink);
        assert_eq!(decision, IiDecision::LimitHit);

        let no_slots = SatLimits {
            conflict_budget: 1 << 20,
            clause_limit: 1 << 22,
            slot_limit: 1,
        };
        let (decision, _) = decide_ii(&p, 5, &no_slots, &mut NullSink);
        assert_eq!(decision, IiDecision::LimitHit);
    }
}
