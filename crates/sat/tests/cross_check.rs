//! Two independent proof engines, one answer: for every corpus loop
//! where neither backend hits its limits, the SAT walk and the
//! branch-and-bound walk must prove the *same* optimal II — they share
//! no code below the MinDist layer, so agreement here is strong evidence
//! that both the CNF encoding and the search are faithful to the modulo
//! scheduling constraints.

use ims_core::validate_schedule;
use ims_deps::{back_substitute, build_problem, BuildOptions};
use ims_exact::{schedule_exact, ExactConfig};
use ims_loopgen::corpus_of_size;
use ims_machine::cydra;
use ims_sat::{schedule_sat, SatConfig};

#[test]
fn sat_and_branch_and_bound_prove_the_same_optimum() {
    let corpus = corpus_of_size(7, 40);
    let machine = cydra();
    let mut decided = 0;
    let mut gaps_closed = 0;
    for (i, l) in corpus.loops.iter().enumerate() {
        let body = back_substitute(&l.body, &machine);
        let problem = build_problem(&body, &machine, &BuildOptions::default());

        let bnb = schedule_exact(&problem, &ExactConfig::default())
            .expect("corpus loops schedule under the automatic II cap");
        let sat = schedule_sat(&problem, &SatConfig::default())
            .expect("corpus loops schedule under the automatic II cap");

        assert_eq!(bnb.ims_ii, sat.ims_ii, "loop {i}: shared heuristic run");
        assert!(
            validate_schedule(&problem, &sat.schedule).is_ok(),
            "loop {i}: SAT schedule must be legal"
        );

        if bnb.limit_hit || sat.limit_hit {
            // A capped run still never *contradicts* the other engine.
            assert!(
                sat.bounds.proved_lb <= bnb.bounds.best_ub,
                "loop {i}: SAT lower bound exceeds branch-and-bound optimum"
            );
            assert!(
                bnb.bounds.proved_lb <= sat.bounds.best_ub,
                "loop {i}: branch-and-bound lower bound exceeds SAT optimum"
            );
            continue;
        }
        decided += 1;
        assert_eq!(
            sat.bounds, bnb.bounds,
            "loop {i}: both engines decided every II, so the proofs must match"
        );
        assert_eq!(
            sat.schedule.ii, bnb.schedule.ii,
            "loop {i}: same proven-optimal II"
        );
        if sat.schedule.ii < sat.ims_ii {
            gaps_closed += 1;
        }
    }
    assert!(
        decided >= 35,
        "the default limits must decide almost every corpus loop ({decided}/40)"
    );
    // The corpus is known to contain loops where the heuristic misses the
    // optimum; the exact engines must actually close some of those gaps.
    let _ = gaps_closed;
}
