//! Criterion benchmarks for the MII machinery: ResMII, the per-SCC MinDist
//! RecMII (Huff's method, the one the paper adopts) versus elementary
//! circuit enumeration (the Cydra 5 compiler's method), and HeightR.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ims_core::{compute_mii, height_r, rec_mii, rec_mii_by_circuits, res_mii, Counters};
use ims_deps::{build_problem, BuildOptions};
use ims_loopgen::{generate_loop, SynthConfig};
use ims_machine::cydra;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn problems() -> Vec<(usize, ims_ir::LoopBody)> {
    [12usize, 40, 120]
        .iter()
        .map(|&n| {
            let cfg = SynthConfig {
                ops_target: n,
                recurrences: vec![3, 2],
                with_branch: true,
            };
            (n, generate_loop(&mut StdRng::seed_from_u64(n as u64), &cfg))
        })
        .collect()
}

fn bench_mii_bounds(c: &mut Criterion) {
    let machine = cydra();
    let mut group = c.benchmark_group("mii");
    group.sample_size(40);
    for (n, body) in problems() {
        let problem = build_problem(&body, &machine, &BuildOptions::default());
        group.bench_with_input(BenchmarkId::new("res_mii", n), &problem, |b, p| {
            b.iter(|| black_box(res_mii(p, &mut Counters::new())))
        });
        group.bench_with_input(BenchmarkId::new("rec_mii_mindist", n), &problem, |b, p| {
            b.iter(|| black_box(rec_mii(p, 1, &mut Counters::new())))
        });
        group.bench_with_input(BenchmarkId::new("rec_mii_circuits", n), &problem, |b, p| {
            b.iter(|| black_box(rec_mii_by_circuits(p, 100_000)))
        });
        group.bench_with_input(BenchmarkId::new("compute_mii", n), &problem, |b, p| {
            b.iter(|| black_box(compute_mii(p, &mut Counters::new())))
        });
        let ii = compute_mii(&problem, &mut Counters::new()).mii;
        group.bench_with_input(BenchmarkId::new("height_r", n), &problem, |b, p| {
            b.iter(|| black_box(height_r(p, ii, &mut Counters::new())))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mii_bounds);
criterion_main!(benches);
