//! Criterion benchmarks for the scheduler itself: cost of iterative modulo
//! scheduling as loop size grows (the computational-expense axis of §4.4),
//! and the cost of the full front-end + scheduling pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ims_core::{modulo_schedule, SchedConfig};
use ims_deps::{back_substitute, build_problem, BuildOptions};
use ims_loopgen::{generate_loop, SynthConfig};
use ims_machine::cydra;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_scheduling_by_size(c: &mut Criterion) {
    let machine = cydra();
    let mut group = c.benchmark_group("modulo_schedule");
    group.sample_size(30);
    for &n in &[8usize, 16, 32, 64, 128] {
        let cfg = SynthConfig {
            ops_target: n,
            recurrences: if n >= 16 { vec![3] } else { vec![] },
            with_branch: true,
        };
        let body = generate_loop(&mut StdRng::seed_from_u64(n as u64), &cfg);
        let body = back_substitute(&body, &machine);
        let problem = build_problem(&body, &machine, &BuildOptions::default());
        group.bench_with_input(BenchmarkId::from_parameter(n), &problem, |b, p| {
            b.iter(|| {
                black_box(
                    modulo_schedule(black_box(p), &SchedConfig::with_budget_ratio(2.0))
                        .expect("schedules"),
                )
            })
        });
    }
    group.finish();
}

fn bench_budget_ratios(c: &mut Criterion) {
    let machine = cydra();
    let cfg = SynthConfig {
        ops_target: 48,
        recurrences: vec![4],
        with_branch: true,
    };
    let body = generate_loop(&mut StdRng::seed_from_u64(7), &cfg);
    let body = back_substitute(&body, &machine);
    let problem = build_problem(&body, &machine, &BuildOptions::default());
    let mut group = c.benchmark_group("budget_ratio");
    group.sample_size(30);
    for &ratio in &[1.0f64, 2.0, 4.0, 6.0] {
        group.bench_with_input(BenchmarkId::from_parameter(ratio), &ratio, |b, &ratio| {
            b.iter(|| {
                black_box(
                    modulo_schedule(&problem, &SchedConfig::with_budget_ratio(ratio))
                        .expect("schedules"),
                )
            })
        });
    }
    group.finish();
}

fn bench_front_end(c: &mut Criterion) {
    let machine = cydra();
    let cfg = SynthConfig {
        ops_target: 48,
        recurrences: vec![3],
        with_branch: true,
    };
    let body = generate_loop(&mut StdRng::seed_from_u64(3), &cfg);
    let mut group = c.benchmark_group("front_end");
    group.sample_size(50);
    group.bench_function("back_substitute", |b| {
        b.iter(|| black_box(back_substitute(black_box(&body), &machine)))
    });
    group.bench_function("build_problem", |b| {
        b.iter(|| {
            black_box(build_problem(
                black_box(&body),
                &machine,
                &BuildOptions::default(),
            ))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_scheduling_by_size,
    bench_budget_ratios,
    bench_front_end
);
criterion_main!(benches);
