//! Pipeline-wide profiled corpus measurement.
//!
//! The plain corpus runners ([`crate::measure_corpus_threads`] and friends)
//! deliberately measure nothing but what the paper reports. This module is
//! the `--profile FILE` path behind `corpus`, `optgap`, `table3` and
//! `table4`: every loop is measured exactly as before — the JSON lines on
//! stdout are byte-identical with and without profiling — while a
//! per-loop [`MetricsRegistry`] additionally collects
//!
//! * the deterministic work counters of every pipeline phase (graph
//!   analysis, MII bounds, iterative scheduling, exact branch-and-bound,
//!   code generation, VLIW simulation), keyed by the names in
//!   [`ims_prof::phase`];
//! * per-step distributions (slot-search iterations, Estart predecessor
//!   counts) via the [`ProfObserver`] adapter on the scheduler's
//!   [`SchedObserver`] seam;
//! * wall-clock spans per phase, kept strictly in the registry's separate
//!   wall section.
//!
//! Profiled runs extend the pipeline past scheduling: each loop is also
//! lowered by modulo variable expansion and executed on the VLIW
//! simulator, so `codegen.*` and `vliw.sim.*` describe real emitted code
//! and real simulated cycles.
//!
//! Per-loop registries come back from the worker pool in corpus order and
//! are merged in that order; merging is commutative on the deterministic
//! sections anyway, so the deterministic part of the rendered
//! `BENCH_<name>.json` snapshot is byte-identical for every `--threads`
//! value. `scripts/verify.sh` enforces this with `benchdiff
//! --strict-counters --no-wall` on every run.

use std::path::Path;

use ims_codegen::{generate_mve_profiled, lifetimes_profiled};
use ims_core::{
    BackendKind, Counters, NullObserver, SchedConfig, SchedObserver, SchedOutcome, Scheduler,
};
use ims_deps::{back_substitute, build_problem, BuildOptions};
use ims_exact::{schedule_exact_profiled, ExactConfig};
use ims_graph::NodeId;
use ims_sat::{schedule_sat_profiled, SatConfig};
use ims_loopgen::{Corpus, CorpusLoop};
use ims_machine::MachineModel;
use ims_prof::{phase, snapshot, MetricsRegistry, PhaseTimer};
use ims_trace::TraceWriter;
use ims_vliw::{run_overlapped_profiled, MemoryImage};

use crate::{finish_measurement, pool, ExactInfo, LoopMeasurement};

/// [`SchedObserver`] adapter that feeds per-step distributions into a
/// [`MetricsRegistry`] while forwarding every event to an inner observer
/// (a trace writer, or [`NullObserver`]).
///
/// The registry records only deterministic quantities — candidate-II
/// attempts, budget exhaustions, and the per-step `slot_search` /
/// `estart_computed` histograms — so wrapping a run in a `ProfObserver`
/// never perturbs its schedule, its trace, or its stdout.
pub struct ProfObserver<'a, O> {
    inner: &'a mut O,
    reg: &'a mut MetricsRegistry,
}

impl<'a, O: SchedObserver> ProfObserver<'a, O> {
    /// Wraps `inner`, recording distributions into `reg`.
    pub fn new(inner: &'a mut O, reg: &'a mut MetricsRegistry) -> Self {
        ProfObserver { inner, reg }
    }
}

impl<O: SchedObserver> SchedObserver for ProfObserver<'_, O> {
    fn backend(&mut self, kind: BackendKind) {
        self.inner.backend(kind);
    }
    fn attempt_start(&mut self, ii: i64, budget: i64) {
        self.reg.add(phase::SCHED_ATTEMPTS, 1);
        self.inner.attempt_start(ii, budget);
    }
    fn op_scheduled(&mut self, node: NodeId, time: i64, alt: usize, forced: bool) {
        self.inner.op_scheduled(node, time, alt, forced);
    }
    fn op_evicted(&mut self, node: NodeId, evictor: NodeId) {
        self.inner.op_evicted(node, evictor);
    }
    fn slot_search(&mut self, node: NodeId, estart: i64, iters: u32) {
        self.reg.observe(phase::HIST_SLOT_SEARCH, iters as i64);
        self.inner.slot_search(node, estart, iters);
    }
    fn estart_computed(&mut self, node: NodeId, preds: u32) {
        self.reg.observe(phase::HIST_ESTART_PREDS, preds as i64);
        self.inner.estart_computed(node, preds);
    }
    fn budget_exhausted(&mut self, ii: i64, spent: u64) {
        self.reg.add(phase::SCHED_ATTEMPTS_FAILED, 1);
        self.inner.budget_exhausted(ii, spent);
    }
    fn attempt_done(&mut self, ii: i64, ok: bool) {
        self.inner.attempt_done(ii, ok);
    }
    fn placement_vetoed(&mut self, node: NodeId, time: i64) -> bool {
        self.inner.placement_vetoed(node, time)
    }
    fn attempt_accept(&mut self, ii: i64, schedule: &ims_core::Schedule) -> bool {
        self.inner.attempt_accept(ii, schedule)
    }
}

/// Files a scheduler run's [`Counters`] under the profiler's phase names.
/// Shared by every profiled driver (including `optgap`'s BudgetRatio
/// sweep), so the counter-to-phase mapping exists in exactly one place.
pub fn flush_counters(c: &Counters, reg: &mut MetricsRegistry) {
    reg.add(phase::GRAPH_SCC_WORK, c.scc_work);
    reg.add(phase::SCHED_RESMII_WORK, c.resmii_work);
    reg.add(phase::GRAPH_MINDIST_WORK, c.mindist_work);
    reg.add(phase::SCHED_HEIGHTR_WORK, c.heightr_work);
    reg.add(phase::SCHED_ESTART_PREDS, c.estart_preds);
    reg.add(phase::SCHED_FINDSLOT_ITERS, c.findslot_iters);
    reg.add(phase::SCHED_EVICTIONS, c.evictions);
    reg.add(phase::MACHINE_MRT_PROBES, c.mrt_probes);
}

/// Runs modulo variable expansion and the overlapped VLIW simulation for
/// an already-scheduled loop, filing `codegen.*` and `vliw.sim.*` metrics
/// (and their wall spans) into `reg`. Simulation errors are counted, not
/// propagated — a profile must never change what a run reports.
fn profile_backend_tail(
    body: &ims_ir::LoopBody,
    problem: &ims_core::Problem<'_>,
    schedule: &ims_core::Schedule,
    reg: &mut MetricsRegistry,
) {
    let t = PhaseTimer::start(phase::WALL_CODEGEN);
    let lt = lifetimes_profiled(body, problem, schedule, reg);
    let _code = generate_mve_profiled(body, problem, schedule, &lt, reg);
    t.finish(reg);

    let t = PhaseTimer::start(phase::WALL_VLIW);
    let _ = run_overlapped_profiled(body, problem, schedule, MemoryImage::for_body(body), reg);
    t.finish(reg);
}

/// [`crate::measure_loop_observed`] plus a full phase profile: identical
/// measurements (and, through `observer`, identical traces), with every
/// pipeline phase's deterministic work and wall time filed into `reg`.
pub fn measure_loop_profiled<O: SchedObserver>(
    l: &CorpusLoop,
    machine: &MachineModel,
    budget_ratio: f64,
    observer: &mut O,
    reg: &mut MetricsRegistry,
) -> LoopMeasurement {
    let whole = PhaseTimer::start(phase::WALL_LOOP);

    let t = PhaseTimer::start(phase::WALL_BUILD);
    let body = back_substitute(&l.body, machine);
    let problem = build_problem(&body, machine, &BuildOptions::default());
    t.finish(reg);

    let t = PhaseTimer::start(phase::WALL_SCHED);
    let t0 = std::time::Instant::now();
    let outcome: SchedOutcome = Scheduler::new(&problem)
        .config(SchedConfig::new().budget_ratio(budget_ratio))
        .observer(ProfObserver::new(observer, reg))
        .run()
        .expect("corpus loops always schedule under the automatic II cap");
    let wall_ns = t0.elapsed().as_nanos() as u64;
    t.finish(reg);

    reg.add(phase::SCHED_STEPS, outcome.stats.total_steps());
    flush_counters(&outcome.stats.counters, reg);
    reg.add(phase::CORPUS_LOOPS, 1);
    reg.add(phase::CORPUS_OPS, problem.num_ops() as u64);

    let mut m = finish_measurement(
        &problem,
        l,
        outcome.mii.res_mii,
        outcome.mii.rec_mii,
        outcome.mii.mii,
        &outcome.schedule,
    );
    m.final_steps = outcome.stats.final_steps();
    m.total_steps = outcome.stats.total_steps();
    m.counters = outcome.stats.counters;
    m.wall_ns = wall_ns;

    profile_backend_tail(&body, &problem, &outcome.schedule, reg);
    whole.finish(reg);
    m
}

/// [`crate::measure_loop_pressure`] plus a full phase profile: identical
/// measurements, with the register-pressure work (`press.maxlive.updates`,
/// `press.rejects`, `press.ii_bumps`) filed alongside every other phase's
/// deterministic counters.
pub fn measure_loop_pressure_profiled<O: SchedObserver>(
    l: &CorpusLoop,
    machine: &MachineModel,
    budget_ratio: f64,
    limit: u32,
    observer: &mut O,
    reg: &mut MetricsRegistry,
) -> LoopMeasurement {
    let whole = PhaseTimer::start(phase::WALL_LOOP);

    let t = PhaseTimer::start(phase::WALL_BUILD);
    let body = back_substitute(&l.body, machine);
    let problem = build_problem(&body, machine, &BuildOptions::default());
    t.finish(reg);

    let t = PhaseTimer::start(phase::WALL_SCHED);
    let t0 = std::time::Instant::now();
    let run = {
        let mut prof = ProfObserver::new(observer, reg);
        crate::schedule_pressure(&body, &problem, budget_ratio, limit, &mut prof)
    };
    let wall_ns = t0.elapsed().as_nanos() as u64;
    t.finish(reg);

    reg.add(phase::SCHED_STEPS, run.outcome.stats.total_steps());
    flush_counters(&run.outcome.stats.counters, reg);
    reg.add(phase::PRESS_MAXLIVE_UPDATES, run.updates);
    reg.add(phase::PRESS_REJECTS, run.rejects);
    reg.add(phase::PRESS_II_BUMPS, run.ii_bumps);
    reg.add(phase::CORPUS_LOOPS, 1);
    reg.add(phase::CORPUS_OPS, problem.num_ops() as u64);

    let mut m = finish_measurement(&problem, l, run.outcome.mii.res_mii,
        run.outcome.mii.rec_mii, run.outcome.mii.mii, &run.outcome.schedule);
    m.final_steps = run.outcome.stats.final_steps();
    m.total_steps = run.outcome.stats.total_steps();
    m.counters = run.outcome.stats.counters;
    m.wall_ns = wall_ns;
    m.press = Some(run.press);

    profile_backend_tail(&body, &problem, &run.outcome.schedule, reg);
    whole.finish(reg);
    m
}

/// [`crate::measure_corpus_pressure`] with a merged [`MetricsRegistry`]
/// profile of the whole run — the `--pressure-limit` + `--profile` path.
/// Per-loop registries merge in corpus order, so the deterministic
/// sections (including `press.*`) are independent of `threads`.
pub fn measure_corpus_pressure_profiled(
    corpus: &Corpus,
    machine: &MachineModel,
    budget_ratio: f64,
    limit: u32,
    threads: usize,
) -> (Vec<LoopMeasurement>, MetricsRegistry) {
    let per_loop = pool::par_map(&corpus.loops, threads, |_, l| {
        let mut reg = MetricsRegistry::new();
        let mut null = NullObserver;
        let m =
            measure_loop_pressure_profiled(l, machine, budget_ratio, limit, &mut null, &mut reg);
        (m, reg)
    });
    let mut ms = Vec::with_capacity(per_loop.len());
    let mut total = MetricsRegistry::new();
    for (m, reg) in per_loop {
        total.merge(&reg);
        ms.push(m);
    }
    (ms, total)
}

/// [`crate::measure_loop_exact`] plus a full phase profile: the exact
/// branch-and-bound search reports its `exact.*` statistics (and the
/// `graph.*` / `machine.*` work it performs) through
/// [`schedule_exact_profiled`], and the loop is additionally lowered and
/// simulated like the iterative profiled path.
pub fn measure_loop_exact_profiled<O: SchedObserver>(
    l: &CorpusLoop,
    machine: &MachineModel,
    config: &ExactConfig,
    observer: &mut O,
    reg: &mut MetricsRegistry,
) -> LoopMeasurement {
    let whole = PhaseTimer::start(phase::WALL_LOOP);

    let t = PhaseTimer::start(phase::WALL_BUILD);
    let body = back_substitute(&l.body, machine);
    let problem = build_problem(&body, machine, &BuildOptions::default());
    t.finish(reg);

    let t = PhaseTimer::start(phase::WALL_EXACT);
    let t0 = std::time::Instant::now();
    let out = schedule_exact_profiled(&problem, config, observer, &mut *reg)
        .expect("corpus loops always schedule under the automatic II cap");
    let wall_ns = t0.elapsed().as_nanos() as u64;
    t.finish(reg);

    reg.add(phase::CORPUS_LOOPS, 1);
    reg.add(phase::CORPUS_OPS, problem.num_ops() as u64);

    let mut m = finish_measurement(&problem, l, out.mii.res_mii, out.mii.rec_mii, out.mii.mii,
        &out.schedule);
    m.final_steps = out.nodes;
    m.total_steps = out.nodes;
    m.wall_ns = wall_ns;
    m.exact = Some(ExactInfo {
        proved_lb: out.bounds.proved_lb,
        best_ub: out.bounds.best_ub,
        nodes: out.nodes,
        limit_hit: out.limit_hit,
    });

    profile_backend_tail(&body, &problem, &out.schedule, reg);
    whole.finish(reg);
    m
}

/// [`crate::measure_loop_sat`] plus a full phase profile: the CDCL
/// search reports its `sat.*` statistics through
/// [`schedule_sat_profiled`], and the loop is additionally lowered and
/// simulated like the iterative profiled path.
pub fn measure_loop_sat_profiled<O: SchedObserver>(
    l: &CorpusLoop,
    machine: &MachineModel,
    config: &SatConfig,
    observer: &mut O,
    reg: &mut MetricsRegistry,
) -> LoopMeasurement {
    let whole = PhaseTimer::start(phase::WALL_LOOP);

    let t = PhaseTimer::start(phase::WALL_BUILD);
    let body = back_substitute(&l.body, machine);
    let problem = build_problem(&body, machine, &BuildOptions::default());
    t.finish(reg);

    let t = PhaseTimer::start(phase::WALL_SAT);
    let t0 = std::time::Instant::now();
    let out = schedule_sat_profiled(&problem, config, observer, &mut *reg)
        .expect("corpus loops always schedule under the automatic II cap");
    let wall_ns = t0.elapsed().as_nanos() as u64;
    t.finish(reg);

    reg.add(phase::CORPUS_LOOPS, 1);
    reg.add(phase::CORPUS_OPS, problem.num_ops() as u64);

    let mut m = finish_measurement(&problem, l, out.mii.res_mii, out.mii.rec_mii, out.mii.mii,
        &out.schedule);
    m.final_steps = out.conflicts;
    m.total_steps = out.conflicts;
    m.wall_ns = wall_ns;
    m.exact = Some(ExactInfo {
        proved_lb: out.bounds.proved_lb,
        best_ub: out.bounds.best_ub,
        nodes: out.conflicts,
        limit_hit: out.limit_hit,
    });

    profile_backend_tail(&body, &problem, &out.schedule, reg);
    whole.finish(reg);
    m
}

/// [`crate::measure_corpus_backend`] (+ optional per-loop traces, as in
/// [`crate::measure_corpus_traced`]) with a merged [`MetricsRegistry`]
/// profile of the whole run.
///
/// The measurements — and the traces, when `trace_dir` is given — are
/// byte-identical to the unprofiled runners'. Per-loop registries merge in
/// corpus order, so the deterministic sections of the returned registry
/// are independent of `threads`; only the wall section varies.
///
/// # Errors
///
/// An I/O error creating `trace_dir` or writing a trace file.
#[allow(clippy::too_many_arguments)]
pub fn measure_corpus_profiled(
    corpus: &Corpus,
    machine: &MachineModel,
    backend: BackendKind,
    budget_ratio: f64,
    work_limit: Option<u64>,
    threads: usize,
    trace_dir: Option<&Path>,
    prefix: &str,
) -> std::io::Result<(Vec<LoopMeasurement>, MetricsRegistry)> {
    if let Some(dir) = trace_dir {
        std::fs::create_dir_all(dir)?;
    }
    let exact_config = ExactConfig::new()
        .heuristic(SchedConfig::with_budget_ratio(budget_ratio))
        .node_limit(work_limit);
    let sat_config = SatConfig::new()
        .heuristic(SchedConfig::with_budget_ratio(budget_ratio))
        .conflict_limit(work_limit);

    let per_loop = pool::par_map(&corpus.loops, threads, |_, l| {
        let mut reg = MetricsRegistry::new();
        let mut tracer = trace_dir.is_some().then(TraceWriter::in_memory);
        let mut null = NullObserver;
        let mut obs: &mut dyn SchedObserver = match tracer.as_mut() {
            Some(t) => t,
            None => &mut null,
        };
        let m = match backend {
            BackendKind::Ims => measure_loop_profiled(l, machine, budget_ratio, &mut obs, &mut reg),
            BackendKind::Exact => {
                measure_loop_exact_profiled(l, machine, &exact_config, &mut obs, &mut reg)
            }
            BackendKind::Sat => {
                measure_loop_sat_profiled(l, machine, &sat_config, &mut obs, &mut reg)
            }
        };
        (m, tracer.map(TraceWriter::into_string), reg)
    });

    let mut ms = Vec::with_capacity(per_loop.len());
    let mut total = MetricsRegistry::new();
    for (index, (m, trace, reg)) in per_loop.into_iter().enumerate() {
        if let (Some(dir), Some(trace)) = (trace_dir, trace) {
            std::fs::write(dir.join(format!("{prefix}loop_{index:05}.jsonl")), trace)?;
        }
        total.merge(&reg);
        ms.push(m);
    }
    Ok((ms, total))
}

/// Renders `reg` as a versioned `BENCH_<name>.json` snapshot and writes it
/// to `path` — the shared tail of every binary's `--profile FILE` flag.
///
/// # Errors
///
/// An I/O error writing `path`.
pub fn write_profile(path: &Path, name: &str, reg: &MetricsRegistry) -> std::io::Result<()> {
    std::fs::write(path, snapshot::render_snapshot(name, reg))
}

/// Extracts `--profile FILE` (or `--profile=FILE`) from a raw argv slice,
/// the way the corpus binaries share [`crate::parse_trace_dir`].
pub fn parse_profile_path(args: &[String]) -> Option<std::path::PathBuf> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--profile" {
            return it.next().map(std::path::PathBuf::from);
        }
        if let Some(v) = a.strip_prefix("--profile=") {
            return Some(std::path::PathBuf::from(v));
        }
    }
    None
}
