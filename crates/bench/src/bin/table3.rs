//! Table 3: distribution statistics for various measurements over the
//! corpus, plus the prose claims of §4.2 and §4.3.
//!
//! The paper ran 1327 loops at BudgetRatio 6 (*"well above the largest
//! value actually needed by any loop"*); so does this binary. Accepts
//! `--threads N`, `--trace DIR` (per-loop event traces) and
//! `--profile FILE` (a `BENCH_<name>.json` phase-profile snapshot; see
//! the `corpus` binary).

use ims_bench::pool::threads_from_args;
use ims_bench::profile::{measure_corpus_profiled, parse_profile_path, write_profile};
use ims_bench::{measure_corpus_traced, parse_trace_dir, LoopMeasurement};
use ims_core::BackendKind;
use ims_loopgen::paper_corpus;
use ims_machine::cydra;
use ims_stats::table::{num, Table};
use ims_stats::{DistributionStats, Histogram};

fn row(t: &mut Table, name: &str, s: &DistributionStats) {
    t.row(vec![
        name.to_string(),
        num(s.minimum_possible, 0),
        num(s.freq_of_minimum, 3),
        num(s.median, 2),
        num(s.mean, 2),
        num(s.maximum, 2),
    ]);
}

fn main() {
    let corpus = paper_corpus(0xC4D5);
    let threads = threads_from_args();
    eprintln!(
        "scheduling {} loops (BudgetRatio = 6, {threads} threads)...",
        corpus.len()
    );
    let args: Vec<String> = std::env::args().collect();
    let trace_dir = parse_trace_dir(&args);
    let ms = if let Some(profile_path) = parse_profile_path(&args) {
        let (ms, reg) = measure_corpus_profiled(
            &corpus,
            &cydra(),
            BackendKind::Ims,
            6.0,
            None,
            threads,
            trace_dir.as_deref(),
            "",
        )
        .unwrap_or_else(|e| {
            eprintln!("table3: cannot write traces: {e}");
            std::process::exit(1);
        });
        write_profile(&profile_path, "table3", &reg).unwrap_or_else(|e| {
            eprintln!("table3: cannot write profile {}: {e}", profile_path.display());
            std::process::exit(1);
        });
        ms
    } else {
        measure_corpus_traced(&corpus, &cydra(), 6.0, threads, trace_dir.as_deref(), "")
            .unwrap_or_else(|e| {
                eprintln!("table3: cannot write traces: {e}");
                std::process::exit(1);
            })
    };

    let stats = |f: &dyn Fn(&LoopMeasurement) -> f64, min: f64| -> DistributionStats {
        let v: Vec<f64> = ms.iter().map(f).collect();
        DistributionStats::from_samples(&v, min)
    };
    let executed: Vec<&LoopMeasurement> = ms.iter().filter(|m| m.profile.executed).collect();

    println!("Table 3 — distribution statistics ({} loops)\n", ms.len());
    let mut t = Table::new(vec![
        "Measurement".into(),
        "MinPossible".into(),
        "Freq(min)".into(),
        "Median".into(),
        "Mean".into(),
        "Maximum".into(),
    ]);
    row(&mut t, "Number of operations", &stats(&|m| m.n_ops as f64, 4.0));
    row(&mut t, "MII", &stats(&|m| m.mii as f64, 1.0));
    row(
        &mut t,
        "Minimum modulo schedule length",
        &stats(&|m| m.schedule_length_lower as f64, 4.0),
    );
    row(
        &mut t,
        "max(0, RecMII - ResMII)",
        &stats(&|m| (m.rec_mii - m.res_mii).max(0) as f64, 0.0),
    );
    row(
        &mut t,
        "Number of non-trivial SCCs",
        &stats(&|m| m.non_trivial_sccs as f64, 0.0),
    );
    {
        let sizes: Vec<f64> = ms
            .iter()
            .flat_map(|m| m.scc_sizes.iter().map(|&s| s as f64))
            .collect();
        row(
            &mut t,
            "Number of nodes per SCC",
            &DistributionStats::from_samples(&sizes, 1.0),
        );
    }
    row(&mut t, "II - MII", &stats(&|m| m.delta_ii() as f64, 0.0));
    row(
        &mut t,
        "II / MII",
        &stats(&|m| m.ii as f64 / m.mii as f64, 1.0),
    );
    row(
        &mut t,
        "Schedule length (ratio)",
        &stats(
            &|m| m.schedule_length as f64 / m.schedule_length_lower.max(1) as f64,
            1.0,
        ),
    );
    {
        let ratios: Vec<f64> = executed
            .iter()
            .map(|m| m.execution_time() as f64 / m.execution_time_lower().max(1) as f64)
            .collect();
        row(
            &mut t,
            "Execution time (ratio)",
            &DistributionStats::from_samples(&ratios, 1.0),
        );
    }
    row(
        &mut t,
        "Number of nodes scheduled (ratio)",
        &stats(&|m| m.final_steps as f64 / m.n_ops.max(1) as f64, 1.0),
    );
    print!("{}", t.render());

    // ----- Prose claims of §4.2 -----
    println!("\nProse claims (paper figure in brackets):");
    let frac = |pred: &dyn Fn(&LoopMeasurement) -> bool| {
        ms.iter().filter(|m| pred(m)).count() as f64 / ms.len() as f64
    };
    println!(
        "  RecMII <= ResMII:                    {:.1}%  [84%]",
        100.0 * frac(&|m| m.rec_mii <= m.res_mii)
    );
    println!(
        "  loops with no non-trivial SCC:       {:.1}%  [77%]",
        100.0 * frac(&|m| m.non_trivial_sccs == 0)
    );
    let all_sizes: Vec<usize> = ms.iter().flat_map(|m| m.scc_sizes.iter().copied()).collect();
    let scc_frac = |k: usize| {
        all_sizes.iter().filter(|&&s| s <= k).count() as f64 / all_sizes.len() as f64
    };
    println!("  SCCs with 1 operation:               {:.1}%  [93%]", 100.0 * scc_frac(1));
    println!("  SCCs with <= 2 operations:           {:.1}%  [97%]", 100.0 * scc_frac(2));
    println!("  SCCs with <= 8 operations:           {:.1}%  [99%]", 100.0 * scc_frac(8));

    // ----- Prose claims of §4.3 -----
    let delta: Histogram = ms.iter().map(|m| m.delta_ii()).collect();
    println!(
        "  II = MII (optimal):                  {:.1}%  [96%]",
        100.0 * frac(&|m| m.delta_ii() == 0)
    );
    println!(
        "  DeltaII = 1: {} loops, = 2: {} loops, > 2: {} loops  [32 / 8 / 11]",
        delta.count_of(1),
        delta.count_of(2),
        delta.count_greater_than(2)
    );
    println!(
        "  ops scheduled exactly once:          {:.1}%  [90%]",
        100.0 * frac(&|m| m.final_steps == m.n_ops as u64)
    );
    let at_bound = executed
        .iter()
        .filter(|m| m.execution_time() == m.execution_time_lower())
        .count() as f64
        / executed.len().max(1) as f64;
    println!(
        "  executed loops at exec-time bound:   {:.1}%  [54%]  ({} executed loops)",
        100.0 * at_bound,
        executed.len()
    );
    let total: u64 = executed.iter().map(|m| m.execution_time()).sum();
    let total_lower: u64 = executed.iter().map(|m| m.execution_time_lower()).sum();
    println!(
        "  aggregate execution-time overhead:   {:.1}%  [2.8%]",
        100.0 * (total as f64 / total_lower.max(1) as f64 - 1.0)
    );
}
