//! Std-only scheduler micro-benchmarks (replaces the former Criterion
//! `scheduler` bench). Prints one JSON line per scenario to stdout;
//! redirect-append to a `BENCH_scheduler.json` file to accumulate a
//! trajectory. `IMS_BENCH_WARMUP` / `IMS_BENCH_ITERS` tune the iteration
//! plan (defaults 3 / 30).

use ims_bench::micro::{corpus_scaling_benches, scheduler_benches, spec_from_env};

fn main() {
    let spec = spec_from_env();
    for line in scheduler_benches(&spec) {
        println!("{line}");
    }
    for line in corpus_scaling_benches(&spec) {
        println!("{line}");
    }
}
