//! Per-probe cost of the word-parallel MRT versus the retained scan.
//!
//! The pipeline-level snapshots (`--profile`) time whole phases, which on
//! noisy machines drowns a per-probe effect in run-to-run drift. This
//! microbenchmark isolates the probe itself: it drives the *same* `Mrt`
//! state through the mask entry point ([`Mrt::conflicts`]) and the scan
//! reference ([`Mrt::conflicts_scan`] — the pre-bitset implementation,
//! kept as the §5d equivalence oracle) in one process, so the two paths
//! see identical cache and frequency conditions and the printed ratio is
//! meaningful even when absolute numbers wobble.
//!
//! Usage: `mrt_microbench [--iters N]` (default 2,000,000 probes per
//! configuration). Wall-clock only; never part of the determinism gates.

use std::hint::black_box;
use std::time::Instant;

use ims_core::Mrt;
use ims_graph::NodeId;
use ims_ir::Opcode;
use ims_machine::{cydra, Alternative, MachineBuilder, MachineModel, ReservationTable};

/// A synthetic wide machine: `nres` resources, and per opcode a few
/// alternatives whose tables occupy a contiguous band of `band` resources
/// on the issue cycle (VLIW-style issue-slot modeling, the shape where a
/// word-parallel probe collapses `band` cell checks into one AND).
fn banded(nres: u32, band: u32) -> MachineModel {
    let mut b = MachineBuilder::new(format!("banded{nres}x{band}"));
    let res: Vec<_> = (0..nres).map(|i| b.resource(format!("r{i}"))).collect();
    for op in Opcode::ALL {
        let alts: Vec<(String, ReservationTable)> = (0..nres / band)
            .map(|a| {
                let lo = (a * band) as usize;
                let uses = res[lo..lo + band as usize].iter().map(|&r| (r, 0)).collect();
                (format!("slot{a}"), ReservationTable::new(uses))
            })
            .collect();
        b.op_alts(op, 1, alts);
    }
    b.build()
}

fn main() {
    let mut iters: u64 = 2_000_000;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--iters" => {
                i += 1;
                iters = args[i].parse().expect("--iters takes a number");
            }
            other => {
                eprintln!("usage: mrt_microbench [--iters N] (got {other})");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    println!("{iters} probes per configuration");
    for m in [cydra(), banded(64, 16)] {
        bench_machine(&m, iters);
    }
}

fn bench_machine(m: &MachineModel, iters: u64) {
    let alts: Vec<&Alternative> = m.opcodes().flat_map(|(_, info)| &info.alternatives).collect();
    let footprint: usize = m
        .opcodes()
        .flat_map(|(_, info)| &info.alternatives)
        .map(|a| a.table.uses().len())
        .max()
        .unwrap_or(0);

    println!(
        "\nmachine `{}`: {} resources, {} alternatives, widest table {} uses",
        m.name(),
        m.num_resources(),
        alts.len(),
        footprint
    );
    println!(
        "{:>4} {:>10} {:>8} {:>14} {:>14} {:>8}",
        "II", "occupancy", "hit%", "scan ns/probe", "mask ns/probe", "speedup"
    );

    for (ii, fill) in [(4i64, 2usize), (8, 3), (16, 12), (32, 24), (16, 128)] {
        let mut mrt = Mrt::new(ii, m.num_resources());
        // Fill the table the way the scheduler would: walk the
        // alternatives round-robin and keep conflict-free placements.
        // Light fills exercise the miss-dominated regime FindTimeSlot
        // lives in (it probes until it finds a *free* slot, and a miss
        // must examine every table use); the heavy fill at the end shows
        // the short-circuiting hit regime.
        let mut node = 0u32;
        for (k, alt) in alts.iter().cycle().take(fill).enumerate() {
            let t = k as i64 % ii;
            if !mrt.conflicts(alt.mask(), t) {
                mrt.place(NodeId(node), alt.mask(), t);
                node += 1;
            }
        }
        let filled = (0..ii)
            .flat_map(|t| (0..m.num_resources()).map(move |r| (t, r)))
            .filter(|&(t, r)| mrt.occupant(t, r).is_some())
            .count();
        let occupancy = filled as f64 / (ii as usize * m.num_resources()) as f64;

        // Identical probe sequence for both paths, precomputed so the
        // timed loop contains nothing but the probe itself.
        let plan: Vec<(usize, i64)> = (0..4096u64)
            .map(|k| ((k % alts.len() as u64) as usize, (k % (2 * ii as u64)) as i64))
            .collect();
        let rounds = iters / plan.len() as u64;
        let total = rounds * plan.len() as u64;
        let probe = |use_mask: bool| {
            let start = Instant::now();
            let mut hits = 0u64;
            for _ in 0..rounds {
                for &(a, t) in &plan {
                    let hit = if use_mask {
                        mrt.conflicts(alts[a].mask(), t)
                    } else {
                        mrt.conflicts_scan(&alts[a].table, t)
                    };
                    hits += black_box(hit) as u64;
                }
            }
            (start.elapsed().as_nanos() as f64 / total as f64, hits)
        };
        // Interleave and keep the faster of two rounds per path, so a
        // scheduler hiccup in one round cannot bias the ratio.
        let (scan_a, h1) = probe(false);
        let (mask_a, h2) = probe(true);
        let (scan_b, h3) = probe(false);
        let (mask_b, h4) = probe(true);
        assert!(h1 == h2 && h2 == h3 && h3 == h4, "paths disagree");
        let scan = scan_a.min(scan_b);
        let mask = mask_a.min(mask_b);
        println!(
            "{:>4} {:>9.0}% {:>7.0}% {:>14.2} {:>14.2} {:>7.2}x",
            ii,
            100.0 * occupancy,
            100.0 * h1 as f64 / total as f64,
            scan,
            mask,
            scan / mask
        );
    }
}
