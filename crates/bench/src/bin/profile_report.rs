//! Renders a `BENCH_<name>.json` profile snapshot as human-readable
//! tables.
//!
//! ```text
//! profile_report FILE
//! ```
//!
//! `FILE` is a snapshot written by the corpus drivers' `--profile FILE`
//! flag (`corpus`, `optgap`, `table3`, `table4`). The report prints one
//! table per snapshot section — deterministic counters, gauges,
//! per-operation histograms, and wall-clock spans — annotating each phase
//! with its one-line description from the profiler's phase-name registry.
//!
//! Exit status: 0 on success, 1 when the snapshot is missing or
//! malformed, 2 on usage errors.

use ims_prof::phase;
use ims_prof::snapshot::Snapshot;
use ims_stats::table::{num, Table};

/// The registry description for `name`, or a placeholder for a phase this
/// build no longer registers (snapshots outlive phase registries).
fn what(name: &str) -> &'static str {
    phase::describe(name).map_or("(unregistered phase)", |d| d.what)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [path] = args.as_slice() else {
        eprintln!("usage: profile_report FILE");
        std::process::exit(2);
    };

    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("profile_report: cannot read {path}: {e}");
        std::process::exit(1);
    });
    let snap = Snapshot::parse(&text).unwrap_or_else(|e| {
        eprintln!("profile_report: malformed snapshot {path}: {e}");
        std::process::exit(1);
    });

    println!("Profile snapshot \"{}\" (schema {})\n", snap.name, snap.schema);

    if !snap.counters.is_empty() {
        println!("Deterministic counters:");
        let mut t = Table::new(vec!["Phase".into(), "Count".into(), "What it counts".into()]);
        for (name, value) in &snap.counters {
            t.row(vec![name.clone(), value.to_string(), what(name).into()]);
        }
        print!("{}", t.render());
    }

    if !snap.gauges.is_empty() {
        println!("\nGauges:");
        let mut t = Table::new(vec!["Phase".into(), "Value".into(), "What it measures".into()]);
        for (name, value) in &snap.gauges {
            t.row(vec![name.clone(), value.to_string(), what(name).into()]);
        }
        print!("{}", t.render());
    }

    if !snap.histograms.is_empty() {
        println!("\nPer-step distributions:");
        let mut t = Table::new(vec![
            "Phase".into(),
            "Count".into(),
            "Sum".into(),
            "P50".into(),
            "P90".into(),
            "P99".into(),
            "Max".into(),
        ]);
        for (name, h) in &snap.histograms {
            t.row(vec![
                name.clone(),
                h.count.to_string(),
                h.sum.to_string(),
                h.p50.to_string(),
                h.p90.to_string(),
                h.p99.to_string(),
                h.max.to_string(),
            ]);
        }
        print!("{}", t.render());
    }

    if !snap.wall.is_empty() {
        println!("\nWall-clock spans (advisory; never byte-compared):");
        let mut t = Table::new(vec![
            "Phase".into(),
            "Spans".into(),
            "Total ms".into(),
            "P50 us".into(),
            "P90 us".into(),
            "P99 us".into(),
            "Max us".into(),
        ]);
        for (name, w) in &snap.wall {
            t.row(vec![
                name.clone(),
                w.spans.to_string(),
                num(w.total_ns as f64 / 1e6, 2),
                num(w.p50_ns as f64 / 1e3, 1),
                num(w.p90_ns as f64 / 1e3, 1),
                num(w.p99_ns as f64 / 1e3, 1),
                num(w.max_ns as f64 / 1e3, 1),
            ]);
        }
        print!("{}", t.render());
    }
}
