//! Table 2: the machine model used by the scheduler in the experiments.

use ims_ir::{FuClass, Opcode};
use ims_machine::cydra;
use ims_stats::table::Table;

fn main() {
    let m = cydra();
    println!("Table 2 — machine model ({})\n", m.name());
    let mut t = Table::new(vec![
        "Functional Unit".into(),
        "Number".into(),
        "Operations".into(),
        "Latency".into(),
    ]);
    let classes = [
        (FuClass::Memory, 2),
        (FuClass::AddressAlu, 2),
        (FuClass::Adder, 1),
        (FuClass::Multiplier, 1),
        (FuClass::Instruction, 1),
    ];
    for (class, number) in classes {
        let mut first = true;
        for op in Opcode::ALL {
            if op.fu_class() != class {
                continue;
            }
            let info = m.info(op);
            t.row(vec![
                if first { class.to_string() } else { String::new() },
                if first { number.to_string() } else { String::new() },
                op.to_string(),
                info.latency.to_string(),
            ]);
            first = false;
        }
    }
    print!("{}", t.render());
    println!(
        "\nNote: store, predicate set/reset, and branch latencies are\n\
         illegible in the scanned paper; the values above (1, 1, 3) are\n\
         conventional substitutes, flagged in DESIGN.md. The legible values\n\
         (load 20, address add 3, add 4, multiply 5, divide 22, square\n\
         root 26) are used verbatim."
    );
}
