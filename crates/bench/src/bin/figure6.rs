//! Figure 6: variation of execution time and scheduling cost with the
//! parameter BudgetRatio.
//!
//! Sweeps BudgetRatio over [1.0, 4.0] in steps of 0.25 (the paper's x-axis)
//! and reports, for each value, the aggregate execution-time dilation over
//! the lower bound and the aggregate scheduling inefficiency (operation
//! scheduling steps per operation, across all II attempts). The paper's
//! findings to reproduce in shape: dilation falls monotonically and then
//! flattens; inefficiency first falls, reaches its minimum near
//! BudgetRatio ≈ 1.75–2, then creeps up; around BudgetRatio 2 both are
//! near their minima.

use ims_bench::pool::threads_from_args;
use ims_bench::{aggregate_figure6, measure_corpus_traced, parse_trace_dir};
use ims_loopgen::paper_corpus;
use ims_machine::cydra;
use ims_stats::table::{num, Table};

fn main() {
    let corpus = paper_corpus(0xC4D5);
    let machine = cydra();
    let threads = threads_from_args();
    let args: Vec<String> = std::env::args().collect();
    // With --trace DIR, every sweep point writes its own per-loop traces,
    // prefixed by the BudgetRatio (`b1.25_loop_00042.jsonl`, ...).
    let trace_dir = parse_trace_dir(&args);
    let budgets: Vec<f64> = (4..=16).map(|i| i as f64 * 0.25).collect();

    println!(
        "Figure 6 — execution-time dilation and scheduling inefficiency vs BudgetRatio"
    );
    println!("({} loops per point)\n", corpus.len());

    let mut t = Table::new(vec![
        "BudgetRatio".into(),
        "ExecTimeDilation".into(),
        "SchedInefficiency".into(),
    ]);
    let mut series = Vec::new();
    for &b in &budgets {
        eprintln!("  BudgetRatio {b:.2} ({threads} threads)...");
        let prefix = format!("b{b:.2}_");
        let ms = measure_corpus_traced(&corpus, &machine, b, threads, trace_dir.as_deref(), &prefix)
            .unwrap_or_else(|e| {
                eprintln!("figure6: cannot write traces: {e}");
                std::process::exit(1);
            });
        let (dilation, inefficiency) = aggregate_figure6(&ms);
        series.push((b, dilation, inefficiency));
        t.row(vec![num(b, 2), num(dilation, 4), num(inefficiency, 3)]);
    }
    print!("{}", t.render());

    // The paper's reading of the figure.
    let first = series.first().expect("non-empty sweep");
    let last = series.last().expect("non-empty sweep");
    let min_ineff = series
        .iter()
        .cloned()
        .min_by(|a, b| a.2.partial_cmp(&b.2).expect("finite"))
        .expect("non-empty sweep");
    println!("\nReadings (paper figures in brackets):");
    println!(
        "  dilation at BudgetRatio 1:    {:.2}%   [5.2%]",
        100.0 * first.1
    );
    println!(
        "  dilation at BudgetRatio 4:    {:.2}%   [~2.8-2.9%]",
        100.0 * last.1
    );
    println!(
        "  minimum inefficiency:         {:.3} at BudgetRatio {:.2}   [~1.55 at 1.75]",
        min_ineff.2, min_ineff.0
    );
    let at2 = series
        .iter()
        .find(|(b, _, _)| (*b - 2.0).abs() < 1e-9)
        .expect("2.0 is in the sweep");
    println!(
        "  at BudgetRatio 2:             dilation {:.2}% , inefficiency {:.3}   [2.8%, 1.59]",
        100.0 * at2.1,
        at2.2
    );
}
