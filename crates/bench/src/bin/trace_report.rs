//! Renders per-loop convergence reports from a `--trace` directory.
//!
//! ```text
//! trace_report DIR [--top K]
//! ```
//!
//! Reads every `*.jsonl` event trace under `DIR` (as written by the
//! corpus binaries' `--trace` flag), summarizes each with
//! [`ims_trace::TraceSummary`], and prints an aggregate convergence
//! picture followed by the `K` (default 10) loops that wasted the most
//! scheduling budget on failed II attempts — the loops worth staring at
//! when tuning BudgetRatio or the priority function.
//!
//! Truncated or damaged traces (a killed run, a half-flushed file) are
//! summarized from their longest well-formed prefix and flagged
//! `(truncated)` rather than aborting the whole report; an attempt the
//! trace ends inside is reported as unresolved (`II…`), never as a bogus
//! success or failure.

use ims_trace::{parse_trace_prefix, TraceSummary};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let Some(dir) = args.get(1).filter(|a| !a.starts_with("--")) else {
        eprintln!("usage: trace_report DIR [--top K]");
        std::process::exit(2);
    };
    let top: usize = args
        .iter()
        .position(|a| a == "--top")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);

    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| {
            eprintln!("trace_report: cannot read {dir}: {e}");
            std::process::exit(1);
        })
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "jsonl"))
        .collect();
    entries.sort();

    let mut summaries = Vec::with_capacity(entries.len());
    let mut truncated = 0usize;
    for path in &entries {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("trace_report: cannot read {}: {e}", path.display());
            std::process::exit(1);
        });
        let (events, complete) = parse_trace_prefix(&text);
        if !complete {
            truncated += 1;
            eprintln!(
                "trace_report: truncated trace {} ({} events recovered)",
                path.display(),
                events.len()
            );
        }
        let label = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("?")
            .to_string();
        summaries.push((label, TraceSummary::from_events(&events)));
    }
    if summaries.is_empty() {
        eprintln!("trace_report: no .jsonl traces under {dir}");
        std::process::exit(1);
    }

    let loops = summaries.len();
    let first_try = summaries
        .iter()
        .filter(|(_, s)| s.attempts.len() == 1 && s.final_ii().is_some())
        .count();
    let converged = summaries.iter().filter(|(_, s)| s.final_ii().is_some()).count();
    let max_attempts = summaries.iter().map(|(_, s)| s.attempts.len()).max().unwrap_or(0);
    let total_steps: u64 = summaries.iter().map(|(_, s)| s.total_steps()).sum();
    let wasted_steps: u64 = summaries.iter().map(|(_, s)| s.wasted_steps()).sum();
    let evictions: u64 = summaries.iter().map(|(_, s)| s.evictions).sum();
    let slots: u64 = summaries.iter().map(|(_, s)| s.slots_examined).sum();

    println!("trace report — {loops} loops");
    println!(
        "  converged {converged}/{loops}, at the first candidate II {first_try} \
         ({:.1}%), worst case {max_attempts} attempts",
        100.0 * first_try as f64 / loops as f64
    );
    println!(
        "  {total_steps} scheduling steps ({wasted_steps} wasted on failed attempts, \
         {:.1}%), {evictions} evictions, {slots} slots examined",
        100.0 * wasted_steps as f64 / total_steps.max(1) as f64
    );
    if truncated > 0 {
        println!("  {truncated} truncated trace(s) summarized from their well-formed prefix");
    }

    summaries.sort_by(|a, b| {
        b.1.wasted_steps()
            .cmp(&a.1.wasted_steps())
            .then_with(|| b.1.evictions.cmp(&a.1.evictions))
            .then_with(|| a.0.cmp(&b.0))
    });
    println!("\nhardest loops (by wasted steps):");
    for (label, s) in summaries.iter().take(top) {
        println!("  {}", s.render_line(label));
    }
}
