//! Corpus-wide II attribution and budget forensics.
//!
//! For every corpus loop the driver answers two questions with evidence:
//! *why is the MII what it is* (the saturated resource or the critical
//! recurrence circuit, from `ims-explain`'s [`attribute_mii`]), and
//! *where did the scheduling budget go* (per-attempt waste, the eviction
//! graph, slot-search effort — mined from the scheduler's own event
//! stream). The per-loop JSON lines, the aggregate line and the top-K
//! pathological-loop digest are byte-identical across `--threads` values.
//!
//! ```text
//! explain [--seed H] [--loops N] [--threads T] [--budget-ratio R]
//!         [--top K] [--max-circuits C] [--trace DIR] [--from-trace DIR]
//!         [--optgap FILE] [--profile FILE]
//! ```
//!
//! Defaults: 300 loops at seed `0xC4D5` (the optgap corpus), BudgetRatio
//! 6, top-10 digest, 10 000-circuit enumeration cap per binding SCC.
//!
//! Two event sources, one analyzer:
//!
//! * by default each loop is scheduled in-process and the observer's
//!   event stream is mined directly — no trace files needed. The mined
//!   totals are checked against the scheduler's deterministic
//!   [`Counters`] (evictions, `FindTimeSlot` iterations, steps) and any
//!   mismatch aborts with exit 1: the report is *proved* consistent with
//!   the run it describes.
//! * `--from-trace DIR` re-analyzes a previously written trace directory
//!   (`loop_00042.jsonl`, …) instead of scheduling. Because the JSONL
//!   encoding is lossless, stdout is byte-identical to the in-process
//!   run that wrote the traces. Truncated traces are mined from their
//!   well-formed prefix.
//!
//! `--trace DIR` writes the event stream out while analyzing (the files
//! a later `--from-trace` run consumes). `--optgap FILE` joins each loop
//! against the proved `exact_lb`/`exact_ub` bounds in an `optgap` run's
//! saved stdout, adding the true optimality gap to the report.
//! `--profile FILE` writes a `BENCH_explain.json` snapshot whose
//! deterministic sections (the `explain.*` counters among them) are
//! byte-identical across `--threads` values.

use ims_bench::profile::{flush_counters, parse_profile_path, write_profile};
use ims_bench::{parse_trace_dir, pool};
use ims_core::{Counters, SchedConfig, Scheduler};
use ims_deps::{back_substitute, build_problem, BuildOptions};
use ims_explain::{attribute_mii, parse_optgap_bounds, CorpusStats, LoopReport, MiiBound, TraceMine};
use ims_loopgen::corpus_of_size;
use ims_machine::cydra;
use ims_prof::{phase, MetricsRegistry, PhaseTimer};
use ims_trace::{parse_trace_prefix, Recorder, SchedEvent};

fn flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == name {
            if let Some(v) = it.next().and_then(|v| v.parse().ok()) {
                return v;
            }
        } else if let Some(v) = a.strip_prefix(name).and_then(|r| r.strip_prefix('=')) {
            if let Ok(v) = v.parse() {
                return v;
            }
        }
    }
    default
}

/// `--NAME PATH` or `--NAME=PATH`, the way [`parse_trace_dir`] handles
/// `--trace`.
fn path_flag(args: &[String], name: &str) -> Option<std::path::PathBuf> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == name {
            return it.next().map(std::path::PathBuf::from);
        }
        if let Some(v) = a.strip_prefix(name).and_then(|r| r.strip_prefix('=')) {
            return Some(std::path::PathBuf::from(v));
        }
    }
    None
}

/// Closes a span into the registry when profiling, discards it otherwise.
fn span_end(t: PhaseTimer, reg: &mut Option<MetricsRegistry>) {
    match reg.as_mut() {
        Some(r) => {
            t.finish(r);
        }
        None => t.cancel(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed: u64 = flag(&args, "--seed", 0xC4D5);
    let loops: usize = flag(&args, "--loops", 300);
    let budget_ratio: f64 = flag(&args, "--budget-ratio", 6.0);
    let top: usize = flag(&args, "--top", 10);
    let max_circuits: usize = flag(&args, "--max-circuits", 10_000);
    let threads = pool::threads_or_exit(&args);
    let trace_dir = parse_trace_dir(&args);
    let from_trace = path_flag(&args, "--from-trace");
    let optgap_path = path_flag(&args, "--optgap");
    let profile_path = parse_profile_path(&args);

    if trace_dir.is_some() && from_trace.is_some() {
        eprintln!("explain: --trace writes what --from-trace reads; pick one");
        std::process::exit(2);
    }
    if let Some(dir) = &trace_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("explain: cannot create trace directory {}: {e}", dir.display());
            std::process::exit(1);
        }
    }
    let bounds = match &optgap_path {
        Some(p) => match std::fs::read_to_string(p) {
            Ok(text) => Some(parse_optgap_bounds(&text)),
            Err(e) => {
                eprintln!("explain: cannot read optgap output {}: {e}", p.display());
                std::process::exit(1);
            }
        },
        None => None,
    };

    let corpus = corpus_of_size(seed, loops);
    let machine = cydra();
    let config = SchedConfig::with_budget_ratio(budget_ratio);
    let profiling = profile_path.is_some();
    let tracing = trace_dir.is_some();

    let t0 = std::time::Instant::now();
    let results: Vec<(LoopReport, bool, Option<String>, Option<MetricsRegistry>)> =
        pool::par_map(&corpus.loops, threads, |index, l| {
            let mut reg = profiling.then(MetricsRegistry::new);
            let label = format!("loop_{index:05}");

            let whole = PhaseTimer::start(phase::WALL_LOOP);
            let t = PhaseTimer::start(phase::WALL_BUILD);
            let body = back_substitute(&l.body, &machine);
            let problem = build_problem(&body, &machine, &BuildOptions::default());
            span_end(t, &mut reg);

            let mut consistent = true;
            let events: Vec<SchedEvent> = match &from_trace {
                Some(dir) => {
                    let text = std::fs::read_to_string(dir.join(format!("{label}.jsonl")))
                        .unwrap_or_default();
                    // Truncated or damaged traces contribute their
                    // well-formed prefix, like trace_report.
                    parse_trace_prefix(&text).0
                }
                None => {
                    let t = PhaseTimer::start(phase::WALL_SCHED);
                    let mut rec = Recorder::new();
                    let out = Scheduler::new(&problem)
                        .config(config.clone())
                        .observer(&mut rec)
                        .run()
                        .expect("corpus loops always schedule under the automatic II cap");
                    span_end(t, &mut reg);
                    // Exact-match accounting: what the trace says happened
                    // must be what the scheduler's counters say happened.
                    let mined = TraceMine::from_events(&rec.events);
                    consistent = mined.summary.evictions == out.stats.counters.evictions
                        && mined.summary.slots_examined == out.stats.counters.findslot_iters
                        && mined.summary.total_steps() == out.stats.total_steps()
                        && mined.summary.final_ii() == Some(out.schedule.ii);
                    if let Some(r) = reg.as_mut() {
                        flush_counters(&out.stats.counters, r);
                        r.add(phase::SCHED_STEPS, out.stats.total_steps());
                    }
                    rec.events
                }
            };

            let mut counters = Counters::new();
            let attribution = attribute_mii(&problem, max_circuits, &mut counters);
            let mine = TraceMine::from_events(&events);
            let report = LoopReport {
                label,
                ops: problem.num_ops(),
                attribution,
                mine,
                bounds: bounds.as_ref().and_then(|b| b.get(&index).copied()),
            };

            if let Some(r) = reg.as_mut() {
                flush_counters(&counters, r);
                r.add(phase::CORPUS_LOOPS, 1);
                r.add(phase::CORPUS_OPS, problem.num_ops() as u64);
                r.add(phase::EXPLAIN_LOOPS, 1);
                r.add(
                    match report.attribution.bound {
                        MiiBound::Resource => phase::EXPLAIN_BOUND_RES,
                        MiiBound::Recurrence => phase::EXPLAIN_BOUND_REC,
                        MiiBound::Tie => phase::EXPLAIN_BOUND_BOTH,
                    },
                    1,
                );
                if report.mii_gap().unwrap_or(0) > 0 {
                    r.add(phase::EXPLAIN_GAP_LOOPS, 1);
                }
                r.add(phase::EXPLAIN_WASTED_STEPS, report.mine.summary.wasted_steps());
                if report.attribution.rec.circuits_truncated {
                    r.add(phase::EXPLAIN_CIRCUITS_TRUNCATED, 1);
                }
            }
            span_end(whole, &mut reg);

            let trace = tracing.then(|| {
                let mut text = String::new();
                for ev in &events {
                    text.push_str(&ev.to_json_line());
                    text.push('\n');
                }
                text
            });
            (report, consistent, trace, reg)
        });
    let elapsed = t0.elapsed();

    let mut reports = Vec::with_capacity(results.len());
    let mut total = MetricsRegistry::new();
    for (index, (report, consistent, trace, reg)) in results.into_iter().enumerate() {
        if !consistent {
            eprintln!(
                "explain: loop_{index:05}: mined totals disagree with scheduler counters \
                 (trace/observer accounting bug)"
            );
            std::process::exit(1);
        }
        if let (Some(dir), Some(trace)) = (&trace_dir, trace) {
            if let Err(e) = std::fs::write(dir.join(format!("loop_{index:05}.jsonl")), trace) {
                eprintln!("explain: cannot write traces: {e}");
                std::process::exit(1);
            }
        }
        if let Some(reg) = reg {
            total.merge(&reg);
        }
        reports.push(report);
    }
    if let Some(p) = &profile_path {
        if let Err(e) = write_profile(p, "explain", &total) {
            eprintln!("explain: cannot write profile {}: {e}", p.display());
            std::process::exit(1);
        }
    }

    let mut stats = CorpusStats::default();
    let mut out = String::with_capacity(reports.len() * 200);
    for report in &reports {
        stats.add(report, &machine);
        out.push_str(&report.to_json_line(&machine));
        out.push('\n');
    }
    out.push_str(&stats.to_json_line(top));
    out.push('\n');

    let (top_wasted, wasted_total) = stats.concentration(top);
    out.push_str(&format!("== top {top} loops by wasted budget ==\n"));
    for (label, _) in stats.top_wasted(top) {
        let report = reports
            .iter()
            .find(|r| r.label == label)
            .expect("top_wasted labels come from reports");
        out.push_str(&report.render_text(&machine));
    }
    print!("{out}");

    let share = if wasted_total == 0 {
        0.0
    } else {
        100.0 * top_wasted as f64 / wasted_total as f64
    };
    eprintln!(
        "explain: {} loops ({} res / {} rec / {} tie bound, {} above MII) in {:.1} ms \
         on {} thread{}; top-{top} loops hold {:.1}% of {} wasted steps",
        stats.loops,
        stats.res_bound,
        stats.rec_bound,
        stats.tie_bound,
        stats.gap_loops,
        elapsed.as_secs_f64() * 1e3,
        threads,
        if threads == 1 { "" } else { "s" },
        share,
        wasted_total,
    );
    if let Some(p) = &profile_path {
        eprintln!("profile snapshot written to {}", p.display());
    }
}
