//! Figure 1: reservation tables for a pipelined add and multiply.
//!
//! Prints the Cydra-5-like machine's reservation tables in the grid layout
//! of the paper's Figure 1 and demonstrates the collision narrative of
//! §2.1 ("an add may not be issued [so many] cycles after a multiply since
//! this will result in a collision on the result bus").

use ims_ir::Opcode;
use ims_machine::{figure1_machine, MachineModel, ReservationTable};

fn print_table(machine: &MachineModel, name: &str, table: &ReservationTable) {
    println!("({name})  [{} reservation table]", table.class());
    let max_t = table.max_offset();
    // Columns: the resources this table touches, in id order.
    let mut resources: Vec<_> = table.uses().iter().map(|&(r, _)| r).collect();
    resources.sort();
    resources.dedup();
    print!("{:>6} |", "time");
    for r in &resources {
        print!(" {:^12} |", machine.resource(*r).name);
    }
    println!();
    for t in 0..=max_t {
        print!("{t:>6} |");
        for r in &resources {
            let used = table.uses().contains(&(*r, t));
            print!(" {:^12} |", if used { "X" } else { "" });
        }
        println!();
    }
    println!();
}

fn main() {
    let m = figure1_machine();
    println!("Figure 1 — reservation tables (machine: {})\n", m.name());
    let add = &m.info(Opcode::Add).alternatives[0].table;
    let mul = &m.info(Opcode::Mul).alternatives[0].table;
    print_table(&m, "a: pipelined add", add);
    print_table(&m, "b: pipelined multiply", mul);

    println!("Collision analysis (multiply issued at cycle 0, add at cycle k):");
    for k in 0..=3 {
        let collides = mul.collides_at(add, k);
        println!(
            "  add at +{k}: {}",
            if collides { "COLLIDES" } else { "ok" }
        );
    }
    println!(
        "\nAs in the paper: the add and multiply share the source buses (cycle 0)\n\
         and the result bus (their last execution cycle), so an add cannot issue\n\
         on the same cycle as a multiply, nor late enough for their result-bus\n\
         uses to coincide."
    );
}
