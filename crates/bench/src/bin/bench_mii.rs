//! Std-only MII/priority micro-benchmarks (replaces the former Criterion
//! `mii` bench). Prints one JSON line per scenario to stdout;
//! redirect-append to a `BENCH_mii.json` file to accumulate a trajectory.
//! `IMS_BENCH_WARMUP` / `IMS_BENCH_ITERS` tune the iteration plan
//! (defaults 3 / 30).

use ims_bench::micro::{mii_benches, spec_from_env};

fn main() {
    for line in mii_benches(&spec_from_env()) {
        println!("{line}");
    }
}
