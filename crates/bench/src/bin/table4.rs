//! Table 4: computational complexity of the sub-activities of iterative
//! modulo scheduling — worst case vs. empirical least-mean-square fits.
//!
//! §4.4 fits each sub-activity's measured inner-loop trip count against N
//! (the number of operations): E ≈ 3.0036·N, MinDist ≈ 11.9133·N + 3.05
//! (with a large residual — the work is largely uncorrelated with N),
//! HeightR ≈ 4.5021·N, Estart ≈ 3.3321·N, FindTimeSlot ≈ 0.0587·N² +
//! 0.2001·N + 0.5. The conclusion to reproduce: every sub-activity is
//! empirically O(N) except the scheduler's slot search, which is O(N²), so
//! iterative modulo scheduling is empirically O(N²) overall.

use ims_bench::pool::threads_from_args;
use ims_bench::profile::{measure_corpus_profiled, parse_profile_path, write_profile};
use ims_bench::{measure_corpus_traced, parse_trace_dir};
use ims_core::BackendKind;
use ims_loopgen::paper_corpus;
use ims_machine::cydra;
use ims_stats::table::Table;
use ims_stats::{linear_fit_through_origin, polyfit};

fn main() {
    let corpus = paper_corpus(0xC4D5);
    let threads = threads_from_args();
    eprintln!(
        "scheduling {} loops (BudgetRatio = 6, {threads} threads)...",
        corpus.len()
    );
    let args: Vec<String> = std::env::args().collect();
    let trace_dir = parse_trace_dir(&args);
    let ms = if let Some(profile_path) = parse_profile_path(&args) {
        let (ms, reg) = measure_corpus_profiled(
            &corpus,
            &cydra(),
            BackendKind::Ims,
            6.0,
            None,
            threads,
            trace_dir.as_deref(),
            "",
        )
        .unwrap_or_else(|e| {
            eprintln!("table4: cannot write traces: {e}");
            std::process::exit(1);
        });
        write_profile(&profile_path, "table4", &reg).unwrap_or_else(|e| {
            eprintln!("table4: cannot write profile {}: {e}", profile_path.display());
            std::process::exit(1);
        });
        ms
    } else {
        measure_corpus_traced(&corpus, &cydra(), 6.0, threads, trace_dir.as_deref(), "")
            .unwrap_or_else(|e| {
                eprintln!("table4: cannot write traces: {e}");
                std::process::exit(1);
            })
    };

    let ns: Vec<f64> = ms.iter().map(|m| m.n_ops as f64).collect();
    let fit1 = |ys: &[f64]| {
        linear_fit_through_origin(&ns, ys).expect("corpus has non-degenerate N values")
    };

    println!("Table 4 — computational complexity per sub-activity\n");
    let mut t = Table::new(vec![
        "Activity".into(),
        "Worst-case".into(),
        "Empirical fit".into(),
        "Paper's fit".into(),
    ]);

    let es: Vec<f64> = ms.iter().map(|m| m.n_edges as f64).collect();
    let e_fit = fit1(&es);
    t.row(vec![
        "Dependence edges E".into(),
        "O(N^2)".into(),
        format!("{e_fit}"),
        "3.0036N".into(),
    ]);

    let scc: Vec<f64> = ms.iter().map(|m| m.counters.scc_work as f64).collect();
    t.row(vec![
        "SCC identification".into(),
        "O(N+E)".into(),
        format!("{}", fit1(&scc)),
        "O(N)".into(),
    ]);

    let resmii: Vec<f64> = ms.iter().map(|m| m.counters.resmii_work as f64).collect();
    t.row(vec![
        "ResMII calculation".into(),
        "O(N)".into(),
        format!("{}", fit1(&resmii)),
        "O(N)".into(),
    ]);

    let mindist: Vec<f64> = ms.iter().map(|m| m.counters.mindist_work as f64).collect();
    let md_fit = polyfit(&ns, &mindist, 1).expect("non-degenerate");
    t.row(vec![
        "MII calculation (MinDist inner loop)".into(),
        "O(N^3) per SCC".into(),
        format!("{md_fit} (resid sd {:.1})", md_fit.residual_stddev),
        "11.9133N + 3.05 (resid sd 1842.7)".into(),
    ]);

    let hr: Vec<f64> = ms.iter().map(|m| m.counters.heightr_work as f64).collect();
    t.row(vec![
        "HeightR calculation".into(),
        "O(NE)".into(),
        format!("{}", fit1(&hr)),
        "4.5021N".into(),
    ]);

    let es_w: Vec<f64> = ms.iter().map(|m| m.counters.estart_preds as f64).collect();
    t.row(vec![
        "Iterative scheduling: Estart".into(),
        "NP-complete overall".into(),
        format!("{}", fit1(&es_w)),
        "3.3321N".into(),
    ]);

    let fs: Vec<f64> = ms.iter().map(|m| m.counters.findslot_iters as f64).collect();
    let fs_fit = polyfit(&ns, &fs, 2).expect("non-degenerate");
    t.row(vec![
        "Iterative scheduling: FindTimeSlot".into(),
        "NP-complete overall".into(),
        format!("{fs_fit}"),
        "0.0587N^2 + 0.2001N + 0.5".into(),
    ]);
    print!("{}", t.render());

    // Is the quadratic term real? Compare against the linear-only fit.
    let fs_lin = polyfit(&ns, &fs, 1).expect("non-degenerate");
    println!(
        "\nFindTimeSlot residual: quadratic fit sd {:.1} vs linear fit sd {:.1} \
         (the quadratic term should reduce the residual, as in the paper)",
        fs_fit.residual_stddev, fs_lin.residual_stddev
    );
    println!(
        "\nConclusion check: every sub-activity is empirically ~linear in N except\n\
         the slot search, so iterative modulo scheduling is empirically O(N^2)."
    );
}
