//! The §4.3 comparison: iterative modulo scheduling vs.
//! "unroll-before-scheduling".
//!
//! For each corpus loop, the unroll-before-scheduling baseline unrolls the
//! body U times and list-schedules the unrolled body acyclically; the
//! back-edge remains a scheduling barrier, so its effective initiation
//! interval is `schedule_length(unrolled) / U`. The paper's claim: to be
//! competitive with iterative modulo scheduling (within 2.8% of the
//! execution-time bound), such schemes must not expand the code beyond
//! ~2.18× the loop body — while in practice *"unroll-before-scheduling
//! schemes typically unroll the loop body many tens of times"*.
//!
//! This binary measures the effective II of the unrolled baseline at
//! U ∈ {1, 2, 4, 8, 16} against the modulo scheduler's II, along with the
//! code-size expansion each needs.

use ims_core::{list_schedule, modulo_schedule, SchedConfig};
use ims_deps::{back_substitute, build_problem, unroll, BuildOptions};
use ims_loopgen::corpus_of_size;
use ims_machine::cydra;
use ims_stats::table::{num, Table};

fn main() {
    let machine = cydra();
    let corpus = corpus_of_size(0xC4D5, 300);
    let factors = [1u32, 2, 4, 8, 16];

    // Per-loop modulo II, and per-factor unrolled effective II.
    let mut modulo_total = 0f64;
    let mut unrolled_totals = vec![0f64; factors.len()];
    let mut kernel_ops_modulo = 0usize;
    let mut wins = vec![0usize; factors.len()];
    let mut count = 0usize;

    for l in &corpus.loops {
        let body = back_substitute(&l.body, &machine);
        let problem = build_problem(&body, &machine, &BuildOptions::default());
        let out = match modulo_schedule(&problem, &SchedConfig::with_budget_ratio(6.0)) {
            Ok(o) => o,
            Err(_) => continue,
        };
        count += 1;
        modulo_total += out.schedule.ii as f64;
        // Modulo scheduling's code size: the kernel is the loop body (plus
        // MVE unrolling where rotating registers are absent; the paper's
        // 2.18x figure includes scheduling effort, not MVE copies).
        kernel_ops_modulo += problem.num_ops();

        for (fi, &u) in factors.iter().enumerate() {
            let unrolled = unroll(&body, u);
            let up = build_problem(&unrolled, &machine, &BuildOptions::default());
            let sl = list_schedule(&up).length;
            let eff = sl as f64 / u as f64;
            unrolled_totals[fi] += eff;
            if out.schedule.ii as f64 <= eff {
                wins[fi] += 1;
            }
        }
    }

    println!(
        "Unroll-before-scheduling vs iterative modulo scheduling ({count} loops)\n"
    );
    let mut t = Table::new(vec![
        "scheme".into(),
        "mean effective II".into(),
        "vs modulo".into(),
        "code size".into(),
        "modulo wins/ties".into(),
    ]);
    let modulo_mean = modulo_total / count as f64;
    t.row(vec![
        "modulo scheduling".into(),
        num(modulo_mean, 2),
        "1.00x".into(),
        "1x body".into(),
        "-".into(),
    ]);
    for (fi, &u) in factors.iter().enumerate() {
        let mean = unrolled_totals[fi] / count as f64;
        t.row(vec![
            format!("unroll x{u} + list schedule"),
            num(mean, 2),
            format!("{:.2}x", mean / modulo_mean),
            format!("{u}x body"),
            format!("{}/{}", wins[fi], count),
        ]);
    }
    print!("{}", t.render());
    let _ = kernel_ops_modulo;
    println!(
        "\nThe unrolled baseline pays the back-edge drain every U iterations;\n\
         its effective II approaches the modulo II only as the unroll factor\n\
         (and code size) grows — the paper's 2.18x break-even argument (§4.3)."
    );
}
