//! The parallel corpus-scheduling driver.
//!
//! Schedules an entire corpus across a worker pool and emits one
//! deterministic JSON line per loop (plus one aggregate line) on stdout.
//! The stdout stream is **byte-identical for every `--threads` value** —
//! only the stderr timing summary differs — which `scripts/verify.sh`
//! checks on every run.
//!
//! ```text
//! corpus [--seed H] [--loops N] [--budget R] [--threads T] [--trace DIR]
//!        [--backend ims|exact|sat] [--deadline-ms D] [--wall] [--profile FILE]
//!        [--pressure-limit N]
//! ```
//!
//! Defaults: the paper's 1327-loop corpus at seed `0xC4D5`, BudgetRatio 6,
//! one worker per available core, the iterative (`ims`) backend. With
//! `--trace DIR` (iterative backend only), one JSON-lines event trace per
//! loop is written under `DIR` (`loop_00042.jsonl`, …) — also
//! byte-identical across thread counts; render them with the
//! `trace_report` binary.
//!
//! `--backend exact` proves II optimality per loop by branch-and-bound
//! and `--backend sat` by CDCL search over the modulo-scheduling CNF
//! encoding (both adding `proved_lb`/`best_ub`/`limit_hit` to each JSON
//! line); `--deadline-ms D` meters the search as a deterministic work
//! budget — `D × NODES_PER_MS` branch-and-bound nodes or
//! `D × CONFLICTS_PER_MS` CDCL conflicts per loop (0 = unlimited) — so
//! the output stays byte-identical across runs and thread counts.
//! Portfolio specs belong to the service driver (`scheduled`), not this
//! per-loop harness; they exit 2 here. `--wall` appends the
//! (non-deterministic) per-loop `wall_ns` timing to each line.
//!
//! `--pressure-limit N` (iterative backend only) schedules the same
//! corpus against the `cydra_rf(N)` machine variant — the Cydra 5 model
//! with an `N`-register rotating file — enforcing MaxLive ≤ N and a
//! fitting rotating allocation through `ims-press`. Each JSON line gains
//! `press_limit`/`press_ok`/`max_live`/`rot_size`; loops infeasible even
//! at the II cap fall back to their pressure-blind schedule with
//! `press_ok:false`. Incompatible with `--trace` (exit 2).
//!
//! `--profile FILE` additionally profiles every pipeline phase (including
//! code generation and VLIW simulation, which only run under this flag)
//! and writes a versioned `BENCH_<name>.json` snapshot to `FILE`. The
//! JSON lines on stdout — and any `--trace` files — are byte-identical
//! with and without profiling, and the snapshot's deterministic sections
//! are byte-identical across `--threads` values; only its wall section
//! varies. Compare snapshots with `benchdiff`, render them with
//! `profile_report`.

use ims_bench::pool::{backend_or_exit, pressure_or_exit, threads_or_exit};
use ims_bench::profile::{
    measure_corpus_pressure_profiled, measure_corpus_profiled, parse_profile_path, write_profile,
};
use ims_bench::{
    conflict_budget_for_ms, corpus_jsonl_opts, measure_corpus_backend, measure_corpus_pressure,
    measure_corpus_traced, node_budget_for_ms, parse_trace_dir,
};
use ims_core::{BackendKind, BackendSpec};
use ims_loopgen::corpus_of_size;
use ims_machine::{cydra, cydra_rf};

fn flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == name {
            if let Some(v) = it.next().and_then(|v| v.parse().ok()) {
                return v;
            }
        } else if let Some(v) = a.strip_prefix(name).and_then(|r| r.strip_prefix('=')) {
            if let Ok(v) = v.parse() {
                return v;
            }
        }
    }
    default
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed: u64 = flag(&args, "--seed", 0xC4D5);
    let loops: usize = flag(&args, "--loops", 1327);
    let budget: f64 = flag(&args, "--budget", 6.0);
    let deadline_ms: u64 = flag(&args, "--deadline-ms", 5000);
    let with_wall = args.iter().any(|a| a == "--wall");
    let threads = threads_or_exit(&args);
    let trace_dir = parse_trace_dir(&args);
    let profile_path = parse_profile_path(&args);

    // This harness measures one backend per loop; portfolio racing lives
    // in the service driver, where the members share a cache entry.
    let spec = backend_or_exit(&args, BackendSpec::default());
    let Some(backend) = spec.as_leaf() else {
        eprintln!("corpus: --backend {spec} is not supported here (expected a leaf: ims, exact, or sat)");
        std::process::exit(2);
    };
    if trace_dir.is_some() && backend != BackendKind::Ims {
        eprintln!("corpus: --trace is only supported with --backend ims");
        std::process::exit(2);
    }
    let pressure_limit = pressure_or_exit(&args);
    if pressure_limit.is_some() && backend != BackendKind::Ims {
        eprintln!("corpus: --pressure-limit is only supported with --backend ims");
        std::process::exit(2);
    }
    if pressure_limit.is_some() && trace_dir.is_some() {
        eprintln!("corpus: --pressure-limit cannot be combined with --trace");
        std::process::exit(2);
    }
    let work_limit = match backend {
        BackendKind::Sat => conflict_budget_for_ms(deadline_ms),
        _ => node_budget_for_ms(deadline_ms),
    };

    let corpus = corpus_of_size(seed, loops);
    // A pressure limit names a register-file capacity, so it also selects
    // the machine variant that declares that capacity.
    let machine = match pressure_limit {
        Some(limit) => cydra_rf(limit),
        None => cydra(),
    };
    let t0 = std::time::Instant::now();
    let ms = if let Some(limit) = pressure_limit {
        if let Some(profile_path) = &profile_path {
            let (ms, reg) =
                measure_corpus_pressure_profiled(&corpus, &machine, budget, limit, threads);
            write_profile(profile_path, "corpus", &reg).unwrap_or_else(|e| {
                eprintln!("corpus: cannot write profile {}: {e}", profile_path.display());
                std::process::exit(1);
            });
            ms
        } else {
            measure_corpus_pressure(&corpus, &machine, budget, limit, threads)
        }
    } else if let Some(profile_path) = &profile_path {
        let (ms, reg) = measure_corpus_profiled(
            &corpus,
            &machine,
            backend,
            budget,
            work_limit,
            threads,
            trace_dir.as_deref(),
            "",
        )
        .unwrap_or_else(|e| {
            eprintln!("corpus: cannot write traces: {e}");
            std::process::exit(1);
        });
        write_profile(profile_path, "corpus", &reg).unwrap_or_else(|e| {
            eprintln!("corpus: cannot write profile {}: {e}", profile_path.display());
            std::process::exit(1);
        });
        ms
    } else {
        match backend {
            BackendKind::Ims => {
                measure_corpus_traced(&corpus, &machine, budget, threads, trace_dir.as_deref(), "")
                    .unwrap_or_else(|e| {
                        eprintln!("corpus: cannot write traces: {e}");
                        std::process::exit(1);
                    })
            }
            BackendKind::Exact | BackendKind::Sat => measure_corpus_backend(
                &corpus,
                &machine,
                backend,
                budget,
                work_limit,
                threads,
            ),
        }
    };
    let elapsed = t0.elapsed();

    print!("{}", corpus_jsonl_opts(&ms, with_wall));
    eprintln!(
        "scheduled {} loops ({}) in {:.1} ms on {} thread{} ({:.1} loops/ms)",
        ms.len(),
        backend,
        elapsed.as_secs_f64() * 1e3,
        threads,
        if threads == 1 { "" } else { "s" },
        ms.len() as f64 / (elapsed.as_secs_f64() * 1e3),
    );
    if let Some(p) = &profile_path {
        eprintln!("profile snapshot written to {}", p.display());
    }
}
