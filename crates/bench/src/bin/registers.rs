//! Register requirements of modulo-scheduled loops (extension).
//!
//! The paper defers register allocation to its companion work (Rau et al.,
//! "Register allocation for software pipelined loops", cited as \[35\], and
//! Huff's lifetime-sensitive scheduling \[18\]), but the quantities involved
//! fall out of this implementation directly: per-value lifetimes under the
//! achieved schedule, the kernel-unroll factor modulo variable expansion
//! needs on a machine without rotating registers, and the rotating-file
//! size needed with them. This binary reports their distributions over the
//! corpus — the data a machine designer would use to size a rotating
//! register file.

use ims_codegen::{allocate_rotating, lifetimes};
use ims_core::{modulo_schedule, SchedConfig};
use ims_deps::{back_substitute, build_problem, BuildOptions};
use ims_loopgen::paper_corpus;
use ims_machine::cydra;
use ims_stats::table::{num, Table};
use ims_stats::DistributionStats;

fn main() {
    let machine = cydra();
    let corpus = paper_corpus(0xC4D5);
    eprintln!("scheduling {} loops...", corpus.len());

    let mut unrolls = Vec::new();
    let mut rotating_sizes = Vec::new();
    let mut max_names = Vec::new();
    let mut live_values = Vec::new();

    for l in &corpus.loops {
        let body = back_substitute(&l.body, &machine);
        let problem = build_problem(&body, &machine, &BuildOptions::default());
        let Ok(out) = modulo_schedule(&problem, &SchedConfig::with_budget_ratio(6.0)) else {
            continue;
        };
        let lts = lifetimes(&body, &problem, &out.schedule);
        if lts.is_empty() {
            continue;
        }
        let k = lts.iter().map(|t| t.names).max().unwrap_or(1);
        unrolls.push(k as f64);
        max_names.push(lts.iter().map(|t| t.names).max().unwrap_or(1) as f64);
        live_values.push(lts.len() as f64);
        let alloc = allocate_rotating(&body, &lts, out.schedule.ii);
        rotating_sizes.push(alloc.size as f64);
    }

    println!(
        "Register requirements across {} scheduled loops\n",
        unrolls.len()
    );
    let mut t = Table::new(vec![
        "quantity".into(),
        "median".into(),
        "mean".into(),
        "max".into(),
    ]);
    let mut row = |name: &str, xs: &[f64], min: f64| {
        let s = DistributionStats::from_samples(xs, min);
        t.row(vec![
            name.into(),
            num(s.median, 1),
            num(s.mean, 2),
            num(s.maximum, 0),
        ]);
    };
    row("loop-variant values per loop", &live_values, 1.0);
    row("MVE kernel-unroll factor (Lam's kmax)", &unrolls, 1.0);
    row("max register names for one value", &max_names, 1.0);
    row("rotating register file size", &rotating_sizes, 1.0);
    print!("{}", t.render());
    println!(
        "\nReading: with rotating registers the kernel is never unrolled and\n\
         the file size above suffices; without them, modulo variable\n\
         expansion replicates the kernel by the unroll factor — the paper's\n\
         motivation for rotating register files (§1, [35], [36])."
    );
}
