//! Corpus-wide optimality-gap harness: iterative vs. exact scheduling.
//!
//! For every corpus loop, an exact backend establishes the true minimum
//! II (or explicit bounds when its work budget runs out), and the
//! iterative scheduler is run at BudgetRatios 1, 2, 3 and 6 — the sweep
//! of the paper's §4.3. The per-loop JSON lines and the aggregate line
//! quantify how far Rau's heuristic sits from optimal at each budget.
//!
//! ```text
//! optgap [--seed H] [--loops N] [--threads T] [--deadline-ms D]
//!        [--backend exact|sat] [--wall] [--trace DIR] [--profile FILE]
//! ```
//!
//! Defaults: 300 loops at seed `0xC4D5`, one worker per core, a 5-second
//! per-loop deadline, the branch-and-bound (`exact`) prover. The deadline
//! is applied as a deterministic work budget (`D × NODES_PER_MS`
//! branch-and-bound nodes, or `D × CONFLICTS_PER_MS` CDCL conflicts with
//! `--backend sat`), never as wall-clock, so stdout is byte-identical
//! across runs and `--threads` values — `scripts/verify.sh` diffs
//! `--threads 1` against `--threads 4` on every run. Because the gap is
//! measured *against* an exact prover, `--backend ims` (and portfolio
//! specs, which include it) are rejected with exit 2.
//!
//! Per-loop fields: `exact_lb`/`exact_ub` bound the true minimum II
//! (equal when proven), `limit_hit` flags an aborted search, `nodes` its
//! cost (CDCL conflicts under `--backend sat`), and `ii_b1` … `ii_b6`
//! are the heuristic IIs. The aggregate line reports, over the `decided`
//! loops (those with proven optima), the summed gap `Σ (II − II*)` and
//! the count of optimally scheduled loops per budget ratio.
//!
//! The corpus driver's opt-in extras work here too, with the same
//! determinism contract:
//!
//! * `--wall` appends the (non-deterministic) per-loop `wall_ns` timing
//!   to each line — the whole loop's work: the exact search plus all four
//!   heuristic runs.
//! * `--trace DIR` writes one JSON-lines event trace per loop
//!   (`loop_00042.jsonl`, …), byte-identical across thread counts. Each
//!   trace carries five back-to-back runs: the exact backend's, then the
//!   four heuristic runs in BudgetRatio order, each introduced by its
//!   `backend` event.
//! * `--profile FILE` writes a versioned `BENCH_<name>.json` snapshot
//!   covering every phase of the harness (exact search, the heuristic
//!   sweep, graph analysis, MRT probes), with deterministic sections
//!   byte-identical across `--threads` values. stdout is unchanged.

use ims_bench::profile::{
    flush_counters, parse_profile_path, write_profile, ProfObserver,
};
use ims_bench::{conflict_budget_for_ms, node_budget_for_ms, parse_trace_dir, pool};
use ims_core::{
    BackendKind, BackendSpec, IiBounds, MiiInfo, NullObserver, SchedConfig, SchedObserver,
    Scheduler,
};
use ims_deps::{back_substitute, build_problem, BuildOptions};
use ims_exact::{schedule_exact_observed, schedule_exact_profiled, ExactConfig};
use ims_loopgen::corpus_of_size;
use ims_machine::cydra;
use ims_prof::{phase, MetricsRegistry, PhaseTimer};
use ims_sat::{schedule_sat_observed, schedule_sat_profiled, SatConfig};
use ims_trace::TraceWriter;

/// The §4.3 BudgetRatio sweep, labeled `b1` … `b6` in the output.
const RATIOS: [(f64, &str); 4] = [(1.0, "b1"), (2.0, "b2"), (3.0, "b3"), (6.0, "b6")];

struct Row {
    ops: usize,
    mii: i64,
    exact_lb: i64,
    exact_ub: i64,
    limit_hit: bool,
    nodes: u64,
    iis: [i64; RATIOS.len()],
    wall_ns: u64,
}

fn flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == name {
            if let Some(v) = it.next().and_then(|v| v.parse().ok()) {
                return v;
            }
        } else if let Some(v) = a.strip_prefix(name).and_then(|r| r.strip_prefix('=')) {
            if let Ok(v) = v.parse() {
                return v;
            }
        }
    }
    default
}

/// Closes a span into the registry when profiling, discards it otherwise.
fn span_end(t: PhaseTimer, reg: &mut Option<MetricsRegistry>) {
    match reg.as_mut() {
        Some(r) => {
            t.finish(r);
        }
        None => t.cancel(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed: u64 = flag(&args, "--seed", 0xC4D5);
    let loops: usize = flag(&args, "--loops", 300);
    let deadline_ms: u64 = flag(&args, "--deadline-ms", 5000);
    let threads = pool::threads_or_exit(&args);
    let with_wall = args.iter().any(|a| a == "--wall");
    let trace_dir = parse_trace_dir(&args);
    let profile_path = parse_profile_path(&args);

    if let Some(dir) = &trace_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("optgap: cannot create trace directory {}: {e}", dir.display());
            std::process::exit(1);
        }
    }

    // The gap is measured against a prover; `ims` (and portfolio specs,
    // which include it) cannot certify optimality, so they are usage
    // errors here, not silent downgrades.
    let spec = pool::backend_or_exit(&args, BackendSpec::Leaf(BackendKind::Exact));
    let backend = match spec.as_leaf() {
        Some(kind @ (BackendKind::Exact | BackendKind::Sat)) => kind,
        _ => {
            eprintln!("optgap: --backend {spec} cannot prove optimality (expected exact or sat)");
            std::process::exit(2);
        }
    };

    let corpus = corpus_of_size(seed, loops);
    let machine = cydra();
    let exact_config = ExactConfig::new().node_limit(node_budget_for_ms(deadline_ms));
    let sat_config = SatConfig::new().conflict_limit(conflict_budget_for_ms(deadline_ms));
    let profiling = profile_path.is_some();
    let tracing = trace_dir.is_some();

    let t0 = std::time::Instant::now();
    let results: Vec<(Row, Option<String>, Option<MetricsRegistry>)> =
        pool::par_map(&corpus.loops, threads, |_, l| {
            let mut reg = profiling.then(MetricsRegistry::new);
            let mut tracer = tracing.then(TraceWriter::in_memory);
            let mut null = NullObserver;
            let mut obs: &mut dyn SchedObserver = match tracer.as_mut() {
                Some(t) => t,
                None => &mut null,
            };

            let whole = PhaseTimer::start(phase::WALL_LOOP);
            let wall0 = std::time::Instant::now();

            let t = PhaseTimer::start(phase::WALL_BUILD);
            let body = back_substitute(&l.body, &machine);
            let problem = build_problem(&body, &machine, &BuildOptions::default());
            span_end(t, &mut reg);

            let t = PhaseTimer::start(match backend {
                BackendKind::Sat => phase::WALL_SAT,
                _ => phase::WALL_EXACT,
            });
            let (proof_mii, proof_bounds, proof_limit_hit, proof_work): (MiiInfo, IiBounds, bool, u64) =
                match backend {
                    BackendKind::Sat => {
                        let out = match reg.as_mut() {
                            Some(r) => schedule_sat_profiled(&problem, &sat_config, &mut obs, &mut *r),
                            None => schedule_sat_observed(&problem, &sat_config, &mut obs),
                        }
                        .expect("corpus loops always schedule under the automatic II cap");
                        (out.mii, out.bounds, out.limit_hit, out.conflicts)
                    }
                    _ => {
                        let out = match reg.as_mut() {
                            Some(r) => schedule_exact_profiled(&problem, &exact_config, &mut obs, &mut *r),
                            None => schedule_exact_observed(&problem, &exact_config, &mut obs),
                        }
                        .expect("corpus loops always schedule under the automatic II cap");
                        (out.mii, out.bounds, out.limit_hit, out.nodes)
                    }
                };
            span_end(t, &mut reg);

            let t = PhaseTimer::start(phase::WALL_SCHED);
            let mut iis = [0i64; RATIOS.len()];
            for (slot, (ratio, _)) in iis.iter_mut().zip(RATIOS) {
                let config = SchedConfig::with_budget_ratio(ratio);
                let out = match reg.as_mut() {
                    Some(r) => Scheduler::new(&problem)
                        .config(config)
                        .observer(ProfObserver::new(&mut obs, r))
                        .run(),
                    None => Scheduler::new(&problem).config(config).observer(&mut obs).run(),
                }
                .expect("corpus loops always schedule under the automatic II cap");
                if let Some(r) = reg.as_mut() {
                    flush_counters(&out.stats.counters, r);
                    r.add(phase::SCHED_STEPS, out.stats.total_steps());
                }
                *slot = out.schedule.ii;
            }
            span_end(t, &mut reg);

            if let Some(r) = reg.as_mut() {
                r.add(phase::CORPUS_LOOPS, 1);
                r.add(phase::CORPUS_OPS, problem.num_ops() as u64);
            }
            span_end(whole, &mut reg);

            let row = Row {
                ops: problem.num_ops(),
                mii: proof_mii.mii,
                exact_lb: proof_bounds.proved_lb,
                exact_ub: proof_bounds.best_ub,
                limit_hit: proof_limit_hit,
                nodes: proof_work,
                iis,
                wall_ns: wall0.elapsed().as_nanos() as u64,
            };
            (row, tracer.map(TraceWriter::into_string), reg)
        });
    let elapsed = t0.elapsed();

    let mut rows = Vec::with_capacity(results.len());
    let mut total = MetricsRegistry::new();
    for (index, (row, trace, reg)) in results.into_iter().enumerate() {
        if let (Some(dir), Some(trace)) = (&trace_dir, trace) {
            if let Err(e) = std::fs::write(dir.join(format!("loop_{index:05}.jsonl")), trace) {
                eprintln!("optgap: cannot write traces: {e}");
                std::process::exit(1);
            }
        }
        if let Some(reg) = reg {
            total.merge(&reg);
        }
        rows.push(row);
    }
    if let Some(p) = &profile_path {
        if let Err(e) = write_profile(p, "optgap", &total) {
            eprintln!("optgap: cannot write profile {}: {e}", p.display());
            std::process::exit(1);
        }
    }

    let mut out = String::with_capacity(rows.len() * 160);
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "{{\"loop\":{i},\"ops\":{},\"mii\":{},\"exact_lb\":{},\"exact_ub\":{},\
             \"limit_hit\":{},\"nodes\":{}",
            r.ops, r.mii, r.exact_lb, r.exact_ub, r.limit_hit, r.nodes,
        ));
        for (&ii, (_, label)) in r.iis.iter().zip(RATIOS) {
            out.push_str(&format!(",\"ii_{label}\":{ii}"));
        }
        if with_wall {
            out.push_str(&format!(",\"wall_ns\":{}", r.wall_ns));
        }
        out.push_str("}\n");
    }

    let decided: Vec<&Row> = rows.iter().filter(|r| r.exact_lb == r.exact_ub).collect();
    let limit_hits = rows.iter().filter(|r| r.limit_hit).count();
    out.push_str(&format!(
        "{{\"loops\":{},\"decided\":{},\"limit_hits\":{limit_hits}",
        rows.len(),
        decided.len(),
    ));
    for (k, (_, label)) in RATIOS.iter().enumerate() {
        let gap: i64 = decided.iter().map(|r| r.iis[k] - r.exact_ub).sum();
        let optimal = decided.iter().filter(|r| r.iis[k] == r.exact_ub).count();
        out.push_str(&format!(",\"gap_{label}\":{gap},\"opt_{label}\":{optimal}"));
    }
    out.push_str("}\n");
    print!("{out}");

    eprintln!(
        "optgap: {} loops ({} decided, {} limit hits) in {:.1} ms on {} thread{}",
        rows.len(),
        decided.len(),
        limit_hits,
        elapsed.as_secs_f64() * 1e3,
        threads,
        if threads == 1 { "" } else { "s" },
    );
    if let Some(p) = &profile_path {
        eprintln!("profile snapshot written to {}", p.display());
    }
}
