//! Corpus-wide optimality-gap harness: iterative vs. exact scheduling.
//!
//! For every corpus loop, the exact branch-and-bound backend establishes
//! the true minimum II (or explicit bounds when its node budget runs
//! out), and the iterative scheduler is run at BudgetRatios 1, 2, 3 and 6
//! — the sweep of the paper's §4.3. The per-loop JSON lines and the
//! aggregate line quantify how far Rau's heuristic sits from optimal at
//! each budget.
//!
//! ```text
//! optgap [--seed H] [--loops N] [--threads T] [--deadline-ms D]
//! ```
//!
//! Defaults: 300 loops at seed `0xC4D5`, one worker per core, a 5-second
//! per-loop deadline. The deadline is applied as a deterministic node
//! budget (`D × NODES_PER_MS`), never as wall-clock, so stdout is
//! byte-identical across runs and `--threads` values — `scripts/verify.sh`
//! diffs `--threads 1` against `--threads 4` on every run.
//!
//! Per-loop fields: `exact_lb`/`exact_ub` bound the true minimum II
//! (equal when proven), `limit_hit` flags an aborted search, `nodes` its
//! cost, and `ii_b1` … `ii_b6` are the heuristic IIs. The aggregate line
//! reports, over the `decided` loops (those with proven optima), the
//! summed gap `Σ (II − II*)` and the count of optimally scheduled loops
//! per budget ratio.

use ims_bench::{node_budget_for_ms, pool};
use ims_core::{modulo_schedule, SchedConfig};
use ims_deps::{back_substitute, build_problem, BuildOptions};
use ims_exact::{schedule_exact, ExactConfig};
use ims_loopgen::corpus_of_size;
use ims_machine::cydra;

/// The §4.3 BudgetRatio sweep, labeled `b1` … `b6` in the output.
const RATIOS: [(f64, &str); 4] = [(1.0, "b1"), (2.0, "b2"), (3.0, "b3"), (6.0, "b6")];

struct Row {
    ops: usize,
    mii: i64,
    exact_lb: i64,
    exact_ub: i64,
    limit_hit: bool,
    nodes: u64,
    iis: [i64; RATIOS.len()],
}

fn flag<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == name {
            if let Some(v) = it.next().and_then(|v| v.parse().ok()) {
                return v;
            }
        } else if let Some(v) = a.strip_prefix(name).and_then(|r| r.strip_prefix('=')) {
            if let Ok(v) = v.parse() {
                return v;
            }
        }
    }
    default
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed: u64 = flag(&args, "--seed", 0xC4D5);
    let loops: usize = flag(&args, "--loops", 300);
    let deadline_ms: u64 = flag(&args, "--deadline-ms", 5000);
    let threads = pool::parse_threads(&args).unwrap_or_else(pool::default_threads);

    let corpus = corpus_of_size(seed, loops);
    let machine = cydra();
    let exact_config = ExactConfig::new().node_limit(node_budget_for_ms(deadline_ms));

    let t0 = std::time::Instant::now();
    let rows: Vec<Row> = pool::par_map(&corpus.loops, threads, |_, l| {
        let body = back_substitute(&l.body, &machine);
        let problem = build_problem(&body, &machine, &BuildOptions::default());
        let exact = schedule_exact(&problem, &exact_config)
            .expect("corpus loops always schedule under the automatic II cap");
        let mut iis = [0i64; RATIOS.len()];
        for (slot, (ratio, _)) in iis.iter_mut().zip(RATIOS) {
            *slot = modulo_schedule(&problem, &SchedConfig::with_budget_ratio(ratio))
                .expect("corpus loops always schedule under the automatic II cap")
                .schedule
                .ii;
        }
        Row {
            ops: problem.num_ops(),
            mii: exact.mii.mii,
            exact_lb: exact.bounds.proved_lb,
            exact_ub: exact.bounds.best_ub,
            limit_hit: exact.limit_hit,
            nodes: exact.nodes,
            iis,
        }
    });
    let elapsed = t0.elapsed();

    let mut out = String::with_capacity(rows.len() * 160);
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "{{\"loop\":{i},\"ops\":{},\"mii\":{},\"exact_lb\":{},\"exact_ub\":{},\
             \"limit_hit\":{},\"nodes\":{}",
            r.ops, r.mii, r.exact_lb, r.exact_ub, r.limit_hit, r.nodes,
        ));
        for (&ii, (_, label)) in r.iis.iter().zip(RATIOS) {
            out.push_str(&format!(",\"ii_{label}\":{ii}"));
        }
        out.push_str("}\n");
    }

    let decided: Vec<&Row> = rows.iter().filter(|r| r.exact_lb == r.exact_ub).collect();
    let limit_hits = rows.iter().filter(|r| r.limit_hit).count();
    out.push_str(&format!(
        "{{\"loops\":{},\"decided\":{},\"limit_hits\":{limit_hits}",
        rows.len(),
        decided.len(),
    ));
    for (k, (_, label)) in RATIOS.iter().enumerate() {
        let gap: i64 = decided.iter().map(|r| r.iis[k] - r.exact_ub).sum();
        let optimal = decided.iter().filter(|r| r.iis[k] == r.exact_ub).count();
        out.push_str(&format!(",\"gap_{label}\":{gap},\"opt_{label}\":{optimal}"));
    }
    out.push_str("}\n");
    print!("{out}");

    eprintln!(
        "optgap: {} loops ({} decided, {} limit hits) in {:.1} ms on {} thread{}",
        rows.len(),
        decided.len(),
        limit_hits,
        elapsed.as_secs_f64() * 1e3,
        threads,
        if threads == 1 { "" } else { "s" },
    );
}
