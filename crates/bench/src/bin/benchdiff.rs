//! Compares two `BENCH_<name>.json` profile snapshots and fails on
//! regression — the perf gate behind `scripts/verify.sh` and CI.
//!
//! ```text
//! benchdiff BASE NEW [--counter-threshold R] [--wall-threshold R]
//!           [--min-wall-ns N] [--strict-counters] [--no-wall]
//! ```
//!
//! Deterministic counters and histogram sums regress when the new value
//! exceeds `base × counter-threshold` (default 1.0: any increase in
//! deterministic work is a regression). `--strict-counters` demands exact
//! equality in both directions — the CI mode, where the deterministic
//! sections must match a committed baseline byte-for-byte. Gauges must
//! always match exactly (differing gauges mean the workloads are not
//! comparable). Wall-clock totals regress only past `wall-threshold`
//! (default 2.0) and only when the base total is at least `min-wall-ns`
//! (default 1 ms — below that, timing noise dominates); `--no-wall`
//! skips wall comparison entirely, e.g. when the snapshots come from
//! different machines. Improvements are reported but never fail.
//!
//! Exit status: 0 when the comparison passes, 1 on regression, 2 on
//! usage, I/O, or parse errors.

use ims_prof::diff::{diff_snapshots, DiffOptions};
use ims_prof::snapshot::Snapshot;

fn usage() -> ! {
    eprintln!(
        "usage: benchdiff BASE NEW [--counter-threshold R] [--wall-threshold R]\n\
         \x20                      [--min-wall-ns N] [--strict-counters] [--no-wall]"
    );
    std::process::exit(2);
}

fn load(path: &str) -> Snapshot {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("benchdiff: cannot read {path}: {e}");
        std::process::exit(2);
    });
    Snapshot::parse(&text).unwrap_or_else(|e| {
        eprintln!("benchdiff: malformed snapshot {path}: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = DiffOptions::default();
    let mut paths: Vec<&str> = Vec::new();

    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut numeric = |what: &str| -> f64 {
            match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => v,
                None => {
                    eprintln!("benchdiff: {what} needs a numeric value");
                    usage();
                }
            }
        };
        match a.as_str() {
            "--counter-threshold" => opts.counter_threshold = numeric("--counter-threshold"),
            "--wall-threshold" => opts.wall_threshold = numeric("--wall-threshold"),
            "--min-wall-ns" => opts.min_wall_ns = numeric("--min-wall-ns") as u64,
            "--strict-counters" => opts.strict_counters = true,
            "--no-wall" => opts.compare_wall = false,
            _ if a.starts_with("--") => {
                eprintln!("benchdiff: unknown flag {a}");
                usage();
            }
            _ => paths.push(a),
        }
    }
    let [base_path, new_path] = paths.as_slice() else {
        usage();
    };

    let base = load(base_path);
    let new = load(new_path);
    let report = diff_snapshots(&base, &new, &opts);
    print!("{}", report.render(base_path, new_path));
    std::process::exit(if report.passed() { 0 } else { 1 });
}
